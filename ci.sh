#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the tier-1 verify.
# `crates/bench` is intentionally outside the workspace (it needs
# criterion, which offline environments cannot fetch).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
cargo run -p cce-analyze -- --baseline analyze-baseline.json
# Concurrent conformance at a pinned thread axis: per-tenant event
# streams must be byte-identical to solo runs both single-threaded and
# under real contention.
CCE_TEST_THREADS=1 cargo test -q -p cce-core --test concurrent_conformance
CCE_TEST_THREADS=4 cargo test -q -p cce-core --test concurrent_conformance
# Trace-I/O micro-benchmark: regenerates BENCH_trace_io.json so the
# binary decode path's advantage over JSON stays visible in review.
cargo run --release -p cce-experiments -- bench_trace_io --scale 0.2 --quiet --out BENCH_trace_io.json
# Concurrent-serving micro-benchmark: regenerates BENCH_concurrent.json.
# Reports throughput per thread count; no scaling ratio is asserted
# because CI hosts may expose a single hardware thread (the JSON records
# available_parallelism alongside the timings).
cargo run --release -p cce-experiments -- bench_concurrent --scale 0.2 --quiet --out BENCH_concurrent.json
