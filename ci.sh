#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the tier-1 verify.
# `crates/bench` is intentionally outside the workspace (it needs
# criterion, which offline environments cannot fetch).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
cargo run -p cce-analyze -- --baseline analyze-baseline.json
