#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the tier-1 verify.
# `crates/bench` is intentionally outside the workspace (it needs
# criterion, which offline environments cannot fetch).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
# Path-sensitive lint self-checks first, by name: the event-grammar
# typestate and cost-unit flow lints each must flag their violating
# fixture and stay quiet on their clean twin, so a regression in the
# CFG/dataflow layer can never silently green the repo gate below.
for lint in event_typestate cost_units; do
    if cargo run -q -p cce-analyze -- "crates/analyze/fixtures/${lint}_violating.rs"; then
        echo "self-check: ${lint} lint found nothing in its violating fixture" >&2
        exit 1
    fi
    cargo run -q -p cce-analyze -- "crates/analyze/fixtures/${lint}_clean.rs"
done
# Then the full fixture sweep: each violating fixture must fail, each
# clean one must pass, so a broken lint can never green the repo gate.
for fixture in crates/analyze/fixtures/*_violating.rs; do
    if cargo run -q -p cce-analyze -- "$fixture"; then
        echo "self-check: $fixture should have produced findings" >&2
        exit 1
    fi
done
for fixture in crates/analyze/fixtures/*_clean.rs; do
    cargo run -q -p cce-analyze -- "$fixture"
done
# The workspace gate: hard-fails on any finding above the committed
# baseline, on a stale baseline, or if analysis blows its wall-time
# budget. The SARIF log is emitted alongside for upload/inspection.
cargo run -p cce-analyze -- --baseline analyze-baseline.json --budget-ms 5000
cargo run -q -p cce-analyze -- --baseline analyze-baseline.json --format sarif > analyze.sarif || true
head -c 400 analyze.sarif; echo
# Concurrent conformance at a pinned thread axis: per-tenant event
# streams must be byte-identical to solo runs both single-threaded and
# under real contention.
CCE_TEST_THREADS=1 cargo test -q -p cce-core --test concurrent_conformance
CCE_TEST_THREADS=4 cargo test -q -p cce-core --test concurrent_conformance
# Lock-interleaving stress at the same axis: the arbiter→tenant→shard
# descent the lock-graph lint proves acyclic must also survive real
# scheduling (a deadlock trips the test's watchdog, not the CI timeout).
CCE_TEST_THREADS=1 cargo test -q -p cce-core --test lock_interleave
CCE_TEST_THREADS=4 cargo test -q -p cce-core --test lock_interleave
# Trace-I/O micro-benchmark: regenerates BENCH_trace_io.json so the
# binary decode path's advantage over JSON stays visible in review.
cargo run --release -p cce-experiments -- bench_trace_io --scale 0.2 --quiet --out BENCH_trace_io.json
# Concurrent-serving micro-benchmark: regenerates BENCH_concurrent.json.
# Reports throughput per thread count; no scaling ratio is asserted
# because CI hosts may expose a single hardware thread (the JSON records
# available_parallelism alongside the timings).
cargo run --release -p cce-experiments -- bench_concurrent --scale 0.2 --quiet --out BENCH_concurrent.json
# Serve smoke: a short fixed-seed open-loop run through the framed
# transport and the concurrent server loop, regenerating
# BENCH_serve.json. --smoke hard-fails the gate unless the run applied
# events and shed nothing (drops under nominal load mean the serving
# path regressed). The serve↔offline byte-identity itself is pinned by
# crates/sim/tests/serve_conformance.rs in the test pass above.
CCE_TEST_THREADS=1 cargo test -q -p cce-sim --test serve_conformance
CCE_TEST_THREADS=4 cargo test -q -p cce-sim --test serve_conformance
# Ladder conformance at the same thread axis: the single-pass
# configuration ladder (DESIGN.md §14) must stay byte-identical to the
# per-cell naive oracle — matrix results and per-cell event streams —
# before any figure job is allowed to use it.
CCE_TEST_THREADS=1 cargo test -q -p cce-sim --test ladder_conformance
CCE_TEST_THREADS=4 cargo test -q -p cce-sim --test ladder_conformance
# Grid-sweep micro-benchmark: regenerates BENCH_grid.json. --smoke
# hard-fails the gate if the ladder's speedup over the per-cell sweep
# drops below 5x (a regression back toward per-cell cost); the bench
# itself also fails if the two grids are not byte-identical.
cargo run --release -p cce-experiments -- bench_grid --scale 0.2 --seed 7 --smoke --quiet --out BENCH_grid.json
cargo run --release -p cce-experiments -- serve --rps 2000 --duration 2 \
    --tenants 4 --threads 2 --seed 7 --scale 0.2 --smoke --quiet --out BENCH_serve.json
