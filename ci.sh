#!/usr/bin/env sh
# Offline CI gate: formatting, lints, and the tier-1 verify.
# `crates/bench` is intentionally outside the workspace (it needs
# criterion, which offline environments cannot fetch).
set -eux

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
cargo run -p cce-analyze -- --baseline analyze-baseline.json
# Trace-I/O micro-benchmark: regenerates BENCH_trace_io.json so the
# binary decode path's advantage over JSON stays visible in review.
cargo run --release -p cce-experiments -- bench_trace_io --scale 0.2 --quiet --out BENCH_trace_io.json
