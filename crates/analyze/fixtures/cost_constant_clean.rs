// Golden fixture: parameterized models and near-miss numbers are clean.
pub fn eviction_cycles(slope: f64, intercept: f64, evicted_kb: f64) -> f64 {
    slope * evicted_kb + intercept
}

pub fn near_misses() -> (f64, f64, f64) {
    (2.76, 305.5, 95.8)
}

pub fn scale_label() -> &'static str {
    "cache scale: 0.25"
}

pub fn digit_run_neighbors() -> &'static str {
    "since 19225 bytes at offset 75.41"
}
