// Golden fixture: re-typed Eq. 2-4 constants must be flagged.
pub fn eviction_cycles(evicted_kb: f64) -> f64 {
    2.77 * evicted_kb + 3055.0
}

pub fn fit_label() -> &'static str {
    "link fit: 296.5*x + 95.7"
}
