//! Clean fixture for the `cost-units` lint: the canonical model
//! combines currencies through casts and fitted coefficients,
//! same-unit arithmetic is fine, float accumulation is exempt, and
//! integer cycle totals that use saturating ops pass.

fn model_eval(slope: f64, shard_bytes: u64, intercept: f64, invocations: u64) -> f64 {
    slope * shard_bytes as f64 + intercept * invocations as f64
}

fn accumulate(per_event_cost: u64, rounds: u64) -> u64 {
    let mut total_cycles: u64 = 0;
    let mut i = 0;
    while i < rounds {
        total_cycles = total_cycles.saturating_add(per_event_cost);
        i += 1;
    }
    total_cycles
}

fn float_total(per_event_cost: f64, rounds: u64) -> f64 {
    let mut total_cycles = 0.0;
    let mut k: u64 = 0;
    while k < rounds {
        total_cycles += per_event_cost;
        k += 1;
    }
    total_cycles
}

fn same_unit(total_bytes: u64, freed_bytes: u64) -> u64 {
    total_bytes - freed_bytes
}

fn ladder_lanes(lane_cost_cycles: u64, lanes: u64) -> u64 {
    let mut grid_cycles: u64 = 0;
    let mut lane = 0;
    while lane < lanes {
        grid_cycles = grid_cycles.saturating_add(lane_cost_cycles);
        lane += 1;
    }
    grid_cycles
}

fn ladder_overheads(model: &OverheadModel, lanes: u64) -> f64 {
    let mut miss_cycles = 0.0;
    let mut lane: u64 = 0;
    while lane < lanes {
        miss_cycles += model.eval(2, 1);
        lane += 1;
    }
    miss_cycles
}
