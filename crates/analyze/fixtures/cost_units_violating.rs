//! Violating fixture for the `cost-units` lint: cross-unit
//! arithmetic between bytes, cycles and event counts, plus an
//! unsaturated integer cycle accumulator. Findings trace each
//! operand's unit back to the binding where it was inferred.

fn mix(total_bytes: u64, miss_cycles: u64) -> u64 {
    let wrong = total_bytes + miss_cycles;
    wrong
}

fn tally(hit_count: u64, shard_bytes: u64) -> u64 {
    hit_count + shard_bytes
}

fn accumulate(per_event_cost: u64, rounds: u64) -> u64 {
    let mut total_cycles: u64 = 0;
    let mut i = 0;
    while i < rounds {
        total_cycles += per_event_cost;
        i += 1;
    }
    total_cycles
}

fn eval_mix(model: &OverheadModel, freed_bytes: u64) -> u64 {
    let unlink = model.eval(4, 3);
    let total = unlink + freed_bytes;
    total
}

fn ladder_lanes(lane_cost_cycles: u64, lanes: u64) -> u64 {
    let mut grid_cycles: u64 = 0;
    let mut lane = 0;
    while lane < lanes {
        grid_cycles += lane_cost_cycles;
        lane += 1;
    }
    grid_cycles
}
