// Golden fixture: the migrated path — InsertRequest through
// insert_request/flush — and colliding std names are not shim calls.
pub fn migrated(cache: &mut CodeCache, id: SuperblockId) -> Result<(), CacheError> {
    let req = InsertRequest::new(id, 64).with_hint(None);
    cache.insert_request(req, &mut NullSink)?;
    cache.flush(&mut NullSink);
    Ok(())
}

pub fn std_insert_is_not_a_shim(map: &mut BTreeMap<u64, u64>) {
    map.insert(1, 2);
}

impl CodeCache {
    pub fn insert_hinted_lookalike_definition(&mut self) {}
}
