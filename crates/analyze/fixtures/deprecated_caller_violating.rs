// Golden fixture: non-test calls to the deprecated insert/flush shims
// must be flagged (definitions and test-module calls are exempt).
pub fn unmigrated(cache: &mut CodeCache, id: SuperblockId) {
    cache.insert_hinted(id, 64, None).unwrap();
    let _ = cache.insert_evented(id, 64, None);
    cache.flush_with_events(&mut NullSink);
}

#[cfg(test)]
mod tests {
    #[test]
    fn equivalence_suite_may_call_shims() {
        let mut cache = CodeCache::with_granularity(Granularity::Flush, 128).unwrap();
        cache.insert_with_events(SuperblockId(1), 64, None, &mut NullSink).unwrap();
    }
}
