// Golden fixture: matching on eviction events is fine; only
// construction is restricted.
pub fn classify(ev: &CacheEvent) -> &'static str {
    match ev {
        CacheEvent::EvictionBegin => "begin",
        CacheEvent::EvictionEnd { .. } => "end",
        _ => "other",
    }
}

pub fn is_begin(ev: &CacheEvent) -> bool {
    matches!(ev, CacheEvent::EvictionBegin)
}
