// Golden fixture: direct eviction-event construction must be flagged.
pub fn emit_unscoped(sink: &mut Vec<CacheEvent>, bytes: u64) {
    sink.push(CacheEvent::EvictionBegin);
    sink.push(CacheEvent::EvictionEnd {
        bytes,
        links_dropped_free: 0,
    });
}
