//! Clean fixture for the `event-typestate` lint: balanced scopes,
//! loops of Evicted inside an open scope, pattern positions that are
//! not emissions, and an interprocedurally balanced open/close pair.

fn balanced(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::Evicted { id: 3, size: 128 });
    sink.event(CacheEvent::Unlinked { id: 3, links: 2 });
    sink.event(CacheEvent::EvictionEnd { bytes: 128, links_dropped_free: 2 });
}

fn sweep(sink: &mut Sink, ids: &[u64]) {
    sink.event(CacheEvent::EvictionBegin);
    for id in ids {
        sink.event(CacheEvent::Evicted { id: *id, size: 64 });
    }
    sink.event(CacheEvent::EvictionEnd { bytes: 64, links_dropped_free: 0 });
}

fn classify(ev: CacheEvent) -> bool {
    match ev {
        CacheEvent::EvictionBegin => true,
        CacheEvent::EvictionEnd { .. } => false,
        CacheEvent::Evicted { id: 0, size: 0 } => true,
        _ => matches!(ev, CacheEvent::Unlinked { id: 0, links: 0 }),
    }
}

fn scan(ev: CacheEvent) -> u64 {
    if let CacheEvent::EvictionEnd { bytes, .. } = ev {
        bytes
    } else {
        0
    }
}

fn open_scope(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionBegin);
}

fn close_scope(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionEnd { bytes: 16, links_dropped_free: 0 });
}

fn driver(sink: &mut Sink) {
    open_scope(sink);
    sink.event(CacheEvent::Evicted { id: 9, size: 16 });
    close_scope(sink);
}
