//! Violating fixture for the `event-typestate` lint: four grammar
//! breaks — a nested Begin, a leak through an early return, a stray
//! Evicted after the scope closed, and an interprocedural double-open
//! through a helper. Every finding carries a multi-hop path trace.

fn nested(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::EvictionEnd { bytes: 64, links_dropped_free: 0 });
}

fn leaky(sink: &mut Sink, abort: bool) {
    sink.event(CacheEvent::EvictionBegin);
    if abort {
        return;
    }
    sink.event(CacheEvent::EvictionEnd { bytes: 64, links_dropped_free: 1 });
}

fn stray(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionEnd { bytes: 32, links_dropped_free: 0 });
    sink.event(CacheEvent::Evicted { id: 7, size: 32 });
}

fn open_scope(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionBegin);
}

fn close_scope(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionEnd { bytes: 16, links_dropped_free: 0 });
}

fn driver(sink: &mut Sink) {
    open_scope(sink);
    open_scope(sink);
    close_scope(sink);
}
