//! Clean regression fixture for lexer desync: nested block comments
//! and the full escape set in char/byte literals. If the lexer loses
//! track of a literal boundary, the trap strings below leak their
//! contents as real tokens and a lint fires, failing the clean check.

/* outer /* inner /* deepest */ still inner */ still outer */

fn escapes() -> char {
    let _tab = '\t';
    let _newline = '\n';
    let _return = '\r';
    let _nul = '\0';
    let _quote = '\'';
    let _backslash = '\\';
    let hex = '\x7f';
    let _byte_nul = b'\x00';
    let _byte_max = b'\xFF';
    let _uni = '\u{1F600}';
    let _uni_short = '\u{7e}';
    // If any literal above desynced the lexer, these strings would
    // terminate early and leak panic-path bait as real code tokens.
    let _trap = "literal text: value.unwrap() stays inside this string";
    let _trap2 = "still a string: x.expect(\"nope\") and panic!(\"no\")";
    hex
}

fn comments_stay_comments() -> u32 {
    /* a /* nested */ comment with an apostrophe: don't desync */
    /* /**/ */
    0
}
