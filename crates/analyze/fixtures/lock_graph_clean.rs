//! Fixture: the clean counterpart of `lock_graph_violating.rs` — the
//! canonical helpers, a hierarchy-ordered descent with explicit drops,
//! and the full review shape (arbiter, then every tenant ascending,
//! then one scoped shard lock per iteration). Expected: no findings.

use std::sync::{MutexGuard, PoisonError};

impl ConcurrentCache {
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, ShardSlot> {
        self.shards[s].lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shard_pair(
        &self,
        a: usize,
        b: usize,
    ) -> (MutexGuard<'_, ShardSlot>, MutexGuard<'_, ShardSlot>) {
        if a < b {
            let ga = self.shards[a].lock().unwrap_or_else(PoisonError::into_inner);
            let gb = self.shards[b].lock().unwrap_or_else(PoisonError::into_inner);
            (ga, gb)
        } else {
            let gb = self.shards[b].lock().unwrap_or_else(PoisonError::into_inner);
            let ga = self.shards[a].lock().unwrap_or_else(PoisonError::into_inner);
            (ga, gb)
        }
    }

    fn lock_tenant(&self, t: usize) -> MutexGuard<'_, TenantState> {
        self.tenants[t].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tenant then shard is the hierarchy order; both released before
    /// the unrelated call.
    fn serve(&self, t: usize, s: usize) -> u64 {
        let tenant = self.lock_tenant(t);
        let shard = self.lock_shard(s);
        let used = shard.used() + tenant.quota();
        drop(shard);
        drop(tenant);
        self.bump(used)
    }

    fn bump(&self, used: u64) -> u64 {
        used + 1
    }

    /// The full descent: arbiter, all tenants ascending, shards one at
    /// a time in a scope that closes before the next iteration.
    fn review(&self) {
        let Some(arb) = &self.arbiter else { return };
        let mut ast = arb.lock().unwrap_or_else(PoisonError::into_inner);
        let tenants: Vec<MutexGuard<'_, TenantState>> = self
            .tenants
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        for s in 0..self.shard_count {
            let slot = self.lock_shard(s);
            ast.observe(s, slot.used());
        }
        drop(tenants);
    }
}
