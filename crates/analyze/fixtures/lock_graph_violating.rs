//! Fixture: interprocedural lock-hierarchy violations. Expected
//! findings (lock-graph): the raw shard acquisition in `peek`
//! (confinement), the second shard lock `migrate` takes through its
//! callee `spill` (unordered same-class), and the arbiter lock
//! `rebalance` reaches through `audit` while already holding a shard
//! lock (backward edge).

use std::sync::{MutexGuard, PoisonError};

impl ConcurrentCache {
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, ShardSlot> {
        self.shards[s].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Raw shard lock outside the canonical helpers.
    fn peek(&self, s: usize) -> u64 {
        let slot = self.shards[s].lock().unwrap_or_else(PoisonError::into_inner);
        slot.used()
    }

    fn spill(&self, s: usize) {
        let _cold = self.lock_shard(s);
    }

    /// Holds one shard lock and takes a second through a helper callee
    /// with no ordering idiom in sight.
    fn migrate(&self, hot: usize, cold: usize) {
        let _hot = self.lock_shard(hot);
        self.spill(cold);
    }

    fn audit(&self) {
        let _arb = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
    }

    /// Shard before arbiter: a backward edge in the hierarchy, one call
    /// hop away.
    fn rebalance(&self, s: usize) {
        let _guard = self.lock_shard(s);
        self.audit();
    }
}
