//! Fixture: every shard-lock acquisition goes through the canonical
//! ascending-order helpers; tenant/arbiter locks are out of scope.
//! Expected: no findings.

use std::sync::{MutexGuard, PoisonError};

impl ConcurrentCache {
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, ShardSlot> {
        self.shards[s].lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_shard_pair(
        &self,
        a: usize,
        b: usize,
    ) -> (MutexGuard<'_, ShardSlot>, MutexGuard<'_, ShardSlot>) {
        let first = self.shards[a.min(b)].lock().unwrap_or_else(PoisonError::into_inner);
        let second = self.shards[a.max(b)].lock().unwrap_or_else(PoisonError::into_inner);
        if a < b {
            (first, second)
        } else {
            (second, first)
        }
    }

    fn well_behaved(&self, s: usize, t: usize) -> u64 {
        let tenant = self.tenants[t].lock().unwrap_or_else(PoisonError::into_inner);
        let shard = self.lock_shard(s);
        drop(tenant);
        shard.used()
    }
}
