//! Fixture: shard locks acquired outside the canonical helpers.
//! Expected: three lock-ordering findings (lines 13, 18 and 19); the
//! acquisition inside `lock_shard` itself is exempt.

use std::sync::PoisonError;

impl ConcurrentCache {
    fn lock_shard(&self, s: usize) -> std::sync::MutexGuard<'_, ShardSlot> {
        self.shards[s].lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn rogue_single(&self, s: usize) -> u64 {
        let guard = self.shards[s].lock().unwrap_or_else(PoisonError::into_inner);
        guard.used()
    }

    fn rogue_pair(&self, a: usize, b: usize) {
        let first = self.shards[a].lock().unwrap_or_else(PoisonError::into_inner);
        let second = self.shards[b].lock().unwrap_or_else(PoisonError::into_inner);
        drop((first, second));
    }
}
