// Golden fixture: ordered or lookup-only collection use is clean.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn sum_sizes(sizes: &BTreeMap<u64, u64>) -> u64 {
    sizes.values().sum()
}

pub fn lookup(index: &HashMap<u64, u64>, pc: u64) -> Option<u64> {
    index.get(&pc).copied()
}

pub fn count(tally: &HashMap<u64, u64>) -> usize {
    // cce-analyze: allow(nondet-iter): a count is independent of visit order
    tally.keys().count()
}

pub struct Registry {
    index: HashMap<u64, u64>,
}

// A trailing `for` that is not a loop (trait impl / HRTB) must not
// confuse the for-loop scanner, even with hash-bound names in scope.
impl Default for Registry {
    fn default() -> Registry {
        Registry {
            index: HashMap::new(),
        }
    }
}

pub fn apply_all<F>(f: F)
where
    F: for<'a> Fn(&'a u64),
{
    f(&0);
}
