// Golden fixture: ordered or lookup-only collection use is clean.
use std::collections::BTreeMap;
use std::collections::HashMap;

pub fn sum_sizes(sizes: &BTreeMap<u64, u64>) -> u64 {
    sizes.values().sum()
}

pub fn lookup(index: &HashMap<u64, u64>, pc: u64) -> Option<u64> {
    index.get(&pc).copied()
}

pub fn count(tally: &HashMap<u64, u64>) -> usize {
    // cce-analyze: allow(nondet-iter): a count is independent of visit order
    tally.keys().count()
}
