// Golden fixture: iteration over a std HashMap must be flagged.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn sum_sizes(sizes: &HashMap<u64, u64>) -> u64 {
    let mut total = 0;
    for (_pc, size) in sizes.iter() {
        total += size;
    }
    total
}

pub fn drain_seen(seen: &mut HashSet<u64>) -> Vec<u64> {
    seen.drain().collect()
}

pub fn first_resident(resident: &HashSet<u64>) -> Option<u64> {
    for id in resident {
        return Some(*id);
    }
    None
}
