//! Fixture: the clean counterpart of `nondet_taint_violating.rs`.
//! Ordered containers feeding sinks, hash iteration with no path to
//! any sink, and an annotated (legacy-name) exception all pass.

use std::collections::{BTreeMap, HashMap};

/// Sink over an *ordered* map: deterministic line order.
pub fn summarize(ordered: &BTreeMap<String, u64>) -> SimResult {
    let lines = ordered
        .iter()
        .map(|(name, hits)| format!("{name}: {hits}"))
        .collect();
    SimResult { lines }
}

/// Hash iteration is fine when nothing event-facing can reach it:
/// no sink calls into this function.
pub fn scratch_census(ids: &[u64]) -> usize {
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for &id in ids {
        *seen.entry(id).or_default() += 1;
    }
    seen.iter().filter(|&(_, &n)| n > 1).count()
}

/// The annotation's *old* lint name (`nondet-iter`) still suppresses
/// its successor.
pub fn emit_summary(sink: &mut dyn EventSink, counts: &HashMap<String, u64>) {
    let mut rows: Vec<(&String, &u64)> =
        // cce-analyze: allow(nondet-iter): rows are sorted before emission
        counts.iter().collect();
    rows.sort();
    for (name, hits) in rows {
        sink.on_row(name, *hits);
    }
}
