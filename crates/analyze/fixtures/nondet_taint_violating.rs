//! Fixture: nondeterminism sources that reach an event-emitting or
//! `SimResult`-producing function through the call graph. Expected
//! findings (nondet-taint): the hash-order iteration in `r#dump`
//! (reached from `summarize` in one hop), the wall-clock read inside
//! `emit_window`, and the parallelism probe in `worker_count` (reached
//! from `plan` in one hop).

use std::collections::HashMap;
use std::time::Instant;

/// Sink: produces the run's `SimResult`.
pub fn summarize(stats: &Stats) -> SimResult {
    let lines = r#dump(stats);
    SimResult { lines }
}

/// Source, one hop from the sink: iterating a default-`RandomState`
/// map scrambles the report's line order between runs. (The raw
/// identifier also pins the lexer's `r#` handling.)
fn r#dump(stats: &Stats) -> Vec<String> {
    let by_org: HashMap<String, u64> = stats.hits_by_org();
    by_org
        .iter()
        .map(|(name, hits)| format!("{name}: {hits}"))
        .collect()
}

/// Sink with the source inline: stamps emitted events with wall-clock
/// time.
pub fn emit_window(sink: &mut dyn EventSink, accesses: u64) {
    let started = Instant::now();
    sink.on_window(accesses, started.elapsed());
}

/// Source: machine-dependent worker count.
fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Sink reached by `worker_count` in one hop.
pub fn plan(sink: &mut dyn EventSink, accesses: u64) {
    let workers = worker_count();
    sink.on_plan(accesses / workers as u64);
}
