// Golden fixture: fallible returns in library code, panics only in tests.
pub fn entry_size(sizes: &[u64], idx: usize) -> Option<u64> {
    sizes.get(idx).copied()
}

pub fn first_or_zero(sizes: &[u64]) -> u64 {
    sizes.first().copied().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_not_findings() {
        assert_eq!(super::first_or_zero(&[]), 0);
        let v: Option<u64> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if v.is_none() {
            panic!("unreachable");
        }
    }
}
