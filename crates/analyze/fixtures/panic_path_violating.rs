// Golden fixture: panics in library code must be flagged.
pub fn entry_size(sizes: &[u64], idx: usize) -> u64 {
    let first = sizes.first().unwrap();
    let at = sizes.get(idx).expect("caller checked the index");
    if *first > *at {
        panic!("sizes are unsorted");
    }
    *at
}
