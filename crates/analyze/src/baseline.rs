//! The panic-path ratchet.
//!
//! A baseline records, per `(lint, file)`, how many findings are
//! tolerated — the debt the repo carried when the lint was introduced.
//! Findings inside the budget are suppressed; one above it fails the
//! run, and paying debt down then updating the baseline is the only way
//! the numbers move. `--update-baseline` rewrites the file from the
//! current findings, so counts can ratchet toward zero but a regression
//! can never be committed silently. The ratchet is enforced in both
//! directions: a bucket whose current count falls *below* its budget is
//! reported stale ([`Baseline::stale_buckets`]) and fails the run until
//! the baseline is refreshed, so paid-down debt is locked in rather
//! than left as headroom to regress into.

use std::collections::BTreeMap;

use cce_util::Json;

use crate::lints::{Finding, LINT_RENAMES};

/// Tolerated finding counts, keyed `lint → file → count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    counts: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// A baseline tolerating nothing.
    #[must_use]
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Builds a baseline that exactly covers `findings`.
    #[must_use]
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for f in findings {
            *counts
                .entry(f.lint.to_owned())
                .or_default()
                .entry(f.file.clone())
                .or_default() += 1;
        }
        Baseline { counts }
    }

    /// Parses the JSON baseline format emitted by [`Baseline::to_json`].
    ///
    /// Buckets recorded under a lint's *old* name (see
    /// [`LINT_RENAMES`]) migrate into the successor lint's buckets —
    /// merged by addition when both names are present — so a committed
    /// baseline keeps working across a lint rename instead of silently
    /// dropping its budgets.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let Some(Json::Obj(lints)) = doc.get("counts").cloned() else {
            return Err("baseline is missing the \"counts\" object".to_owned());
        };
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for (lint, files) in lints {
            let Json::Obj(pairs) = files else {
                return Err(format!("baseline counts for {lint} are not an object"));
            };
            let canonical = LINT_RENAMES
                .iter()
                .find(|(old, _)| *old == lint)
                .map_or(lint.as_str(), |&(_, new)| new);
            let per_file = counts.entry(canonical.to_owned()).or_default();
            for (file, n) in pairs {
                let Some(n) = n.as_u64() else {
                    return Err(format!("baseline count for {lint}/{file} is not a count"));
                };
                *per_file.entry(file).or_default() += usize::try_from(n).unwrap_or(usize::MAX);
            }
        }
        Ok(Baseline { counts })
    }

    /// Serializes; keys are sorted so the file is diff-stable.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let lints: Vec<(String, Json)> = self
            .counts
            .iter()
            .filter(|(_, files)| !files.is_empty())
            .map(|(lint, files)| {
                let pairs: Vec<(String, Json)> = files
                    .iter()
                    .filter(|&(_, &n)| n > 0)
                    .map(|(file, &n)| (file.clone(), Json::from(n)))
                    .collect();
                (lint.clone(), Json::Obj(pairs))
            })
            .collect();
        Json::obj(vec![
            ("version", Json::Int(1)),
            ("counts", Json::Obj(lints)),
        ])
    }

    /// The tolerated count for one `(lint, file)` bucket.
    #[must_use]
    pub fn budget(&self, lint: &str, file: &str) -> usize {
        self.counts
            .get(lint)
            .and_then(|files| files.get(file))
            .copied()
            .unwrap_or(0)
    }

    /// Buckets whose current finding count is strictly below budget:
    /// debt was paid down but the baseline still tolerates the old
    /// count, so the file could silently regress back up to it. Each
    /// entry is `(lint, file, budget, current)`; refresh with
    /// `--update-baseline` to lock the reduction in.
    #[must_use]
    pub fn stale_buckets(&self, findings: &[Finding]) -> Vec<(String, String, usize, usize)> {
        let mut current: BTreeMap<(&str, &str), usize> = BTreeMap::new();
        for f in findings {
            *current.entry((f.lint, f.file.as_str())).or_default() += 1;
        }
        let mut stale = Vec::new();
        for (lint, files) in &self.counts {
            for (file, &budget) in files {
                let now = current
                    .get(&(lint.as_str(), file.as_str()))
                    .copied()
                    .unwrap_or(0);
                if now < budget {
                    stale.push((lint.clone(), file.clone(), budget, now));
                }
            }
        }
        stale
    }

    /// Splits findings into those above baseline (kept, to report) and
    /// the number suppressed. A bucket at or under its budget is
    /// suppressed entirely; a bucket above it is reported entirely, so
    /// the offending file's full debt is visible while being paid down.
    #[must_use]
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize) {
        let mut current: BTreeMap<(&'static str, String), usize> = BTreeMap::new();
        for f in &findings {
            *current.entry((f.lint, f.file.clone())).or_default() += 1;
        }
        let mut suppressed = 0usize;
        let kept: Vec<Finding> = findings
            .into_iter()
            .filter(|f| {
                let n = current[&(f.lint, f.file.clone())];
                if n <= self.budget(f.lint, &f.file) {
                    suppressed += 1;
                    false
                } else {
                    true
                }
            })
            .collect();
        (kept, suppressed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, line: u32) -> Finding {
        Finding::new(file, line, lint, String::new())
    }

    #[test]
    fn round_trips_through_json() {
        let fs = vec![
            finding("panic-path", "crates/core/src/cache.rs", 10),
            finding("panic-path", "crates/core/src/cache.rs", 20),
            finding("panic-path", "crates/sim/src/simulator.rs", 5),
        ];
        let b = Baseline::from_findings(&fs);
        let text = b.to_json().to_string_compact();
        assert_eq!(Baseline::parse(&text).unwrap(), b);
        assert_eq!(b.budget("panic-path", "crates/core/src/cache.rs"), 2);
        assert_eq!(b.budget("panic-path", "crates/dbt/src/lib.rs"), 0);
    }

    #[test]
    fn within_budget_is_suppressed_above_is_reported() {
        let baseline = Baseline::from_findings(&[finding("panic-path", "a.rs", 1)]);
        let (kept, suppressed) = baseline.apply(vec![finding("panic-path", "a.rs", 7)]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
        let (kept, suppressed) = baseline.apply(vec![
            finding("panic-path", "a.rs", 7),
            finding("panic-path", "a.rs", 9),
        ]);
        assert_eq!(kept.len(), 2, "whole bucket is reported when over budget");
        assert_eq!(suppressed, 0);
    }

    #[test]
    fn paid_down_buckets_are_reported_stale() {
        let baseline = Baseline::from_findings(&[
            finding("panic-path", "a.rs", 1),
            finding("panic-path", "a.rs", 2),
            finding("panic-path", "a.rs", 3),
            finding("panic-path", "b.rs", 1),
        ]);
        // a.rs paid down from 3 to 1, b.rs unchanged, so only a.rs is
        // stale — with the exact budget/current counts.
        let now = [
            finding("panic-path", "a.rs", 7),
            finding("panic-path", "b.rs", 1),
        ];
        assert_eq!(
            baseline.stale_buckets(&now),
            vec![("panic-path".to_owned(), "a.rs".to_owned(), 3, 1)]
        );
        assert!(Baseline::from_findings(&now).stale_buckets(&now).is_empty());
    }

    #[test]
    fn budgets_do_not_transfer_between_files_or_lints() {
        let baseline = Baseline::from_findings(&[finding("panic-path", "a.rs", 1)]);
        let (kept, _) = baseline.apply(vec![finding("panic-path", "b.rs", 3)]);
        assert_eq!(kept.len(), 1);
        let (kept, _) = baseline.apply(vec![finding("cost-constant", "a.rs", 3)]);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn renamed_lint_buckets_migrate_on_parse() {
        // A baseline committed before the rename keeps suppressing the
        // successor lint's findings.
        let old = "{\"version\":1,\"counts\":{\"nondet-iter\":{\"a.rs\":2},\
                    \"lock-ordering\":{\"b.rs\":1}}}";
        let b = Baseline::parse(old).unwrap();
        assert_eq!(b.budget("nondet-taint", "a.rs"), 2);
        assert_eq!(b.budget("lock-graph", "b.rs"), 1);
        assert_eq!(b.budget("nondet-iter", "a.rs"), 0, "old name is gone");
        let (kept, suppressed) = b.apply(vec![
            finding("nondet-taint", "a.rs", 3),
            finding("nondet-taint", "a.rs", 9),
        ]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 2);
    }

    #[test]
    fn old_and_new_name_buckets_merge_by_addition() {
        let mixed = "{\"version\":1,\"counts\":{\"nondet-iter\":{\"a.rs\":2},\
                      \"nondet-taint\":{\"a.rs\":1}}}";
        let b = Baseline::parse(mixed).unwrap();
        assert_eq!(b.budget("nondet-taint", "a.rs"), 3);
        // Re-serializing writes only the canonical name.
        let round = Baseline::parse(&b.to_json().to_string_compact()).unwrap();
        assert_eq!(round, b);
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"counts\":{\"panic-path\":3}}").is_err());
        assert!(Baseline::parse("{\"counts\":{\"panic-path\":{\"a.rs\":\"x\"}}}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
