//! Layer 2: call-site extraction and a conservative workspace call
//! graph over the [`crate::symbols::Workspace`].
//!
//! Resolution is name-based with self-type refinement — exactly as
//! coarse as a lexer-level analyzer can honestly be:
//!
//! * `self.f(…)` / `Self::f(…)` resolve to methods named `f` on the
//!   enclosing `impl` type only;
//! * `Type::f(…)` resolves to methods of `Type` when any exist, else to
//!   every `f` (the qualifier may be a module);
//! * bare `f(…)` and method calls on locals resolve to every known `f`.
//!
//! Receiver classes are kept on each edge so clients choose their own
//! precision/soundness trade-off: the determinism-taint lint walks the
//! full graph (over-approximate — a missed edge would be an unsound
//! "clean"), while the lock-graph lint drops [`ReceiverKind::Local`]
//! and [`ReceiverKind::SelfField`] method edges, whose targets are
//! almost always other types' methods that happen to share a name.

use std::collections::VecDeque;

use crate::lexer::{TokKind, Token};
use crate::symbols::{bare_name, Workspace};

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiverKind {
    /// `self.f(…)` — a method of the enclosing impl type.
    SelfDot,
    /// `self.field.f(…)` — a method of a field's (unknown) type.
    SelfField,
    /// `local.f(…)`, `expr().f(…)` — method of an unknown type.
    Local,
    /// `path::f(…)`, `Type::f(…)`, `Self::f(…)`.
    Path,
    /// Bare `f(…)`.
    Free,
}

/// One syntactic call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name, raw-identifier prefix stripped.
    pub callee: String,
    /// Receiver shape at the site.
    pub recv: ReceiverKind,
    /// For [`ReceiverKind::Path`]: the last path segment before the
    /// callee (`Self`, a type, or a module name).
    pub qualifier: Option<String>,
    /// 1-based source line.
    pub line: u32,
    /// Token index of the callee name within the file's stream.
    pub tok: usize,
}

/// One resolved edge: `sites[caller][site]` may invoke `callee`.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Index into the caller's site list.
    pub site: usize,
    /// Callee function id in the workspace.
    pub callee: usize,
}

/// The conservative call graph: per-function call sites and resolved
/// edges, indexed by workspace function id.
pub struct CallGraph {
    /// Call sites per function.
    pub sites: Vec<Vec<CallSite>>,
    /// Resolved edges per function (full graph).
    pub edges: Vec<Vec<Edge>>,
}

/// Rust keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "in", "as", "let", "fn", "pub", "use",
    "mod", "impl", "trait", "struct", "enum", "unsafe", "where", "move", "ref", "mut", "dyn",
    "break", "continue", "await", "box", "yield",
];

impl CallGraph {
    /// Extracts and resolves every call site in the workspace.
    #[must_use]
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut sites = Vec::with_capacity(ws.fns.len());
        let mut edges = Vec::with_capacity(ws.fns.len());
        for f in &ws.fns {
            let tokens = &ws.files[f.file].lexed.tokens;
            let fsites = extract_sites(tokens, f.body);
            let mut fedges = Vec::new();
            for (si, site) in fsites.iter().enumerate() {
                for callee in resolve(ws, f.self_ty.as_deref(), site) {
                    fedges.push(Edge { site: si, callee });
                }
            }
            sites.push(fsites);
            edges.push(fedges);
        }
        CallGraph { sites, edges }
    }

    /// Shortest call chain `from →* to` over edges admitted by
    /// `admit(caller, edge)`, as `(caller fn id, call line)` hops —
    /// empty when `from == to`, `None` when unreachable.
    #[must_use]
    pub fn path_to(
        &self,
        from: usize,
        to: usize,
        admit: impl Fn(usize, &Edge) -> bool,
    ) -> Option<Vec<(usize, u32)>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: Vec<Option<(usize, u32)>> = vec![None; self.edges.len()];
        let mut queue = VecDeque::from([from]);
        let mut seen = vec![false; self.edges.len()];
        seen[from] = true;
        while let Some(f) = queue.pop_front() {
            for e in &self.edges[f] {
                if !admit(f, e) || seen[e.callee] {
                    continue;
                }
                seen[e.callee] = true;
                prev[e.callee] = Some((f, self.sites[f][e.site].line));
                if e.callee == to {
                    let mut hops = Vec::new();
                    let mut cur = to;
                    while let Some((p, line)) = prev[cur] {
                        hops.push((p, line));
                        cur = p;
                    }
                    hops.reverse();
                    return Some(hops);
                }
                queue.push_back(e.callee);
            }
        }
        None
    }
}

/// Candidate callees for one site, with self-type refinement.
fn resolve(ws: &Workspace, self_ty: Option<&str>, site: &CallSite) -> Vec<usize> {
    let all = ws.candidates(&site.callee);
    if all.is_empty() {
        return Vec::new();
    }
    let strict = site.recv == ReceiverKind::SelfDot || site.qualifier.as_deref() == Some("Self");
    let refine_to = match site.recv {
        ReceiverKind::SelfDot => self_ty,
        ReceiverKind::Path => match site.qualifier.as_deref() {
            Some("Self") => self_ty,
            q => q,
        },
        _ => None,
    };
    let Some(ty) = refine_to else {
        return all.to_vec();
    };
    let typed: Vec<usize> = all
        .iter()
        .copied()
        .filter(|&id| ws.fns[id].self_ty.as_deref() == Some(ty))
        .collect();
    if !typed.is_empty() {
        typed
    } else if strict {
        // `self.f()` / `Self::f()` with no method of this type named
        // `f`: the name belongs to some foreign type — no edge.
        Vec::new()
    } else {
        // The qualifier was probably a module path segment.
        all.to_vec()
    }
}

/// Scans a body token range for call sites.
fn extract_sites(tokens: &[Token], body: (usize, usize)) -> Vec<CallSite> {
    let mut sites = Vec::new();
    let (start, end) = body;
    let mut i = start;
    while i < end.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokKind::Ident || NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            i += 1;
            continue;
        }
        // Macro invocation `name!(…)` is not a call we can resolve.
        if tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            i += 1;
            continue;
        }
        // `name(` directly, or `name::<…>(` (turbofish on the callee).
        let after = call_paren_after(tokens, i, end);
        let Some(_paren) = after else {
            i += 1;
            continue;
        };
        let (recv, qualifier) = classify(tokens, i);
        // `Type::<T>::new` style puts a turbofish *in the path*; the
        // classifier above sees `::` and reports Path with the segment
        // before it, which is what we want.
        sites.push(CallSite {
            callee: bare_name(&t.text).to_owned(),
            recv,
            qualifier,
            line: t.line,
            tok: i,
        });
        i += 1;
    }
    sites
}

/// If `tokens[i]` heads a call — `ident (` or `ident :: < … > (` —
/// returns the index of the opening paren.
fn call_paren_after(tokens: &[Token], i: usize, end: usize) -> Option<usize> {
    let next = tokens.get(i + 1)?;
    if next.is_punct("(") {
        return Some(i + 1);
    }
    if next.is_punct("::") && tokens.get(i + 2).is_some_and(|t| t.is_punct("<")) {
        // Skip the turbofish with an angle-depth counter.
        let mut depth = 0usize;
        let mut j = i + 2;
        while j < end.min(tokens.len()) {
            if tokens[j].is_punct("<") {
                depth += 1;
            } else if tokens[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    return tokens.get(j + 1).filter(|t| t.is_punct("(")).map(|_| j + 1);
                }
            }
            j += 1;
        }
    }
    None
}

/// Receiver shape from the tokens before the callee name.
fn classify(tokens: &[Token], i: usize) -> (ReceiverKind, Option<String>) {
    let before = |k: usize| i.checked_sub(k).map(|j| &tokens[j]);
    if before(1).is_some_and(|t| t.is_punct(".")) {
        // Method call: look at what owns the dot.
        let Some(recv) = before(2) else {
            return (ReceiverKind::Local, None);
        };
        if recv.is_ident("self") {
            return (ReceiverKind::SelfDot, None);
        }
        // `self.field.f(` — field access one dot further back.
        if recv.kind == TokKind::Ident
            && before(3).is_some_and(|t| t.is_punct("."))
            && before(4).is_some_and(|t| t.is_ident("self"))
        {
            return (
                ReceiverKind::SelfField,
                Some(bare_name(&recv.text).to_owned()),
            );
        }
        return (ReceiverKind::Local, None);
    }
    if before(1).is_some_and(|t| t.is_punct("::")) {
        let qual = before(2)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| bare_name(&t.text).to_owned());
        return (ReceiverKind::Path, qual);
    }
    (ReceiverKind::Free, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Workspace;

    fn graph(src: &str) -> (Workspace, CallGraph) {
        let mut ws = Workspace::default();
        ws.add_file("crates/core/src/demo.rs", src);
        let cg = CallGraph::build(&ws);
        (ws, cg)
    }

    fn fn_id(ws: &Workspace, name: &str) -> usize {
        ws.candidates(name)[0]
    }

    #[test]
    fn self_calls_resolve_within_the_impl_only() {
        let (ws, cg) = graph(
            "
impl A { fn go(&self) { self.step(); } fn step(&self) {} }
impl B { fn step(&self) {} }
",
        );
        let go = fn_id(&ws, "go");
        let callees: Vec<&str> = cg.edges[go]
            .iter()
            .map(|e| ws.fns[e.callee].qname.as_str())
            .collect();
        assert_eq!(callees, vec!["cce_core::demo::A::step"]);
    }

    #[test]
    fn local_receivers_resolve_to_all_candidates() {
        let (ws, cg) = graph(
            "
impl A { fn flush(&self) {} }
impl B { fn flush(&self) {} }
fn driver(lane: A) { lane.flush(); }
",
        );
        let driver = fn_id(&ws, "driver");
        assert_eq!(
            cg.edges[driver].len(),
            2,
            "both flush methods are candidates"
        );
        assert_eq!(cg.sites[driver][0].recv, ReceiverKind::Local);
    }

    #[test]
    fn turbofish_calls_are_sites_not_derailments() {
        let (ws, cg) = graph(
            "
fn parse<T>() -> Option<T> { None }
fn run() { let _: Option<Vec<u8>> = parse::<Vec<u8>>(); helper(); }
fn helper() {}
",
        );
        let run = fn_id(&ws, "run");
        let callees: Vec<&str> = cg.sites[run].iter().map(|s| s.callee.as_str()).collect();
        assert_eq!(callees, vec!["parse", "helper"]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let (ws, cg) = graph(
            "
fn run(x: bool) { if x { } assert!(x); vec![1]; match x { _ => {} } }
",
        );
        let run = fn_id(&ws, "run");
        assert!(cg.sites[run].is_empty(), "{:?}", cg.sites[run]);
    }

    #[test]
    fn shortest_path_is_reported_hop_by_hop() {
        let (ws, cg) = graph(
            "
fn a() { b(); }
fn b() { c(); }
fn c() {}
fn a2() { c(); }
",
        );
        let (a, c) = (fn_id(&ws, "a"), fn_id(&ws, "c"));
        let hops = cg.path_to(a, c, |_, _| true).expect("reachable");
        assert_eq!(hops.len(), 2, "a -> b -> c");
        assert_eq!(hops[0].0, a);
        assert!(cg.path_to(c, a, |_, _| true).is_none(), "direction matters");
        assert_eq!(cg.path_to(a, a, |_, _| true), Some(Vec::new()));
    }

    #[test]
    fn self_field_receivers_are_tagged() {
        let (ws, cg) = graph(
            "
impl Session { fn access(&self) { self.inner.access_for(); } }
impl Cache { fn access_for(&self) {} }
",
        );
        let access = fn_id(&ws, "access");
        assert_eq!(cg.sites[access][0].recv, ReceiverKind::SelfField);
        assert_eq!(cg.sites[access][0].qualifier.as_deref(), Some("inner"));
        assert_eq!(
            cg.edges[access].len(),
            1,
            "still resolved in the full graph"
        );
    }
}
