//! Intraprocedural control-flow graphs over lexer token ranges.
//!
//! Built from a function's body token range (see
//! [`crate::symbols::FnDef::body`]) without parsing expressions: the
//! builder recognizes just the statement-level control constructs the
//! path-sensitive lints need — nested blocks, `if`/`else` chains,
//! `match` arms, the three loops with `break`/`continue` (labels
//! included), early `return`, `?` error edges, and the diverging
//! macros (`panic!`, `unreachable!`, `todo!`, `unimplemented!`).
//! Everything else inside a statement is opaque: a statement is one
//! [`NodeKind::Stmt`] node spanning its tokens.
//!
//! Structural invariants, fuzz-tested in `tests/cfg_golden.rs`:
//!
//! * node 0 is the single [`NodeKind::Entry`], node 1 the single
//!   [`NodeKind::Exit`] sink;
//! * every node except the sink has at least one successor (all exits
//!   reach the sink — unreachable code after `return`/`break` is
//!   parsed but produces no nodes);
//! * every node is reachable from the entry.
//!
//! The graph feeds the worklist solvers in [`crate::dataflow`]
//! (event-typestate, cost-units) and answers [`Cfg::reaches_past`] for
//! the lock-graph lint's branch-join refinement.

use crate::lexer::{TokKind, Token};

/// Index of the entry node in [`Cfg::nodes`].
pub const ENTRY: usize = 0;
/// Index of the exit sink in [`Cfg::nodes`].
pub const EXIT: usize = 1;

/// What a CFG node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The unique function entry (no tokens).
    Entry,
    /// The unique exit sink every return/fall-off/`?` edge reaches.
    Exit,
    /// One straight-line statement (or expression-statement).
    Stmt,
    /// An `if`/`match` condition or scrutinee; successors are the
    /// branch entries (plus the fall-through for an `if` with no
    /// `else`).
    Cond,
    /// A loop header; the back edge from the body returns here.
    Loop,
}

/// One CFG node: a kind, the half-open token span it covers, and its
/// successor edges.
#[derive(Debug)]
pub struct Node {
    /// The node kind.
    pub kind: NodeKind,
    /// Half-open token range `[start, end)` in the file's stream;
    /// empty for entry/exit.
    pub span: (usize, usize),
    /// 1-based source line of the span's first token (0 for
    /// entry/exit).
    pub line: u32,
    /// Successor node indices.
    pub succs: Vec<usize>,
}

/// A function's control-flow graph.
#[derive(Debug)]
pub struct Cfg {
    /// Nodes in creation order; `nodes[ENTRY]`/`nodes[EXIT]` are the
    /// unique source and sink.
    pub nodes: Vec<Node>,
}

/// Macros whose statement never falls through.
const DIVERGING_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

struct LoopCtx {
    label: Option<String>,
    head: usize,
    /// Nodes that `break` out of this loop; they become the loop
    /// construct's fall-through ends.
    breaks: Vec<usize>,
}

struct Builder<'a> {
    tokens: &'a [Token],
    nodes: Vec<Node>,
    loops: Vec<LoopCtx>,
}

impl Cfg {
    /// Builds the CFG for a body token range *including* its braces
    /// (the [`crate::symbols::FnDef::body`] convention). An empty
    /// range yields the trivial `Entry → Exit` graph.
    #[must_use]
    pub fn build(tokens: &[Token], body: (usize, usize)) -> Cfg {
        let mut b = Builder {
            tokens,
            nodes: vec![
                Node {
                    kind: NodeKind::Entry,
                    span: (0, 0),
                    line: 0,
                    succs: Vec::new(),
                },
                Node {
                    kind: NodeKind::Exit,
                    span: (0, 0),
                    line: 0,
                    succs: Vec::new(),
                },
            ],
            loops: Vec::new(),
        };
        let end = body.1.min(tokens.len());
        if body.0 + 1 < end {
            let ends = b.block(body.0 + 1, end - 1, vec![ENTRY]);
            for e in ends {
                b.edge(e, EXIT);
            }
        } else {
            b.edge(ENTRY, EXIT);
        }
        Cfg { nodes: b.nodes }
    }

    /// The non-entry/exit node whose span contains token index `tok`.
    #[must_use]
    pub fn node_at(&self, tok: usize) -> Option<usize> {
        self.nodes.iter().position(|n| {
            n.kind != NodeKind::Entry
                && n.kind != NodeKind::Exit
                && n.span.0 <= tok
                && tok < n.span.1
        })
    }

    /// True when, starting from the node containing `from_tok`, some
    /// path reaches a node whose span starts after `past_tok` —
    /// i.e. control can fall through past that point rather than
    /// diverging (return/`?`/panic) first. Conservatively `true` when
    /// `from_tok` falls in no node (dead code, or a span the builder
    /// treated as opaque).
    #[must_use]
    pub fn reaches_past(&self, from_tok: usize, past_tok: usize) -> bool {
        let Some(start) = self.node_at(from_tok) else {
            return true;
        };
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![start];
        seen[start] = true;
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if node.kind != NodeKind::Exit && node.span.0 > past_tok {
                return true;
            }
            for &s in &node.succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Predecessor lists, derived from the successor edges.
    #[must_use]
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &s in &n.succs {
                preds[s].push(i);
            }
        }
        preds
    }

    /// A stable text rendering for golden tests: one line per node,
    /// `n<i> <Kind>[@L<line>] -> n<succ>,…`.
    #[must_use]
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, n) in self.nodes.iter().enumerate() {
            let _ = write!(out, "n{i} {:?}", n.kind);
            if n.line > 0 {
                let _ = write!(out, "@L{}", n.line);
            }
            if !n.succs.is_empty() {
                let list: Vec<String> = n.succs.iter().map(|s| format!("n{s}")).collect();
                let _ = write!(out, " -> {}", list.join(","));
            }
            out.push('\n');
        }
        out
    }
}

impl Builder<'_> {
    fn edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn node(&mut self, kind: NodeKind, span: (usize, usize), preds: &[usize]) -> usize {
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            span,
            line: self.tokens.get(span.0).map_or(0, |t| t.line),
            succs: Vec::new(),
        });
        for &p in preds {
            self.edge(p, id);
        }
        id
    }

    /// Skips a balanced delimiter group; `at` must be the opener.
    /// Returns the index just past the matching closer (clamped).
    fn skip_group(&self, at: usize, end: usize) -> usize {
        let open = self.tokens[at].text.clone();
        let close = match open.as_str() {
            "(" => ")",
            "[" => "]",
            _ => "}",
        };
        let mut depth = 0usize;
        let mut i = at;
        while i < end {
            if self.tokens[i].is_punct(&open) {
                depth += 1;
            } else if self.tokens[i].is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Finds the next `{` at group depth 0 in `[from, end)` — the body
    /// opener of an `if`/`match`/loop header. Parens and brackets are
    /// skipped as groups so closure braces inside arguments cannot
    /// fool it.
    fn find_body_brace(&self, from: usize, end: usize) -> Option<usize> {
        let mut i = from;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct("{") {
                return Some(i);
            }
            if t.is_punct("(") || t.is_punct("[") {
                i = self.skip_group(i, end);
                continue;
            }
            if t.is_punct(";") || t.is_punct("}") {
                return None;
            }
            i += 1;
        }
        None
    }

    /// Lowers the statements of `[start, end)` (a block body without
    /// its braces). `preds` are the nodes flowing in; the return value
    /// is the set of nodes that fall through out of the block. An
    /// empty `preds` means the code is unreachable: it is still parsed
    /// (token consumption must not desync) but produces no nodes.
    fn block(&mut self, start: usize, end: usize, mut preds: Vec<usize>) -> Vec<usize> {
        let end = end.min(self.tokens.len());
        let mut i = start;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct(";") || t.is_punct(",") {
                i += 1;
                continue;
            }
            if t.is_punct("{") {
                let close = self.skip_group(i, end);
                preds = self.block(i + 1, close.saturating_sub(1), preds);
                i = close;
                continue;
            }
            // Labeled loop: `'name : loop { … }`.
            if t.kind == TokKind::Lifetime
                && self.tokens.get(i + 1).is_some_and(|n| n.is_punct(":"))
                && self
                    .tokens
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("loop") || n.is_ident("while") || n.is_ident("for"))
            {
                let label = Some(t.text.clone());
                let (ends, next) = self.lower_loop(i + 2, end, label, std::mem::take(&mut preds));
                preds = ends;
                i = next;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "if" => {
                        let (ends, next) = self.lower_if(i, end, std::mem::take(&mut preds));
                        preds = ends;
                        i = next;
                        continue;
                    }
                    "match" => {
                        let (ends, next) = self.lower_match(i, end, std::mem::take(&mut preds));
                        preds = ends;
                        i = next;
                        continue;
                    }
                    "loop" | "while" | "for" => {
                        let (ends, next) =
                            self.lower_loop(i, end, None, std::mem::take(&mut preds));
                        preds = ends;
                        i = next;
                        continue;
                    }
                    _ => {}
                }
            }
            // Plain statement.
            let (ends, next) = self.lower_stmt(i, end, std::mem::take(&mut preds));
            preds = ends;
            i = next.max(i + 1);
        }
        preds
    }

    /// One opaque statement: scan to the `;` at depth 0 (groups are
    /// skipped whole), recognizing `return`, `break`, `continue`,
    /// diverging macros, and `?` error edges along the way.
    fn lower_stmt(&mut self, start: usize, end: usize, preds: Vec<usize>) -> (Vec<usize>, usize) {
        let mut i = start;
        let mut terminator: Option<(&'static str, Option<String>)> = None;
        let mut has_try = false;
        while i < end {
            let t = &self.tokens[i];
            if t.is_punct(";") {
                i += 1;
                break;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                i = self.skip_group(i, end);
                continue;
            }
            if t.is_punct("}") || t.is_punct(",") {
                // End of the surrounding block / match arm.
                break;
            }
            if t.is_punct("?") {
                has_try = true;
            } else if t.kind == TokKind::Ident && terminator.is_none() {
                match t.text.as_str() {
                    "return" => terminator = Some(("return", None)),
                    "break" | "continue" => {
                        let label = self
                            .tokens
                            .get(i + 1)
                            .filter(|n| n.kind == TokKind::Lifetime)
                            .map(|n| n.text.clone());
                        let kind = if t.text == "break" {
                            "break"
                        } else {
                            "continue"
                        };
                        terminator = Some((kind, label));
                    }
                    name if DIVERGING_MACROS.contains(&name)
                        && self.tokens.get(i + 1).is_some_and(|n| n.is_punct("!")) =>
                    {
                        terminator = Some(("diverge", None));
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        if preds.is_empty() {
            return (Vec::new(), i); // unreachable: parse, emit nothing
        }
        let node = self.node(NodeKind::Stmt, (start, i.max(start + 1)), &preds);
        if has_try {
            self.edge(node, EXIT);
        }
        match terminator {
            Some(("return" | "diverge", _)) => {
                self.edge(node, EXIT);
                (Vec::new(), i)
            }
            Some(("break", label)) => {
                if let Some(target) = self.loop_target(label.as_deref()) {
                    let breaks = &mut self.loops[target].breaks;
                    breaks.push(node);
                } else {
                    self.edge(node, EXIT); // stray break: treat as exit
                }
                (Vec::new(), i)
            }
            Some(("continue", label)) => {
                if let Some(target) = self.loop_target(label.as_deref()) {
                    let head = self.loops[target].head;
                    self.edge(node, head);
                } else {
                    self.edge(node, EXIT);
                }
                (Vec::new(), i)
            }
            _ => (vec![node], i),
        }
    }

    fn loop_target(&self, label: Option<&str>) -> Option<usize> {
        match label {
            Some(l) => self
                .loops
                .iter()
                .rposition(|c| c.label.as_deref() == Some(l)),
            None => self.loops.len().checked_sub(1),
        }
    }

    /// `if cond { … } [else if … ]* [else { … }]`; `start` is at `if`.
    fn lower_if(&mut self, start: usize, end: usize, preds: Vec<usize>) -> (Vec<usize>, usize) {
        let Some(brace) = self.find_body_brace(start + 1, end) else {
            // Malformed (token soup): degrade to an opaque statement.
            return self.lower_stmt(start, end, preds);
        };
        let close = self.skip_group(brace, end);
        if preds.is_empty() {
            // Unreachable: still parse the arms for token consumption.
            self.block(brace + 1, close.saturating_sub(1), Vec::new());
            let (_, next, _) = self.lower_else(close, end, Vec::new());
            return (Vec::new(), next.max(close));
        }
        let cond = self.node(NodeKind::Cond, (start, brace), &preds);
        if self.span_has_try(start, brace) {
            self.edge(cond, EXIT);
        }
        let mut ends = self.block(brace + 1, close.saturating_sub(1), vec![cond]);
        let (else_ends, next, had_else) = self.lower_else(close, end, vec![cond]);
        if had_else {
            ends.extend(else_ends);
        } else {
            ends.push(cond); // condition false falls through
        }
        (ends, next.max(close))
    }

    /// Handles the `else`/`else if` chain after an if-body close.
    /// Returns `(ends, next index, had_else)` — with `preds` empty the
    /// arms are parsed but emit nothing.
    fn lower_else(
        &mut self,
        close: usize,
        end: usize,
        preds: Vec<usize>,
    ) -> (Vec<usize>, usize, bool) {
        if close >= end || !self.tokens.get(close).is_some_and(|t| t.is_ident("else")) {
            return (Vec::new(), close, false);
        }
        if self.tokens.get(close + 1).is_some_and(|t| t.is_ident("if")) {
            let (ends, next) = self.lower_if(close + 1, end, preds);
            return (ends, next, true);
        }
        if self.tokens.get(close + 1).is_some_and(|t| t.is_punct("{")) {
            let ec = self.skip_group(close + 1, end);
            let ends = self.block(close + 2, ec.saturating_sub(1), preds);
            return (ends, ec, true);
        }
        (Vec::new(), close + 1, false)
    }

    /// `match scrut { pat => body, … }`; `start` is at `match`.
    fn lower_match(&mut self, start: usize, end: usize, preds: Vec<usize>) -> (Vec<usize>, usize) {
        let Some(brace) = self.find_body_brace(start + 1, end) else {
            return self.lower_stmt(start, end, preds);
        };
        let close = self.skip_group(brace, end);
        let unreachable = preds.is_empty();
        let cond = if unreachable {
            ENTRY // placeholder, never used for edges below
        } else {
            self.node(NodeKind::Cond, (start, brace), &preds)
        };
        if !unreachable && self.span_has_try(start, brace) {
            self.edge(cond, EXIT);
        }
        let mut ends = Vec::new();
        let inner_end = close.saturating_sub(1);
        let mut i = brace + 1;
        let mut any_arm = false;
        while i < inner_end {
            // Pattern: scan to `=>` at depth 0.
            let mut j = i;
            let mut found = false;
            while j < inner_end {
                let t = &self.tokens[j];
                if t.is_punct("=>") {
                    found = true;
                    break;
                }
                if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                    j = self.skip_group(j, inner_end);
                    continue;
                }
                j += 1;
            }
            if !found {
                break;
            }
            any_arm = true;
            let arm_preds = if unreachable { Vec::new() } else { vec![cond] };
            let body_start = j + 1;
            if self.tokens.get(body_start).is_some_and(|t| t.is_punct("{")) {
                let bc = self.skip_group(body_start, inner_end.max(body_start));
                let arm_ends = self.block(body_start + 1, bc.saturating_sub(1), arm_preds);
                ends.extend(arm_ends);
                i = bc;
            } else {
                // Expression arm: one statement ending at the top-level
                // `,` (or the match close).
                let (arm_ends, next) = self.lower_stmt(body_start, inner_end, arm_preds);
                ends.extend(arm_ends);
                i = next.max(body_start + 1);
            }
            while i < inner_end && self.tokens[i].is_punct(",") {
                i += 1;
            }
        }
        if unreachable {
            return (Vec::new(), close);
        }
        if !any_arm {
            ends.push(cond); // `match x {}` or opaque body
        }
        (ends, close)
    }

    /// `loop`/`while`/`for` with an optional label; `start` is at the
    /// loop keyword.
    fn lower_loop(
        &mut self,
        start: usize,
        end: usize,
        label: Option<String>,
        preds: Vec<usize>,
    ) -> (Vec<usize>, usize) {
        let Some(brace) = self.find_body_brace(start + 1, end) else {
            return self.lower_stmt(start, end, preds);
        };
        let close = self.skip_group(brace, end);
        if preds.is_empty() {
            self.loops.push(LoopCtx {
                label,
                head: ENTRY,
                breaks: Vec::new(),
            });
            self.block(brace + 1, close.saturating_sub(1), Vec::new());
            self.loops.pop();
            return (Vec::new(), close);
        }
        let conditional =
            self.tokens[start].is_ident("while") || self.tokens[start].is_ident("for");
        let head = self.node(NodeKind::Loop, (start, brace.max(start + 1)), &preds);
        if self.span_has_try(start, brace) {
            self.edge(head, EXIT);
        }
        self.loops.push(LoopCtx {
            label,
            head,
            breaks: Vec::new(),
        });
        let body_ends = self.block(brace + 1, close.saturating_sub(1), vec![head]);
        for e in body_ends {
            self.edge(e, head); // back edge
        }
        let ctx = self.loops.pop().unwrap_or(LoopCtx {
            label: None,
            head,
            breaks: Vec::new(),
        });
        let mut ends = ctx.breaks;
        if conditional {
            ends.push(head); // condition false / iterator exhausted
        }
        (ends, close)
    }

    /// True when `[start, end)` contains a `?` at group depth 0.
    fn span_has_try(&self, start: usize, end: usize) -> bool {
        let mut i = start;
        while i < end.min(self.tokens.len()) {
            let t = &self.tokens[i];
            if t.is_punct("?") {
                return true;
            }
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                i = self.skip_group(i, end);
                continue;
            }
            i += 1;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn build(src: &str) -> Cfg {
        let lexed = lex(src);
        Cfg::build(&lexed.tokens, (0, lexed.tokens.len()))
    }

    fn reachable(cfg: &Cfg) -> Vec<bool> {
        let mut seen = vec![false; cfg.nodes.len()];
        let mut stack = vec![ENTRY];
        seen[ENTRY] = true;
        while let Some(n) = stack.pop() {
            for &s in &cfg.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    #[test]
    fn empty_body_is_entry_to_exit() {
        let cfg = build("{}");
        assert_eq!(cfg.nodes.len(), 2);
        assert_eq!(cfg.nodes[ENTRY].succs, vec![EXIT]);
    }

    #[test]
    fn straight_line_chains() {
        let cfg = build("{ a(); b(); c(); }");
        assert_eq!(cfg.nodes.len(), 5);
        assert!(reachable(&cfg).iter().all(|&r| r));
        assert_eq!(cfg.nodes[4].succs, vec![EXIT]);
    }

    #[test]
    fn if_without_else_falls_through_the_condition() {
        let cfg = build("{ if x { a(); } b(); }");
        // entry, exit, cond, a-stmt, b-stmt
        assert_eq!(cfg.nodes.len(), 5);
        let cond = 2;
        assert_eq!(cfg.nodes[cond].kind, NodeKind::Cond);
        assert!(cfg.nodes[cond].succs.contains(&3), "then branch");
        assert!(cfg.nodes[cond].succs.contains(&4), "fall-through");
    }

    #[test]
    fn return_and_break_produce_no_fall_through() {
        let cfg = build("{ loop { if x { break; } if y { return; } a(); } b(); }");
        assert!(reachable(&cfg).iter().all(|&r| r), "{}", cfg.dump());
        for (i, n) in cfg.nodes.iter().enumerate() {
            assert!(
                i == EXIT || !n.succs.is_empty(),
                "node {i} dangles: {}",
                cfg.dump()
            );
        }
    }

    #[test]
    fn unreachable_code_after_return_emits_no_nodes() {
        let with_dead = build("{ return; a(); b(); }");
        let without = build("{ return; }");
        assert_eq!(with_dead.nodes.len(), without.nodes.len());
    }

    #[test]
    fn try_operator_adds_an_exit_edge() {
        let cfg = build("{ let x = f()?; g(x); }");
        let stmt = cfg.node_at(2).expect("statement node");
        assert!(cfg.nodes[stmt].succs.contains(&EXIT), "{}", cfg.dump());
        assert_eq!(cfg.nodes[stmt].succs.len(), 2, "also falls through");
    }

    #[test]
    fn reaches_past_distinguishes_diverging_branches() {
        let lexed = lex("{ if hit { drop(g); return; } audit(); }");
        let cfg = Cfg::build(&lexed.tokens, (0, lexed.tokens.len()));
        let drop_tok = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("drop"))
            .expect("drop");
        let close = lexed
            .tokens
            .iter()
            .rposition(|t| t.is_punct("}"))
            .expect("}")
            - 1;
        assert!(
            !cfg.reaches_past(drop_tok, close),
            "diverging branch cannot reach the join: {}",
            cfg.dump()
        );

        let lexed = lex("{ if hit { drop(g); } audit(); }");
        let cfg = Cfg::build(&lexed.tokens, (0, lexed.tokens.len()));
        let drop_tok = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("drop"))
            .expect("drop");
        let brace_close = lexed
            .tokens
            .iter()
            .position(|t| t.is_punct("}"))
            .expect("}");
        assert!(
            cfg.reaches_past(drop_tok, brace_close),
            "fall-through branch reaches the join: {}",
            cfg.dump()
        );
    }

    #[test]
    fn labeled_break_targets_the_outer_loop() {
        let cfg = build("{ 'outer: loop { loop { break 'outer; } } done(); }");
        assert!(reachable(&cfg).iter().all(|&r| r), "{}", cfg.dump());
        // The done() statement is reachable only through the labeled
        // break — an unlabeled break would leave it dead.
        let done = cfg
            .nodes
            .iter()
            .position(|n| n.kind == NodeKind::Stmt && n.succs == vec![EXIT])
            .expect("done stmt");
        assert!(reachable(&cfg)[done]);
    }
}
