//! A generic worklist dataflow framework over [`crate::cfg::Cfg`].
//!
//! Facts form a join-semilattice ([`Lattice`]); a client supplies a
//! transfer function per CFG node and the solver iterates to a
//! fixpoint. Both directions are provided: the event-typestate and
//! cost-units lints run [`forward`]; [`backward`] exists for
//! liveness-shaped queries and is exercised by the tests here.
//!
//! Per-function solutions become interprocedural through function
//! summaries: a lint runs the solver on each function, condenses the
//! exit fact into a summary, and re-runs until the summary table
//! stabilizes over the call graph (see [`crate::typestate`]).

use crate::cfg::{Cfg, ENTRY, EXIT};

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone {
    /// The least element (the fact for unreached code).
    fn bottom() -> Self;

    /// Joins `other` into `self`; returns `true` when `self` changed
    /// (the solver's termination signal).
    fn join(&mut self, other: &Self) -> bool;
}

/// The per-node fixpoint: the fact *entering* and *leaving* each node.
pub struct Solution<F> {
    /// Fact at node entry (join over predecessor outputs).
    pub input: Vec<F>,
    /// Fact at node exit (transfer applied to the input).
    pub output: Vec<F>,
}

/// Solves a forward problem: facts flow entry → exit along successor
/// edges. `transfer(node, fact)` mutates the incoming fact into the
/// outgoing one. `seed` is the fact entering the CFG's entry node.
pub fn forward<F: Lattice>(
    cfg: &Cfg,
    seed: F,
    mut transfer: impl FnMut(usize, &mut F),
) -> Solution<F> {
    let n = cfg.nodes.len();
    let mut input: Vec<F> = vec![F::bottom(); n];
    let mut output: Vec<F> = vec![F::bottom(); n];
    input[ENTRY] = seed;
    let mut worklist: Vec<usize> = vec![ENTRY];
    let mut queued = vec![false; n];
    queued[ENTRY] = true;
    while let Some(node) = worklist.pop() {
        queued[node] = false;
        let mut out = input[node].clone();
        transfer(node, &mut out);
        if !output[node].join(&out) && node != ENTRY {
            // Output unchanged: successors already saw this fact.
            // (The entry must always propagate once.)
            continue;
        }
        for &succ in &cfg.nodes[node].succs {
            if input[succ].join(&output[node]) && !queued[succ] {
                queued[succ] = true;
                worklist.push(succ);
            }
        }
    }
    Solution { input, output }
}

/// Solves a backward problem: facts flow exit → entry along
/// predecessor edges. `seed` is the fact entering the exit sink.
pub fn backward<F: Lattice>(
    cfg: &Cfg,
    seed: F,
    mut transfer: impl FnMut(usize, &mut F),
) -> Solution<F> {
    let n = cfg.nodes.len();
    let preds = cfg.preds();
    let mut input: Vec<F> = vec![F::bottom(); n];
    let mut output: Vec<F> = vec![F::bottom(); n];
    input[EXIT] = seed;
    let mut worklist: Vec<usize> = vec![EXIT];
    let mut queued = vec![false; n];
    queued[EXIT] = true;
    while let Some(node) = worklist.pop() {
        queued[node] = false;
        let mut out = input[node].clone();
        transfer(node, &mut out);
        if !output[node].join(&out) && node != EXIT {
            continue;
        }
        for &pred in &preds[node] {
            if input[pred].join(&output[node]) && !queued[pred] {
                queued[pred] = true;
                worklist.push(pred);
            }
        }
    }
    Solution { input, output }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::NodeKind;
    use crate::lexer::lex;
    use std::collections::BTreeSet;

    /// Powerset lattice over node ids: which nodes were visited.
    #[derive(Clone, Default, PartialEq, Debug)]
    struct Visited(BTreeSet<usize>);

    impl Lattice for Visited {
        fn bottom() -> Self {
            Visited(BTreeSet::new())
        }
        fn join(&mut self, other: &Self) -> bool {
            let before = self.0.len();
            self.0.extend(other.0.iter().copied());
            self.0.len() != before
        }
    }

    fn cfg_of(src: &str) -> Cfg {
        let lexed = lex(src);
        Cfg::build(&lexed.tokens, (0, lexed.tokens.len()))
    }

    #[test]
    fn forward_reaches_a_fixpoint_through_loops() {
        let cfg = cfg_of("{ a(); loop { b(); if x { break; } } c(); }");
        let sol = forward(&cfg, Visited(BTreeSet::from([ENTRY])), |node, fact| {
            fact.0.insert(node);
        });
        // Everything that flowed into the exit has seen every node on
        // some path — in particular both the loop body and c().
        let at_exit = &sol.input[EXIT];
        for (i, n) in cfg.nodes.iter().enumerate() {
            if n.kind != NodeKind::Exit {
                assert!(at_exit.0.contains(&i), "node {i} missing: {:?}", at_exit);
            }
        }
    }

    #[test]
    fn forward_joins_branches() {
        let cfg = cfg_of("{ if x { a(); } else { b(); } c(); }");
        let sol = forward(&cfg, Visited(BTreeSet::new()), |node, fact| {
            fact.0.insert(node);
        });
        // c()'s input contains both arm nodes (the join), each arm's
        // input only the condition.
        let join_node = cfg.nodes.len() - 1; // c() is created last
        let arms: Vec<usize> = (0..cfg.nodes.len())
            .filter(|&i| cfg.nodes[i].kind == NodeKind::Stmt && i != join_node)
            .collect();
        assert_eq!(arms.len(), 2);
        for &arm in &arms {
            assert!(sol.input[join_node].0.contains(&arm));
            assert!(!sol.input[arm].0.contains(&arms[0]) || arm == arms[0]);
        }
    }

    #[test]
    fn backward_flows_against_the_edges() {
        let cfg = cfg_of("{ a(); b(); }");
        let sol = backward(&cfg, Visited(BTreeSet::from([EXIT])), |node, fact| {
            fact.0.insert(node);
        });
        // The entry sees the whole chain in a backward pass.
        assert!(sol.input[ENTRY].0.contains(&EXIT));
        let stmt_nodes: Vec<usize> = (0..cfg.nodes.len())
            .filter(|&i| cfg.nodes[i].kind == NodeKind::Stmt)
            .collect();
        for &s in &stmt_nodes {
            assert!(sol.input[ENTRY].0.contains(&s));
        }
    }

    #[test]
    fn bottom_stays_bottom_for_unreachable_nodes() {
        // Unreachable code produces no nodes at all, so every node's
        // fixpoint input is above bottom after solving.
        let cfg = cfg_of("{ if x { return; } y(); }");
        let sol = forward(&cfg, Visited(BTreeSet::from([99])), |_, _| {});
        for (i, n) in cfg.nodes.iter().enumerate() {
            if n.kind != NodeKind::Entry {
                assert!(
                    !sol.input[i].0.is_empty(),
                    "node {i} never received the seed"
                );
            }
        }
    }
}
