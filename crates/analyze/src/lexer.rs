//! A comment/string/raw-string-aware Rust lexer.
//!
//! The offline build environment cannot fetch `syn`, so the analyzer
//! carries its own token scanner. It does **not** parse Rust — it
//! produces a flat token stream with line numbers, which is exactly
//! enough for the repo-specific pattern lints in [`crate::lints`]. The
//! properties the lints rely on:
//!
//! * comment text (line, block, doc, nested block) never becomes tokens,
//!   so code quoted in doc examples cannot trigger findings;
//! * string/char/byte/raw-string literals become single tokens carrying
//!   their body, so `"2.77"` inside a report template is visible to the
//!   cost-constant lint but `.unwrap()` inside a message string is not a
//!   method call;
//! * `// cce-analyze: allow(<lint>): <reason>` annotations are collected
//!   during the scan with their line numbers.

/// Token classes the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`for`, `in`, `HashMap`, …).
    Ident,
    /// Numeric literal, verbatim (`2.77`, `0x1F`, `1_000u64`).
    Number,
    /// String literal — `text` holds the raw body without quotes.
    Str,
    /// Char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Punctuation; multi-char operators `::`, `=>`, `->`, `..`, `..=`
    /// are single tokens, everything else is one char.
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token class.
    pub kind: TokKind,
    /// Verbatim text (string bodies exclude the delimiters).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// True if this token is the identifier/keyword `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A `// cce-analyze: allow(<lint>): <reason>` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// 1-based line the comment sits on (suppresses findings on this
    /// line and the next).
    pub line: u32,
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// The justification after the closing `):`. Annotations with an
    /// empty reason are inert — the lint still fires.
    pub reason: String,
}

/// Lexer output: the token stream plus any allow-annotations seen.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Allow-annotations in source order.
    pub allows: Vec<Allow>,
}

struct Scanner<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
}

impl Scanner<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek(0);
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        b
    }

    fn eat_while(&mut self, pred: impl Fn(u8) -> bool) -> usize {
        let start = self.pos;
        while self.pos < self.src.len() && pred(self.peek(0)) {
            self.bump();
        }
        self.pos - start
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src`, returning the token stream and allow-annotations.
#[must_use]
pub fn lex(src: &str) -> Lexed {
    let mut s = Scanner {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut out = Lexed::default();
    while s.pos < s.src.len() {
        let line = s.line;
        let b = s.peek(0);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                s.bump();
            }
            b'/' if s.peek(1) == b'/' => {
                let start = s.pos;
                s.eat_while(|c| c != b'\n');
                let text = std::str::from_utf8(&s.src[start..s.pos]).unwrap_or("");
                if let Some(allow) = parse_allow(text, line) {
                    out.allows.push(allow);
                }
            }
            b'/' if s.peek(1) == b'*' => {
                // Nested block comment.
                s.bump();
                s.bump();
                let mut depth = 1u32;
                while depth > 0 && s.pos < s.src.len() {
                    if s.peek(0) == b'/' && s.peek(1) == b'*' {
                        s.bump();
                        s.bump();
                        depth += 1;
                    } else if s.peek(0) == b'*' && s.peek(1) == b'/' {
                        s.bump();
                        s.bump();
                        depth -= 1;
                    } else {
                        s.bump();
                    }
                }
            }
            b'"' => {
                let text = scan_string(&mut s);
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text,
                    line,
                });
            }
            b'\'' => scan_quote(&mut s, &mut out, line),
            b'r' | b'b' if starts_literal_prefix(&s) => {
                scan_prefixed_literal(&mut s, &mut out, line)
            }
            // Raw identifier `r#ident`: one Ident token carrying the
            // `r#` prefix verbatim, so `r#fn` can never be mistaken for
            // the `fn` keyword nor its `#` for an attribute opener.
            b'r' if s.peek(1) == b'#' && is_ident_start(s.peek(2)) => {
                let start = s.pos;
                s.bump();
                s.bump();
                s.eat_while(is_ident_cont);
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                    line,
                });
            }
            _ if is_ident_start(b) => {
                let start = s.pos;
                s.eat_while(is_ident_cont);
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                    line,
                });
            }
            _ if b.is_ascii_digit() => {
                let text = scan_number(&mut s);
                out.tokens.push(Token {
                    kind: TokKind::Number,
                    text,
                    line,
                });
            }
            _ => {
                let text = scan_punct(&mut s);
                out.tokens.push(Token {
                    kind: TokKind::Punct,
                    text,
                    line,
                });
            }
        }
    }
    out
}

/// True at `r`/`b` when what follows makes this a literal prefix rather
/// than a plain identifier: `r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`.
/// (`r#ident` is a raw identifier, not a raw string.)
fn starts_literal_prefix(s: &Scanner<'_>) -> bool {
    let (first, mut at) = (s.peek(0), 1);
    if first == b'b' && s.peek(1) == b'r' {
        at = 2;
    }
    match s.peek(at) {
        b'"' => true,
        b'\'' => first == b'b' && at == 1,
        b'#' => {
            // Raw string needs hashes then a quote; `r#ident` does not.
            let mut k = at;
            while s.peek(k) == b'#' {
                k += 1;
            }
            s.peek(k) == b'"' && (first == b'r' || at == 2)
        }
        _ => false,
    }
}

fn scan_prefixed_literal(s: &mut Scanner<'_>, out: &mut Lexed, line: u32) {
    let first = s.bump(); // r or b
    let raw = first == b'r' || s.peek(0) == b'r';
    if first == b'b' && s.peek(0) == b'r' {
        s.bump();
    }
    if raw {
        let mut hashes = 0usize;
        while s.peek(0) == b'#' {
            s.bump();
            hashes += 1;
        }
        s.bump(); // opening quote
        let start = s.pos;
        let end;
        loop {
            if s.pos >= s.src.len() {
                end = s.pos;
                break;
            }
            if s.peek(0) == b'"' {
                let mut k = 1;
                while k <= hashes && s.peek(k) == b'#' {
                    k += 1;
                }
                if k == hashes + 1 {
                    end = s.pos;
                    s.bump(); // quote
                    for _ in 0..hashes {
                        s.bump();
                    }
                    break;
                }
            }
            s.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Str,
            text: String::from_utf8_lossy(&s.src[start..end]).into_owned(),
            line,
        });
    } else if s.peek(0) == b'\'' {
        scan_quote(s, out, line);
    } else {
        let text = scan_string(s);
        out.tokens.push(Token {
            kind: TokKind::Str,
            text,
            line,
        });
    }
}

/// Scans a `"…"` string (cursor on the opening quote); returns the body.
fn scan_string(s: &mut Scanner<'_>) -> String {
    s.bump(); // opening quote
    let start = s.pos;
    while s.pos < s.src.len() {
        match s.peek(0) {
            b'\\' => {
                s.bump();
                s.bump();
            }
            b'"' => break,
            _ => {
                s.bump();
            }
        }
    }
    let body = String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
    s.bump(); // closing quote
    body
}

/// Scans at a `'`: either a lifetime/label or a char literal.
fn scan_quote(s: &mut Scanner<'_>, out: &mut Lexed, line: u32) {
    s.bump(); // the quote
    if s.peek(0) == b'\\' {
        // Escaped char literal: '\n', '\'', '\x41', '\u{1F600}', …
        s.bump();
        match s.peek(0) {
            // Unicode escape: consume `u{…}` wholesale.
            b'u' if s.peek(1) == b'{' => {
                s.bump(); // u
                while s.pos < s.src.len() && s.peek(0) != b'}' {
                    s.bump();
                }
                s.bump(); // closing brace
            }
            // Hex escape (`'\x7f'`, `b'\xFF'`): the digits after `x`
            // used to leak out as a number token plus a stray quote,
            // desyncing every token range after the literal.
            b'x' => {
                s.bump(); // x
                s.eat_while(|c| c.is_ascii_hexdigit());
            }
            // Single-char escapes: \n \t \r \\ \' \" \0.
            _ => {
                s.bump();
            }
        }
        if s.peek(0) == b'\'' {
            s.bump();
        }
        out.tokens.push(Token {
            kind: TokKind::Char,
            text: String::new(),
            line,
        });
        return;
    }
    if is_ident_start(s.peek(0)) {
        // Could be 'a' (char) or 'a / 'static (lifetime): a lifetime's
        // identifier run is not followed by a closing quote.
        let start = s.pos;
        s.eat_while(is_ident_cont);
        if s.peek(0) == b'\'' {
            s.bump();
            out.tokens.push(Token {
                kind: TokKind::Char,
                text: String::from_utf8_lossy(&s.src[start..s.pos - 1]).into_owned(),
                line,
            });
        } else {
            out.tokens.push(Token {
                kind: TokKind::Lifetime,
                text: String::from_utf8_lossy(&s.src[start..s.pos]).into_owned(),
                line,
            });
        }
        return;
    }
    // Punctuation char literal: '(', ' ', …
    s.bump();
    if s.peek(0) == b'\'' {
        s.bump();
    }
    out.tokens.push(Token {
        kind: TokKind::Char,
        text: String::new(),
        line,
    });
}

fn scan_number(s: &mut Scanner<'_>) -> String {
    let start = s.pos;
    if s.peek(0) == b'0' && matches!(s.peek(1), b'x' | b'o' | b'b') {
        s.bump();
        s.bump();
        s.eat_while(|c| c.is_ascii_alphanumeric() || c == b'_');
        return String::from_utf8_lossy(&s.src[start..s.pos]).into_owned();
    }
    s.eat_while(|c| c.is_ascii_digit() || c == b'_');
    // Fraction: only when the dot is followed by a digit (so `0..n`
    // ranges and `tuple.0` stay separate tokens).
    if s.peek(0) == b'.' && s.peek(1).is_ascii_digit() {
        s.bump();
        s.eat_while(|c| c.is_ascii_digit() || c == b'_');
    }
    // Exponent.
    if matches!(s.peek(0), b'e' | b'E')
        && (s.peek(1).is_ascii_digit()
            || (matches!(s.peek(1), b'+' | b'-') && s.peek(2).is_ascii_digit()))
    {
        s.bump();
        if matches!(s.peek(0), b'+' | b'-') {
            s.bump();
        }
        s.eat_while(|c| c.is_ascii_digit() || c == b'_');
    }
    // Type suffix (u64, f32, usize, …).
    s.eat_while(|c| c.is_ascii_alphanumeric());
    String::from_utf8_lossy(&s.src[start..s.pos]).into_owned()
}

fn scan_punct(s: &mut Scanner<'_>) -> String {
    let b = s.bump();
    let two = (b, s.peek(0));
    match two {
        (b':', b':') | (b'=', b'>') | (b'-', b'>') => {
            s.bump();
            format!("{}{}", b as char, two.1 as char)
        }
        (b'.', b'.') => {
            s.bump();
            if s.peek(0) == b'=' {
                s.bump();
                "..=".to_owned()
            } else {
                "..".to_owned()
            }
        }
        _ => (b as char).to_string(),
    }
}

/// Parses an allow-annotation out of one line comment's text.
fn parse_allow(comment: &str, line: u32) -> Option<Allow> {
    let rest = comment.split("cce-analyze:").nth(1)?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let after = rest[close + 1..].trim_start();
    let reason = after.strip_prefix(':').map_or("", str::trim).to_string();
    Some(Allow { line, lint, reason })
}

/// Numeric value of a number token, if it parses (underscores and type
/// suffixes stripped; hex/octal/binary handled).
#[must_use]
pub fn number_value(text: &str) -> Option<f64> {
    let t: String = text.chars().filter(|&c| c != '_').collect();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
        return u64::from_str_radix(&digits, 16).ok().map(|v| v as f64);
    }
    if let Some(oct) = t.strip_prefix("0o") {
        let digits: String = oct.chars().take_while(|c| ('0'..'8').contains(c)).collect();
        return u64::from_str_radix(&digits, 8).ok().map(|v| v as f64);
    }
    if let Some(bin) = t.strip_prefix("0b") {
        let digits: String = bin.chars().take_while(|&c| c == '0' || c == '1').collect();
        return u64::from_str_radix(&digits, 2).ok().map(|v| v as f64);
    }
    // Strip a type suffix (`u32`, `f64`, …): the numeric body is the
    // leading run of digits, dots and a well-formed exponent; the first
    // other letter starts the suffix.
    let bytes = t.as_bytes();
    let mut end = 0usize;
    while end < bytes.len() {
        let c = bytes[end];
        if c.is_ascii_digit() || c == b'.' {
            end += 1;
        } else if (c == b'e' || c == b'E') && exponent_follows(bytes, end) {
            end += 1;
            if matches!(bytes.get(end), Some(b'+' | b'-')) {
                end += 1;
            }
        } else {
            break;
        }
    }
    t[..end].parse::<f64>().ok()
}

/// True when the byte after an `e`/`E` at `at` makes it an exponent
/// (a digit, or a sign then a digit) rather than a type suffix.
fn exponent_follows(bytes: &[u8], at: usize) -> bool {
    match bytes.get(at + 1) {
        Some(d) if d.is_ascii_digit() => true,
        Some(b'+' | b'-') => bytes.get(at + 2).is_some_and(u8::is_ascii_digit),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_produce_no_tokens() {
        let src = "// x.unwrap()\n/* panic! /* nested */ still comment */ let a = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "a"]);
    }

    #[test]
    fn raw_strings_swallow_quotes_and_slashes() {
        let lexed = lex(r####"let s = r#"quote " and // not a comment"#; x.iter()"####);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "quote \" and // not a comment");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("iter")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'a'; let q = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "a");
    }

    #[test]
    fn numbers_ranges_and_suffixes() {
        let lexed = lex("for i in 0..6u32 { let x = 2.77; let y = 1_000f64; t.0 += 1e-3; }");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "6u32", "2.77", "1_000f64", "0", "1e-3"]);
        assert_eq!(number_value("6u32"), Some(6.0));
        assert_eq!(number_value("2.77"), Some(2.77));
        assert_eq!(number_value("1_000f64"), Some(1000.0));
        assert_eq!(number_value("0x1F"), Some(31.0));
    }

    #[test]
    fn allow_annotations_are_collected() {
        let src = "\n// cce-analyze: allow(nondet-iter): order-independent sum\nlet x = 1;\n// cce-analyze: allow(cost-constant)\n";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 2);
        assert_eq!(lexed.allows[0].line, 2);
        assert_eq!(lexed.allows[0].lint, "nondet-iter");
        assert_eq!(lexed.allows[0].reason, "order-independent sum");
        assert_eq!(lexed.allows[1].reason, "", "missing reason is inert");
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // `r#fn` used to lex as `r`, `#`, `fn` — a phantom attribute
        // opener plus a phantom keyword, which poisons item parsing.
        let lexed = lex("fn r#fn(r#type: u32) -> u32 { r#match(r#type) }");
        let ids = idents("fn r#fn(r#type: u32) -> u32 { r#match(r#type) }");
        assert_eq!(
            ids,
            vec!["fn", "r#fn", "r#type", "u32", "u32", "r#match", "r#type"]
        );
        assert!(
            !lexed.tokens.iter().any(|t| t.is_punct("#")),
            "no stray `#` from raw identifiers: {:?}",
            lexed.tokens
        );
        // Raw strings keep working next to raw identifiers.
        let lexed = lex(r####"let r#x = r#"body"#;"####);
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert_eq!(strs[0].text, "body");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("r#x")));
    }

    #[test]
    fn nested_turbofish_tokens_stay_separate() {
        // Nested generic closers must remain individual `>` puncts (no
        // `>>` shift fusing) and `::` must fuse, or the symbol layer's
        // angle-depth tracking would desynchronize.
        let lexed = lex("x.collect::<HashMap<u64, Vec<u64>>>();");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(
            puncts,
            vec![".", "::", "<", "<", ",", "<", ">", ">", ">", "(", ")", ";"]
        );
    }

    #[test]
    fn raw_ident_does_not_shadow_byte_literals() {
        assert_eq!(idents("let b = b'x';"), vec!["let", "b"]);
        assert_eq!(idents("let v = br#\"s\"#;"), vec!["let", "v"]);
    }

    #[test]
    fn hex_escapes_do_not_desync_token_ranges() {
        // `'\x41'` used to leak `41'` as a number plus a stray quote,
        // corrupting every token after the literal.
        let lexed = lex("let del = '\\x7f'; let nul = b'\\x00'; let rest = value;");
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 2, "{:?}", lexed.tokens);
        assert!(
            lexed.tokens.iter().any(|t| t.is_ident("value")),
            "code after the literals still lexes: {:?}",
            lexed.tokens
        );
        assert!(
            !lexed.tokens.iter().any(|t| t.kind == TokKind::Number),
            "no escape digits leak as numbers: {:?}",
            lexed.tokens
        );
    }

    #[test]
    fn full_escape_set_in_char_and_byte_literals() {
        let src = r"let a = '\n'; let b = '\\'; let c = '\''; let d = '\0';
let e = '\u{1F600}'; let f = b'\xFF'; let g = '\t'; let tail = done;";
        let lexed = lex(src);
        let chars = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .count();
        assert_eq!(chars, 7, "{:?}", lexed.tokens);
        assert!(lexed.tokens.iter().any(|t| t.is_ident("done")));
        assert!(
            !lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime),
            "no literal is misread as a lifetime: {:?}",
            lexed.tokens
        );
    }

    #[test]
    fn deeply_nested_block_comments_close_correctly() {
        let src = "/* a /* b /* c */ b */ a */ let x = 1; /* /**/ */ let y = 2;";
        assert_eq!(idents(src), vec!["let", "x", "let", "y"]);
    }

    #[test]
    fn multichar_puncts_fuse() {
        let lexed = lex("a::b => c -> d ..= e .. f");
        let puncts: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["::", "=>", "->", "..=", ".."]);
    }
}
