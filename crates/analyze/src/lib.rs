//! # cce-analyze — repo-specific static analysis
//!
//! Mechanizes the invariants the workspace otherwise keeps by
//! convention (see DESIGN.md §9). Two layers:
//!
//! **Flat token lints** ([`lints`]), scoped per file:
//!
//! * **cost-constant** — the Eq. 2–4 overhead constants are defined
//!   once, in `cce_sim::overhead`; re-typed literals anywhere else are
//!   drift waiting to happen.
//! * **panic-path** — `unwrap`/`expect`/`panic!` in non-test library
//!   code of `cce-core`/`cce-sim`/`cce-dbt`, ratcheted by
//!   `analyze-baseline.json` so the count only goes down.
//!
//! **Interprocedural lints**, built on a workspace symbol table
//! ([`symbols`]), a conservative call graph ([`callgraph`]), and — for
//! the path-sensitive passes — per-function control-flow graphs
//! ([`cfg`]) solved by a generic worklist dataflow engine
//! ([`dataflow`]):
//!
//! * **nondet-taint** ([`taint`]) — nondeterminism sources (hash-order
//!   iteration, wall-clock reads, `available_parallelism`, thread ids,
//!   unordered channel receives) that reach an event-emitting or
//!   `SimResult`-producing function through the call graph, with the
//!   call path reported hop by hop. Successor to the file-local
//!   `nondet-iter`.
//! * **lock-graph** ([`lockgraph`]) — verifies the global lock
//!   hierarchy (arbiter → tenant ascending → shard ascending) is
//!   acyclic on every interprocedural path and keeps shard-lock
//!   acquisition confined to `lock_shard`/`lock_shard_pair`. Guard
//!   releases are path-sensitive: a `drop` on a branch that falls
//!   through to the join releases the guard; a `drop` on a diverging
//!   branch does not. Successor to the textual `lock-ordering` check.
//! * **event-typestate** ([`typestate`]) — path-sensitive verification
//!   of the eviction event grammar: every path from `EvictionBegin`
//!   reaches exactly one `EvictionEnd` before function exit, no nested
//!   scopes, `Evicted`/`Unlinked` only inside an open scope —
//!   interprocedural through opens/closes/balanced function summaries.
//!   Successor to the construction-site-only `event-protocol` check
//!   (whose machinery-confinement rule it keeps as a backstop).
//! * **cost-units** ([`units`]) — infers units (bytes, cycles, event
//!   counts) for locals from the `cce_sim::overhead` cost model and
//!   naming conventions, then flags cross-unit `+`/`-` arithmetic and
//!   unsaturated integer cycle accumulation.
//!
//! Old lint names still work in `cce-analyze: allow(…)` annotations
//! and committed baselines ([`lints::LINT_RENAMES`]).
//!
//! Built on a hand-rolled lexer ([`lexer`]) because the offline CI
//! cannot fetch `syn`; [`baseline`] implements the two-way ratchet and
//! [`sarif`] renders findings as SARIF 2.1.0.

#![deny(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod lints;
pub mod lockgraph;
pub mod sarif;
pub mod symbols;
pub mod taint;
pub mod typestate;
pub mod units;

pub use baseline::Baseline;
pub use lints::{Finding, LintSet};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use callgraph::CallGraph;
use symbols::Workspace;

/// Library crates where panics are findings (ratcheted).
const PANIC_CRATES: &[&str] = &["core", "sim", "dbt"];

/// The one file allowed to spell out the Eq. 2–4 constants.
const COST_DEFINITION_SITE: &str = "crates/sim/src/overhead.rs";

/// Files allowed to construct the eviction-grammar events directly;
/// also exempt from the grammar findings (their raw stream rewriting is
/// deliberately outside the function-scoped grammar). The sim ladder is
/// machinery too: it replays the grammar for up to 64 configurations
/// from one traversal, pinned byte-identical to the core's emission by
/// the ladder conformance suite.
pub const EVENT_ALLOWED: &[&str] = &[
    "crates/core/src/events.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/concurrent.rs",
    "crates/core/src/testutil.rs",
    "crates/sim/src/ladder.rs",
];

/// The analyzer's own sources are exempt: its lint tables spell out the
/// constants and method names it searches for.
const SELF_CRATE: &str = "analyze";

/// The flat lints that apply to one repo file, from the scoping rules
/// above. `rel` is the repo-relative path with forward slashes.
/// (The interprocedural lints scope themselves: see
/// [`taint::SCOPE_CRATES`] and the lock-graph's home crate.)
#[must_use]
pub fn lint_set_for(rel: &str) -> LintSet {
    let krate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    LintSet {
        cost_constant: rel != COST_DEFINITION_SITE,
        panic_path: PANIC_CRATES.contains(&krate),
    }
}

/// Lints `crates/*/src/**/*.rs` under `root`: every file gets its flat
/// lint set, then the workspace-wide symbol table and call graph feed
/// the interprocedural passes. Findings come back in path order.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading a source
/// file.
pub fn scan_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let mut ws = Workspace::default();
    let mut findings = Vec::new();
    for src_dir in crate_src_dirs(root)? {
        for path in rust_files(&src_dir)? {
            let rel = relative_slash(root, &path);
            let src = fs::read_to_string(&path)?;
            let id = ws.add_file(&rel, &src);
            let set = lint_set_for(&rel);
            findings.extend(lints::run_flat(&rel, &ws.files[id].lexed, &set));
        }
    }
    let cg = CallGraph::build(&ws);
    findings.extend(taint::run(&ws, &cg, true));
    findings.extend(lockgraph::run(&ws, &cg, true));
    findings.extend(typestate::run(&ws, &cg, true));
    findings.extend(units::run(&ws, true));
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}

/// Lints explicitly named files as one miniature workspace with every
/// lint enabled and no path-based exemptions — fixture mode. Call
/// edges resolve across all the given files.
///
/// # Errors
///
/// Propagates the read error if a file cannot be loaded.
pub fn scan_fixtures(paths: &[PathBuf]) -> io::Result<Vec<Finding>> {
    let mut ws = Workspace::default();
    let mut findings = Vec::new();
    for path in paths {
        let src = fs::read_to_string(path)?;
        let name = path.to_string_lossy().replace('\\', "/");
        let id = ws.add_file(&name, &src);
        findings.extend(lints::run_flat(&name, &ws.files[id].lexed, &LintSet::all()));
    }
    let cg = CallGraph::build(&ws);
    findings.extend(taint::run(&ws, &cg, false));
    findings.extend(lockgraph::run(&ws, &cg, false));
    findings.extend(typestate::run(&ws, &cg, false));
    findings.extend(units::run(&ws, false));
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}

/// `crates/<name>/src` directories under `root`, sorted, minus the
/// analyzer itself.
fn crate_src_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    let mut dirs = Vec::new();
    for entry in fs::read_dir(&crates)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() || entry.file_name() == SELF_CRATE {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative_slash(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_follows_the_lint_catalog() {
        let sim = lint_set_for("crates/sim/src/simulator.rs");
        assert!(sim.cost_constant && sim.panic_path);

        let overhead = lint_set_for(COST_DEFINITION_SITE);
        assert!(!overhead.cost_constant, "the definition site is exempt");
        assert!(overhead.panic_path);

        let workloads = lint_set_for("crates/workloads/src/access.rs");
        assert!(!workloads.panic_path);
        assert!(workloads.cost_constant);

        let dbt = lint_set_for("crates/dbt/src/lib.rs");
        assert!(dbt.panic_path);
    }

    #[test]
    fn event_machinery_files_are_typestate_exempt() {
        for rel in [
            "crates/core/src/events.rs",
            "crates/core/src/shard.rs",
            "crates/core/src/concurrent.rs",
            "crates/sim/src/ladder.rs",
        ] {
            assert!(EVENT_ALLOWED.contains(&rel), "{rel} must stay exempt");
        }
        assert!(!EVENT_ALLOWED.contains(&"crates/core/src/org/mod.rs"));
        assert!(!EVENT_ALLOWED.contains(&"crates/sim/src/simulator.rs"));
    }
}
