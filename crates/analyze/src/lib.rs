//! # cce-analyze — repo-specific static analysis
//!
//! Mechanizes the invariants the workspace otherwise keeps by
//! convention (see DESIGN.md §9):
//!
//! * **nondet-iter** — no iteration over `std` `HashMap`/`HashSet` in
//!   the deterministic-output crates (`cce-core`, `cce-sim`,
//!   `cce-experiments`); this is the DESIGN.md §8 ordering audit as a
//!   CI gate instead of a paragraph.
//! * **cost-constant** — the Eq. 2–4 overhead constants are defined
//!   once, in `cce_sim::overhead`; re-typed literals anywhere else are
//!   drift waiting to happen.
//! * **panic-path** — `unwrap`/`expect`/`panic!` in non-test library
//!   code of `cce-core`/`cce-sim`/`cce-dbt`, ratcheted by
//!   `analyze-baseline.json` so the count only goes down.
//! * **event-protocol** — `CacheEvent::EvictionBegin`/`EvictionEnd`
//!   are constructed only inside `cce-core`'s event machinery
//!   (including the shard and concurrent layers' event-rewriting
//!   sinks); organizations must stream through `EvictionScope`.
//! * **lock-ordering** — in `cce-core`, a shard lock is acquired only
//!   inside the two canonical helpers (`lock_shard`,
//!   `lock_shard_pair`), which take locks in ascending shard index;
//!   any other `shards[…].lock()` is a deadlock hazard.
//!
//! Built on a hand-rolled lexer ([`lexer`]) because the offline CI
//! cannot fetch `syn`; the lints ([`lints`]) are token-pattern passes,
//! and [`baseline`] implements the ratchet.

#![deny(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod lints;

pub use baseline::Baseline;
pub use lints::{Finding, LintSet};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose sweep/report output must be bit-reproducible; the
/// nondet-iter lint runs on their sources.
const DETERMINISTIC_CRATES: &[&str] = &["core", "sim", "experiments"];

/// Library crates where panics are findings (ratcheted).
const PANIC_CRATES: &[&str] = &["core", "sim", "dbt"];

/// The one file allowed to spell out the Eq. 2–4 constants.
const COST_DEFINITION_SITE: &str = "crates/sim/src/overhead.rs";

/// Files allowed to construct `EvictionBegin`/`EvictionEnd` directly.
const EVENT_ALLOWED: &[&str] = &[
    "crates/core/src/events.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/shard.rs",
    "crates/core/src/concurrent.rs",
    "crates/core/src/testutil.rs",
];

/// The crate holding the concurrent serving layer; the lock-ordering
/// lint runs on its sources.
const LOCK_CRATE: &str = "core";

/// The analyzer's own sources are exempt: its lint tables spell out the
/// constants and method names it searches for.
const SELF_CRATE: &str = "analyze";

/// The lints that apply to one repo file, from the scoping rules above.
/// `rel` is the repo-relative path with forward slashes.
#[must_use]
pub fn lint_set_for(rel: &str) -> LintSet {
    let krate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("");
    LintSet {
        nondet_iter: DETERMINISTIC_CRATES.contains(&krate),
        cost_constant: rel != COST_DEFINITION_SITE,
        panic_path: PANIC_CRATES.contains(&krate),
        event_protocol: !EVENT_ALLOWED.contains(&rel),
        lock_ordering: krate == LOCK_CRATE,
    }
}

/// Lints `crates/*/src/**/*.rs` under `root`, in path order.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or from reading a source
/// file.
pub fn scan_repo(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for src_dir in crate_src_dirs(root)? {
        for path in rust_files(&src_dir)? {
            let rel = relative_slash(root, &path);
            let set = lint_set_for(&rel);
            let src = fs::read_to_string(&path)?;
            findings.extend(lints::run_lints(&rel, &src, &set));
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(findings)
}

/// Lints one explicitly named file with every lint enabled and no
/// path-based exemptions — fixture mode.
///
/// # Errors
///
/// Propagates the read error if the file cannot be loaded.
pub fn scan_fixture(path: &Path) -> io::Result<Vec<Finding>> {
    let src = fs::read_to_string(path)?;
    let name = path.to_string_lossy().replace('\\', "/");
    Ok(lints::run_lints(&name, &src, &LintSet::all()))
}

/// `crates/<name>/src` directories under `root`, sorted, minus the
/// analyzer itself.
fn crate_src_dirs(root: &Path) -> io::Result<Vec<PathBuf>> {
    let crates = root.join("crates");
    let mut dirs = Vec::new();
    for entry in fs::read_dir(&crates)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() || entry.file_name() == SELF_CRATE {
            continue;
        }
        let src = entry.path().join("src");
        if src.is_dir() {
            dirs.push(src);
        }
    }
    dirs.sort();
    Ok(dirs)
}

/// All `.rs` files under `dir`, recursively, sorted.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let entry = entry?;
            let path = entry.path();
            if entry.file_type()?.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

fn relative_slash(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_follows_the_lint_catalog() {
        let sim = lint_set_for("crates/sim/src/simulator.rs");
        assert!(sim.nondet_iter && sim.cost_constant && sim.panic_path && sim.event_protocol);
        assert!(!sim.lock_ordering, "lock-ordering is scoped to cce-core");

        let overhead = lint_set_for(COST_DEFINITION_SITE);
        assert!(!overhead.cost_constant, "the definition site is exempt");
        assert!(overhead.nondet_iter && overhead.panic_path);

        let events = lint_set_for("crates/core/src/events.rs");
        assert!(
            !events.event_protocol,
            "event machinery may construct events"
        );
        assert!(events.panic_path && events.lock_ordering);

        let shard = lint_set_for("crates/core/src/shard.rs");
        assert!(
            !shard.event_protocol,
            "the shard layer rewrites settled event streams"
        );
        assert!(shard.panic_path && shard.lock_ordering);

        let concurrent = lint_set_for("crates/core/src/concurrent.rs");
        assert!(
            !concurrent.event_protocol,
            "the concurrent layer rewrites settled event streams"
        );
        assert!(concurrent.lock_ordering, "the lock lint owns its home");

        let workloads = lint_set_for("crates/workloads/src/access.rs");
        assert!(
            !workloads.nondet_iter,
            "workloads is not a deterministic-output crate"
        );
        assert!(!workloads.panic_path);
        assert!(workloads.cost_constant && workloads.event_protocol);

        let dbt = lint_set_for("crates/dbt/src/lib.rs");
        assert!(dbt.panic_path && !dbt.nondet_iter);
    }
}
