//! The five repo-specific lints.
//!
//! Each lint is a pass over the token stream of one file (see
//! [`crate::lexer`]); which lints run on which file is decided by the
//! walker in [`crate::scan_file`]. Findings suppressed by a
//! `// cce-analyze: allow(<lint>): <reason>` annotation (same line or
//! the line above, reason required) never leave this module.

use crate::lexer::{lex, number_value, Lexed, TokKind, Token};

/// Lint identifiers, as used in annotations, baselines and output.
pub const NONDET_ITER: &str = "nondet-iter";
/// See [`NONDET_ITER`].
pub const COST_CONSTANT: &str = "cost-constant";
/// See [`NONDET_ITER`].
pub const PANIC_PATH: &str = "panic-path";
/// See [`NONDET_ITER`].
pub const EVENT_PROTOCOL: &str = "event-protocol";
/// See [`NONDET_ITER`].
pub const LOCK_ORDERING: &str = "lock-ordering";

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (or the path as given in fixture mode).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint identifier ([`NONDET_ITER`] etc.).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Which lints to run on one file; produced by the walker's scoping
/// rules (crate lists, exempt files) or all-on in fixture mode.
#[derive(Debug, Clone, Copy)]
pub struct LintSet {
    /// Run the determinism lint.
    pub nondet_iter: bool,
    /// Run the cost-constant-drift lint.
    pub cost_constant: bool,
    /// Run the panic-path lint.
    pub panic_path: bool,
    /// Run the event-protocol lint.
    pub event_protocol: bool,
    /// Run the lock-ordering lint.
    pub lock_ordering: bool,
}

impl LintSet {
    /// Every lint enabled (fixture mode).
    #[must_use]
    pub fn all() -> LintSet {
        LintSet {
            nondet_iter: true,
            cost_constant: true,
            panic_path: true,
            event_protocol: true,
            lock_ordering: true,
        }
    }
}

/// Runs the enabled lints over `src`, attributing findings to `file`.
#[must_use]
pub fn run_lints(file: &str, src: &str, set: &LintSet) -> Vec<Finding> {
    let lexed = lex(src);
    let tests = test_ranges(&lexed.tokens);
    let mut findings = Vec::new();
    if set.nondet_iter {
        nondet_iter(file, &lexed, &tests, &mut findings);
    }
    if set.cost_constant {
        cost_constant(file, &lexed, &mut findings);
    }
    if set.panic_path {
        panic_path(file, &lexed, &tests, &mut findings);
    }
    if set.event_protocol {
        event_protocol(file, &lexed, &mut findings);
    }
    if set.lock_ordering {
        lock_ordering(file, &lexed, &mut findings);
    }
    findings.retain(|f| !suppressed(&lexed, f));
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// True if an allow-annotation for the finding's lint sits on the same
/// line or the line above, with a non-empty reason.
fn suppressed(lexed: &Lexed, finding: &Finding) -> bool {
    lexed.allows.iter().any(|a| {
        a.lint == finding.lint
            && !a.reason.is_empty()
            && (a.line == finding.line || a.line + 1 == finding.line)
    })
}

/// Token-index ranges of `#[cfg(test)] mod … { … }` bodies.
fn test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && matches(tokens, i + 1, &["[", "cfg", "(", "test", ")", "]"]) {
            let mut j = i + 7;
            // Skip further attributes between #[cfg(test)] and the item.
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            // Optional visibility.
            if j < tokens.len() && tokens[j].is_ident("pub") {
                j += 1;
                if j < tokens.len() && tokens[j].is_punct("(") {
                    j = skip_balanced(tokens, j, "(", ")");
                }
            }
            if j < tokens.len() && tokens[j].is_ident("mod") {
                // `mod name {` — find the body's closing brace.
                let mut k = j + 1;
                while k < tokens.len() && !tokens[k].is_punct("{") {
                    k += 1;
                }
                let end = skip_balanced(tokens, k, "{", "}");
                ranges.push((k, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

fn in_test(tests: &[(usize, usize)], idx: usize) -> bool {
    tests.iter().any(|&(s, e)| idx >= s && idx < e)
}

fn matches(tokens: &[Token], at: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        tokens.get(at + k).is_some_and(|t| match t.kind {
            TokKind::Ident | TokKind::Punct => t.text == *want,
            _ => false,
        })
    })
}

/// With `tokens[at]` an opening delimiter, returns the index just past
/// its matching close.
fn skip_balanced(tokens: &[Token], at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// With `tokens[at] == "#"`, returns the index just past the attribute.
fn skip_attribute(tokens: &[Token], at: usize) -> usize {
    let mut i = at + 1;
    if i < tokens.len() && tokens[i].is_punct("!") {
        i += 1;
    }
    if i < tokens.len() && tokens[i].is_punct("[") {
        return skip_balanced(tokens, i, "[", "]");
    }
    i
}

// ---------------------------------------------------------------------
// Lint 1: nondet-iter
// ---------------------------------------------------------------------

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Names bound to `HashMap`/`HashSet` in this file: `name: HashMap<…>`
/// declarations (lets, fields, params) and `name = HashMap::new()`-style
/// initializers. Collection is file-granular — a name hash-bound in one
/// function taints the same name everywhere in the file — which errs on
/// the side of flagging; rename or annotate to disambiguate.
fn hash_bound_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix, then over
        // `&`/`&mut`/lifetime qualifiers, to reach an ascription colon.
        let mut head = i;
        while head >= 2
            && tokens[head - 1].is_punct("::")
            && tokens[head - 2].kind == TokKind::Ident
        {
            head -= 2;
        }
        while head >= 1
            && (tokens[head - 1].is_punct("&")
                || tokens[head - 1].is_ident("mut")
                || tokens[head - 1].kind == TokKind::Lifetime)
        {
            head -= 1;
        }
        if head < 2 || tokens[head - 2].kind != TokKind::Ident {
            continue;
        }
        let ascription = tokens[head - 1].is_punct(":");
        let initializer =
            tokens[head - 1].is_punct("=") && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"));
        if ascription || initializer {
            names.push(tokens[head - 2].text.clone());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

fn nondet_iter(file: &str, lexed: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    let names = hash_bound_names(tokens);
    if names.is_empty() {
        return;
    }
    let is_hash_name = |t: &Token| t.kind == TokKind::Ident && names.iter().any(|n| n == &t.text);
    for (i, t) in tokens.iter().enumerate() {
        if in_test(tests, i) || !is_hash_name(t) {
            continue;
        }
        // `name.iter()` / `.keys()` / … method form.
        if tokens.get(i + 1).is_some_and(|t| t.is_punct("."))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
        {
            if let Some(m) = tokens.get(i + 2) {
                if m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str()) {
                    out.push(Finding {
                        file: file.to_owned(),
                        line: m.line,
                        lint: NONDET_ITER,
                        message: format!(
                            "iteration over std HashMap/HashSet `{}.{}()` is \
                             nondeterministically ordered; use BTreeMap/BTreeSet, sort first, \
                             or annotate `// cce-analyze: allow(nondet-iter): <why order cannot \
                             reach output>` (DESIGN.md \u{a7}8)",
                            t.text, m.text
                        ),
                    });
                }
            }
        }
    }
    // `for … in [&mut] name { …` form (method-call forms in the iterator
    // expression are caught above).
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("for") || in_test(tests, i) {
            i += 1;
            continue;
        }
        // Find `in` at delimiter depth 0, then the body `{`. A brace at
        // depth 0 before any `in` — `impl Trait for Type { … }`,
        // `for<'a>` bounds reaching a body — means this `for` is not a
        // loop at all.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut found_in = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                found_in = true;
                break;
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            j += 1;
        }
        if !found_in {
            i += 1;
            continue;
        }
        let expr_start = j + 1;
        let mut k = expr_start;
        let mut has_call = false;
        while k < tokens.len() && !tokens[k].is_punct("{") {
            if tokens[k].is_punct("(") {
                has_call = true;
            }
            k += 1;
        }
        if !has_call {
            for t in &tokens[expr_start..k] {
                if is_hash_name(t) {
                    out.push(Finding {
                        file: file.to_owned(),
                        line: t.line,
                        lint: NONDET_ITER,
                        message: format!(
                            "`for` loop over std HashMap/HashSet `{}` is nondeterministically \
                             ordered; use BTreeMap/BTreeSet, sort first, or annotate \
                             `// cce-analyze: allow(nondet-iter): <why order cannot reach \
                             output>` (DESIGN.md \u{a7}8)",
                            t.text
                        ),
                    });
                }
            }
        }
        i = k;
    }
}

// ---------------------------------------------------------------------
// Lint 2: cost-constant
// ---------------------------------------------------------------------

/// The Eq. 2–4 constants, with the substring forms searched inside
/// string literals. The numeric values are compared exactly.
const PAPER_CONSTANTS: &[(f64, &str)] = &[
    (2.77, "2.77"),
    (3055.0, "3055"),
    (75.4, "75.4"),
    (1922.0, "1922"),
    (296.5, "296.5"),
    (95.7, "95.7"),
];

/// Names of Eq. 2–4 constants appearing in `s` as maximal decimal-number
/// runs, compared by exact numeric value like the literal branch. This
/// keeps "19225" and "75.41" clean (the substring would match) while
/// still catching respellings like "75.40" or "1922.0"; each constant is
/// reported at most once per string literal.
fn constants_in_string(s: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
            i += 1;
        }
        // Trailing dots are sentence punctuation or `..`, not fraction.
        let run = s[start..i].trim_end_matches('.');
        if let Ok(v) = run.parse::<f64>() {
            if let Some((_, name)) = PAPER_CONSTANTS.iter().find(|(c, _)| *c == v) {
                if !found.contains(name) {
                    found.push(*name);
                }
            }
        }
    }
    found
}

fn cost_constant(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        match t.kind {
            TokKind::Number => {
                if let Some(v) = number_value(&t.text) {
                    if let Some((_, name)) = PAPER_CONSTANTS.iter().find(|(c, _)| *c == v) {
                        out.push(Finding {
                            file: file.to_owned(),
                            line: t.line,
                            lint: COST_CONSTANT,
                            message: format!(
                                "Eq. 2\u{2013}4 constant {name} re-typed as a literal; the only \
                                 definition site is cce_sim::overhead (EVICTION_EQ2 / MISS_EQ3 / \
                                 UNLINK_EQ4) — import it, or annotate \
                                 `// cce-analyze: allow(cost-constant): <reason>`"
                            ),
                        });
                    }
                }
            }
            TokKind::Str => {
                for name in constants_in_string(&t.text) {
                    out.push(Finding {
                        file: file.to_owned(),
                        line: t.line,
                        lint: COST_CONSTANT,
                        message: format!(
                            "Eq. 2\u{2013}4 constant {name} re-typed inside a string literal; \
                             format the canonical cce_sim::overhead model (its Display impl) \
                             instead, or annotate \
                             `// cce-analyze: allow(cost-constant): <reason>`"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Lint 3: panic-path
// ---------------------------------------------------------------------

fn panic_path(file: &str, lexed: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if in_test(tests, i) || t.kind != TokKind::Ident {
            continue;
        }
        let after_dot = i > 0 && tokens[i - 1].is_punct(".");
        let call = tokens.get(i + 1).is_some_and(|t| t.is_punct("("));
        let what = match t.text.as_str() {
            "unwrap" if after_dot && call => ".unwrap()",
            "expect" if after_dot && call => ".expect()",
            "panic" if tokens.get(i + 1).is_some_and(|t| t.is_punct("!")) => "panic!",
            _ => continue,
        };
        out.push(Finding {
            file: file.to_owned(),
            line: t.line,
            lint: PANIC_PATH,
            message: format!(
                "{what} in non-test library code; return an error or prove the invariant \
                 (ratcheted by analyze-baseline.json — the count may only go down)"
            ),
        });
    }
}

// ---------------------------------------------------------------------
// Lint 4: event-protocol
// ---------------------------------------------------------------------

fn event_protocol(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    // Paren-context stack: true when the `(` belongs to a `matches!`-like
    // macro, whose second operand is a pattern, not a construction.
    let mut paren_is_pattern: Vec<bool> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("(") {
            let is_matches = i >= 2
                && tokens[i - 1].is_punct("!")
                && tokens[i - 2].kind == TokKind::Ident
                && tokens[i - 2].text.ends_with("matches");
            paren_is_pattern.push(is_matches);
        } else if t.is_punct(")") {
            paren_is_pattern.pop();
        } else if t.is_ident("CacheEvent")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.is_ident("EvictionBegin") || t.is_ident("EvictionEnd"))
        {
            let variant = &tokens[i + 2];
            // Where does the expression end? Unit variant: right after
            // the path. Struct variant: after the brace group.
            let mut end = i + 3;
            let mut braces_have_dotdot = false;
            if tokens.get(end).is_some_and(|t| t.is_punct("{")) {
                let close = skip_balanced(tokens, end, "{", "}");
                braces_have_dotdot = tokens[end..close].iter().any(|t| t.is_punct(".."));
                end = close;
            }
            let next_is_arm = tokens
                .get(end)
                .is_some_and(|t| t.is_punct("=>") || t.is_punct("|"));
            // `if let`/`while let`/`let` position: a unit variant cannot
            // be assigned to, so a single `=` after it (the lexer splits
            // `==` into two tokens) means the path is a pattern.
            let next_is_let_eq = tokens.get(end).is_some_and(|t| t.is_punct("="))
                && !tokens.get(end + 1).is_some_and(|t| t.is_punct("="));
            let in_matches_macro = paren_is_pattern.last().copied().unwrap_or(false);
            let is_pattern =
                next_is_arm || next_is_let_eq || braces_have_dotdot || in_matches_macro;
            if !is_pattern {
                out.push(Finding {
                    file: file.to_owned(),
                    line: variant.line,
                    lint: EVENT_PROTOCOL,
                    message: format!(
                        "direct construction of CacheEvent::{} outside \
                         crates/core/src/{{events,cache,testutil}}.rs; organizations must \
                         stream evictions through cce_core::EvictionScope so the \
                         begin/end grammar cannot be violated",
                        variant.text
                    ),
                });
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------
// Lint 5: lock-ordering
// ---------------------------------------------------------------------

/// The only two functions allowed to acquire a shard lock. Both live in
/// `crates/core/src/concurrent.rs` and take locks in ascending shard
/// index, which is what makes the concurrent layer deadlock-free.
const LOCK_HELPERS: &[&str] = &["lock_shard", "lock_shard_pair"];

/// Token-index ranges of the canonical lock helpers' bodies.
fn lock_helper_bodies(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_ident("fn")
            && tokens.get(i + 1).is_some_and(|t| {
                t.kind == TokKind::Ident && LOCK_HELPERS.contains(&t.text.as_str())
            })
        {
            // Find the body `{` past the signature (params, return type).
            let mut j = i + 2;
            let mut depth = 0i32;
            while j < tokens.len() {
                let t = &tokens[j];
                if t.is_punct("(") || t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct(")") || t.is_punct("]") {
                    depth -= 1;
                } else if depth == 0 && t.is_punct("{") {
                    break;
                }
                j += 1;
            }
            let end = skip_balanced(tokens, j, "{", "}");
            ranges.push((j, end));
            i = end;
            continue;
        }
        i += 1;
    }
    ranges
}

fn lock_ordering(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    let allowed = lock_helper_bodies(tokens);
    for (i, t) in tokens.iter().enumerate() {
        // `….lock(` with `shards` naming the receiver a few tokens back
        // (`self.shards[s].lock(…)` and relatives).
        if !(t.is_ident("lock")
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("(")))
        {
            continue;
        }
        let lookback = i.saturating_sub(8);
        if !tokens[lookback..i].iter().any(|t| t.is_ident("shards")) {
            continue;
        }
        if allowed.iter().any(|&(s, e)| i >= s && i < e) {
            continue;
        }
        out.push(Finding {
            file: file.to_owned(),
            line: t.line,
            lint: LOCK_ORDERING,
            message: "shard lock acquired outside the canonical helpers; all shard-lock \
                      acquisition must go through lock_shard/lock_shard_pair so locks are \
                      always taken in ascending shard index (deadlock freedom, DESIGN.md \u{a7}12)"
                .to_owned(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(src: &str) -> Vec<Finding> {
        run_lints("test.rs", src, &LintSet::all())
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn hash_iteration_is_flagged_lookup_is_not() {
        let src = "
use std::collections::HashMap;
fn f(m: &HashMap<u64, u64>) -> u64 {
    let mut s = 0;
    for (_k, v) in m.iter() { s += v; }
    s + m.get(&3).copied().unwrap_or(0)
}";
        let f = run_all(src);
        assert_eq!(lints_of(&f), vec![NONDET_ITER]);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn plain_for_over_hashset_is_flagged() {
        let src = "
use std::collections::HashSet;
fn g() {
    let mut seen = HashSet::new();
    seen.insert(1u64);
    for v in &seen { let _ = v; }
}";
        assert_eq!(lints_of(&run_all(src)), vec![NONDET_ITER]);
    }

    #[test]
    fn impl_for_and_hrtb_are_not_for_loops() {
        // A trailing `for` with no `in` (trait impl, HRTB) after the
        // last real loop used to slice past the end of the token stream.
        let src = "
use std::collections::HashMap;
pub struct S { m: HashMap<u64, u64> }
fn sum(m: &HashMap<u64, u64>) -> u64 {
    let mut s = 0;
    for (_k, v) in m { s += v; }
    s
}
fn apply<F>(f: F) where F: for<'a> Fn(&'a u64) { f(&0); }
impl Default for S {
    fn default() -> S { S { m: HashMap::new() } }
}";
        let f = run_all(src);
        assert_eq!(lints_of(&f), vec![NONDET_ITER]);
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn btree_iteration_is_clean() {
        let src = "
use std::collections::BTreeMap;
fn f(m: &BTreeMap<u64, u64>) -> u64 {
    m.values().sum()
}";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn annotation_with_reason_suppresses() {
        let src = "
use std::collections::HashMap;
fn f(m: &HashMap<u64, u64>) -> u64 {
    // cce-analyze: allow(nondet-iter): summation is order-independent
    m.values().sum()
}";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn annotation_without_reason_is_inert() {
        let src = "
use std::collections::HashMap;
fn f(m: &HashMap<u64, u64>) -> u64 {
    // cce-analyze: allow(nondet-iter)
    m.values().sum()
}";
        assert_eq!(lints_of(&run_all(src)), vec![NONDET_ITER]);
    }

    #[test]
    fn cost_constants_in_numbers_and_strings() {
        let src = "fn f() { let a = 2.77; let b = 3055.0; let s = \"75.40*x + 1922.0\"; }";
        let f = run_all(src);
        assert_eq!(f.len(), 4, "every re-typed constant is reported: {f:?}");
        assert!(f.iter().all(|f| f.lint == COST_CONSTANT));
        assert!(f[2].message.contains("75.4") && f[3].message.contains("1922"));
    }

    #[test]
    fn near_miss_constants_are_clean() {
        let src = "fn f() { let a = 2.78; let b = 305.5; let s = \"scale 0.25\"; }";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn constants_inside_longer_digit_runs_are_clean() {
        let src = "fn f() { let s = \"since 19225 bytes at 75.41, v1922.5\"; }";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn panics_flagged_outside_tests_only() {
        let src = "
fn lib_code(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect(\"set\");
    if a + b == 0 { panic!(\"zero\"); }
    a
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = None::<u32>.unwrap(); panic!(); }
}";
        let f = run_all(src);
        assert_eq!(lints_of(&f), vec![PANIC_PATH, PANIC_PATH, PANIC_PATH]);
        assert!(f.iter().all(|f| f.line <= 6), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_not_a_panic() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn event_construction_vs_pattern() {
        let src = "
fn bad(sink: &mut dyn EventSink) {
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::EvictionEnd { bytes: 4, links_dropped_free: 0 });
}
fn good(ev: CacheEvent) -> bool {
    match ev {
        CacheEvent::EvictionBegin => true,
        CacheEvent::EvictionEnd { .. } => false,
        _ => matches!(ev, CacheEvent::EvictionBegin),
    }
}";
        let f = run_all(src);
        assert_eq!(lints_of(&f), vec![EVENT_PROTOCOL, EVENT_PROTOCOL]);
        assert_eq!(f[0].line, 3);
        assert_eq!(f[1].line, 4);
    }

    #[test]
    fn if_let_and_while_let_are_patterns_let_binding_is_not() {
        let src = "
fn scan(ev: CacheEvent, mut next: impl FnMut() -> CacheEvent) -> u64 {
    let mut n = 0;
    if let CacheEvent::EvictionBegin = ev { n += 1; }
    while let CacheEvent::EvictionEnd { bytes } = next() { n += bytes; }
    n
}
fn bad() -> CacheEvent {
    let ev = CacheEvent::EvictionBegin;
    ev
}";
        let f = run_all(src);
        assert_eq!(lints_of(&f), vec![EVENT_PROTOCOL]);
        assert_eq!(f[0].line, 9);
    }

    #[test]
    fn direct_shard_lock_is_flagged_helpers_are_not() {
        let src = "
impl ConcurrentCache {
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, ShardSlot> {
        self.shards[s].lock().unwrap_or_else(PoisonError::into_inner)
    }
    fn lock_shard_pair(&self, a: usize, b: usize) -> (MutexGuard<'_, ShardSlot>, MutexGuard<'_, ShardSlot>) {
        let first = self.shards[a.min(b)].lock().unwrap_or_else(PoisonError::into_inner);
        let second = self.shards[a.max(b)].lock().unwrap_or_else(PoisonError::into_inner);
        if a < b { (first, second) } else { (second, first) }
    }
    fn rogue(&self, s: usize) -> u64 {
        let guard = self.shards[s].lock().unwrap_or_else(PoisonError::into_inner);
        guard.used()
    }
}";
        let f = run_all(src);
        let lo: Vec<_> = f.iter().filter(|f| f.lint == LOCK_ORDERING).collect();
        assert_eq!(lo.len(), 1, "{f:?}");
        assert_eq!(lo[0].line, 12);
    }

    #[test]
    fn non_shard_locks_are_clean() {
        let src = "
impl ConcurrentCache {
    fn review(&self) {
        let mut ast = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
        let tstate = self.tenants[0].lock().unwrap_or_else(PoisonError::into_inner);
        drop((ast, tstate));
    }
    fn shard_count(&self) -> usize { self.shards.len() }
}";
        assert!(
            run_all(src).iter().all(|f| f.lint != LOCK_ORDERING),
            "{:?}",
            run_all(src)
        );
    }

    #[test]
    fn doc_comment_code_never_fires() {
        let src = "
/// ```
/// let x = map.iter().next().unwrap();
/// let y = 2.77;
/// sink.event(CacheEvent::EvictionBegin);
/// ```
fn documented() {}";
        assert!(run_all(src).is_empty());
    }
}
