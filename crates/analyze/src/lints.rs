//! The flat (single-file) lints, plus the shared [`Finding`] type used
//! by every pass in the analyzer.
//!
//! Each flat lint is a pass over the token stream of one file (see
//! [`crate::lexer`]); which lints run on which file is decided by the
//! scoping rules in [`crate::lint_set_for`]. The interprocedural lints
//! — determinism taint ([`crate::taint`]) and the lock graph
//! ([`crate::lockgraph`]) — run over the whole-workspace call graph
//! instead and produce [`Finding`]s with a call-path [`TraceHop`]
//! chain. Findings suppressed by a
//! `// cce-analyze: allow(<lint>): <reason>` annotation (same line or
//! the line above, reason required) never leave the analyzer; the
//! pre-interprocedural lint names `nondet-iter` and `lock-ordering`
//! are honored as aliases for their successors so existing
//! annotations keep working.

use crate::lexer::{lex, number_value, Lexed, TokKind, Token};

/// Lint identifiers, as used in annotations, baselines and output.
pub const NONDET_TAINT: &str = "nondet-taint";
/// See [`NONDET_TAINT`].
pub const COST_CONSTANT: &str = "cost-constant";
/// See [`NONDET_TAINT`].
pub const PANIC_PATH: &str = "panic-path";
/// See [`NONDET_TAINT`].
pub const LOCK_GRAPH: &str = "lock-graph";
/// See [`NONDET_TAINT`].
pub const EVENT_TYPESTATE: &str = "event-typestate";
/// See [`NONDET_TAINT`].
pub const COST_UNITS: &str = "cost-units";

/// Historical lint names accepted as annotation aliases and migrated
/// in baselines: the file-local `nondet-iter` became the
/// interprocedural [`NONDET_TAINT`], the textual `lock-ordering`
/// became [`LOCK_GRAPH`], and the construction-site `event-protocol`
/// check became the path-sensitive [`EVENT_TYPESTATE`] grammar lint.
pub const LINT_RENAMES: &[(&str, &str)] = &[
    ("nondet-iter", NONDET_TAINT),
    ("lock-ordering", LOCK_GRAPH),
    ("event-protocol", EVENT_TYPESTATE),
];

/// One hop of an interprocedural call path attached to a finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceHop {
    /// Repo-relative path of the hop.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What happens at this hop (a call, an acquisition, a sink).
    pub label: String,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (or the path as given in fixture mode).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint identifier ([`NONDET_TAINT`] etc.).
    pub lint: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Call-path hops for interprocedural findings; empty for flat
    /// lints.
    pub trace: Vec<TraceHop>,
}

impl Finding {
    /// A trace-less finding (the flat-lint constructor).
    #[must_use]
    pub fn new(file: &str, line: u32, lint: &'static str, message: String) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            lint,
            message,
            trace: Vec::new(),
        }
    }
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Which lints to run on one file; produced by the walker's scoping
/// rules (crate lists, exempt files) or all-on in fixture mode.
#[derive(Debug, Clone, Copy)]
pub struct LintSet {
    /// Run the cost-constant-drift lint.
    pub cost_constant: bool,
    /// Run the panic-path lint.
    pub panic_path: bool,
}

impl LintSet {
    /// Every flat lint enabled (fixture mode).
    #[must_use]
    pub fn all() -> LintSet {
        LintSet {
            cost_constant: true,
            panic_path: true,
        }
    }
}

/// Runs the enabled flat lints over `src`, attributing findings to
/// `file`. Interprocedural lints need a workspace — see
/// [`crate::scan_repo`] / [`crate::scan_fixtures`].
#[must_use]
pub fn run_lints(file: &str, src: &str, set: &LintSet) -> Vec<Finding> {
    run_flat(file, &lex(src), set)
}

/// [`run_lints`] against an already-lexed file.
#[must_use]
pub fn run_flat(file: &str, lexed: &Lexed, set: &LintSet) -> Vec<Finding> {
    let tests = test_ranges(&lexed.tokens);
    let mut findings = Vec::new();
    if set.cost_constant {
        cost_constant(file, lexed, &mut findings);
    }
    if set.panic_path {
        panic_path(file, lexed, &tests, &mut findings);
    }
    findings.retain(|f| !is_suppressed(lexed, f.lint, f.line));
    findings.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    findings
}

/// True if an allow-annotation for `lint` (or a historical alias of it,
/// per [`LINT_RENAMES`]) sits on the same line or the line above, with
/// a non-empty reason.
#[must_use]
pub fn is_suppressed(lexed: &Lexed, lint: &str, line: u32) -> bool {
    lexed.allows.iter().any(|a| {
        let names_lint = a.lint == lint
            || LINT_RENAMES
                .iter()
                .any(|&(old, new)| new == lint && a.lint == old);
        names_lint && !a.reason.is_empty() && (a.line == line || a.line + 1 == line)
    })
}

/// Token-index ranges of `#[cfg(test)] mod … { … }` bodies.
pub(crate) fn test_ranges(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && matches(tokens, i + 1, &["[", "cfg", "(", "test", ")", "]"]) {
            let mut j = i + 7;
            // Skip further attributes between #[cfg(test)] and the item.
            while j < tokens.len() && tokens[j].is_punct("#") {
                j = skip_attribute(tokens, j);
            }
            // Optional visibility.
            if j < tokens.len() && tokens[j].is_ident("pub") {
                j += 1;
                if j < tokens.len() && tokens[j].is_punct("(") {
                    j = skip_balanced(tokens, j, "(", ")");
                }
            }
            if j < tokens.len() && tokens[j].is_ident("mod") {
                // `mod name {` — find the body's closing brace.
                let mut k = j + 1;
                while k < tokens.len() && !tokens[k].is_punct("{") {
                    k += 1;
                }
                let end = skip_balanced(tokens, k, "{", "}");
                ranges.push((k, end));
                i = end;
                continue;
            }
        }
        i += 1;
    }
    ranges
}

pub(crate) fn in_test(tests: &[(usize, usize)], idx: usize) -> bool {
    tests.iter().any(|&(s, e)| idx >= s && idx < e)
}

fn matches(tokens: &[Token], at: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, want)| {
        tokens.get(at + k).is_some_and(|t| match t.kind {
            TokKind::Ident | TokKind::Punct => t.text == *want,
            _ => false,
        })
    })
}

/// With `tokens[at]` an opening delimiter, returns the index just past
/// its matching close.
pub(crate) fn skip_balanced(tokens: &[Token], at: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// With `tokens[at] == "#"`, returns the index just past the attribute.
fn skip_attribute(tokens: &[Token], at: usize) -> usize {
    let mut i = at + 1;
    if i < tokens.len() && tokens[i].is_punct("!") {
        i += 1;
    }
    if i < tokens.len() && tokens[i].is_punct("[") {
        return skip_balanced(tokens, i, "[", "]");
    }
    i
}

// ---------------------------------------------------------------------
// Lint: cost-constant
// ---------------------------------------------------------------------

/// The Eq. 2–4 constants, with the substring forms searched inside
/// string literals. The numeric values are compared exactly.
const PAPER_CONSTANTS: &[(f64, &str)] = &[
    (2.77, "2.77"),
    (3055.0, "3055"),
    (75.4, "75.4"),
    (1922.0, "1922"),
    (296.5, "296.5"),
    (95.7, "95.7"),
];

/// Names of Eq. 2–4 constants appearing in `s` as maximal decimal-number
/// runs, compared by exact numeric value like the literal branch. This
/// keeps "19225" and "75.41" clean (the substring would match) while
/// still catching respellings like "75.40" or "1922.0"; each constant is
/// reported at most once per string literal.
fn constants_in_string(s: &str) -> Vec<&'static str> {
    let mut found = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if !bytes[i].is_ascii_digit() {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
            i += 1;
        }
        // Trailing dots are sentence punctuation or `..`, not fraction.
        let run = s[start..i].trim_end_matches('.');
        if let Ok(v) = run.parse::<f64>() {
            if let Some((_, name)) = PAPER_CONSTANTS.iter().find(|(c, _)| *c == v) {
                if !found.contains(name) {
                    found.push(*name);
                }
            }
        }
    }
    found
}

fn cost_constant(file: &str, lexed: &Lexed, out: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        match t.kind {
            TokKind::Number => {
                if let Some(v) = number_value(&t.text) {
                    if let Some((_, name)) = PAPER_CONSTANTS.iter().find(|(c, _)| *c == v) {
                        out.push(Finding::new(
                            file,
                            t.line,
                            COST_CONSTANT,
                            format!(
                                "Eq. 2\u{2013}4 constant {name} re-typed as a literal; the only \
                                 definition site is cce_sim::overhead (EVICTION_EQ2 / MISS_EQ3 / \
                                 UNLINK_EQ4) — import it, or annotate \
                                 `// cce-analyze: allow(cost-constant): <reason>`"
                            ),
                        ));
                    }
                }
            }
            TokKind::Str => {
                for name in constants_in_string(&t.text) {
                    out.push(Finding::new(
                        file,
                        t.line,
                        COST_CONSTANT,
                        format!(
                            "Eq. 2\u{2013}4 constant {name} re-typed inside a string literal; \
                             format the canonical cce_sim::overhead model (its Display impl) \
                             instead, or annotate \
                             `// cce-analyze: allow(cost-constant): <reason>`"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// Lint 3: panic-path
// ---------------------------------------------------------------------

fn panic_path(file: &str, lexed: &Lexed, tests: &[(usize, usize)], out: &mut Vec<Finding>) {
    let tokens = &lexed.tokens;
    for (i, t) in tokens.iter().enumerate() {
        if in_test(tests, i) || t.kind != TokKind::Ident {
            continue;
        }
        let after_dot = i > 0 && tokens[i - 1].is_punct(".");
        let call = tokens.get(i + 1).is_some_and(|t| t.is_punct("("));
        let what = match t.text.as_str() {
            "unwrap" if after_dot && call => ".unwrap()",
            "expect" if after_dot && call => ".expect()",
            "panic" if tokens.get(i + 1).is_some_and(|t| t.is_punct("!")) => "panic!",
            _ => continue,
        };
        out.push(Finding::new(
            file,
            t.line,
            PANIC_PATH,
            format!(
                "{what} in non-test library code; return an error or prove the invariant \
                 (ratcheted by analyze-baseline.json — the count may only go down)"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_all(src: &str) -> Vec<Finding> {
        run_lints("test.rs", src, &LintSet::all())
    }

    fn lints_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.lint).collect()
    }

    #[test]
    fn annotation_with_reason_suppresses() {
        let src = "
fn f(v: Option<u32>) -> u32 {
    // cce-analyze: allow(panic-path): the caller checked is_some
    v.unwrap()
}";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn annotation_without_reason_is_inert() {
        let src = "
fn f(v: Option<u32>) -> u32 {
    // cce-analyze: allow(panic-path)
    v.unwrap()
}";
        assert_eq!(lints_of(&run_all(src)), vec![PANIC_PATH]);
    }

    #[test]
    fn legacy_lint_names_suppress_their_successors() {
        let lexed = lex("
// cce-analyze: allow(nondet-iter): order cannot reach output
// cce-analyze: allow(lock-ordering): guard dropped on the line above
");
        assert!(is_suppressed(&lexed, NONDET_TAINT, 2));
        assert!(is_suppressed(&lexed, LOCK_GRAPH, 3));
        assert!(
            !is_suppressed(&lexed, PANIC_PATH, 2),
            "aliases are per-lint"
        );
        assert!(!is_suppressed(&lexed, NONDET_TAINT, 9), "and per-line");
    }

    #[test]
    fn cost_constants_in_numbers_and_strings() {
        let src = "fn f() { let a = 2.77; let b = 3055.0; let s = \"75.40*x + 1922.0\"; }";
        let f = run_all(src);
        assert_eq!(f.len(), 4, "every re-typed constant is reported: {f:?}");
        assert!(f.iter().all(|f| f.lint == COST_CONSTANT));
        assert!(f[2].message.contains("75.4") && f[3].message.contains("1922"));
    }

    #[test]
    fn near_miss_constants_are_clean() {
        let src = "fn f() { let a = 2.78; let b = 305.5; let s = \"scale 0.25\"; }";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn constants_inside_longer_digit_runs_are_clean() {
        let src = "fn f() { let s = \"since 19225 bytes at 75.41, v1922.5\"; }";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn panics_flagged_outside_tests_only() {
        let src = "
fn lib_code(v: Option<u32>) -> u32 {
    let a = v.unwrap();
    let b = v.expect(\"set\");
    if a + b == 0 { panic!(\"zero\"); }
    a
}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { let _ = None::<u32>.unwrap(); panic!(); }
}";
        let f = run_all(src);
        assert_eq!(lints_of(&f), vec![PANIC_PATH, PANIC_PATH, PANIC_PATH]);
        assert!(f.iter().all(|f| f.line <= 6), "{f:?}");
    }

    #[test]
    fn unwrap_or_is_not_a_panic() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0) }";
        assert!(run_all(src).is_empty());
    }

    #[test]
    fn legacy_event_protocol_name_suppresses_event_typestate() {
        let lexed = lex("
// cce-analyze: allow(event-protocol): rewriting a settled stream
");
        assert!(is_suppressed(&lexed, EVENT_TYPESTATE, 2));
        assert!(!is_suppressed(&lexed, COST_UNITS, 2));
    }

    #[test]
    fn doc_comment_code_never_fires() {
        let src = "
/// ```
/// let x = map.iter().next().unwrap();
/// let y = 2.77;
/// sink.event(CacheEvent::EvictionBegin);
/// ```
fn documented() {}";
        assert!(run_all(src).is_empty());
    }
}
