//! The interprocedural **lock-graph** lint (`lock-graph`).
//!
//! Successor to the textual `lock-ordering` check ("shard locks are
//! confined to two helpers"): this pass extracts actual acquisition
//! sites, simulates guard lifetimes through each function, propagates
//! *may-acquire* summaries over the call graph, and verifies the fixed
//! hierarchy — **arbiter → tenant (ascending) → shard (ascending)** —
//! is respected on every interprocedural path (DESIGN.md §12).
//!
//! The model, in the order the code is analyzed:
//!
//! * **Classification.** A raw `….lock(…)` site belongs to the class
//!   of the nearest container identifier (`arbiter`, `tenants`,
//!   `shards`) scanning back through its statement; `let`-aliases of a
//!   container (`let Some(arb) = &self.arbiter`) classify too.
//! * **Guard lifetimes.** An acquisition that is the whole right-hand
//!   side of a `let` holds until its scope closes or `drop(name)`; a
//!   projected acquisition (`self.lock_shard(s).lanes[t].…` — the
//!   binding is not the guard) or one buried in a larger expression is
//!   a temporary released at end of statement. A `drop` inside a
//!   nested branch is path-sensitive (via [`crate::cfg`]): if the
//!   branch falls through to the join, the guard stops counting as
//!   held there (it is no longer must-held); if the branch diverges
//!   (`return`/`break`/`panic!`), the fall-through path still holds
//!   the guard.
//! * **Transfer.** A function whose return type mentions `MutexGuard`
//!   (e.g. `lock_shard`) transfers its acquisitions to the caller.
//! * **Order.** Acquiring class `c` while a *higher* class is held is
//!   a backward edge; a second acquisition of the same class is a
//!   violation unless the function uses the ordered-pair idiom
//!   (`if a < b` two-branch or `.min(`/`.max(`) or the site iterates a
//!   container ascending (`.iter().map(|m| m.lock()…)`).
//! * **Calls.** Each call site is checked against the callee's
//!   transitive may-acquire set; violations carry the call path to the
//!   offending acquisition as trace hops. Method calls on local
//!   receivers ([`crate::callgraph::ReceiverKind::Local`] /
//!   [`SelfField`](crate::callgraph::ReceiverKind::SelfField)) are
//!   excluded — their name-only targets are other types' methods.
//! * **Confinement.** A raw shard lock outside
//!   `lock_shard`/`lock_shard_pair` is always a finding, keeping the
//!   old rule as a hard backstop.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::callgraph::{CallGraph, ReceiverKind};
use crate::cfg::Cfg;
use crate::lexer::{TokKind, Token};
use crate::lints::{in_test, is_suppressed, Finding, TraceHop, LOCK_GRAPH};
use crate::symbols::Workspace;

/// The crate holding the concurrent serving layer.
const LOCK_CRATE: &str = "core";

/// The only two functions allowed to acquire a shard lock directly.
pub const LOCK_HELPERS: &[&str] = &["lock_shard", "lock_shard_pair"];

/// Idents whose pattern position in a `let` is a wrapper, not a binding.
const PATTERN_WRAPPERS: &[&str] = &["Some", "Ok", "Err", "None", "mut", "ref"];

/// Lock classes in hierarchy order: a lock may only be acquired while
/// all held locks have a *smaller* class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LockClass {
    /// The capacity arbiter's state lock (top of the hierarchy).
    Arbiter,
    /// Per-tenant state locks, ascending tenant index.
    Tenant,
    /// Per-shard slot locks, ascending shard index (bottom).
    Shard,
}

impl LockClass {
    /// Lowercase display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LockClass::Arbiter => "arbiter",
            LockClass::Tenant => "tenant",
            LockClass::Shard => "shard",
        }
    }

    fn of_container(ident: &str) -> Option<LockClass> {
        match ident {
            "arbiter" => Some(LockClass::Arbiter),
            "tenants" => Some(LockClass::Tenant),
            "shards" => Some(LockClass::Shard),
            _ => None,
        }
    }
}

/// The lock behavior the lint inferred, exported so conformance tests
/// can cross-check the static model against the runtime
/// implementation (`crates/core/tests/lock_interleave.rs`).
pub struct LockModel {
    /// Qualified fn name → classes the function may acquire, directly
    /// or through (admitted) callees.
    pub may_acquire: BTreeMap<String, BTreeSet<LockClass>>,
    /// Qualified names of functions that transfer a guard to their
    /// caller (return type mentions `MutexGuard`).
    pub returns_guard: BTreeSet<String>,
}

/// Builds the exported model without emitting findings.
#[must_use]
pub fn model(ws: &Workspace, cg: &CallGraph) -> LockModel {
    let a = Analysis::build(ws, cg);
    let mut may_acquire = BTreeMap::new();
    let mut returns_guard = BTreeSet::new();
    for (id, f) in ws.fns.iter().enumerate() {
        if !a.may_acquire[id].is_empty() {
            may_acquire.insert(f.qname.clone(), a.may_acquire[id].clone());
        }
        if a.returns_guard[id] {
            returns_guard.insert(f.qname.clone());
        }
    }
    LockModel {
        may_acquire,
        returns_guard,
    }
}

/// Runs the lock-graph lint. `repo_scope` restricts findings to the
/// [`LOCK_CRATE`]; fixture mode passes `false`.
#[must_use]
pub fn run(ws: &Workspace, cg: &CallGraph, repo_scope: bool) -> Vec<Finding> {
    let a = Analysis::build(ws, cg);
    let mut findings = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        if repo_scope && !in_scope(&file.rel) {
            continue;
        }
        if in_test(&file.tests, f.sig.0) {
            continue;
        }
        simulate(ws, cg, &a, id, &mut findings);
    }
    findings.retain(|f| {
        let lexed = ws
            .files
            .iter()
            .find(|fs| fs.rel == f.file)
            .map(|fs| &fs.lexed);
        lexed.is_none_or(|l| !is_suppressed(l, LOCK_GRAPH, f.line))
    });
    findings
}

fn in_scope(rel: &str) -> bool {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .is_none_or(|krate| krate == LOCK_CRATE)
}

/// Whole-workspace pre-analysis: raw sites, summaries, admitted edges.
struct Analysis {
    /// Raw `.lock()` sites per fn: `(token, line, class)`.
    raw_sites: Vec<Vec<(usize, u32, Option<LockClass>)>>,
    /// Classes raw-acquired per fn.
    raw: Vec<BTreeSet<LockClass>>,
    /// Transitive acquisitions per fn over admitted edges.
    may_acquire: Vec<BTreeSet<LockClass>>,
    /// Return type mentions `MutexGuard`.
    returns_guard: Vec<bool>,
    /// Guard classes transferred to callers.
    guards_returned: Vec<BTreeSet<LockClass>>,
    /// Body has the `if a < b` / `.min(`+`.max(` ordered-pair idiom.
    ordered_pair: Vec<bool>,
    /// Admitted call edges per fn: `(site index, callee)`.
    adm_edges: Vec<Vec<(usize, usize)>>,
}

impl Analysis {
    fn build(ws: &Workspace, cg: &CallGraph) -> Analysis {
        let n = ws.fns.len();
        let mut raw_sites = Vec::with_capacity(n);
        let mut raw: Vec<BTreeSet<LockClass>> = Vec::with_capacity(n);
        let mut returns_guard = Vec::with_capacity(n);
        let mut ordered_pair = Vec::with_capacity(n);
        let mut adm_edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(n);
        for (id, f) in ws.fns.iter().enumerate() {
            let tokens = &ws.files[f.file].lexed.tokens;
            let aliases = container_aliases(tokens, f.body);
            let sites = raw_lock_sites(tokens, f.body, &aliases);
            raw.push(sites.iter().filter_map(|&(_, _, c)| c).collect());
            raw_sites.push(sites);
            returns_guard.push(
                tokens[f.sig.0..f.sig.1.min(tokens.len())]
                    .iter()
                    .any(|t| t.is_ident("MutexGuard")),
            );
            ordered_pair.push(has_ordered_pair_idiom(tokens, f.body));
            adm_edges.push(
                cg.edges[id]
                    .iter()
                    .filter(|e| {
                        !matches!(
                            cg.sites[id][e.site].recv,
                            ReceiverKind::Local | ReceiverKind::SelfField
                        )
                    })
                    .map(|e| (e.site, e.callee))
                    .collect(),
            );
        }
        // Fixpoint: may_acquire = raw ∪ callees' may_acquire.
        let mut may_acquire = raw.clone();
        loop {
            let mut changed = false;
            for id in 0..n {
                for &(_, callee) in &adm_edges[id] {
                    let add: Vec<LockClass> = may_acquire[callee]
                        .iter()
                        .copied()
                        .filter(|c| !may_acquire[id].contains(c))
                        .collect();
                    if !add.is_empty() {
                        may_acquire[id].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        // Fixpoint: guards_returned over returns-guard callees.
        let mut guards_returned: Vec<BTreeSet<LockClass>> = (0..n)
            .map(|id| {
                if returns_guard[id] {
                    raw[id].clone()
                } else {
                    BTreeSet::new()
                }
            })
            .collect();
        loop {
            let mut changed = false;
            for id in 0..n {
                if !returns_guard[id] {
                    continue;
                }
                for &(_, callee) in &adm_edges[id] {
                    if !returns_guard[callee] {
                        continue;
                    }
                    let add: Vec<LockClass> = guards_returned[callee]
                        .iter()
                        .copied()
                        .filter(|c| !guards_returned[id].contains(c))
                        .collect();
                    if !add.is_empty() {
                        guards_returned[id].extend(add);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Analysis {
            raw_sites,
            raw,
            may_acquire,
            returns_guard,
            guards_returned,
            ordered_pair,
            adm_edges,
        }
    }
}

/// Container aliases in one body: `let Some(arb) = &self.arbiter` makes
/// `arb` classify as the arbiter. A `let` whose right-hand side names a
/// container but performs no `.lock(` aliases its pattern idents.
fn container_aliases(tokens: &[Token], body: (usize, usize)) -> BTreeMap<String, LockClass> {
    let mut aliases = BTreeMap::new();
    let end = body.1.min(tokens.len());
    let mut i = body.0;
    while i < end {
        if !tokens[i].is_ident("let") {
            i += 1;
            continue;
        }
        // Pattern idents up to `:` or `=`.
        let mut pat = Vec::new();
        let mut j = i + 1;
        while j < end && !tokens[j].is_punct("=") && !tokens[j].is_punct(":") {
            let t = &tokens[j];
            if t.kind == TokKind::Ident && !PATTERN_WRAPPERS.contains(&t.text.as_str()) {
                pat.push(t.text.clone());
            }
            if t.is_punct(";") || t.is_punct("{") {
                break;
            }
            j += 1;
        }
        // RHS up to the statement-ending `;` at balanced depth.
        while j < end && !tokens[j].is_punct("=") {
            j += 1;
        }
        let rhs_start = j + 1;
        let mut depth = 0i32;
        let mut k = rhs_start;
        let mut class = None;
        let mut locks = false;
        while k < end {
            let t = &tokens[k];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth -= 1;
            } else if depth <= 0 && t.is_punct(";") {
                break;
            } else if t.kind == TokKind::Ident {
                if let Some(c) = classify_ident(&t.text, &aliases) {
                    class.get_or_insert(c);
                }
                if t.is_ident("lock") && tokens.get(k + 1).is_some_and(|n| n.is_punct("(")) {
                    locks = true;
                }
            }
            k += 1;
        }
        if let (Some(c), false) = (class, locks) {
            for name in pat {
                aliases.insert(name, c);
            }
        }
        i = k.max(i + 1);
    }
    aliases
}

fn classify_ident(text: &str, aliases: &BTreeMap<String, LockClass>) -> Option<LockClass> {
    LockClass::of_container(text).or_else(|| aliases.get(text).copied())
}

/// Raw `….lock(…)` sites in a body, classified by the nearest container
/// or alias ident scanning back through the statement.
fn raw_lock_sites(
    tokens: &[Token],
    body: (usize, usize),
    aliases: &BTreeMap<String, LockClass>,
) -> Vec<(usize, u32, Option<LockClass>)> {
    let mut sites = Vec::new();
    let end = body.1.min(tokens.len());
    for i in body.0..end {
        let t = &tokens[i];
        if !(t.is_ident("lock")
            && i > 0
            && tokens[i - 1].is_punct(".")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("(")))
        {
            continue;
        }
        let class = scan_back(tokens, body.0, i).find_map(|t| classify_ident(&t.text, aliases));
        sites.push((i, t.line, class));
    }
    sites
}

/// Idents walking backward from `at` to the statement start (`;` or
/// `}`) or the body opening.
fn scan_back(tokens: &[Token], body_start: usize, at: usize) -> impl Iterator<Item = &Token> {
    tokens[body_start + 1..at]
        .iter()
        .rev()
        .take_while(|t| !t.is_punct(";") && !t.is_punct("}"))
        .filter(|t| t.kind == TokKind::Ident)
}

/// `if a < b` (two-branch ordered acquire) or `.min(`+`.max(` index
/// ordering in the body.
fn has_ordered_pair_idiom(tokens: &[Token], body: (usize, usize)) -> bool {
    let end = body.1.min(tokens.len());
    let toks = &tokens[body.0..end];
    let has_if_cmp = toks.windows(4).any(|w| {
        w[0].is_ident("if")
            && w[1].kind == TokKind::Ident
            && (w[2].is_punct("<") || w[2].is_punct(">"))
            && w[3].kind == TokKind::Ident
    });
    let method = |name: &str| {
        toks.windows(3)
            .any(|w| w[0].is_punct(".") && w[1].is_ident(name) && w[2].is_punct("("))
    };
    has_if_cmp || (method("min") && method("max"))
}

/// One tracked guard during simulation.
struct Guard {
    class: LockClass,
    binding: Option<String>,
    /// Brace depth at acquisition (body `{` = depth 1).
    depth: u32,
    /// Released at the next statement-ending `;` (temporary).
    temp: bool,
    /// Acquisition line, for messages.
    line: u32,
    /// Branch-local `drop(…)`: `(brace depth of the drop, drop token)`.
    /// While set, the guard does not count as held. When the branch
    /// closes, the CFG decides the outcome: a branch that falls
    /// through to the join releases the guard for good (it is no
    /// longer must-held), a diverging branch (return/break/panic)
    /// restores it — only non-dropping paths reach the join.
    suspended: Option<(u32, usize)>,
}

impl Guard {
    fn held(&self) -> bool {
        self.suspended.is_none()
    }
}

/// How a `let`-context classifies an acquisition site.
enum BindKind {
    /// Whole-RHS of a `let` — guard lives to scope end.
    Binding(Option<String>),
    /// Projected or embedded — released at end of statement.
    Temporary,
}

/// Simulates one function and appends violations.
fn simulate(ws: &Workspace, cg: &CallGraph, a: &Analysis, id: usize, out: &mut Vec<Finding>) {
    let f = &ws.fns[id];
    let file = &ws.files[f.file];
    let tokens = &file.lexed.tokens;
    let (start, end) = (f.body.0, f.body.1.min(tokens.len()));
    if start >= end {
        return;
    }
    // Event maps keyed by token index.
    let raw_at: BTreeMap<usize, (u32, Option<LockClass>)> = a.raw_sites[id]
        .iter()
        .map(|&(tok, line, class)| (tok, (line, class)))
        .collect();
    // Call sites → (returned guard classes, transient may-acquire).
    let mut call_at: BTreeMap<usize, (u32, BTreeSet<LockClass>, BTreeSet<LockClass>, usize)> =
        BTreeMap::new();
    for &(site, callee) in &a.adm_edges[id] {
        let s = &cg.sites[id][site];
        let entry = call_at
            .entry(s.tok)
            .or_insert_with(|| (s.line, BTreeSet::new(), BTreeSet::new(), callee));
        if a.returns_guard[callee] {
            entry.1.extend(a.guards_returned[callee].iter().copied());
            // Transient part beyond what is handed back.
            entry.2.extend(
                a.may_acquire[callee]
                    .difference(&a.guards_returned[callee])
                    .copied(),
            );
        } else {
            entry.2.extend(a.may_acquire[callee].iter().copied());
        }
    }
    let fn_is_helper = LOCK_HELPERS.contains(&f.name.as_str());
    let cfg = Cfg::build(tokens, f.body);
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth: u32 = 0;
    let mut i = start;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.depth <= depth);
            guards.retain_mut(|g| match g.suspended {
                Some((d, dtok)) if depth < d => {
                    if cfg.reaches_past(dtok, i) {
                        // The dropping branch falls through: at the
                        // join the guard is no longer must-held.
                        false
                    } else {
                        // The dropping branch diverges; paths that
                        // reach this point still hold the guard.
                        g.suspended = None;
                        true
                    }
                }
                _ => true,
            });
        } else if t.is_punct(";") {
            guards.retain(|g| !(g.temp && depth <= g.depth));
        } else if t.is_ident("drop")
            && tokens.get(i + 1).is_some_and(|n| n.is_punct("("))
            && tokens.get(i + 3).is_some_and(|n| n.is_punct(")"))
        {
            if let Some(name) = tokens.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                let at_depth = depth;
                let mut permanent = Vec::new();
                for (gi, g) in guards.iter_mut().enumerate() {
                    if g.binding.as_deref() == Some(name.text.as_str()) {
                        if at_depth > g.depth {
                            g.suspended = Some((at_depth, i));
                        } else {
                            permanent.push(gi);
                        }
                    }
                }
                for gi in permanent.into_iter().rev() {
                    guards.remove(gi);
                }
            }
            i += 4;
            continue;
        } else if let Some(&(line, class)) = raw_at.get(&i) {
            // Raw acquisition: confinement backstop, then order checks.
            if class == Some(LockClass::Shard) && !fn_is_helper {
                push_finding(
                    ws,
                    f,
                    line,
                    "shard mutex locked directly; all shard-lock acquisition must go \
                     through lock_shard/lock_shard_pair so locks are taken in ascending \
                     shard index (deadlock freedom, DESIGN.md \u{a7}12)"
                        .to_owned(),
                    Vec::new(),
                    out,
                );
            }
            if let Some(c) = class {
                let iter_sanction = scan_back(tokens, start, i)
                    .any(|t| t.is_ident("iter") || t.is_ident("iter_mut"));
                acquire(
                    ws,
                    cg,
                    a,
                    f,
                    tokens,
                    i,
                    line,
                    c,
                    a.ordered_pair[id] || iter_sanction,
                    &mut guards,
                    depth,
                    None,
                    out,
                );
            }
        } else if let Some((line, returned, transient, callee)) = call_at.get(&i).cloned() {
            // Check the callee's transient acquisitions against held
            // locks; report at most one conflict per call site.
            let held: Vec<(LockClass, u32)> = guards
                .iter()
                .filter(|g| g.held())
                .map(|g| (g.class, g.line))
                .collect();
            let conflict = transient.iter().copied().find_map(|c| {
                held.iter()
                    .find(|&&(h, _)| h >= c)
                    .map(|&(h, hline)| (c, h, hline))
            });
            if let Some((c, h, hline)) = conflict {
                let mut trace = vec![TraceHop {
                    file: file.rel.clone(),
                    line: hline,
                    label: format!("{} lock held from here", h.name()),
                }];
                trace.extend(trace_to_class(ws, cg, a, callee, c));
                let relation = if h > c {
                    "held lock outranks it"
                } else {
                    "same class already held"
                };
                push_finding(
                    ws,
                    f,
                    line,
                    format!(
                        "call may acquire the {} lock class while the {} class is held ({relation}); \
                         hierarchy is arbiter \u{2192} tenant (asc) \u{2192} shard (asc) \
                         (DESIGN.md \u{a7}12)",
                        c.name(),
                        h.name(),
                    ),
                    trace,
                    out,
                );
            }
            // Guards handed back by returns-guard helpers.
            for c in returned {
                let iter_sanction = scan_back(tokens, start, i)
                    .any(|t| t.is_ident("iter") || t.is_ident("iter_mut"));
                acquire(
                    ws,
                    cg,
                    a,
                    f,
                    tokens,
                    i,
                    line,
                    c,
                    a.ordered_pair[id] || iter_sanction,
                    &mut guards,
                    depth,
                    Some(callee),
                    out,
                );
            }
        }
        i += 1;
    }
}

/// Processes one acquisition of class `c`: order checks against held
/// guards, then tracks the new guard with its inferred lifetime.
#[allow(clippy::too_many_arguments)]
fn acquire(
    ws: &Workspace,
    cg: &CallGraph,
    a: &Analysis,
    f: &crate::symbols::FnDef,
    tokens: &[Token],
    tok: usize,
    line: u32,
    c: LockClass,
    sanctioned: bool,
    guards: &mut Vec<Guard>,
    depth: u32,
    via_callee: Option<usize>,
    out: &mut Vec<Finding>,
) {
    let file = &ws.files[f.file];
    if let Some(h) = guards.iter().filter(|g| g.held()).find(|g| g.class > c) {
        let mut trace = vec![TraceHop {
            file: file.rel.clone(),
            line: h.line,
            label: format!("{} lock held from here", h.class.name()),
        }];
        if let Some(callee) = via_callee {
            trace.extend(trace_to_class(ws, cg, a, callee, c));
        }
        push_finding(
            ws,
            f,
            line,
            format!(
                "acquires the {} lock class while the {} class is held — a backward edge in the \
                 hierarchy arbiter \u{2192} tenant (asc) \u{2192} shard (asc) \
                 (DESIGN.md \u{a7}12)",
                c.name(),
                h.class.name(),
            ),
            trace,
            out,
        );
    } else if let Some(h) = guards.iter().filter(|g| g.held()).find(|g| g.class == c) {
        if !sanctioned {
            let mut trace = vec![TraceHop {
                file: file.rel.clone(),
                line: h.line,
                label: format!("first {} lock acquired here", c.name()),
            }];
            if let Some(callee) = via_callee {
                trace.extend(trace_to_class(ws, cg, a, callee, c));
            }
            push_finding(
                ws,
                f,
                line,
                format!(
                    "acquires a second {} lock while one is held, without the ordered-pair \
                     (`if a < b`) or ascending-iterator idiom — unordered same-class \
                     acquisition can deadlock (DESIGN.md \u{a7}12)",
                    c.name(),
                ),
                trace,
                out,
            );
        }
    }
    let bind = binding_for(tokens, f.body.0, tok);
    let (binding, temp) = match bind {
        BindKind::Binding(name) => (name, false),
        BindKind::Temporary => (None, true),
    };
    guards.push(Guard {
        class: c,
        binding,
        depth,
        temp,
        line,
        suspended: None,
    });
}

/// Decides whether the acquisition at `tok` is `let`-bound or a
/// temporary, per the projection rule (see module docs).
fn binding_for(tokens: &[Token], body_start: usize, tok: usize) -> BindKind {
    // Backward: a `let` in the same statement?
    let mut let_name = None;
    let mut j = tok;
    while j > body_start + 1 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(";") || t.is_punct("}") {
            break;
        }
        if t.is_ident("let") {
            let name = tokens[j + 1..tok]
                .iter()
                .find(|n| n.kind == TokKind::Ident && !PATTERN_WRAPPERS.contains(&n.text.as_str()))
                .map(|n| n.text.clone());
            let_name = Some(name);
            break;
        }
    }
    // Forward: where does the acquisition expression end?
    let mut k = tok;
    // Skip to past the call's argument list.
    while k < tokens.len() && !tokens[k].is_punct("(") {
        k += 1;
    }
    k = crate::lints::skip_balanced(tokens, k, "(", ")");
    // Chained unwrap combinators are part of the acquisition.
    loop {
        let chained = tokens.get(k).is_some_and(|t| t.is_punct("."))
            && tokens.get(k + 1).is_some_and(|t| {
                t.is_ident("unwrap_or_else") || t.is_ident("unwrap") || t.is_ident("expect")
            })
            && tokens.get(k + 2).is_some_and(|t| t.is_punct("("));
        if !chained {
            break;
        }
        k = crate::lints::skip_balanced(tokens, k + 2, "(", ")");
    }
    match tokens.get(k) {
        Some(t) if t.is_punct(";") => match let_name {
            Some(name) => BindKind::Binding(name),
            None => BindKind::Temporary,
        },
        // Closing a larger expression: an ascending `.collect()` of
        // guards is still a binding (`let tenants: Vec<MutexGuard…>`).
        Some(t) if t.is_punct(")") => {
            let mut m = k;
            while m < tokens.len() && !tokens[m].is_punct(";") {
                if tokens[m].is_ident("collect") && let_name.is_some() {
                    return BindKind::Binding(let_name.flatten());
                }
                m += 1;
            }
            BindKind::Temporary
        }
        // `.field`, `[idx]`, `?` — projection: the binding is not the
        // guard.
        _ => BindKind::Temporary,
    }
}

/// BFS over admitted edges from `from` to the nearest function that
/// raw-acquires class `c`; returns the call-path hops plus the
/// acquisition site.
fn trace_to_class(
    ws: &Workspace,
    cg: &CallGraph,
    a: &Analysis,
    from: usize,
    c: LockClass,
) -> Vec<TraceHop> {
    let mut prev: Vec<Option<(usize, u32)>> = vec![None; ws.fns.len()];
    let mut seen = vec![false; ws.fns.len()];
    seen[from] = true;
    let mut queue = VecDeque::from([from]);
    let mut target = None;
    while let Some(g) = queue.pop_front() {
        if a.raw[g].contains(&c) {
            target = Some(g);
            break;
        }
        for &(site, callee) in &a.adm_edges[g] {
            if !seen[callee] && a.may_acquire[callee].contains(&c) {
                seen[callee] = true;
                prev[callee] = Some((g, cg.sites[g][site].line));
                queue.push_back(callee);
            }
        }
    }
    let Some(target) = target else {
        return Vec::new();
    };
    let mut chain = Vec::new();
    let mut cur = target;
    while let Some((p, line)) = prev[cur] {
        chain.push(TraceHop {
            file: ws.files[ws.fns[p].file].rel.clone(),
            line,
            label: format!(
                "call inside `{}` toward `{}`",
                ws.fns[p].qname, ws.fns[cur].qname
            ),
        });
        cur = p;
    }
    chain.reverse();
    if let Some(&(_, line, _)) = a.raw_sites[target]
        .iter()
        .find(|&&(_, _, cl)| cl == Some(c))
    {
        chain.push(TraceHop {
            file: ws.files[ws.fns[target].file].rel.clone(),
            line,
            label: format!("{} lock acquired in `{}`", c.name(), ws.fns[target].qname),
        });
    }
    chain
}

fn push_finding(
    ws: &Workspace,
    f: &crate::symbols::FnDef,
    line: u32,
    message: String,
    trace: Vec<TraceHop>,
    out: &mut Vec<Finding>,
) {
    out.push(Finding {
        file: ws.files[f.file].rel.clone(),
        line,
        lint: LOCK_GRAPH,
        message,
        trace,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn findings(src: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        ws.add_file("crates/core/src/demo.rs", src);
        let cg = CallGraph::build(&ws);
        run(&ws, &cg, true)
    }

    const HELPERS: &str = "
impl Cache {
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, Slot> {
        self.shards[s].lock().unwrap_or_else(PoisonError::into_inner)
    }
    fn lock_shard_pair(&self, a: usize, b: usize) -> (MutexGuard<'_, Slot>, MutexGuard<'_, Slot>) {
        if a < b {
            let ga = self.shards[a].lock().unwrap_or_else(PoisonError::into_inner);
            let gb = self.shards[b].lock().unwrap_or_else(PoisonError::into_inner);
            (ga, gb)
        } else {
            let gb = self.shards[b].lock().unwrap_or_else(PoisonError::into_inner);
            let ga = self.shards[a].lock().unwrap_or_else(PoisonError::into_inner);
            (ga, gb)
        }
    }
    fn lock_tenant(&self, t: usize) -> MutexGuard<'_, TenantState> {
        self.tenants[t].lock().unwrap_or_else(PoisonError::into_inner)
    }
}";

    #[test]
    fn canonical_helpers_are_clean() {
        assert!(findings(HELPERS).is_empty(), "{:?}", findings(HELPERS));
    }

    #[test]
    fn raw_shard_lock_outside_helpers_is_confined() {
        let src = "
impl Cache {
    fn rogue(&self, s: usize) -> u64 {
        let g = self.shards[s].lock().unwrap_or_else(PoisonError::into_inner);
        g.used()
    }
}";
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("lock_shard"));
    }

    #[test]
    fn second_shard_through_helper_callee_is_flagged_with_path() {
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn spill(&self, s: usize) {{
        let _cold = self.lock_shard(s);
    }}
    fn migrate(&self, hot: usize, cold: usize) {{
        let _hot = self.lock_shard(hot);
        self.spill(cold);
    }}
}}"
        );
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(
            f[0].message.contains("same class already held"),
            "{}",
            f[0].message
        );
        let labels: Vec<&str> = f[0].trace.iter().map(|h| h.label.as_str()).collect();
        assert!(
            labels.iter().any(|l| l.contains("shard lock held")),
            "{labels:?}"
        );
        assert!(labels.iter().any(|l| l.contains("spill")), "{labels:?}");
    }

    #[test]
    fn backward_edge_through_callee_is_flagged() {
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn audit(&self) {{
        let _a = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
    }}
    fn rebalance(&self, s: usize) {{
        let _g = self.lock_shard(s);
        self.audit();
    }}
}}"
        );
        let f = findings(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("arbiter"), "{}", f[0].message);
        assert!(
            f[0].message.contains("held lock outranks it"),
            "{}",
            f[0].message
        );
    }

    #[test]
    fn drop_before_call_releases_the_guard() {
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn audit(&self) {{
        let _a = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
    }}
    fn rebalance(&self, s: usize) {{
        let g = self.lock_shard(s);
        drop(g);
        self.audit();
    }}
}}"
        );
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn branch_local_drop_does_not_leak_to_fall_through() {
        // The drop inside the hit-branch must not release the guard for
        // the fall-through path — audit() on the fall-through still
        // conflicts.
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn audit(&self) {{
        let _a = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
    }}
    fn serve(&self, s: usize, hit: bool) {{
        let g = self.lock_shard(s);
        if hit {{
            drop(g);
            self.audit();
            return;
        }}
        self.audit();
    }}
}}"
        );
        let f = findings(src);
        assert_eq!(f.len(), 1, "only the fall-through call conflicts: {f:?}");
    }

    #[test]
    fn fall_through_drop_releases_the_guard_at_the_join() {
        // Unlike the diverging branch above, this drop branch falls
        // through: at the join the guard is not must-held anymore, so
        // the audit() call after the `if` is clean.
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn audit(&self) {{
        let _a = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
    }}
    fn serve(&self, s: usize, hit: bool) {{
        let g = self.lock_shard(s);
        if hit {{
            drop(g);
        }}
        self.audit();
    }}
}}"
        );
        let f = findings(src);
        assert!(f.is_empty(), "the dropping branch reaches the join: {f:?}");
    }

    #[test]
    fn scoped_and_projected_guards_release() {
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn audit(&self) {{
        let _a = self.arbiter.lock().unwrap_or_else(PoisonError::into_inner);
    }}
    fn census(&self, s: usize, t: usize) -> u64 {{
        let used = {{
            let slot = self.lock_shard(s);
            slot.used()
        }};
        let n = self.lock_shard(s).lanes[t].count();
        self.audit();
        used + n
    }}
}}"
        );
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn full_hierarchy_descent_is_clean() {
        // The review() shape: arbiter, all tenants ascending, shards
        // one at a time in a scoped loop.
        let src = &format!(
            "{HELPERS}
impl Cache {{
    fn review(&self) {{
        let Some(arb) = &self.arbiter else {{ return }};
        let mut ast = arb.lock().unwrap_or_else(PoisonError::into_inner);
        let mut tenants: Vec<MutexGuard<TenantState>> = self
            .tenants
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        for s in 0..self.nshards {{
            let slot = self.lock_shard(s);
            ast.note(slot.used());
        }}
        tenants.clear();
    }}
}}"
        );
        assert!(findings(src).is_empty(), "{:?}", findings(src));
    }

    #[test]
    fn model_exports_summaries_for_cross_checks() {
        let mut ws = Workspace::default();
        ws.add_file("crates/core/src/demo.rs", HELPERS);
        let cg = CallGraph::build(&ws);
        let m = model(&ws, &cg);
        assert!(m
            .returns_guard
            .contains("cce_core::demo::Cache::lock_shard"));
        assert_eq!(
            m.may_acquire["cce_core::demo::Cache::lock_shard_pair"],
            BTreeSet::from([LockClass::Shard])
        );
        assert_eq!(
            m.may_acquire["cce_core::demo::Cache::lock_tenant"],
            BTreeSet::from([LockClass::Tenant])
        );
    }
}
