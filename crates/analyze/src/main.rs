//! CLI entry point; see `cce-analyze --help` or DESIGN.md §9.

#![deny(unsafe_code)]

use std::collections::BTreeSet;
use std::path::PathBuf;
use std::process::{Command, ExitCode};
use std::time::Instant;

use cce_analyze::{sarif, scan_fixtures, scan_repo, Baseline, Finding};
use cce_util::Json;

const USAGE: &str = "\
cce-analyze — repo-specific static analysis (see DESIGN.md §9)

USAGE:
    cce-analyze [OPTIONS] [FILES...]

With no FILES, lints every crates/*/src/**/*.rs under --root using the
per-crate scoping rules; the interprocedural passes (nondet-taint,
lock-graph) see the whole workspace at once. With FILES, lints exactly
those files as one miniature workspace with every lint enabled and no
path exemptions (fixture mode).

OPTIONS:
    --root DIR          Repository root to scan (default: .)
    --format FMT        Output format: text | json | sarif (default: text)
    --baseline FILE     Suppress findings covered by this ratchet file
    --update-baseline   Rewrite --baseline FILE from current findings
    --budget-ms N       Fail (exit 1) if analysis exceeds N milliseconds
    --git-diff REV      Incremental mode: scan the whole workspace (the
                        symbol table, call graph and summaries stay
                        workspace-wide) but report only findings in
                        files changed since REV (`git diff --name-only
                        REV`). Stale-baseline enforcement is skipped —
                        unchanged buckets would look paid-down.
    -h, --help          Show this help

EXIT CODES:
    0  no findings above baseline, baseline not stale
    1  findings reported, the baseline over-budgets a paid-down file
       (rerun with --update-baseline to lock the reduction in), or the
       --budget-ms wall-time budget was exceeded
    2  usage or I/O error";

/// `(lint, file, budget, current)` from [`Baseline::stale_buckets`].
type StaleBucket = (String, String, usize, usize);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

struct Options {
    root: PathBuf,
    format: Format,
    baseline: Option<PathBuf>,
    update_baseline: bool,
    budget_ms: Option<u64>,
    git_diff: Option<String>,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        format: Format::Text,
        baseline: None,
        update_baseline: false,
        budget_ms: None,
        git_diff: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => return Ok(None),
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--format" => match it.next().map(String::as_str) {
                Some("text") => opts.format = Format::Text,
                Some("json") => opts.format = Format::Json,
                Some("sarif") => opts.format = Format::Sarif,
                other => {
                    return Err(format!(
                        "--format must be text, json, or sarif, got {other:?}"
                    ))
                }
            },
            "--baseline" => {
                let file = it.next().ok_or("--baseline needs a file")?;
                opts.baseline = Some(PathBuf::from(file));
            }
            "--update-baseline" => opts.update_baseline = true,
            "--git-diff" => {
                let rev = it.next().ok_or("--git-diff needs a revision")?;
                opts.git_diff = Some(rev.clone());
            }
            "--budget-ms" => {
                let n = it.next().ok_or("--budget-ms needs a number")?;
                opts.budget_ms = Some(n.parse().map_err(|e| format!("--budget-ms {n}: {e}"))?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown option {flag}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    if opts.update_baseline && opts.baseline.is_none() {
        return Err("--update-baseline needs --baseline FILE".to_owned());
    }
    if opts.git_diff.is_some() && !opts.files.is_empty() {
        return Err("--git-diff applies to repo scans, not explicit FILES".to_owned());
    }
    Ok(Some(opts))
}

/// Repo-relative paths (forward slashes) changed since `rev`, per
/// `git -C root diff --name-only rev`.
fn changed_files(root: &std::path::Path, rev: &str) -> Result<BTreeSet<String>, String> {
    let output = Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["diff", "--name-only", rev])
        .output()
        .map_err(|e| format!("running git diff: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "git diff --name-only {rev} failed: {}",
            String::from_utf8_lossy(&output.stderr).trim()
        ));
    }
    Ok(String::from_utf8_lossy(&output.stdout)
        .lines()
        .map(|l| l.trim().replace('\\', "/"))
        .filter(|l| !l.is_empty())
        .collect())
}

fn findings_json(findings: &[Finding], suppressed: usize, stale: &[StaleBucket]) -> Json {
    Json::obj(vec![
        (
            "findings",
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        let mut pairs = vec![
                            ("file", Json::from(f.file.as_str())),
                            ("line", Json::from(f.line)),
                            ("lint", Json::from(f.lint)),
                            ("message", Json::from(f.message.as_str())),
                        ];
                        if !f.trace.is_empty() {
                            pairs.push((
                                "trace",
                                Json::Arr(
                                    f.trace
                                        .iter()
                                        .map(|h| {
                                            Json::obj(vec![
                                                ("file", Json::from(h.file.as_str())),
                                                ("line", Json::from(h.line)),
                                                ("label", Json::from(h.label.as_str())),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ));
                        }
                        Json::obj(pairs)
                    })
                    .collect(),
            ),
        ),
        ("total", Json::from(findings.len())),
        ("suppressed_by_baseline", Json::from(suppressed)),
        (
            "stale_baseline",
            Json::Arr(
                stale
                    .iter()
                    .map(|(lint, file, budget, current)| {
                        Json::obj(vec![
                            ("lint", Json::from(lint.as_str())),
                            ("file", Json::from(file.as_str())),
                            ("budget", Json::from(*budget)),
                            ("current", Json::from(*current)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(opts) = parse_args(args)? else {
        println!("{USAGE}");
        return Ok(ExitCode::SUCCESS);
    };

    let started = Instant::now();
    let mut findings = if opts.files.is_empty() {
        scan_repo(&opts.root).map_err(|e| format!("scanning {}: {e}", opts.root.display()))?
    } else {
        scan_fixtures(&opts.files).map_err(|e| format!("fixture scan: {e}"))?
    };
    let incremental = match &opts.git_diff {
        Some(rev) => {
            let changed = changed_files(&opts.root, rev)?;
            findings.retain(|f| changed.contains(&f.file));
            true
        }
        None => false,
    };
    let elapsed_ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);

    if opts.update_baseline {
        let path = opts.baseline.as_ref().expect("checked in parse_args");
        let text = Baseline::from_findings(&findings)
            .to_json()
            .to_string_compact();
        std::fs::write(path, text + "\n").map_err(|e| format!("{}: {e}", path.display()))?;
        println!(
            "cce-analyze: wrote baseline {} covering {} finding(s)",
            path.display(),
            findings.len()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = match &opts.baseline {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?
        }
        None => Baseline::empty(),
    };
    let stale = if incremental {
        // Buckets in unchanged files would all look paid-down.
        Vec::new()
    } else {
        baseline.stale_buckets(&findings)
    };
    let (kept, suppressed) = baseline.apply(findings);
    let over_budget = opts.budget_ms.is_some_and(|b| elapsed_ms > b);

    match opts.format {
        Format::Json => println!(
            "{}",
            findings_json(&kept, suppressed, &stale).to_string_compact()
        ),
        Format::Sarif => println!("{}", sarif::to_sarif(&kept).to_string_compact()),
        Format::Text => {
            for f in &kept {
                println!("{f}");
                for hop in &f.trace {
                    println!("    {} ({}:{})", hop.label, hop.file, hop.line);
                }
            }
            for (lint, file, budget, current) in &stale {
                println!(
                    "cce-analyze: baseline is stale for {file}: [{lint}] budget {budget}, \
                     current {current}; run --update-baseline to lock the reduction in"
                );
            }
            println!(
                "cce-analyze: {} finding(s), {} suppressed by baseline, {} stale baseline bucket(s)",
                kept.len(),
                suppressed,
                stale.len()
            );
        }
    }
    if over_budget {
        eprintln!(
            "cce-analyze: wall time {elapsed_ms} ms exceeded --budget-ms {}",
            opts.budget_ms.unwrap_or(0)
        );
    }
    Ok(if kept.is_empty() && stale.is_empty() && !over_budget {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("cce-analyze: {message}");
            ExitCode::from(2)
        }
    }
}
