//! SARIF 2.1.0 emission (`cce-analyze --format sarif`).
//!
//! Produces a minimal, spec-conformant Static Analysis Results
//! Interchange Format log: one run, the lint catalog as
//! `tool.driver.rules`, one `result` per finding with a physical
//! location, and — when a finding carries an interprocedural trace —
//! a `codeFlows`/`threadFlows` chain so viewers can step the call
//! path from sink declaration to nondeterminism source (or from lock
//! hold site to conflicting acquisition).

use std::collections::BTreeSet;

use cce_util::Json;

use crate::lints::Finding;

/// Short help text per lint, surfaced as the SARIF rule description.
fn rule_help(lint: &str) -> &'static str {
    match lint {
        crate::lints::NONDET_TAINT => {
            "A nondeterminism source (hash-order iteration, wall-clock time, \
             parallelism probe, unordered channel) reaches an event-emitting or \
             SimResult-producing function through the call graph."
        }
        crate::lints::COST_CONSTANT => {
            "Paper-derived cost-model constants must live in cce_core::cost."
        }
        crate::lints::PANIC_PATH => {
            "unwrap/expect/panic on a library path; return an error instead."
        }
        crate::lints::EVENT_TYPESTATE => {
            "Every path from EvictionBegin must emit exactly one EvictionEnd \
             before function exit; no nested scopes; Evicted/Unlinked only \
             inside an open scope. CacheEvent construction stays confined to \
             the event machinery."
        }
        crate::lints::COST_UNITS => {
            "Bytes, cycles and event counts are distinct currencies: no \
             cross-unit +/- arithmetic, and integer cycle accumulators must \
             use saturating/checked ops."
        }
        crate::lints::LOCK_GRAPH => {
            "Locks must follow the global hierarchy arbiter \u{2192} tenant \
             (ascending) \u{2192} shard (ascending) on every interprocedural path."
        }
        _ => "cce-analyze finding.",
    }
}

fn location(file: &str, line: u32, message: Option<&str>) -> Json {
    let physical = (
        "physicalLocation",
        Json::obj(vec![
            (
                "artifactLocation",
                Json::obj(vec![("uri", Json::from(file))]),
            ),
            ("region", Json::obj(vec![("startLine", Json::from(line))])),
        ]),
    );
    match message {
        Some(m) => Json::obj(vec![
            physical,
            ("message", Json::obj(vec![("text", Json::from(m))])),
        ]),
        None => Json::obj(vec![physical]),
    }
}

fn result(f: &Finding) -> Json {
    let mut pairs = vec![
        ("ruleId", Json::from(f.lint)),
        ("level", Json::from("error")),
        (
            "message",
            Json::obj(vec![("text", Json::from(f.message.as_str()))]),
        ),
        (
            "locations",
            Json::Arr(vec![location(&f.file, f.line, None)]),
        ),
    ];
    if !f.trace.is_empty() {
        let steps: Vec<Json> = f
            .trace
            .iter()
            .map(|hop| {
                Json::obj(vec![(
                    "location",
                    location(&hop.file, hop.line, Some(&hop.label)),
                )])
            })
            .collect();
        pairs.push((
            "codeFlows",
            Json::Arr(vec![Json::obj(vec![(
                "threadFlows",
                Json::Arr(vec![Json::obj(vec![("locations", Json::Arr(steps))])]),
            )])]),
        ));
    }
    Json::obj(pairs)
}

/// Renders findings as a SARIF 2.1.0 log (compact JSON).
#[must_use]
pub fn to_sarif(findings: &[Finding]) -> Json {
    let lints: BTreeSet<&str> = findings.iter().map(|f| f.lint).collect();
    let rules: Vec<Json> = lints
        .into_iter()
        .map(|lint| {
            Json::obj(vec![
                ("id", Json::from(lint)),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::from(rule_help(lint)))]),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "$schema",
            Json::from(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
            ),
        ),
        ("version", Json::from("2.1.0")),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::from("cce-analyze")),
                            (
                                "informationUri",
                                Json::from("https://example.invalid/cce-analyze"),
                            ),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                (
                    "results",
                    Json::Arr(findings.iter().map(result).collect()),
                ),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::{Finding, TraceHop, LOCK_GRAPH, NONDET_TAINT};

    fn sample() -> Vec<Finding> {
        let mut with_trace = Finding::new(
            "crates/core/src/a.rs",
            7,
            NONDET_TAINT,
            "HashMap iteration reaches sink".to_owned(),
        );
        with_trace.trace = vec![
            TraceHop {
                file: "crates/core/src/a.rs".to_owned(),
                line: 3,
                label: "sink `emit`".to_owned(),
            },
            TraceHop {
                file: "crates/core/src/a.rs".to_owned(),
                line: 7,
                label: "source in `walk`".to_owned(),
            },
        ];
        vec![
            with_trace,
            Finding::new(
                "crates/core/src/b.rs",
                11,
                LOCK_GRAPH,
                "backward edge".to_owned(),
            ),
        ]
    }

    #[test]
    fn log_has_schema_version_rules_and_results() {
        let log = to_sarif(&sample());
        assert_eq!(log.get("version").and_then(Json::as_str), Some("2.1.0"));
        let run = &log.get("runs").and_then(Json::as_arr).unwrap()[0];
        let driver = run.get("tool").and_then(|t| t.get("driver")).unwrap();
        assert_eq!(
            driver.get("name").and_then(Json::as_str),
            Some("cce-analyze")
        );
        let rules = driver.get("rules").and_then(Json::as_arr).unwrap();
        let ids: Vec<&str> = rules
            .iter()
            .filter_map(|r| r.get("id").and_then(Json::as_str))
            .collect();
        assert_eq!(ids, vec![LOCK_GRAPH, NONDET_TAINT]);
        assert_eq!(run.get("results").and_then(Json::as_arr).unwrap().len(), 2);
    }

    #[test]
    fn traces_become_code_flows() {
        let log = to_sarif(&sample());
        let runs = log.get("runs").and_then(Json::as_arr).unwrap();
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        let flows = results[0].get("codeFlows").and_then(Json::as_arr).unwrap();
        let steps = flows[0]
            .get("threadFlows")
            .and_then(Json::as_arr)
            .and_then(|tf| tf[0].get("locations"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(steps.len(), 2);
        let msg = steps[0]
            .get("location")
            .and_then(|l| l.get("message"))
            .and_then(|m| m.get("text"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(msg.contains("sink"));
        // The untraced finding has no codeFlows key.
        assert!(results[1].get("codeFlows").is_none());
    }

    #[test]
    fn physical_locations_carry_uri_and_line() {
        let log = to_sarif(&sample());
        let runs = log.get("runs").and_then(Json::as_arr).unwrap();
        let loc = runs[0]
            .get("results")
            .and_then(Json::as_arr)
            .and_then(|r| r[1].get("locations"))
            .and_then(Json::as_arr)
            .map(|l| &l[0])
            .unwrap();
        let phys = loc.get("physicalLocation").unwrap();
        assert_eq!(
            phys.get("artifactLocation")
                .and_then(|a| a.get("uri"))
                .and_then(Json::as_str),
            Some("crates/core/src/b.rs")
        );
        assert_eq!(
            phys.get("region")
                .and_then(|r| r.get("startLine"))
                .and_then(Json::as_u64),
            Some(11)
        );
    }
}
