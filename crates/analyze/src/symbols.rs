//! Layer 1 of the interprocedural analyzer: a lightweight item parser
//! on top of [`crate::lexer`].
//!
//! It does not parse Rust expressions — it recovers just enough
//! structure for a conservative whole-workspace call graph
//! ([`crate::callgraph`]):
//!
//! * `fn` items with their signature and body token ranges, qualified
//!   by module path (derived from the file's location under
//!   `crates/<name>/src/`) and enclosing `impl`/`trait` type;
//! * `use` declarations, resolved to an alias → path-segments map
//!   (groups and `as` renames included, globs ignored);
//! * inline `mod` blocks, so nested modules qualify their items.
//!
//! Generic parameter lists — including nested turbofish like
//! `f::<HashMap<u64, Vec<u64>>>` — are skipped with an angle-depth
//! counter, and `r#`-raw identifiers are normalized to their bare name,
//! so neither can desynchronize item recognition (regression-tested
//! here and in `tests/golden.rs`).

use std::collections::BTreeMap;

use crate::lexer::{lex, Lexed, TokKind, Token};
use crate::lints::test_ranges;

/// One `fn` item anywhere in the workspace.
#[derive(Debug)]
pub struct FnDef {
    /// Bare function name (raw-identifier prefix stripped).
    pub name: String,
    /// Display-qualified name, e.g.
    /// `cce_core::concurrent::ConcurrentCache::lock_shard`.
    pub qname: String,
    /// Enclosing `impl`/`trait` type name, if this is a method.
    pub self_ty: Option<String>,
    /// Index of the defining file in [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token range of the signature: `(index of name token, index of
    /// the body `{` or terminating `;`)`.
    pub sig: (usize, usize),
    /// Token range of the body including both braces; empty
    /// (`start == end`) for bodyless trait declarations.
    pub body: (usize, usize),
}

/// One parsed source file: its token stream plus resolved imports and
/// the functions it defines.
pub struct FileSyms {
    /// Repo-relative path with forward slashes (or the literal path in
    /// fixture mode).
    pub rel: String,
    /// The token stream and allow-annotations.
    pub lexed: Lexed,
    /// Local alias → full path segments from `use` declarations.
    pub uses: BTreeMap<String, Vec<String>>,
    /// Indices into [`Workspace::fns`] of functions defined here.
    pub fns: Vec<usize>,
    /// Token ranges of `#[cfg(test)] mod … { … }` bodies.
    pub tests: Vec<(usize, usize)>,
}

/// The workspace symbol table: every parsed file and a name index over
/// every function.
#[derive(Default)]
pub struct Workspace {
    /// Parsed files in scan order.
    pub files: Vec<FileSyms>,
    /// All function definitions across files.
    pub fns: Vec<FnDef>,
    /// Bare name → function ids (conservative resolution universe).
    pub by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Parses and adds one file; returns its index.
    pub fn add_file(&mut self, rel: &str, src: &str) -> usize {
        let file_idx = self.files.len();
        let lexed = lex(src);
        let module = module_path(rel);
        let parsed = parse_items(&lexed.tokens);
        let mut fn_ids = Vec::with_capacity(parsed.fns.len());
        for item in parsed.fns {
            let id = self.fns.len();
            let mut q = module.clone();
            if let Some(ty) = &item.self_ty {
                q.push(ty.clone());
            }
            q.push(item.name.clone());
            self.fns.push(FnDef {
                name: item.name.clone(),
                qname: q.join("::"),
                self_ty: item.self_ty,
                file: file_idx,
                line: item.line,
                sig: item.sig,
                body: item.body,
            });
            self.by_name.entry(item.name).or_default().push(id);
            fn_ids.push(id);
        }
        let tests = test_ranges(&lexed.tokens);
        self.files.push(FileSyms {
            rel: rel.to_owned(),
            lexed,
            uses: parsed.uses,
            fns: fn_ids,
            tests,
        });
        file_idx
    }

    /// Candidate functions for a bare name.
    #[must_use]
    pub fn candidates(&self, name: &str) -> &[usize] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}

/// Strips a `r#` raw-identifier prefix.
#[must_use]
pub fn bare_name(text: &str) -> &str {
    text.strip_prefix("r#").unwrap_or(text)
}

/// Module path segments for a repo-relative file path:
/// `crates/core/src/org/lru.rs` → `["cce_core", "org", "lru"]`.
fn module_path(rel: &str) -> Vec<String> {
    let mut segs = Vec::new();
    let Some(rest) = rel.strip_prefix("crates/") else {
        // Fixture mode: qualify by file stem so paths stay readable.
        let stem = rel.rsplit('/').next().unwrap_or(rel);
        segs.push(stem.trim_end_matches(".rs").to_owned());
        return segs;
    };
    let mut parts = rest.split('/');
    if let Some(krate) = parts.next() {
        segs.push(format!("cce_{krate}").replace('-', "_"));
    }
    let tail: Vec<&str> = parts.collect();
    // Drop the leading `src` and the `lib.rs`/`main.rs`/`mod.rs` leaf.
    for (i, part) in tail.iter().enumerate() {
        if i == 0 && *part == "src" {
            continue;
        }
        let stem = part.trim_end_matches(".rs");
        if (i + 1 == tail.len()) && matches!(stem, "lib" | "main" | "mod") {
            continue;
        }
        segs.push(stem.to_owned());
    }
    segs
}

struct ParsedFn {
    name: String,
    self_ty: Option<String>,
    line: u32,
    sig: (usize, usize),
    body: (usize, usize),
}

struct ParsedItems {
    fns: Vec<ParsedFn>,
    uses: BTreeMap<String, Vec<String>>,
}

/// Skips a generic parameter list starting at `<`, tracking nested
/// angle depth. Returns the index just past the matching `>`. Parens,
/// brackets and braces inside (const generics, `Fn(..)` bounds) are
/// skipped as balanced groups so their `<`/`>` comparisons cannot
/// confuse the counter.
fn skip_angles(tokens: &[Token], at: usize) -> usize {
    let mut depth = 0usize;
    let mut i = at;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("<") {
            depth += 1;
        } else if t.is_punct(">") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct("->") {
            // `Fn(..) -> T` inside a bound: the arrow's `>` is fused by
            // the lexer, so nothing to do — listed for clarity.
        } else if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
            i = skip_group(tokens, i);
            continue;
        }
        i += 1;
    }
    tokens.len()
}

/// Skips a balanced `(`/`[`/`{` group; `tokens[at]` must be the opener.
fn skip_group(tokens: &[Token], at: usize) -> usize {
    let (open, close) = match tokens[at].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0usize;
    let mut i = at;
    while i < tokens.len() {
        if tokens[i].is_punct(open) {
            depth += 1;
        } else if tokens[i].is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// The item scan: one linear pass with an `impl`/`trait`/`mod` context.
fn parse_items(tokens: &[Token]) -> ParsedItems {
    let mut fns = Vec::new();
    let mut uses = BTreeMap::new();
    // Stack of (self-type-or-None, brace token index of the block).
    let mut ctx: Vec<(Option<String>, usize)> = Vec::new();
    let mut closers: Vec<usize> = Vec::new(); // matching `}` indices
    let mut i = 0;
    while i < tokens.len() {
        while closers.last() == Some(&i) {
            closers.pop();
            ctx.pop();
        }
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "use" => {
                let end = parse_use(tokens, i + 1, &mut uses);
                i = end;
            }
            "impl" | "trait" => {
                let kind_is_impl = t.text == "impl";
                let mut j = i + 1;
                if j < tokens.len() && tokens[j].is_punct("<") {
                    j = skip_angles(tokens, j);
                }
                // Self type: for `impl A for B`, the path after `for`;
                // otherwise the first path. Take the last ident of that
                // path before generics/brace/where.
                let mut self_ty = None;
                let mut after_for = false;
                while j < tokens.len() {
                    let u = &tokens[j];
                    if u.is_punct("{") {
                        break;
                    }
                    if u.is_ident("where") {
                        // Bounds may mention other types; stop naming.
                        while j < tokens.len() && !tokens[j].is_punct("{") {
                            j += 1;
                        }
                        break;
                    }
                    if u.is_ident("for") && kind_is_impl {
                        after_for = true;
                        self_ty = None;
                        j += 1;
                        continue;
                    }
                    if u.kind == TokKind::Ident && (self_ty.is_none() || after_for || kind_is_impl)
                    {
                        // Keep overwriting with the latest path segment
                        // so `a::b::Type` resolves to `Type`.
                        let keep = tokens.get(j + 1).is_some_and(|n| n.is_punct("::"))
                            || self_ty.is_none()
                            || tokens
                                .get(j.wrapping_sub(1))
                                .is_some_and(|p| p.is_punct("::"));
                        if keep {
                            self_ty = Some(bare_name(&u.text).to_owned());
                        }
                    }
                    if u.is_punct("<") {
                        j = skip_angles(tokens, j);
                        continue;
                    }
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct("{") {
                    let end = skip_group(tokens, j);
                    ctx.push((self_ty, j));
                    closers.push(end - 1);
                    i = j + 1;
                } else {
                    i = j;
                }
            }
            "mod" => {
                // `mod name { … }` keeps the current self-type context
                // out (modules reset it); `mod name;` is skipped.
                let mut j = i + 1;
                while j < tokens.len() && !tokens[j].is_punct("{") && !tokens[j].is_punct(";") {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct("{") {
                    let end = skip_group(tokens, j);
                    ctx.push((None, j));
                    closers.push(end - 1);
                    i = j + 1;
                } else {
                    i = j + 1;
                }
            }
            "fn" => {
                let Some(name_tok) = tokens.get(i + 1) else {
                    i += 1;
                    continue;
                };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let name = bare_name(&name_tok.text).to_owned();
                let mut j = i + 2;
                if j < tokens.len() && tokens[j].is_punct("<") {
                    j = skip_angles(tokens, j);
                }
                // Walk the parameter list, return type and where clause
                // to the body `{` or declaration `;`.
                while j < tokens.len() {
                    let u = &tokens[j];
                    if u.is_punct("{") || u.is_punct(";") {
                        break;
                    }
                    if u.is_punct("(") || u.is_punct("[") {
                        j = skip_group(tokens, j);
                        continue;
                    }
                    if u.is_punct("<") {
                        j = skip_angles(tokens, j);
                        continue;
                    }
                    j += 1;
                }
                let sig = (i + 1, j.min(tokens.len()));
                let (body, next) = if j < tokens.len() && tokens[j].is_punct("{") {
                    let end = skip_group(tokens, j);
                    ((j, end), end)
                } else {
                    ((j, j), j.saturating_add(1))
                };
                let self_ty = ctx.iter().rev().find_map(|(ty, _)| ty.clone());
                fns.push(ParsedFn {
                    name,
                    self_ty,
                    line: t.line,
                    sig,
                    body,
                });
                i = next;
            }
            _ => i += 1,
        }
    }
    ParsedItems { fns, uses }
}

/// Parses one `use …;` starting just past the `use` keyword; fills the
/// alias map and returns the index past the `;`.
fn parse_use(tokens: &[Token], at: usize, uses: &mut BTreeMap<String, Vec<String>>) -> usize {
    let mut end = at;
    while end < tokens.len() && !tokens[end].is_punct(";") {
        end += 1;
    }
    collect_use_tree(&tokens[at..end], &[], uses);
    end + 1
}

/// Recursively flattens a use-tree (`a::b::{c, d as e, f::g}`) into
/// alias → segments entries. Globs contribute nothing.
fn collect_use_tree(toks: &[Token], prefix: &[String], uses: &mut BTreeMap<String, Vec<String>>) {
    let mut segs: Vec<String> = prefix.to_vec();
    let mut i = 0;
    let mut alias: Option<String> = None;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct("{") {
            // Split the group body on top-level commas, recursing with
            // the accumulated prefix.
            let close = skip_group(toks, i);
            let inner = &toks[i + 1..close.saturating_sub(1)];
            let mut depth = 0usize;
            let mut start = 0usize;
            for (k, u) in inner.iter().enumerate() {
                if u.is_punct("{") {
                    depth += 1;
                } else if u.is_punct("}") {
                    depth -= 1;
                } else if depth == 0 && u.is_punct(",") {
                    collect_use_tree(&inner[start..k], &segs, uses);
                    start = k + 1;
                }
            }
            collect_use_tree(&inner[start..], &segs, uses);
            return;
        }
        if t.is_ident("as") {
            if let Some(next) = toks.get(i + 1) {
                alias = Some(bare_name(&next.text).to_owned());
            }
            i += 2;
            continue;
        }
        if t.kind == TokKind::Ident && !t.is_ident("pub") {
            segs.push(bare_name(&t.text).to_owned());
        }
        if t.is_punct("*") {
            return; // glob: nothing to record
        }
        i += 1;
    }
    if segs.len() > prefix.len() {
        let name = alias.unwrap_or_else(|| segs.last().expect("nonempty").clone());
        uses.insert(name, segs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(src: &str) -> Workspace {
        let mut w = Workspace::default();
        w.add_file("crates/core/src/demo.rs", src);
        w
    }

    #[test]
    fn fns_in_impls_traits_and_mods_are_qualified() {
        let w = ws("
use std::collections::HashMap;
pub fn free() {}
impl Cache {
    pub fn insert(&mut self) {}
    fn helper() {}
}
impl CacheSession for ShardedCache {
    fn flush(&mut self) {}
}
trait Org {
    fn evict(&mut self);
    fn name(&self) -> &str { \"org\" }
}
mod inner {
    pub fn nested() {}
}
");
        let names: Vec<&str> = w.fns.iter().map(|f| f.qname.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "cce_core::demo::free",
                "cce_core::demo::Cache::insert",
                "cce_core::demo::Cache::helper",
                "cce_core::demo::ShardedCache::flush",
                "cce_core::demo::Org::evict",
                "cce_core::demo::Org::name",
                // Inline-mod fns keep the file's module path: the
                // analyzer resolves by bare name, so the nesting level
                // is presentation only.
                "cce_core::demo::nested",
            ]
        );
        let evict = &w.fns[4];
        assert_eq!(evict.body.0, evict.body.1, "declaration has no body");
        let name_fn = &w.fns[5];
        assert!(name_fn.body.1 > name_fn.body.0, "default method has one");
        assert_eq!(
            w.files[0].uses.get("HashMap"),
            Some(&vec![
                "std".to_owned(),
                "collections".to_owned(),
                "HashMap".to_owned()
            ])
        );
    }

    #[test]
    fn use_groups_and_renames_resolve() {
        let w = ws("use crate::{cache::CodeCache, events::{EventSink as Sink, NullSink}};");
        let uses = &w.files[0].uses;
        assert_eq!(
            uses.get("CodeCache").map(|s| s.join("::")).as_deref(),
            Some("crate::cache::CodeCache")
        );
        assert_eq!(
            uses.get("Sink").map(|s| s.join("::")).as_deref(),
            Some("crate::events::EventSink")
        );
        assert_eq!(
            uses.get("NullSink").map(|s| s.join("::")).as_deref(),
            Some("crate::events::NullSink")
        );
    }

    #[test]
    fn nested_turbofish_in_signatures_does_not_derail_items() {
        // The generic skipper must balance nested angles in the fn's
        // own generics, parameter types, return type and body.
        let w = ws("
fn first<T: Into<Vec<HashMap<u64, Vec<u64>>>>>(m: HashMap<u64, Vec<u64>>) -> Vec<Vec<u8>> {
    m.values().flat_map(|v| v.iter().map(|x| x.to_le_bytes().to_vec())).collect::<Vec<Vec<u8>>>()
}
fn second() {}
");
        let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["first", "second"], "both items parsed");
    }

    #[test]
    fn raw_identifiers_name_items_bare() {
        let w = ws("fn r#loop() {} impl S { fn r#match(&self) { r#loop(); } }");
        let names: Vec<&str> = w.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["loop", "match"]);
        assert_eq!(w.fns[1].self_ty.as_deref(), Some("S"));
    }

    #[test]
    fn module_paths_from_file_locations() {
        assert_eq!(module_path("crates/core/src/lib.rs"), vec!["cce_core"]);
        assert_eq!(
            module_path("crates/core/src/org/lru.rs"),
            vec!["cce_core", "org", "lru"]
        );
        assert_eq!(
            module_path("crates/core/src/org/mod.rs"),
            vec!["cce_core", "org"]
        );
        assert_eq!(module_path("fixtures/taint.rs"), vec!["taint"]);
    }

    #[test]
    fn impl_self_type_is_the_last_path_segment() {
        let w = ws("impl crate::shard::ShardedCache { fn touch(&self) {} }");
        assert_eq!(w.fns[0].self_ty.as_deref(), Some("ShardedCache"));
        let w = ws("impl<T: Org> Wrapper<T> { fn get(&self) {} }");
        assert_eq!(w.fns[0].self_ty.as_deref(), Some("Wrapper"));
    }
}
