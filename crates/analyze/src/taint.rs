//! The interprocedural **determinism-taint** lint (`nondet-taint`).
//!
//! Successor to the file-local `nondet-iter` heuristic: instead of
//! flagging every `HashMap` iteration in a deterministic-output crate,
//! it marks **nondeterminism sources** and reports only those with a
//! call path into an **event-emitting or result-producing function** —
//! a function whose signature mentions `EventSink` or `SimResult`. A
//! hash iteration whose order provably cannot reach an event stream or
//! a `SimResult` (because no sink transitively calls the function
//! containing it) is clean, and a source two hops away from a sink is
//! caught, neither of which the old lint could do.
//!
//! Sources:
//! * iteration over default-`RandomState` `HashMap`/`HashSet`
//!   (`.iter()`, `.keys()`, `.drain()`, …, and plain `for … in &map`);
//! * `Instant::now` / `SystemTime::now`-derived values;
//! * `available_parallelism` (machine-dependent);
//! * thread identity (`thread::current`, `ThreadId`) and unordered
//!   channel selection (`try_recv`, `recv_timeout`, `try_iter`).
//!
//! The sink→source path is found by BFS over the **full** conservative
//! call graph — over-approximate by design, since a missed edge here
//! would be an unsound "clean". Each finding is reported at the source
//! site (so baselines bucket by the file that owns the
//! nondeterminism) and carries the call path as trace hops.

use std::collections::VecDeque;

use crate::callgraph::CallGraph;
use crate::lexer::{TokKind, Token};
use crate::lints::{in_test, is_suppressed, Finding, TraceHop, NONDET_TAINT};
use crate::symbols::Workspace;

/// Crates whose sources are in scope for the taint lint (`concurrent`
/// lives inside `core`).
const SCOPE_CRATES: &[&str] = &["core", "sim", "dbt", "experiments"];

/// Identifiers in a signature that make a function a determinism sink.
const SINK_SIGNATURE_TYPES: &[&str] = &["EventSink", "SimResult"];

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Unordered-receive methods on channels: which sender's message
/// arrives first depends on scheduling.
const CHANNEL_METHODS: &[&str] = &["try_recv", "recv_timeout", "try_iter"];

/// One nondeterminism source site.
struct Source {
    file: usize,
    tok: usize,
    line: u32,
    desc: String,
}

/// Runs the taint lint over the workspace. `repo_scope` restricts
/// source sites to [`SCOPE_CRATES`]; fixture mode passes `false` and
/// scans every file.
#[must_use]
pub fn run(ws: &Workspace, cg: &CallGraph, repo_scope: bool) -> Vec<Finding> {
    let sinks = sink_fns(ws);
    if sinks.iter().all(|s| !s) {
        return Vec::new();
    }
    // Reverse adjacency over the full graph: callee → (caller, line).
    let mut rev: Vec<Vec<(usize, u32)>> = vec![Vec::new(); ws.fns.len()];
    for (caller, edges) in cg.edges.iter().enumerate() {
        for e in edges {
            rev[e.callee].push((caller, cg.sites[caller][e.site].line));
        }
    }
    let mut findings = Vec::new();
    for (file_idx, file) in ws.files.iter().enumerate() {
        if repo_scope && !in_scope(&file.rel) {
            continue;
        }
        for source in sources_in_file(ws, file_idx) {
            let Some(owner) = containing_fn(ws, file_idx, source.tok) else {
                continue;
            };
            let Some((sink, hops)) = nearest_sink(ws, &rev, &sinks, owner) else {
                continue;
            };
            if is_suppressed(&file.lexed, NONDET_TAINT, source.line) {
                continue;
            }
            findings.push(finding_for(ws, &source, owner, sink, &hops));
        }
    }
    findings
}

fn in_scope(rel: &str) -> bool {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .is_none_or(|krate| SCOPE_CRATES.contains(&krate))
}

/// Which workspace functions are sinks: `EventSink` or `SimResult` in
/// the signature, outside `#[cfg(test)]` modules.
fn sink_fns(ws: &Workspace) -> Vec<bool> {
    ws.fns
        .iter()
        .map(|f| {
            let file = &ws.files[f.file];
            let tokens = &file.lexed.tokens;
            if in_test(&file.tests, f.sig.0) {
                return false;
            }
            tokens[f.sig.0..f.sig.1.min(tokens.len())].iter().any(|t| {
                t.kind == TokKind::Ident && SINK_SIGNATURE_TYPES.contains(&t.text.as_str())
            })
        })
        .collect()
}

/// The innermost function whose body contains token `tok`.
fn containing_fn(ws: &Workspace, file_idx: usize, tok: usize) -> Option<usize> {
    ws.files[file_idx]
        .fns
        .iter()
        .copied()
        .filter(|&id| {
            let (s, e) = ws.fns[id].body;
            tok >= s && tok < e
        })
        .max_by_key(|&id| ws.fns[id].body.0)
}

/// BFS from the source-owning function **up the callers** to the
/// nearest sink. Returns the sink and the downward chain
/// `(caller, call line)` from the sink to the owner.
fn nearest_sink(
    ws: &Workspace,
    rev: &[Vec<(usize, u32)>],
    sinks: &[bool],
    owner: usize,
) -> Option<(usize, Vec<(usize, u32)>)> {
    let mut seen = vec![false; ws.fns.len()];
    // For each visited caller, the (callee, line) step taken to reach it
    // — i.e. the downward edge back toward the source.
    let mut down: Vec<Option<(usize, u32)>> = vec![None; ws.fns.len()];
    let mut queue = VecDeque::from([owner]);
    seen[owner] = true;
    let mut found = None;
    'bfs: while let Some(f) = queue.pop_front() {
        if sinks[f] {
            found = Some(f);
            break 'bfs;
        }
        for &(caller, line) in &rev[f] {
            if !seen[caller] {
                seen[caller] = true;
                down[caller] = Some((f, line));
                queue.push_back(caller);
            }
        }
    }
    let sink = found?;
    let mut hops = Vec::new();
    let mut cur = sink;
    while let Some((callee, line)) = down[cur] {
        hops.push((cur, line));
        cur = callee;
    }
    Some((sink, hops))
}

fn finding_for(
    ws: &Workspace,
    source: &Source,
    owner: usize,
    sink: usize,
    hops: &[(usize, u32)],
) -> Finding {
    let sink_fn = &ws.fns[sink];
    let owner_fn = &ws.fns[owner];
    let mut trace = vec![TraceHop {
        file: ws.files[sink_fn.file].rel.clone(),
        line: sink_fn.line,
        label: format!(
            "sink `{}` (EventSink/SimResult in signature)",
            sink_fn.qname
        ),
    }];
    for &(caller, line) in hops {
        trace.push(TraceHop {
            file: ws.files[ws.fns[caller].file].rel.clone(),
            line,
            label: format!("call inside `{}`", ws.fns[caller].qname),
        });
    }
    trace.push(TraceHop {
        file: ws.files[source.file].rel.clone(),
        line: source.line,
        label: format!("source in `{}`: {}", owner_fn.qname, source.desc),
    });
    let route = if hops.is_empty() {
        format!("inside sink `{}`", sink_fn.qname)
    } else {
        format!(
            "reaches sink `{}` through {} call hop(s)",
            sink_fn.qname,
            hops.len()
        )
    };
    Finding {
        file: ws.files[source.file].rel.clone(),
        line: source.line,
        lint: NONDET_TAINT,
        message: format!(
            "{} {route}; make the order deterministic (BTreeMap/BTreeSet, sort, fixed seed) \
             or annotate `// cce-analyze: allow(nondet-taint): <why order cannot reach \
             output>` (DESIGN.md \u{a7}8/\u{a7}9)",
            source.desc
        ),
        trace,
    }
}

/// All nondeterminism source sites in one file, outside test modules.
fn sources_in_file(ws: &Workspace, file_idx: usize) -> Vec<Source> {
    let file = &ws.files[file_idx];
    let tokens = &file.lexed.tokens;
    let tests = &file.tests;
    let mut out = Vec::new();
    hash_iteration_sources(tokens, tests, file_idx, &mut out);
    for (i, t) in tokens.iter().enumerate() {
        if in_test(tests, i) || t.kind != TokKind::Ident {
            continue;
        }
        let called = tokens.get(i + 1).is_some_and(|n| n.is_punct("("));
        let method = i > 0 && tokens[i - 1].is_punct(".");
        match t.text.as_str() {
            // `Instant::now(` / `SystemTime::now(`.
            "Instant" | "SystemTime"
                if tokens.get(i + 1).is_some_and(|n| n.is_punct("::"))
                    && tokens.get(i + 2).is_some_and(|n| n.is_ident("now"))
                    && tokens.get(i + 3).is_some_and(|n| n.is_punct("(")) =>
            {
                out.push(Source {
                    file: file_idx,
                    tok: i,
                    line: t.line,
                    desc: format!("wall-clock value from `{}::now()`", t.text),
                });
            }
            "available_parallelism" if called => {
                out.push(Source {
                    file: file_idx,
                    tok: i,
                    line: t.line,
                    desc: "machine-dependent `available_parallelism()`".to_owned(),
                });
            }
            // `thread::current(` — thread identity.
            "current"
                if called
                    && i >= 2
                    && tokens[i - 1].is_punct("::")
                    && tokens[i - 2].is_ident("thread") =>
            {
                out.push(Source {
                    file: file_idx,
                    tok: i,
                    line: t.line,
                    desc: "thread identity from `thread::current()`".to_owned(),
                });
            }
            m if called && method && CHANNEL_METHODS.contains(&m) => {
                out.push(Source {
                    file: file_idx,
                    tok: i,
                    line: t.line,
                    desc: format!("scheduling-ordered channel receive `.{m}()`"),
                });
            }
            _ => {}
        }
    }
    out.sort_by_key(|s| s.tok);
    out
}

/// Names bound to `HashMap`/`HashSet` in this file: `name: HashMap<…>`
/// declarations (lets, fields, params) and `name = HashMap::new()`-style
/// initializers. Collection is file-granular — a name hash-bound in one
/// function taints the same name everywhere in the file — which errs on
/// the side of flagging; rename or annotate to disambiguate.
fn hash_bound_names(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` path prefix, then over
        // `&`/`&mut`/lifetime qualifiers, to reach an ascription colon.
        let mut head = i;
        while head >= 2
            && tokens[head - 1].is_punct("::")
            && tokens[head - 2].kind == TokKind::Ident
        {
            head -= 2;
        }
        while head >= 1
            && (tokens[head - 1].is_punct("&")
                || tokens[head - 1].is_ident("mut")
                || tokens[head - 1].kind == TokKind::Lifetime)
        {
            head -= 1;
        }
        if head < 2 || tokens[head - 2].kind != TokKind::Ident {
            continue;
        }
        let ascription = tokens[head - 1].is_punct(":");
        let initializer =
            tokens[head - 1].is_punct("=") && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"));
        if ascription || initializer {
            names.push(tokens[head - 2].text.clone());
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Hash-iteration sources: method form (`map.iter()`, `.drain()`, …)
/// and plain `for … in &map` loops.
fn hash_iteration_sources(
    tokens: &[Token],
    tests: &[(usize, usize)],
    file_idx: usize,
    out: &mut Vec<Source>,
) {
    let names = hash_bound_names(tokens);
    if names.is_empty() {
        return;
    }
    let is_hash_name = |t: &Token| t.kind == TokKind::Ident && names.iter().any(|n| n == &t.text);
    for (i, t) in tokens.iter().enumerate() {
        if in_test(tests, i) || !is_hash_name(t) {
            continue;
        }
        if tokens.get(i + 1).is_some_and(|t| t.is_punct("."))
            && tokens.get(i + 3).is_some_and(|t| t.is_punct("("))
        {
            if let Some(m) = tokens.get(i + 2) {
                if m.kind == TokKind::Ident && ITER_METHODS.contains(&m.text.as_str()) {
                    out.push(Source {
                        file: file_idx,
                        tok: i + 2,
                        line: m.line,
                        desc: format!("RandomState-ordered iteration `{}.{}()`", t.text, m.text),
                    });
                }
            }
        }
    }
    // `for … in [&mut] name { …` form (method-call forms in the iterator
    // expression are caught above).
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].is_ident("for") || in_test(tests, i) {
            i += 1;
            continue;
        }
        // Find `in` at delimiter depth 0, then the body `{`. A brace at
        // depth 0 before any `in` — `impl Trait for Type { … }`,
        // `for<'a>` bounds reaching a body — means this `for` is not a
        // loop at all.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut found_in = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_ident("in") {
                found_in = true;
                break;
            } else if depth == 0 && t.is_punct("{") {
                break;
            }
            j += 1;
        }
        if !found_in {
            i += 1;
            continue;
        }
        let expr_start = j + 1;
        let mut k = expr_start;
        let mut has_call = false;
        while k < tokens.len() && !tokens[k].is_punct("{") {
            if tokens[k].is_punct("(") {
                has_call = true;
            }
            k += 1;
        }
        if !has_call {
            for (off, t) in tokens[expr_start..k].iter().enumerate() {
                if is_hash_name(t) {
                    out.push(Source {
                        file: file_idx,
                        tok: expr_start + off,
                        line: t.line,
                        desc: format!("RandomState-ordered `for` loop over `{}`", t.text),
                    });
                }
            }
        }
        i = k;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn findings(src: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        ws.add_file("crates/core/src/demo.rs", src);
        let cg = CallGraph::build(&ws);
        run(&ws, &cg, true)
    }

    #[test]
    fn source_reaching_sink_through_a_hop_is_flagged() {
        let f = findings(
            "
use std::collections::HashMap;
fn order(m: &HashMap<u64, u64>) -> Vec<u64> {
    let mut v = Vec::new();
    for (k, _) in m.iter() { v.push(*k); }
    v
}
pub fn emit(m: &HashMap<u64, u64>, sink: &mut dyn EventSink) {
    for id in order(m) { sink.insert(id); }
}
",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5, "reported at the source site");
        assert!(f[0].message.contains("1 call hop"));
        assert_eq!(f[0].trace.len(), 3, "sink, call, source: {:?}", f[0].trace);
        assert!(f[0].trace[0].label.contains("emit"));
    }

    #[test]
    fn unreachable_source_is_clean() {
        // The old nondet-iter lint flagged every hash iteration; the
        // taint lint proves this one cannot reach the event path.
        let f = findings(
            "
use std::collections::HashMap;
fn debug_census(m: &HashMap<u64, u64>) -> usize {
    m.iter().count()
}
pub fn emit(sink: &mut dyn EventSink) { sink.insert(7); }
",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn time_parallelism_and_channel_sources_in_sinks() {
        let f = findings(
            "
use std::time::Instant;
pub fn bench(sink: &mut dyn EventSink) {
    let t0 = Instant::now();
    sink.insert(t0.elapsed().as_nanos() as u64);
}
pub fn plan() -> SimResult {
    let jobs = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    SimResult { jobs }
}
pub fn drain_workers(rx: &Receiver<u64>, sink: &mut dyn EventSink) {
    while let Ok(v) = rx.try_recv() { sink.insert(v); }
}
",
        );
        let descs: Vec<&str> = f.iter().map(|f| f.message.as_str()).collect();
        assert_eq!(f.len(), 3, "{descs:?}");
        assert!(descs[0].contains("Instant::now"));
        assert!(descs[1].contains("available_parallelism"));
        assert!(descs[2].contains("try_recv"));
        assert!(f.iter().all(|f| f.message.contains("inside sink")));
    }

    #[test]
    fn legacy_nondet_iter_allow_suppresses() {
        let f = findings(
            "
use std::collections::HashMap;
pub fn emit(m: &HashMap<u64, u64>, sink: &mut dyn EventSink) {
    // cce-analyze: allow(nondet-iter): values are summed, order-free
    let total: u64 = m.values().sum();
    sink.insert(total);
}
",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn out_of_scope_crates_are_skipped_in_repo_mode() {
        let mut ws = Workspace::default();
        ws.add_file(
            "crates/workloads/src/gen.rs",
            "
use std::collections::HashMap;
pub fn emit(m: &HashMap<u64, u64>, sink: &mut dyn EventSink) {
    for (k, _) in m.iter() { sink.insert(*k); }
}
",
        );
        let cg = CallGraph::build(&ws);
        assert!(run(&ws, &cg, true).is_empty());
        assert_eq!(run(&ws, &cg, false).len(), 1, "fixture mode scans all");
    }

    #[test]
    fn test_module_sources_and_sinks_are_ignored() {
        let f = findings(
            "
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    pub fn emit(m: &HashMap<u64, u64>, sink: &mut dyn EventSink) {
        for (k, _) in m.iter() { sink.insert(*k); }
    }
}
",
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
