//! The path-sensitive **event-typestate** lint (`event-typestate`),
//! successor to the construction-site-only `event-protocol` check.
//!
//! Statically verifies the eviction event grammar of DESIGN.md §8 —
//! `insert := Padding? (EvictionBegin Evicted+ EvictionEnd)* Inserted`
//! — at the function level, on every control-flow path:
//!
//! * every path from an `EvictionBegin` emission reaches exactly one
//!   `EvictionEnd` before function exit (early `return`, `?` error
//!   edges and branch joins included);
//! * no nested `EvictionBegin`;
//! * `Evicted`/`Unlinked` are emitted only while a scope is open.
//!
//! The analysis is a forward dataflow ([`crate::dataflow`]) over the
//! function's CFG ([`crate::cfg`]). The abstract state is a *set* of
//! typestates: `Caller` (pass-through — whatever the caller had
//! open), `Open(origin)` (a scope opened locally at `origin`), and
//! `Closed(origin)` (the caller's scope was closed at `origin`).
//! Interprocedural effects come from per-function summaries —
//! [`Effect::Opens`], [`Effect::Closes`], [`Effect::Balanced`] —
//! iterated to a fixpoint over the call graph, so a helper that opens
//! a scope makes its *call sites* participate in the grammar. A
//! function whose effect is conditional (the lazy
//! `EvictionScope::evict`) summarizes as [`Effect::Unknown`] and is
//! treated as a no-op rather than guessed at.
//!
//! A function that opens on **every** path and never closes is a
//! deliberate opener (summary [`Effect::Opens`]) and is not reported;
//! leak findings fire only when some paths close (or never open) and
//! others reach an exit with the scope still open — those are the
//! genuinely unbalanced shapes.
//!
//! In repo mode the old confinement rule is kept as a backstop:
//! constructing any eviction-grammar variant outside the event
//! machinery files ([`crate::EVENT_ALLOWED`]) is a finding, and the
//! machinery files themselves are exempt from grammar findings (their
//! raw stream rewriting is deliberately outside the function-scoped
//! grammar, so their summaries are also not trusted at call sites).

use std::collections::BTreeSet;

use crate::callgraph::{CallGraph, ReceiverKind};
use crate::cfg::{Cfg, EXIT};
use crate::dataflow::{self, Lattice};
use crate::lexer::{TokKind, Token};
use crate::lints::{in_test, is_suppressed, skip_balanced, Finding, TraceHop, EVENT_TYPESTATE};
use crate::symbols::Workspace;

/// The eviction-grammar event variants the lint tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Variant {
    Begin,
    End,
    Evicted,
    Unlinked,
}

impl Variant {
    fn of(name: &str) -> Option<Variant> {
        match name {
            "EvictionBegin" => Some(Variant::Begin),
            "EvictionEnd" => Some(Variant::End),
            "Evicted" => Some(Variant::Evicted),
            "Unlinked" => Some(Variant::Unlinked),
            _ => None,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Variant::Begin => "EvictionBegin",
            Variant::End => "EvictionEnd",
            Variant::Evicted => "Evicted",
            Variant::Unlinked => "Unlinked",
        }
    }
}

/// A `CacheEvent::<Variant>` construction site inside one body.
#[derive(Debug, Clone, Copy)]
struct Emission {
    tok: usize,
    line: u32,
    variant: Variant,
}

/// What calling a function does to the caller's eviction scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Effect {
    /// Emits nothing that affects the scope.
    #[default]
    NoEffect,
    /// Every path leaves a locally-opened scope open for the caller.
    Opens,
    /// Every path closes the caller's open scope.
    Closes,
    /// Opens and closes internally; needs no scope and leaves none.
    Balanced,
    /// Conditional or contradictory paths — treated as a no-op.
    Unknown,
}

/// Per-function summary, iterated to a fixpoint over the call graph.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// The scope effect of calling this function.
    pub effect: Effect,
    /// Emits `Evicted`/`Unlinked` in the caller's scope (so calling it
    /// with the scope provably closed is a violation).
    pub requires_open: bool,
    /// Representative `EvictionBegin` site for traces: `(file, line)`.
    pub begin_site: Option<(String, u32)>,
    /// Representative `EvictionEnd` site for traces.
    pub end_site: Option<(String, u32)>,
}

/// One abstract typestate. The `usize` origins are token indices in
/// the owning file, resolved to emission or call sites for traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum St {
    /// Pass-through: whatever scope state the caller had.
    Caller,
    /// A scope opened locally (emission or opening call) at the token.
    Open(usize),
    /// The caller's scope was closed at the token.
    Closed(usize),
}

/// The dataflow fact: the set of typestates reaching a point.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Fact(BTreeSet<St>);

impl Lattice for Fact {
    fn bottom() -> Fact {
        Fact(BTreeSet::new())
    }
    fn join(&mut self, other: &Fact) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().copied());
        self.0.len() != before
    }
}

/// One scope-relevant event in token order: an emission or a call.
#[derive(Debug, Clone)]
enum Event {
    Emit(Emission),
    /// `(tok, line, candidate callee ids)`.
    Call(usize, u32, Vec<usize>),
}

impl Event {
    fn tok(&self) -> usize {
        match self {
            Event::Emit(e) => e.tok,
            Event::Call(tok, _, _) => *tok,
        }
    }
}

/// Per-function prepared inputs for the dataflow.
struct FnInfo {
    cfg: Cfg,
    events: Vec<Event>,
    emissions: Vec<Emission>,
}

/// Runs the event-typestate lint over the workspace. `repo_scope`
/// enables the [`crate::EVENT_ALLOWED`] confinement backstop and
/// exempts the machinery files from grammar findings; fixture mode
/// (`false`) checks the grammar everywhere and skips confinement.
#[must_use]
pub fn run(ws: &Workspace, cg: &CallGraph, repo_scope: bool) -> Vec<Finding> {
    let infos: Vec<FnInfo> = (0..ws.fns.len()).map(|id| prepare(ws, cg, id)).collect();
    let summaries = solve_summaries(ws, &infos, repo_scope);
    let mut findings = Vec::new();
    for (id, f) in ws.fns.iter().enumerate() {
        let file = &ws.files[f.file];
        if repo_scope && (exempt_file(&file.rel) || in_test(&file.tests, f.sig.0)) {
            continue;
        }
        report(ws, &infos[id], &summaries, id, repo_scope, &mut findings);
    }
    findings.retain(|f| {
        let lexed = ws
            .files
            .iter()
            .find(|fs| fs.rel == f.file)
            .map(|fs| &fs.lexed);
        lexed.is_none_or(|l| !is_suppressed(l, EVENT_TYPESTATE, f.line))
    });
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

fn exempt_file(rel: &str) -> bool {
    crate::EVENT_ALLOWED.contains(&rel)
}

/// Extracts one function's emissions, admitted calls and CFG.
fn prepare(ws: &Workspace, cg: &CallGraph, id: usize) -> FnInfo {
    let f = &ws.fns[id];
    let tokens = &ws.files[f.file].lexed.tokens;
    let emissions = emission_sites(tokens, f.body);
    let mut events: Vec<Event> = emissions.iter().copied().map(Event::Emit).collect();
    // Admitted call edges, merged per call site (a name can resolve to
    // several candidates). Local/SelfField receiver edges are dropped
    // exactly as in the lock graph: their name-only targets are other
    // types' methods.
    let mut per_site: Vec<(usize, u32, Vec<usize>)> = Vec::new();
    for e in &cg.edges[id] {
        let s = &cg.sites[id][e.site];
        if matches!(s.recv, ReceiverKind::Local | ReceiverKind::SelfField) {
            continue;
        }
        match per_site.iter_mut().find(|(tok, _, _)| *tok == s.tok) {
            Some((_, _, callees)) => callees.push(e.callee),
            None => per_site.push((s.tok, s.line, vec![e.callee])),
        }
    }
    events.extend(
        per_site
            .into_iter()
            .map(|(tok, line, callees)| Event::Call(tok, line, callees)),
    );
    events.sort_by_key(Event::tok);
    FnInfo {
        cfg: Cfg::build(tokens, f.body),
        events,
        emissions,
    }
}

/// `CacheEvent::<Variant>` construction sites in a body, with the
/// pattern-position filter carried over from the old `event-protocol`
/// lint: match arms, or-patterns, `matches!` operands, `{ .. }` rest
/// patterns and `let`-bindings' left-hand sides are not constructions.
fn emission_sites(tokens: &[Token], body: (usize, usize)) -> Vec<Emission> {
    let mut out = Vec::new();
    let end = body.1.min(tokens.len());
    let mut paren_is_pattern: Vec<bool> = Vec::new();
    let mut i = body.0;
    while i < end {
        let t = &tokens[i];
        if t.is_punct("(") {
            let is_matches = i >= 2
                && tokens[i - 1].is_punct("!")
                && tokens[i - 2].kind == TokKind::Ident
                && tokens[i - 2].text.ends_with("matches");
            paren_is_pattern.push(is_matches);
        } else if t.is_punct(")") {
            paren_is_pattern.pop();
        } else if t.is_ident("CacheEvent")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.kind == TokKind::Ident && Variant::of(&t.text).is_some())
        {
            let variant_tok = &tokens[i + 2];
            let variant = Variant::of(&variant_tok.text).unwrap_or(Variant::Begin);
            let mut site_end = i + 3;
            let mut braces_have_dotdot = false;
            if tokens.get(site_end).is_some_and(|t| t.is_punct("{")) {
                let close = skip_balanced(tokens, site_end, "{", "}");
                braces_have_dotdot = tokens[site_end..close].iter().any(|t| t.is_punct(".."));
                site_end = close;
            }
            let next_is_arm = tokens
                .get(site_end)
                .is_some_and(|t| t.is_punct("=>") || t.is_punct("|"));
            // Pattern position in `let`/`if let`/`while let`: a single
            // `=` after the path (the lexer splits `==`).
            let next_is_let_eq = tokens.get(site_end).is_some_and(|t| t.is_punct("="))
                && !tokens.get(site_end + 1).is_some_and(|t| t.is_punct("="));
            let in_matches_macro = paren_is_pattern.last().copied().unwrap_or(false);
            if !(next_is_arm || next_is_let_eq || braces_have_dotdot || in_matches_macro) {
                out.push(Emission {
                    tok: i + 2,
                    line: variant_tok.line,
                    variant,
                });
            }
            i = site_end;
            continue;
        }
        i += 1;
    }
    out
}

/// Applies one event to a state set; findings are collected only when
/// `out` is provided (the reporting pass), so the solver stays pure.
fn apply_event(
    ev: &Event,
    states: &mut BTreeSet<St>,
    summaries: &[Summary],
    repo_scope: bool,
    ws: &Workspace,
    mut report: Option<(&mut Vec<Finding>, &FnInfo, usize)>,
) {
    match ev {
        Event::Emit(e) => match e.variant {
            Variant::Begin => {
                if let Some((out, info, id)) = report.as_mut() {
                    for s in states.iter() {
                        if let St::Open(origin) = s {
                            nested_finding(ws, info, summaries, *id, *origin, e.line, None, out);
                            break;
                        }
                    }
                }
                let opened = St::Open(e.tok);
                states.clear();
                states.insert(opened);
            }
            Variant::End => {
                if let Some((out, info, id)) = report.as_mut() {
                    for s in states.iter() {
                        if let St::Closed(origin) = s {
                            closed_finding(
                                ws,
                                info,
                                summaries,
                                *id,
                                *origin,
                                e.line,
                                "EvictionEnd emitted again after the scope was already \
                                     closed — the grammar allows exactly one End per Begin",
                                out,
                            );
                            break;
                        }
                    }
                }
                let next: BTreeSet<St> = states
                    .iter()
                    .map(|s| match s {
                        St::Open(_) => St::Caller,
                        St::Caller => St::Closed(e.tok),
                        St::Closed(o) => St::Closed(*o),
                    })
                    .collect();
                *states = next;
            }
            Variant::Evicted | Variant::Unlinked => {
                if let Some((out, info, id)) = report.as_mut() {
                    for s in states.iter() {
                        if let St::Closed(origin) = s {
                            closed_finding(
                                ws,
                                info,
                                summaries,
                                *id,
                                *origin,
                                e.line,
                                &format!(
                                    "{} emitted after the eviction scope closed; \
                                         Evicted/Unlinked are valid only between \
                                         EvictionBegin and EvictionEnd",
                                    e.variant.name()
                                ),
                                out,
                            );
                            break;
                        }
                    }
                }
            }
        },
        Event::Call(tok, line, callees) => {
            let Some(effect) = agreed_effect(callees, summaries, repo_scope, ws) else {
                return;
            };
            match effect {
                Effect::Opens => {
                    if let Some((out, info, id)) = report.as_mut() {
                        for s in states.iter() {
                            if let St::Open(origin) = s {
                                nested_finding(
                                    ws,
                                    info,
                                    summaries,
                                    *id,
                                    *origin,
                                    *line,
                                    Some(callees[0]),
                                    out,
                                );
                                break;
                            }
                        }
                    }
                    let opened = St::Open(*tok);
                    states.clear();
                    states.insert(opened);
                }
                Effect::Closes => {
                    if let Some((out, info, id)) = report.as_mut() {
                        for s in states.iter() {
                            if let St::Closed(origin) = s {
                                closed_finding(
                                    ws,
                                    info,
                                    summaries,
                                    *id,
                                    *origin,
                                    *line,
                                    "call closes the eviction scope, but it was already \
                                     closed — the grammar allows exactly one End per Begin",
                                    out,
                                );
                                break;
                            }
                        }
                    }
                    let next: BTreeSet<St> = states
                        .iter()
                        .map(|s| match s {
                            St::Open(_) => St::Caller,
                            St::Caller => St::Closed(*tok),
                            St::Closed(o) => St::Closed(*o),
                        })
                        .collect();
                    *states = next;
                }
                Effect::Balanced => {
                    if let Some((out, info, id)) = report.as_mut() {
                        for s in states.iter() {
                            if let St::Open(origin) = s {
                                nested_finding(
                                    ws,
                                    info,
                                    summaries,
                                    *id,
                                    *origin,
                                    *line,
                                    Some(callees[0]),
                                    out,
                                );
                                break;
                            }
                        }
                    }
                }
                Effect::NoEffect | Effect::Unknown => {
                    let requires = callees
                        .iter()
                        .any(|&c| summaries[c].requires_open && trusted(c, repo_scope, ws));
                    if requires {
                        if let Some((out, info, id)) = report.as_mut() {
                            for s in states.iter() {
                                if let St::Closed(origin) = s {
                                    closed_finding(
                                        ws,
                                        info,
                                        summaries,
                                        *id,
                                        *origin,
                                        *line,
                                        "call emits Evicted/Unlinked, but the eviction \
                                         scope was already closed on this path",
                                        out,
                                    );
                                    break;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A callee defined in an event-machinery file rewrites raw streams;
/// its summary is not trusted at call sites in repo mode.
fn trusted(callee: usize, repo_scope: bool, ws: &Workspace) -> bool {
    !(repo_scope && exempt_file(&ws.files[ws.fns[callee].file].rel))
}

/// The effect all candidate callees agree on, or `None` (no-op) when
/// they disagree or none is trusted.
fn agreed_effect(
    callees: &[usize],
    summaries: &[Summary],
    repo_scope: bool,
    ws: &Workspace,
) -> Option<Effect> {
    let mut agreed: Option<Effect> = None;
    for &c in callees {
        let eff = if trusted(c, repo_scope, ws) {
            summaries[c].effect
        } else {
            Effect::Unknown
        };
        match agreed {
            None => agreed = Some(eff),
            Some(prev) if prev == eff => {}
            Some(_) => return Some(Effect::Unknown),
        }
    }
    agreed.filter(|e| *e != Effect::Unknown && *e != Effect::NoEffect)
}

/// Runs the intraprocedural dataflow for one function under the
/// current summary table; returns the solved per-node facts.
fn solve_fn(
    ws: &Workspace,
    info: &FnInfo,
    summaries: &[Summary],
    repo_scope: bool,
) -> dataflow::Solution<Fact> {
    let seed = Fact(BTreeSet::from([St::Caller]));
    dataflow::forward(&info.cfg, seed, |node, fact| {
        let span = info.cfg.nodes[node].span;
        for ev in &info.events {
            let tok = ev.tok();
            if tok >= span.0 && tok < span.1 {
                apply_event(ev, &mut fact.0, summaries, repo_scope, ws, None);
            }
        }
    })
}

/// Iterates per-function summaries to a fixpoint over the call graph.
fn solve_summaries(ws: &Workspace, infos: &[FnInfo], repo_scope: bool) -> Vec<Summary> {
    let n = ws.fns.len();
    let mut summaries: Vec<Summary> = vec![Summary::default(); n];
    // The effect lattice is tiny; convergence is fast, but the
    // agreement rule is not strictly monotone — cap the iterations.
    for _ in 0..10 {
        let mut changed = false;
        for id in 0..n {
            let next = summarize(ws, &infos[id], &summaries, id, repo_scope);
            if next.effect != summaries[id].effect
                || next.requires_open != summaries[id].requires_open
                || next.begin_site != summaries[id].begin_site
                || next.end_site != summaries[id].end_site
            {
                summaries[id] = next;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    summaries
}

/// Condenses one function's solved exit facts into a [`Summary`].
fn summarize(
    ws: &Workspace,
    info: &FnInfo,
    summaries: &[Summary],
    id: usize,
    repo_scope: bool,
) -> Summary {
    let f = &ws.fns[id];
    let rel = ws.files[f.file].rel.clone();
    if f.body.0 == f.body.1 {
        return Summary::default(); // bodyless trait declaration
    }
    let sol = solve_fn(ws, info, summaries, repo_scope);
    let exit = &sol.input[EXIT].0;
    let any_open = exit.iter().any(|s| matches!(s, St::Open(_)));
    let any_caller = exit.contains(&St::Caller);
    let any_closed = exit.iter().any(|s| matches!(s, St::Closed(_)));
    let did_open = info.emissions.iter().any(|e| e.variant == Variant::Begin)
        || info.events.iter().any(|ev| match ev {
            Event::Call(_, _, callees) => matches!(
                agreed_effect(callees, summaries, repo_scope, ws),
                Some(Effect::Opens | Effect::Balanced)
            ),
            Event::Emit(_) => false,
        });
    let effect = match (any_open, any_caller, any_closed) {
        (false, _, false) if exit.is_empty() => Effect::Unknown, // diverges
        (false, true, false) => {
            if did_open {
                Effect::Balanced
            } else {
                Effect::NoEffect
            }
        }
        (true, false, false) => Effect::Opens,
        (false, false, true) => Effect::Closes,
        _ => Effect::Unknown,
    };
    // Evicted/Unlinked (or End) reached while pass-through: the
    // function needs the caller's scope.
    let mut requires_open = false;
    for (node, input) in sol.input.iter().enumerate() {
        if input.0.is_empty() {
            continue;
        }
        let span = info.cfg.nodes[node].span;
        let mut states = input.0.clone();
        for ev in &info.events {
            let tok = ev.tok();
            if tok < span.0 || tok >= span.1 {
                continue;
            }
            if let Event::Emit(e) = ev {
                if matches!(e.variant, Variant::Evicted | Variant::Unlinked)
                    && states.contains(&St::Caller)
                {
                    requires_open = true;
                }
            }
            apply_event(ev, &mut states, summaries, repo_scope, ws, None);
        }
    }
    let begin_site = info
        .emissions
        .iter()
        .find(|e| e.variant == Variant::Begin)
        .map(|e| (rel.clone(), e.line))
        .or_else(|| first_call_site(info, summaries, repo_scope, ws, Effect::Opens, true));
    let end_site = info
        .emissions
        .iter()
        .find(|e| e.variant == Variant::End)
        .map(|e| (rel.clone(), e.line))
        .or_else(|| first_call_site(info, summaries, repo_scope, ws, Effect::Closes, false));
    Summary {
        effect,
        requires_open,
        begin_site,
        end_site,
    }
}

/// The representative begin/end site inherited from the first callee
/// with the given effect.
fn first_call_site(
    info: &FnInfo,
    summaries: &[Summary],
    repo_scope: bool,
    ws: &Workspace,
    effect: Effect,
    begin: bool,
) -> Option<(String, u32)> {
    info.events.iter().find_map(|ev| match ev {
        Event::Call(_, _, callees)
            if agreed_effect(callees, summaries, repo_scope, ws) == Some(effect) =>
        {
            let s = &summaries[callees[0]];
            if begin {
                s.begin_site.clone()
            } else {
                s.end_site.clone()
            }
        }
        _ => None,
    })
}

/// The reporting pass over one solved function.
fn report(
    ws: &Workspace,
    info: &FnInfo,
    summaries: &[Summary],
    id: usize,
    repo_scope: bool,
    out: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let rel = &ws.files[f.file].rel;
    if repo_scope {
        // Confinement backstop: constructing any eviction-grammar
        // variant outside the machinery files.
        for e in &info.emissions {
            out.push(Finding::new(
                rel,
                e.line,
                EVENT_TYPESTATE,
                format!(
                    "direct construction of CacheEvent::{} outside the event machinery \
                     (crates/core/src/{{events,cache,shard,concurrent,testutil}}.rs and \
                     the conformance-pinned crates/sim/src/ladder.rs); organizations \
                     must stream evictions through cce_core::EvictionScope so the \
                     begin/end grammar cannot be violated",
                    e.variant.name()
                ),
            ));
        }
    }
    if f.body.0 == f.body.1 {
        return;
    }
    let sol = solve_fn(ws, info, summaries, repo_scope);
    // Walk each node once with its fixpoint input, emitting findings.
    for (node, input) in sol.input.iter().enumerate() {
        if input.0.is_empty() {
            continue;
        }
        let span = info.cfg.nodes[node].span;
        let mut states = input.0.clone();
        for ev in &info.events {
            let tok = ev.tok();
            if tok >= span.0 && tok < span.1 {
                apply_event(
                    ev,
                    &mut states,
                    summaries,
                    repo_scope,
                    ws,
                    Some((out, info, id)),
                );
            }
        }
    }
    // Leak detection: exit edges reached with a scope still open, in
    // functions that are not pure openers.
    let exit_edges: Vec<usize> = (0..info.cfg.nodes.len())
        .filter(|&n| n != EXIT && info.cfg.nodes[n].succs.contains(&EXIT))
        .collect();
    let pure_opener = !exit_edges.is_empty()
        && exit_edges.iter().all(|&n| {
            !sol.output[n].0.is_empty() && sol.output[n].0.iter().all(|s| matches!(s, St::Open(_)))
        });
    if pure_opener {
        return;
    }
    for &n in &exit_edges {
        let leaked: Vec<usize> = sol.output[n]
            .0
            .iter()
            .filter_map(|s| match s {
                St::Open(origin) => Some(*origin),
                _ => None,
            })
            .collect();
        if let Some(&origin) = leaked.first() {
            let node = &info.cfg.nodes[n];
            let mut trace = origin_hops(ws, info, summaries, id, origin, true);
            trace.push(TraceHop {
                file: rel.clone(),
                line: node.line,
                label: "function exit reached here with the scope still open".to_owned(),
            });
            out.push(Finding {
                file: rel.clone(),
                line: node.line,
                lint: EVENT_TYPESTATE,
                message: "path reaches function exit with an eviction scope still open; \
                          every path from EvictionBegin must emit exactly one EvictionEnd \
                          before returning (DESIGN.md \u{a7}8 grammar)"
                    .to_owned(),
                trace,
            });
        }
    }
}

/// Trace hops explaining where a scope was opened/closed: the local
/// emission or call line, plus the callee's representative site when
/// the origin is a call (a multi-hop interprocedural trace).
fn origin_hops(
    ws: &Workspace,
    info: &FnInfo,
    summaries: &[Summary],
    id: usize,
    origin_tok: usize,
    opened: bool,
) -> Vec<TraceHop> {
    let what = if opened {
        "eviction scope opened here"
    } else {
        "eviction scope closed here"
    };
    let f = &ws.fns[id];
    let rel = &ws.files[f.file].rel;
    if let Some(e) = info.emissions.iter().find(|e| e.tok == origin_tok) {
        return vec![TraceHop {
            file: rel.clone(),
            line: e.line,
            label: format!("{what} ({})", e.variant.name()),
        }];
    }
    if let Some(Event::Call(_, line, callees)) = info
        .events
        .iter()
        .find(|ev| matches!(ev, Event::Call(tok, _, _) if *tok == origin_tok))
    {
        let callee = callees[0];
        let qname = &ws.fns[callee].qname;
        let mut hops = vec![TraceHop {
            file: rel.clone(),
            line: *line,
            label: format!("{what} by the call to `{qname}`"),
        }];
        // The representative emission inside the callee, one level in.
        let site = if opened {
            summaries[callee].begin_site.as_ref()
        } else {
            summaries[callee].end_site.as_ref()
        };
        if let Some((file, line)) = site {
            hops.push(TraceHop {
                file: file.clone(),
                line: *line,
                label: format!(
                    "`{qname}` emits {} here",
                    if opened {
                        "EvictionBegin"
                    } else {
                        "EvictionEnd"
                    }
                ),
            });
        }
        hops
    } else {
        vec![TraceHop {
            file: rel.clone(),
            line: ws.fns[id].line,
            label: what.to_owned(),
        }]
    }
}

#[allow(clippy::too_many_arguments)]
fn nested_finding(
    ws: &Workspace,
    info: &FnInfo,
    summaries: &[Summary],
    id: usize,
    origin_tok: usize,
    line: u32,
    via_callee: Option<usize>,
    out: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let rel = &ws.files[f.file].rel;
    let mut trace = origin_hops(ws, info, summaries, id, origin_tok, true);
    let label = match via_callee {
        Some(c) => format!(
            "nested scope opened here by the call to `{}`",
            ws.fns[c].qname
        ),
        None => "nested EvictionBegin emitted here".to_owned(),
    };
    trace.push(TraceHop {
        file: rel.clone(),
        line,
        label,
    });
    out.push(Finding {
        file: rel.clone(),
        line,
        lint: EVENT_TYPESTATE,
        message: "EvictionBegin while an eviction scope is already open; the grammar \
                  (EvictionBegin Evicted+ EvictionEnd)* forbids nesting (DESIGN.md \u{a7}8)"
            .to_owned(),
        trace,
    });
}

#[allow(clippy::too_many_arguments)]
fn closed_finding(
    ws: &Workspace,
    info: &FnInfo,
    summaries: &[Summary],
    id: usize,
    origin_tok: usize,
    line: u32,
    message: &str,
    out: &mut Vec<Finding>,
) {
    let f = &ws.fns[id];
    let rel = &ws.files[f.file].rel;
    let mut trace = origin_hops(ws, info, summaries, id, origin_tok, false);
    trace.push(TraceHop {
        file: rel.clone(),
        line,
        label: "emitted here after the close".to_owned(),
    });
    out.push(Finding {
        file: rel.clone(),
        line,
        lint: EVENT_TYPESTATE,
        message: message.to_owned(),
        trace,
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        ws.add_file("fix.rs", src);
        let cg = CallGraph::build(&ws);
        run(&ws, &cg, false)
    }

    const END: &str = "CacheEvent::EvictionEnd { bytes: 0, links_dropped_free: 0 }";

    #[test]
    fn balanced_scope_is_clean() {
        let src = "
fn ok(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::Evicted { id: 1, size: 64 });
    sink.event(CacheEvent::EvictionEnd { bytes: 64, links_dropped_free: 0 });
}";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn patterns_are_not_emissions() {
        let src = "
fn classify(ev: CacheEvent) -> bool {
    match ev {
        CacheEvent::EvictionBegin => true,
        CacheEvent::EvictionEnd { .. } => false,
        _ => matches!(ev, CacheEvent::Evicted { id: 0, size: 0 }),
    }
}
fn scan(ev: CacheEvent) -> u64 {
    if let CacheEvent::EvictionEnd { bytes, .. } = ev { bytes } else { 0 }
}";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn nested_begin_is_flagged_once() {
        let src = format!(
            "
fn nested(sink: &mut Sink) {{
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::EvictionBegin);
    sink.event({END});
}}"
        );
        let f = run_on(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("nested") || f[0].message.contains("already open"));
        assert_eq!(f[0].line, 4);
        assert!(
            f[0].trace.len() >= 2,
            "origin + violation hops: {:?}",
            f[0].trace
        );
    }

    #[test]
    fn early_return_leak_is_flagged_on_the_leaking_path_only() {
        let src = format!(
            "
fn leaky(sink: &mut Sink, abort: bool) {{
    sink.event(CacheEvent::EvictionBegin);
    if abort {{
        return;
    }}
    sink.event({END});
}}"
        );
        let f = run_on(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 5, "the return is the leaking exit");
        assert!(f[0].message.contains("still open"));
    }

    #[test]
    fn stray_events_after_close_are_flagged() {
        let src = format!(
            "
fn stray(sink: &mut Sink) {{
    sink.event({END});
    sink.event(CacheEvent::Evicted {{ id: 1, size: 2 }});
}}"
        );
        let f = run_on(&src);
        assert_eq!(
            f.len(),
            1,
            "closing the caller's scope is fine, emitting after is not: {f:?}"
        );
        assert_eq!(f[0].line, 4);
        assert!(f[0].message.contains("after the eviction scope closed"));
    }

    #[test]
    fn pure_opener_is_clean_but_double_open_via_calls_is_nested() {
        let src = format!(
            "
fn open_scope(sink: &mut Sink) {{
    sink.event(CacheEvent::EvictionBegin);
}}
fn close_scope(sink: &mut Sink) {{
    sink.event({END});
}}
fn driver(sink: &mut Sink) {{
    open_scope(sink);
    open_scope(sink);
    close_scope(sink);
}}"
        );
        let f = run_on(&src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 10, "the second open is the violation");
        assert!(
            f[0].trace.len() >= 3,
            "call hop + callee begin site + violation: {:?}",
            f[0].trace
        );
        assert!(f[0].trace.iter().any(|h| h.label.contains("open_scope")));
    }

    #[test]
    fn interprocedural_open_close_pairing_is_clean() {
        let src = format!(
            "
fn open_scope(sink: &mut Sink) {{
    sink.event(CacheEvent::EvictionBegin);
}}
fn close_scope(sink: &mut Sink) {{
    sink.event({END});
}}
fn driver(sink: &mut Sink) {{
    open_scope(sink);
    sink.event(CacheEvent::Evicted {{ id: 9, size: 8 }});
    close_scope(sink);
}}"
        );
        assert!(run_on(&src).is_empty());
    }

    #[test]
    fn loop_of_evictions_inside_a_scope_is_clean() {
        let src = format!(
            "
fn sweep(sink: &mut Sink, ids: &[u64]) {{
    sink.event(CacheEvent::EvictionBegin);
    for id in ids {{
        sink.event(CacheEvent::Evicted {{ id: *id, size: 32 }});
    }}
    sink.event({END});
}}"
        );
        assert!(run_on(&src).is_empty());
    }

    #[test]
    fn repo_mode_confines_construction_to_the_machinery() {
        let balanced = "
fn rogue(sink: &mut Sink) {
    sink.event(CacheEvent::EvictionBegin);
    sink.event(CacheEvent::EvictionEnd { bytes: 0, links_dropped_free: 0 });
}";
        let mut ws = Workspace::default();
        ws.add_file("crates/core/src/org/mod.rs", balanced);
        let cg = CallGraph::build(&ws);
        let f = run(&ws, &cg, true);
        assert_eq!(f.len(), 2, "both constructions are confined: {f:?}");
        assert!(f.iter().all(|f| f.message.contains("event machinery")));

        let mut ws = Workspace::default();
        ws.add_file("crates/core/src/events.rs", balanced);
        let cg = CallGraph::build(&ws);
        assert!(run(&ws, &cg, true).is_empty(), "the machinery is exempt");
    }

    #[test]
    fn conditional_scope_like_eviction_scope_is_unknown_and_quiet() {
        // The lazy EvictionScope shape: Begin emitted only when the
        // flag flips. The summary must be Unknown (no effect at call
        // sites) and the function itself must not be reported — the
        // close is equally conditional.
        let src = format!(
            "
fn evict_lazy(sink: &mut Sink, begun: &mut bool) {{
    if !*begun {{
        *begun = true;
        sink.event(CacheEvent::EvictionBegin);
    }}
    sink.event(CacheEvent::Evicted {{ id: 1, size: 1 }});
}}
fn finish_lazy(sink: &mut Sink, begun: bool) {{
    if begun {{
        sink.event({END});
    }}
}}"
        );
        let f = run_on(&src);
        // evict_lazy exits {Open, Caller}: the no-Begin path emitting
        // Evicted is a caller obligation, not a local violation; the
        // Begin path leaks by design (the scope object carries it).
        // This mirrors EvictionScope, which the repo keeps in the
        // exempt machinery file — here we only require no *spurious*
        // nested/closed findings.
        assert!(
            f.iter().all(|f| f.message.contains("still open")),
            "only leak-shaped findings are acceptable here: {f:?}"
        );
    }
}
