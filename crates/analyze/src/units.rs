//! The **cost-units** lint: flow-sensitive unit inference for the cost
//! model's three currencies — **bytes** (cache capacity), **cycles**
//! (Eq. 2–4 overheads) and **event counts** (misses, evictions,
//! unlinks) — with two checks on top:
//!
//! 1. **cross-unit arithmetic** — adding or subtracting two locals
//!    whose inferred units differ (`total_bytes - miss_cycles`) is a
//!    category error; the paper's overhead equations only ever combine
//!    them through the fitted model (`cce_sim::overhead`), never by
//!    direct addition.
//! 2. **unsaturated cycle accumulation** — an *integer* local holding
//!    cycles that grows via bare `+=`/`+` must use
//!    `saturating_add`/`checked_add`: long sweeps multiply Eq. 2–4
//!    costs by millions of events, and a silent wrap produces a
//!    plausible-looking but wrong overhead total.
//!
//! Units come from two sources, both recorded per binding so findings
//! can trace where each side's unit was inferred:
//!
//! * **names** — `*_bytes`/`*_size` are bytes; `*_cost`/`*_cycles`/
//!   `*_overhead` are cycles; `*_count`/`misses`/`evictions`/… are
//!   counts;
//! * **the cost model** — anything produced by `OverheadModel::eval`
//!   or the `eviction_cost`/`miss_cost`/`unlink_cost` helpers (or the
//!   `EVICTION_EQ2`/`MISS_EQ3`/`UNLINK_EQ4` constants) is cycles,
//!   whatever the binding is called.
//!
//! The environment flows through the CFG with a *must* (intersection)
//! join: a variable keeps its unit at a merge point only when every
//! incoming path agrees, so the lint stays quiet on genuinely
//! ambiguous code. Only bare-identifier operands are checked —
//! `slope * bytes as f64 + intercept` never fires because the operand
//! adjacent to `+` is a cast, not a unit-carrying local.

use std::collections::BTreeMap;

use crate::cfg::Cfg;
use crate::dataflow::{self, Lattice};
use crate::lexer::{TokKind, Token};
use crate::lints::{in_test, is_suppressed, Finding, TraceHop, COST_UNITS};
use crate::symbols::Workspace;

/// A currency of the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Unit {
    Bytes,
    Cycles,
    Count,
}

impl Unit {
    fn name(self) -> &'static str {
        match self {
            Unit::Bytes => "bytes",
            Unit::Cycles => "cycles",
            Unit::Count => "event-count",
        }
    }
}

/// What is known about one local binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct VarInfo {
    unit: Unit,
    /// `Some(true)` when the binding is provably an integer (type
    /// ascription or integer cast); `Some(false)` for floats; `None`
    /// unknown.
    int: Option<bool>,
    /// Line where the unit was inferred (the binding), for traces.
    line: u32,
}

/// The dataflow fact: `None` = unreached; otherwise the must-known
/// bindings. The join is intersection over reached paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct Env(Option<BTreeMap<String, VarInfo>>);

impl Lattice for Env {
    fn bottom() -> Env {
        Env(None)
    }
    fn join(&mut self, other: &Env) -> bool {
        match (&mut self.0, &other.0) {
            (_, None) => false,
            (slot @ None, Some(_)) => {
                *slot = other.0.clone();
                true
            }
            (Some(a), Some(b)) => {
                let before = a.clone();
                a.retain(|k, v| b.get(k).is_some_and(|w| w.unit == v.unit));
                for (k, v) in a.iter_mut() {
                    let w = &b[k];
                    if w.int != v.int {
                        v.int = None;
                    }
                    v.line = v.line.min(w.line);
                }
                *a != before
            }
        }
    }
}

/// Identifiers whose value is cycles regardless of the binding name.
const CYCLE_CONSTS: &[&str] = &["EVICTION_EQ2", "MISS_EQ3", "UNLINK_EQ4"];
const CYCLE_FNS: &[&str] = &[
    "eviction_cost",
    "miss_cost",
    "unlink_cost",
    "unlink_cost_total",
    "eval",
];

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];
const FLOAT_TYPES: &[&str] = &["f32", "f64"];

/// Unit inferred from an identifier's name, or `None`.
fn name_unit(name: &str) -> Option<Unit> {
    let n = name.to_ascii_lowercase();
    if n.contains("cost") || n.contains("cycles") || n.contains("overhead") || n.contains("instr") {
        return Some(Unit::Cycles);
    }
    if n.contains("bytes") || n.ends_with("_size") || n == "size" {
        return Some(Unit::Bytes);
    }
    if n.contains("count")
        || n.contains("invocations")
        || n.contains("links")
        || n.contains("evictions")
        || n.contains("misses")
        || n.contains("hits")
        || n.contains("accesses")
    {
        return Some(Unit::Count);
    }
    None
}

/// Runs the cost-units lint over every function in the workspace.
#[must_use]
pub fn run(ws: &Workspace, repo_scope: bool) -> Vec<Finding> {
    let mut findings = Vec::new();
    for f in &ws.fns {
        let file = &ws.files[f.file];
        if repo_scope && in_test(&file.tests, f.sig.0) {
            continue;
        }
        if f.body.0 == f.body.1 {
            continue;
        }
        check_fn(&file.rel, &file.lexed.tokens, f.sig, f.body, &mut findings);
    }
    findings.retain(|f| {
        let lexed = ws
            .files
            .iter()
            .find(|fs| fs.rel == f.file)
            .map(|fs| &fs.lexed);
        lexed.is_none_or(|l| !is_suppressed(l, COST_UNITS, f.line))
    });
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Seeds the environment from the signature's typed parameters.
fn seed_env(tokens: &[Token], sig: (usize, usize)) -> Env {
    let mut env = BTreeMap::new();
    let mut i = sig.0;
    let end = sig.1.min(tokens.len());
    while i < end {
        if tokens[i].kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.is_punct(":"))
            && i > 0
            && (tokens[i - 1].is_punct("(") || tokens[i - 1].is_punct(","))
        {
            if let Some(unit) = name_unit(&tokens[i].text) {
                let int = tokens.get(i + 2).map(|t| t.text.as_str()).and_then(|ty| {
                    if INT_TYPES.contains(&ty) {
                        Some(true)
                    } else if FLOAT_TYPES.contains(&ty) {
                        Some(false)
                    } else {
                        None
                    }
                });
                env.insert(
                    tokens[i].text.clone(),
                    VarInfo {
                        unit,
                        int,
                        line: tokens[i].line,
                    },
                );
            }
        }
        i += 1;
    }
    Env(Some(env))
}

fn check_fn(
    rel: &str,
    tokens: &[Token],
    sig: (usize, usize),
    body: (usize, usize),
    out: &mut Vec<Finding>,
) {
    let cfg = Cfg::build(tokens, body);
    let seed = seed_env(tokens, sig);
    let sol = dataflow::forward(&cfg, seed, |node, env| {
        let span = cfg.nodes[node].span;
        walk_span(tokens, span, env, None);
    });
    for (node, input) in sol.input.iter().enumerate() {
        if input.0.is_none() {
            continue;
        }
        let mut env = input.clone();
        let span = cfg.nodes[node].span;
        walk_span(tokens, span, &mut env, Some((rel, out)));
    }
}

/// Walks one node's token span: applies `let` bindings to the
/// environment and (in the reporting pass) checks the two rules.
fn walk_span(
    tokens: &[Token],
    span: (usize, usize),
    env: &mut Env,
    mut report: Option<(&str, &mut Vec<Finding>)>,
) {
    let Some(map) = env.0.as_mut() else { return };
    let end = span.1.min(tokens.len());
    let mut i = span.0;
    while i < end {
        let t = &tokens[i];
        if t.is_ident("let") {
            i = apply_let(tokens, i, end, map);
            continue;
        }
        if let Some((rel, out)) = report.as_mut() {
            check_site(tokens, i, end, map, rel, out);
        }
        i += 1;
    }
}

/// Processes `let [mut] name [: ty] = rhs ;` starting at the `let`;
/// returns the index to resume from (just past the binding name).
fn apply_let(
    tokens: &[Token],
    at: usize,
    end: usize,
    map: &mut BTreeMap<String, VarInfo>,
) -> usize {
    let mut i = at + 1;
    if i < end && tokens[i].is_ident("mut") {
        i += 1;
    }
    if i >= end || tokens[i].kind != TokKind::Ident {
        return i; // destructuring or `let _` — not tracked
    }
    let name = tokens[i].text.clone();
    let line = tokens[i].line;
    let name_idx = i;
    i += 1;
    // Optional ascription: `: ty` up to `=` or `;` at depth 0.
    let mut asc_int: Option<bool> = None;
    if i < end && tokens[i].is_punct(":") {
        i += 1;
        while i < end && !tokens[i].is_punct("=") && !tokens[i].is_punct(";") {
            let ty = tokens[i].text.as_str();
            if INT_TYPES.contains(&ty) {
                asc_int = Some(true);
            } else if FLOAT_TYPES.contains(&ty) {
                asc_int = Some(false);
            }
            i += 1;
        }
    }
    if i >= end || !tokens[i].is_punct("=") {
        return name_idx + 1; // `let name;` — no initializer
    }
    let rhs_start = i + 1;
    let rhs_end = stmt_end(tokens, rhs_start, end);
    let (rhs_unit, rhs_int) = rhs_info(tokens, rhs_start, rhs_end, map);
    let unit = name_unit(&name).or(rhs_unit);
    let int = asc_int.or(rhs_int);
    match unit {
        Some(unit) => {
            map.insert(name, VarInfo { unit, int, line });
        }
        None => {
            map.remove(&name); // shadowing clears stale knowledge
        }
    }
    name_idx + 1
}

/// Index of the `;` (or `end`) terminating a statement, at depth 0.
fn stmt_end(tokens: &[Token], from: usize, end: usize) -> usize {
    let mut depth = 0i32;
    let mut i = from;
    while i < end {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" if tokens[i].kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if tokens[i].kind == TokKind::Punct => depth -= 1,
            ";" if depth == 0 && tokens[i].kind == TokKind::Punct => return i,
            _ => {}
        }
        i += 1;
    }
    end
}

/// Unit and integer-ness evidence scanned from an initializer.
fn rhs_info(
    tokens: &[Token],
    from: usize,
    to: usize,
    map: &BTreeMap<String, VarInfo>,
) -> (Option<Unit>, Option<bool>) {
    let mut unit = None;
    let mut int: Option<bool> = None;
    let mut saw_int_literal = false;
    for i in from..to {
        let t = &tokens[i];
        match t.kind {
            TokKind::Ident => {
                if unit.is_none() {
                    if CYCLE_CONSTS.contains(&t.text.as_str())
                        || (CYCLE_FNS.contains(&t.text.as_str())
                            && tokens.get(i + 1).is_some_and(|n| n.is_punct("(")))
                    {
                        unit = Some(Unit::Cycles);
                    } else if let Some(v) = map.get(&t.text) {
                        unit = Some(v.unit);
                    }
                }
                if i > 0 && tokens[i - 1].is_ident("as") {
                    let ty = t.text.as_str();
                    if FLOAT_TYPES.contains(&ty) {
                        int = Some(false);
                    } else if INT_TYPES.contains(&ty) && int.is_none() {
                        int = Some(true);
                    }
                }
            }
            TokKind::Number => {
                if t.text.contains('.') || t.text.contains("f6") || t.text.contains("f3") {
                    int = Some(false);
                } else {
                    saw_int_literal = true;
                }
            }
            _ => {}
        }
    }
    if int.is_none() && saw_int_literal {
        int = Some(true);
    }
    (unit, int)
}

/// Checks the two rules at token `i` against the current environment.
fn check_site(
    tokens: &[Token],
    i: usize,
    end: usize,
    map: &BTreeMap<String, VarInfo>,
    rel: &str,
    out: &mut Vec<Finding>,
) {
    let t = &tokens[i];
    if t.kind != TokKind::Ident {
        return;
    }
    // Method-call or field-access results are not the bare local.
    if i > 0 && tokens[i - 1].is_punct(".") {
        return;
    }
    let Some(a) = map.get(&t.text) else { return };
    let Some(op) = tokens
        .get(i + 1)
        .filter(|o| o.is_punct("+") || o.is_punct("-"))
    else {
        return;
    };
    let op_txt = op.text.clone();
    // `a += b` / `a -= b` lexes as `a` `+` `=` `b`.
    let compound = tokens.get(i + 2).is_some_and(|t| t.is_punct("="));
    let b_idx = if compound { i + 3 } else { i + 2 };
    let b_tok = tokens.get(b_idx).filter(|_| b_idx < end);

    // Rule 2: integer cycle accumulator grown with a bare `+=`.
    if compound && op_txt == "+" && a.unit == Unit::Cycles && a.int == Some(true) {
        out.push(Finding {
            file: rel.to_owned(),
            line: t.line,
            lint: COST_UNITS,
            message: format!(
                "`{}` accumulates cycles in an integer with a bare `+=`; sweeps multiply \
                 Eq. 2\u{2013}4 costs by millions of events — use saturating_add or \
                 checked_add so overflow cannot silently wrap the overhead total",
                t.text
            ),
            trace: vec![
                TraceHop {
                    file: rel.to_owned(),
                    line: a.line,
                    label: format!("`{}` bound here as an integer holding cycles", t.text),
                },
                TraceHop {
                    file: rel.to_owned(),
                    line: t.line,
                    label: "unchecked accumulation here".to_owned(),
                },
            ],
        });
    }

    // Rule 1: cross-unit `+`/`-` between two known bare locals.
    let Some(b_tok) = b_tok else { return };
    if b_tok.kind != TokKind::Ident {
        return;
    }
    // `b.method()` still starts with the bare local — fine to check —
    // but `b` followed by `::` is a path, not a local.
    if tokens.get(b_idx + 1).is_some_and(|t| t.is_punct("::")) {
        return;
    }
    let Some(b) = map.get(&b_tok.text) else {
        return;
    };
    if a.unit != b.unit {
        out.push(Finding {
            file: rel.to_owned(),
            line: op.line,
            lint: COST_UNITS,
            message: format!(
                "cross-unit arithmetic: `{}` is {} but `{}` is {}; the cost model only \
                 combines currencies through cce_sim::overhead (Eq. 2\u{2013}4), never by \
                 direct `{}`",
                t.text,
                a.unit.name(),
                b_tok.text,
                b.unit.name(),
                if compound {
                    format!("{op_txt}=")
                } else {
                    op_txt.clone()
                }
            ),
            trace: vec![
                TraceHop {
                    file: rel.to_owned(),
                    line: a.line,
                    label: format!("`{}` inferred as {} here", t.text, a.unit.name()),
                },
                TraceHop {
                    file: rel.to_owned(),
                    line: b.line,
                    label: format!("`{}` inferred as {} here", b_tok.text, b.unit.name()),
                },
                TraceHop {
                    file: rel.to_owned(),
                    line: op.line,
                    label: "mixed-unit arithmetic here".to_owned(),
                },
            ],
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Workspace;

    fn run_on(src: &str) -> Vec<Finding> {
        let mut ws = Workspace::default();
        ws.add_file("fix.rs", src);
        run(&ws, false)
    }

    #[test]
    fn cross_unit_addition_is_flagged_with_both_origins() {
        let src = "
fn f(total_bytes: u64, miss_cycles: u64) -> u64 {
    let x = total_bytes + miss_cycles;
    x
}";
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].lint, COST_UNITS);
        assert_eq!(f[0].trace.len(), 3);
        assert!(f[0].message.contains("bytes") && f[0].message.contains("cycles"));
    }

    #[test]
    fn same_unit_addition_is_clean() {
        let src = "
fn f(total_bytes: u64, freed_bytes: u64) -> u64 {
    total_bytes + freed_bytes
}";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn eval_result_is_cycles_whatever_its_name() {
        let src = "
fn f(model: &OverheadModel, shard_bytes: u64) -> f64 {
    let unlink = model.eval(1, 2);
    let wrong = unlink + shard_bytes;
    wrong
}";
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("cycles"));
    }

    #[test]
    fn integer_cycle_accumulator_needs_saturating_add() {
        let src = "
fn f(per_event_cost: u64, n: u64) -> u64 {
    let mut total_cycles: u64 = 0;
    let mut i = 0;
    while i < n {
        total_cycles += per_event_cost;
        i += 1;
    }
    total_cycles
}";
        let f = run_on(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("saturating_add"));
        assert_eq!(f[0].trace.len(), 2);
    }

    #[test]
    fn float_accumulators_and_saturating_calls_are_clean() {
        let src = "
fn f(per_event_cost: f64, n: u64) -> f64 {
    let mut total_cycles = 0.0;
    let mut k: u64 = 0;
    let mut safe_cycles: u64 = 0;
    while k < n {
        total_cycles += per_event_cost;
        safe_cycles = safe_cycles.saturating_add(1);
        k += 1;
    }
    total_cycles
}";
        assert!(run_on(src).is_empty());
    }

    #[test]
    fn must_join_drops_conflicting_units_at_merge_points() {
        let src = "
fn f(cond: bool, miss_count: u64, shard_bytes: u64, total_cycles: u64) -> u64 {
    if cond {
        let v = miss_count;
        consume(v);
    } else {
        let v = shard_bytes;
        consume(v);
    }
    let w = v + total_cycles;
    w
}";
        // `v` is count on one path, bytes on the other: the must-join
        // forgets it at the merge, so no finding can name it.
        let f = run_on(src);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cast_operand_is_not_a_bare_local() {
        let src = "
fn f(slope: f64, shard_bytes: u64, intercept: f64, invocations: u64) -> f64 {
    slope * shard_bytes as f64 + intercept * invocations as f64
}";
        assert!(run_on(src).is_empty());
    }
}
