//! CFG construction coverage: golden `dump()` renderings for the
//! canonical control shapes, and a randomized token-soup fuzz that
//! holds the builder to its structural invariants — no panics, the
//! fixed entry/exit pair, in-bounds edges, every emitted node
//! reachable from entry, and no dangling reachable node.

use cce_analyze::cfg::{Cfg, NodeKind, ENTRY, EXIT};
use cce_analyze::lexer::lex;
use cce_util::rng::{Rng, StdRng};

/// Builds the CFG of a brace-wrapped body, [`FnDef::body`]-style:
/// the token range includes both braces.
fn build(src: &str) -> Cfg {
    let lexed = lex(src);
    Cfg::build(&lexed.tokens, (0, lexed.tokens.len()))
}

#[test]
fn golden_if_else() {
    let cfg = build("{ if hit {\n promote();\n } else {\n demote();\n }\n seal(); }");
    assert_eq!(
        cfg.dump(),
        "n0 Entry -> n2\n\
         n1 Exit\n\
         n2 Cond@L1 -> n3,n4\n\
         n3 Stmt@L2 -> n5\n\
         n4 Stmt@L4 -> n5\n\
         n5 Stmt@L6 -> n1\n"
    );
}

#[test]
fn golden_match_arms() {
    // Expression arm, block arm with two statements, and a diverging
    // `_ => return` arm; only the first two join at `after()`.
    let cfg = build(
        "{ match ev {\n A => one(),\n B { .. } => {\n two();\n three();\n }\n \
         _ => return,\n }\n after(); }",
    );
    assert_eq!(
        cfg.dump(),
        "n0 Entry -> n2\n\
         n1 Exit\n\
         n2 Cond@L1 -> n3,n4,n6\n\
         n3 Stmt@L2 -> n7\n\
         n4 Stmt@L4 -> n5\n\
         n5 Stmt@L5 -> n7\n\
         n6 Stmt@L7 -> n1\n\
         n7 Stmt@L9 -> n1\n"
    );
}

#[test]
fn golden_loop_break_continue() {
    // `break` flows to the statement after the loop, `continue` and
    // the body fall-through take the back edge to the loop header.
    let cfg =
        build("{ loop {\n if done { break; }\n if skip { continue; }\n step();\n }\n after(); }");
    assert_eq!(
        cfg.dump(),
        "n0 Entry -> n2\n\
         n1 Exit\n\
         n2 Loop@L1 -> n3\n\
         n3 Cond@L2 -> n4,n5\n\
         n4 Stmt@L2 -> n8\n\
         n5 Cond@L3 -> n6,n7\n\
         n6 Stmt@L3 -> n2\n\
         n7 Stmt@L4 -> n2\n\
         n8 Stmt@L6 -> n1\n"
    );
}

#[test]
fn golden_try_and_return() {
    // `?` adds an early exit edge on the binding statement; the
    // elseless `if … return` falls through its condition to the tail.
    let cfg = build("{ let x = open()?;\n if x == 0 { return; }\n close(x); }");
    assert_eq!(
        cfg.dump(),
        "n0 Entry -> n2\n\
         n1 Exit\n\
         n2 Stmt@L1 -> n1,n3\n\
         n3 Cond@L2 -> n4,n5\n\
         n4 Stmt@L2 -> n1\n\
         n5 Stmt@L3 -> n1\n"
    );
}

/// Vocabulary for the token soup: control keywords, delimiters
/// (deliberately unbalanced), terminators, operators, and filler.
const SOUP: &[&str] = &[
    "if",
    "else",
    "match",
    "loop",
    "while",
    "for",
    "break",
    "continue",
    "return",
    "let",
    "mut",
    "in",
    "panic",
    "unreachable",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "=>",
    "->",
    "::",
    "=",
    "==",
    "+",
    "?",
    "!",
    "&",
    "|",
    "..",
    "#",
    "'outer",
    ":",
    "x",
    "y",
    "sink",
    "event",
    "0",
    "1",
    "42",
    "\"s\"",
    "'c'",
    "_",
];

fn soup(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0usize..120);
    let mut src = String::from("{");
    for _ in 0..len {
        src.push(' ');
        src.push_str(SOUP[rng.gen_range(0usize..SOUP.len())]);
    }
    src.push_str(" }");
    src
}

fn check_invariants(cfg: &Cfg, src: &str) {
    assert!(cfg.nodes.len() >= 2, "{src}");
    assert_eq!(cfg.nodes[ENTRY].kind, NodeKind::Entry, "{src}");
    assert_eq!(cfg.nodes[EXIT].kind, NodeKind::Exit, "{src}");
    for (i, n) in cfg.nodes.iter().enumerate() {
        for &s in &n.succs {
            assert!(
                s < cfg.nodes.len(),
                "edge n{i} -> n{s} out of bounds: {src}"
            );
        }
        let is_unique = (n.kind == NodeKind::Entry) == (i == ENTRY)
            && (n.kind == NodeKind::Exit) == (i == EXIT);
        assert!(is_unique, "entry/exit must be exactly n0/n1: {src}");
    }
    // Unreachable code emits no nodes, so everything the builder did
    // emit must be reachable from the entry …
    let mut seen = vec![false; cfg.nodes.len()];
    let mut stack = vec![ENTRY];
    seen[ENTRY] = true;
    while let Some(n) = stack.pop() {
        for &s in &cfg.nodes[n].succs {
            if !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    for (i, r) in seen.iter().enumerate() {
        assert!(
            *r || i == EXIT,
            "node n{i} emitted but unreachable:\n{}\nsource: {src}",
            cfg.dump()
        );
    }
    // … and nothing but the exit sink may dangle: control always
    // flows somewhere, ultimately into n1.
    for (i, n) in cfg.nodes.iter().enumerate() {
        assert!(
            i == EXIT || !n.succs.is_empty(),
            "node n{i} dangles:\n{}\nsource: {src}",
            cfg.dump()
        );
    }
}

#[test]
fn fuzz_token_soup_never_panics_and_keeps_invariants() {
    // Deterministic fuzz (xoshiro256++, fixed seeds): unbalanced
    // delimiters, stray `=>`/`else`, keywords in absurd positions.
    for seed in 0..400u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let src = soup(&mut rng);
        let lexed = lex(&src);
        let cfg = Cfg::build(&lexed.tokens, (0, lexed.tokens.len()));
        check_invariants(&cfg, &src);
    }
}

#[test]
fn fuzz_structured_nests_stay_well_formed() {
    // A second generator biased toward *almost* well-formed nesting:
    // recursive blocks with real headers, occasionally corrupted.
    fn gen(rng: &mut StdRng, depth: u32, out: &mut String) {
        let stmts = rng.gen_range(0usize..5);
        for _ in 0..stmts {
            match rng.gen_range(0u32..8) {
                0 if depth < 4 => {
                    out.push_str(" if x {");
                    gen(rng, depth + 1, out);
                    if rng.gen_bool(0.5) {
                        out.push_str(" } else {");
                        gen(rng, depth + 1, out);
                    }
                    out.push_str(" }");
                }
                1 if depth < 4 => {
                    out.push_str(" loop {");
                    gen(rng, depth + 1, out);
                    out.push_str(" }");
                }
                2 if depth < 4 => {
                    out.push_str(" match e { A => {");
                    gen(rng, depth + 1, out);
                    out.push_str(" } _ => f(), }");
                }
                3 => out.push_str(" break;"),
                4 => out.push_str(" continue;"),
                5 => out.push_str(" return;"),
                6 => out.push_str(" g()?;"),
                _ => out.push_str(" step();"),
            }
            // Rare corruption: drop into soup mid-structure.
            if rng.gen_bool(0.05) {
                out.push_str(" } => ; {");
            }
        }
    }
    for seed in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x5EED ^ seed);
        let mut src = String::from("{");
        gen(&mut rng, 0, &mut src);
        src.push_str(" }");
        let lexed = lex(&src);
        let cfg = Cfg::build(&lexed.tokens, (0, lexed.tokens.len()));
        check_invariants(&cfg, &src);
    }
}
