//! Golden-fixture tests: the binary must exit nonzero on each
//! violating fixture, zero on each clean one, and the repo itself must
//! report nothing above the committed baseline.

use std::path::PathBuf;
use std::process::{Command, Output};

use cce_util::Json;

fn fixture(name: &str) -> String {
    format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/analyze has a grandparent")
        .to_path_buf()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cce-analyze"))
        .args(args)
        .output()
        .expect("spawn cce-analyze")
}

/// Runs the binary on one fixture; returns (exit-zero?, stdout).
fn run_fixture(name: &str) -> (bool, String) {
    let out = run(&[&fixture(name)]);
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

fn assert_pair(lint: &str, violating: &str, clean: &str, expected_findings: usize) {
    let (ok, stdout) = run_fixture(violating);
    assert!(!ok, "{violating} must fail:\n{stdout}");
    let flagged = stdout
        .lines()
        .filter(|l| l.contains(&format!("[{lint}]")))
        .count();
    assert_eq!(
        flagged, expected_findings,
        "{violating} findings:\n{stdout}"
    );

    let (ok, stdout) = run_fixture(clean);
    assert!(ok, "{clean} must pass:\n{stdout}");
    assert!(
        stdout.starts_with("cce-analyze: 0 finding(s)"),
        "{clean} output:\n{stdout}"
    );
}

#[test]
fn nondet_iter_pair() {
    assert_pair(
        "nondet-iter",
        "nondet_iter_violating.rs",
        "nondet_iter_clean.rs",
        3,
    );
}

#[test]
fn cost_constant_pair() {
    assert_pair(
        "cost-constant",
        "cost_constant_violating.rs",
        "cost_constant_clean.rs",
        4,
    );
}

#[test]
fn panic_path_pair() {
    assert_pair(
        "panic-path",
        "panic_path_violating.rs",
        "panic_path_clean.rs",
        3,
    );
}

#[test]
fn event_protocol_pair() {
    assert_pair(
        "event-protocol",
        "event_protocol_violating.rs",
        "event_protocol_clean.rs",
        2,
    );
}

#[test]
fn lock_ordering_pair() {
    assert_pair(
        "lock-ordering",
        "lock_ordering_violating.rs",
        "lock_ordering_clean.rs",
        3,
    );
}

#[test]
fn diagnostics_are_file_line_clickable() {
    let (_, stdout) = run_fixture("panic_path_violating.rs");
    let first = stdout.lines().next().expect("at least one line");
    assert!(
        first.contains("panic_path_violating.rs:3: [panic-path]"),
        "{first}"
    );
}

#[test]
fn json_output_is_parseable_and_complete() {
    let out = run(&["--format", "json", &fixture("cost_constant_violating.rs")]);
    assert!(!out.status.success());
    let doc =
        Json::parse(std::str::from_utf8(&out.stdout).expect("utf-8")).expect("json output parses");
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings");
    assert_eq!(doc.get("total").and_then(Json::as_u64), Some(4));
    assert_eq!(findings.len(), 4);
    let first = &findings[0];
    assert_eq!(
        first.get("lint").and_then(Json::as_str),
        Some("cost-constant")
    );
    assert!(first.get("line").and_then(Json::as_u64).is_some());
    assert!(first
        .get("file")
        .and_then(Json::as_str)
        .expect("file")
        .ends_with("cost_constant_violating.rs"));
}

#[test]
fn baseline_ratchets_findings_to_zero_but_not_below() {
    let baseline_path =
        std::env::temp_dir().join(format!("cce-analyze-golden-{}.json", std::process::id()));
    let baseline = baseline_path.to_string_lossy().into_owned();
    let target = fixture("panic_path_violating.rs");

    // Capture today's debt.
    let out = run(&[&target, "--baseline", &baseline, "--update-baseline"]);
    assert!(out.status.success(), "update-baseline failed");

    // Inside the budget: suppressed.
    let out = run(&[&target, "--baseline", &baseline]);
    assert!(out.status.success(), "within-baseline run must pass");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("3 suppressed by baseline"), "{stdout}");

    // Paying the debt down without refreshing the baseline is itself a
    // failure, so the reduction gets locked in rather than left as
    // headroom to regress into.
    let out = run(&[&fixture("panic_path_clean.rs"), "--baseline", &baseline]);
    assert!(!out.status.success(), "stale baseline must fail");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("baseline is stale"), "{stdout}");

    // A baseline for a different file transfers no budget.
    let out = run(&[
        &fixture("event_protocol_violating.rs"),
        "--baseline",
        &baseline,
    ]);
    assert!(!out.status.success(), "budget must not transfer");

    std::fs::remove_file(&baseline_path).ok();
}

#[test]
fn usage_errors_exit_two() {
    let out = run(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--update-baseline"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repo_reports_nothing_above_committed_baseline() {
    let root = repo_root();
    let baseline = root.join("analyze-baseline.json");
    assert!(
        baseline.is_file(),
        "analyze-baseline.json must be committed at the repo root"
    );
    let out = run(&[
        "--root",
        &root.to_string_lossy(),
        "--baseline",
        &baseline.to_string_lossy(),
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        out.status.success(),
        "repo has findings above baseline:\n{stdout}"
    );
}
