//! Golden-fixture tests: the binary must exit nonzero on each
//! violating fixture, zero on each clean one, traces must survive all
//! three output formats, renamed-lint baselines must keep suppressing,
//! and the repo itself must report nothing above the committed
//! baseline.

use std::path::PathBuf;
use std::process::{Command, Output};

use cce_util::Json;

fn fixture(name: &str) -> String {
    format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/analyze has a grandparent")
        .to_path_buf()
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cce-analyze"))
        .args(args)
        .output()
        .expect("spawn cce-analyze")
}

/// Runs the binary on one fixture; returns (exit-zero?, stdout).
fn run_fixture(name: &str) -> (bool, String) {
    let out = run(&[&fixture(name)]);
    (
        out.status.success(),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
    )
}

fn assert_pair(lint: &str, violating: &str, clean: &str, expected_findings: usize) {
    let (ok, stdout) = run_fixture(violating);
    assert!(!ok, "{violating} must fail:\n{stdout}");
    let flagged = stdout
        .lines()
        .filter(|l| l.contains(&format!("[{lint}]")))
        .count();
    assert_eq!(
        flagged, expected_findings,
        "{violating} findings:\n{stdout}"
    );

    let (ok, stdout) = run_fixture(clean);
    assert!(ok, "{clean} must pass:\n{stdout}");
    assert!(
        stdout.starts_with("cce-analyze: 0 finding(s)"),
        "{clean} output:\n{stdout}"
    );
}

#[test]
fn nondet_taint_pair() {
    assert_pair(
        "nondet-taint",
        "nondet_taint_violating.rs",
        "nondet_taint_clean.rs",
        3,
    );
}

#[test]
fn lock_graph_pair() {
    assert_pair(
        "lock-graph",
        "lock_graph_violating.rs",
        "lock_graph_clean.rs",
        3,
    );
}

#[test]
fn cost_constant_pair() {
    assert_pair(
        "cost-constant",
        "cost_constant_violating.rs",
        "cost_constant_clean.rs",
        4,
    );
}

#[test]
fn panic_path_pair() {
    assert_pair(
        "panic-path",
        "panic_path_violating.rs",
        "panic_path_clean.rs",
        3,
    );
}

#[test]
fn event_typestate_pair() {
    assert_pair(
        "event-typestate",
        "event_typestate_violating.rs",
        "event_typestate_clean.rs",
        4,
    );
}

#[test]
fn cost_units_pair() {
    assert_pair(
        "cost-units",
        "cost_units_violating.rs",
        "cost_units_clean.rs",
        5,
    );
}

#[test]
fn lexer_desync_fixture_stays_clean() {
    // Nested block comments and the full escape set: if the lexer
    // loses a literal boundary, the fixture's trap strings leak
    // panic-path bait as real tokens and this clean check fails.
    let (ok, stdout) = run_fixture("lexer_desync_clean.rs");
    assert!(ok, "lexer desync leaked tokens:\n{stdout}");
    assert!(stdout.starts_with("cce-analyze: 0 finding(s)"), "{stdout}");
}

#[test]
fn diagnostics_are_file_line_clickable() {
    let (_, stdout) = run_fixture("panic_path_violating.rs");
    let first = stdout.lines().next().expect("at least one line");
    assert!(
        first.contains("panic_path_violating.rs:3: [panic-path]"),
        "{first}"
    );
}

#[test]
fn interprocedural_traces_survive_all_three_formats() {
    // Text: indented continuation hops under the finding line, with
    // the sink, the call hop, and the source each present.
    let (_, stdout) = run_fixture("nondet_taint_violating.rs");
    let hops: Vec<&str> = stdout.lines().filter(|l| l.starts_with("    ")).collect();
    assert!(
        hops.iter()
            .any(|l| l.contains("sink `") && l.contains("summarize")),
        "{stdout}"
    );
    assert!(hops.iter().any(|l| l.contains("call inside `")), "{stdout}");
    assert!(
        hops.iter()
            .any(|l| l.contains("source in `") && l.contains("dump")),
        "{stdout}"
    );

    // JSON: a trace array with file/line/label per hop.
    let out = run(&["--format", "json", &fixture("nondet_taint_violating.rs")]);
    let doc =
        Json::parse(std::str::from_utf8(&out.stdout).expect("utf-8")).expect("json output parses");
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings");
    assert_eq!(findings.len(), 3);
    let trace = findings[0]
        .get("trace")
        .and_then(Json::as_arr)
        .expect("first finding has a trace");
    assert_eq!(trace.len(), 3, "sink, call hop, source");
    for hop in trace {
        assert!(hop.get("file").and_then(Json::as_str).is_some());
        assert!(hop.get("line").and_then(Json::as_u64).is_some());
        assert!(hop.get("label").and_then(Json::as_str).is_some());
    }

    // SARIF: versioned log with codeFlows carrying the same hops.
    let out = run(&["--format", "sarif", &fixture("nondet_taint_violating.rs")]);
    assert!(!out.status.success(), "findings still fail in sarif mode");
    let doc =
        Json::parse(std::str::from_utf8(&out.stdout).expect("utf-8")).expect("sarif output parses");
    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let runs = doc.get("runs").and_then(Json::as_arr).expect("runs");
    let results = runs[0]
        .get("results")
        .and_then(Json::as_arr)
        .expect("results");
    assert_eq!(results.len(), 3);
    let flows = results[0]
        .get("codeFlows")
        .and_then(Json::as_arr)
        .expect("traced finding has codeFlows");
    let steps = flows[0]
        .get("threadFlows")
        .and_then(Json::as_arr)
        .and_then(|tf| tf[0].get("locations"))
        .and_then(Json::as_arr)
        .expect("threadFlow locations");
    assert_eq!(steps.len(), 3);
}

#[test]
fn json_output_is_parseable_and_complete() {
    let out = run(&["--format", "json", &fixture("cost_constant_violating.rs")]);
    assert!(!out.status.success());
    let doc =
        Json::parse(std::str::from_utf8(&out.stdout).expect("utf-8")).expect("json output parses");
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings");
    assert_eq!(doc.get("total").and_then(Json::as_u64), Some(4));
    assert_eq!(findings.len(), 4);
    let first = &findings[0];
    assert_eq!(
        first.get("lint").and_then(Json::as_str),
        Some("cost-constant")
    );
    assert!(first.get("line").and_then(Json::as_u64).is_some());
    assert!(first
        .get("file")
        .and_then(Json::as_str)
        .expect("file")
        .ends_with("cost_constant_violating.rs"));
}

#[test]
fn baseline_ratchets_findings_to_zero_but_not_below() {
    let baseline_path =
        std::env::temp_dir().join(format!("cce-analyze-golden-{}.json", std::process::id()));
    let baseline = baseline_path.to_string_lossy().into_owned();
    let target = fixture("panic_path_violating.rs");

    // Capture today's debt.
    let out = run(&[&target, "--baseline", &baseline, "--update-baseline"]);
    assert!(out.status.success(), "update-baseline failed");

    // Inside the budget: suppressed.
    let out = run(&[&target, "--baseline", &baseline]);
    assert!(out.status.success(), "within-baseline run must pass");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("3 suppressed by baseline"), "{stdout}");

    // Paying the debt down without refreshing the baseline is itself a
    // failure, so the reduction gets locked in rather than left as
    // headroom to regress into.
    let out = run(&[&fixture("panic_path_clean.rs"), "--baseline", &baseline]);
    assert!(!out.status.success(), "stale baseline must fail");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("baseline is stale"), "{stdout}");

    // A baseline for a different file transfers no budget.
    let out = run(&[
        &fixture("cost_constant_violating.rs"),
        "--baseline",
        &baseline,
    ]);
    assert!(!out.status.success(), "budget must not transfer");

    std::fs::remove_file(&baseline_path).ok();
}

#[test]
fn baselines_written_under_old_lint_names_keep_suppressing() {
    // A baseline committed before the nondet-iter → nondet-taint
    // rename must migrate its buckets, not silently drop them.
    let baseline_path =
        std::env::temp_dir().join(format!("cce-analyze-rename-{}.json", std::process::id()));
    let target = fixture("nondet_taint_violating.rs");
    let old_style =
        format!("{{\"version\":1,\"counts\":{{\"nondet-iter\":{{\"{target}\":3}}}}}}\n");
    std::fs::write(&baseline_path, old_style).expect("write old-style baseline");

    let baseline = baseline_path.to_string_lossy().into_owned();
    let out = run(&[&target, "--baseline", &baseline]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        out.status.success(),
        "old-name budgets must cover the successor lint:\n{stdout}"
    );
    assert!(stdout.contains("3 suppressed by baseline"), "{stdout}");

    std::fs::remove_file(&baseline_path).ok();
}

#[test]
fn wall_time_budget_gates_the_run() {
    // An absurdly generous budget passes…
    let out = run(&[&fixture("panic_path_clean.rs"), "--budget-ms", "600000"]);
    assert!(out.status.success());
    // …an impossible one fails even with zero findings above baseline.
    // (The whole-repo scan always takes longer than 0 ms; a single
    // tiny fixture can round down to it.)
    let root = repo_root();
    let out = run(&[
        "--root",
        &root.to_string_lossy(),
        "--baseline",
        &root.join("analyze-baseline.json").to_string_lossy(),
        "--budget-ms",
        "0",
    ]);
    assert!(!out.status.success(), "0ms budget must fail");
    let stderr = String::from_utf8(out.stderr).expect("utf-8");
    assert!(stderr.contains("exceeded --budget-ms"), "{stderr}");
}

#[test]
fn usage_errors_exit_two() {
    let out = run(&["--format", "yaml"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--update-baseline"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--no-such-flag"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--budget-ms", "lots"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn repo_reports_nothing_above_committed_baseline() {
    let root = repo_root();
    let baseline = root.join("analyze-baseline.json");
    assert!(
        baseline.is_file(),
        "analyze-baseline.json must be committed at the repo root"
    );
    let out = run(&[
        "--root",
        &root.to_string_lossy(),
        "--baseline",
        &baseline.to_string_lossy(),
    ]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        out.status.success(),
        "repo has findings above baseline:\n{stdout}"
    );
}

#[test]
fn lock_model_matches_the_real_concurrent_cache() {
    // Cross-check the lint's static model against the actual
    // crates/core/src/concurrent.rs: the canonical helpers transfer
    // guards, the hierarchy descent in review() touches all three
    // classes, and the whole file simulates without violations.
    use cce_analyze::callgraph::CallGraph;
    use cce_analyze::lockgraph::{self, LockClass};
    use cce_analyze::symbols::Workspace;
    use std::collections::BTreeSet;

    let src = std::fs::read_to_string(repo_root().join("crates/core/src/concurrent.rs"))
        .expect("read concurrent.rs");
    let mut ws = Workspace::default();
    ws.add_file("crates/core/src/concurrent.rs", &src);
    let cg = CallGraph::build(&ws);

    let model = lockgraph::model(&ws, &cg);
    let q = |name: &str| format!("cce_core::concurrent::ConcurrentCache::{name}");
    assert!(model.returns_guard.contains(&q("lock_shard")));
    assert!(model.returns_guard.contains(&q("lock_tenant")));
    assert_eq!(
        model.may_acquire[&q("lock_shard")],
        BTreeSet::from([LockClass::Shard])
    );
    assert_eq!(
        model.may_acquire[&q("lock_shard_pair")],
        BTreeSet::from([LockClass::Shard])
    );
    assert_eq!(
        model.may_acquire[&q("lock_tenant")],
        BTreeSet::from([LockClass::Tenant])
    );
    assert_eq!(
        model.may_acquire[&q("review")],
        BTreeSet::from([LockClass::Arbiter, LockClass::Tenant, LockClass::Shard]),
        "review descends the full hierarchy"
    );

    let findings = lockgraph::run(&ws, &cg, true);
    assert!(
        findings.is_empty(),
        "the concurrent layer must satisfy its own lock model: {findings:?}"
    );
}

#[test]
fn typestate_path_traces_are_identical_across_formats() {
    // The same (file, line) hop sequences must come out of the text
    // renderer, the JSON trace arrays, and the SARIF codeFlows.
    let target = fixture("event_typestate_violating.rs");

    // Text: continuation lines carry "label (file:line)".
    let (ok, stdout) = run_fixture("event_typestate_violating.rs");
    assert!(!ok);
    let mut text_hops: Vec<Vec<(String, u64)>> = Vec::new();
    for line in stdout.lines() {
        if line.contains("[event-typestate]") {
            text_hops.push(Vec::new());
        } else if let Some(rest) = line.strip_prefix("    ") {
            let loc = rest.rsplit('(').next().expect("hop location");
            let loc = loc.trim_end_matches(')');
            let (file, ln) = loc.rsplit_once(':').expect("file:line");
            text_hops
                .last_mut()
                .expect("hop follows a finding")
                .push((file.to_owned(), ln.parse().expect("line number")));
        }
    }
    assert_eq!(text_hops.len(), 4, "{stdout}");
    assert!(
        text_hops.iter().all(|t| t.len() >= 2),
        "every finding is multi-hop: {text_hops:?}"
    );
    assert!(
        text_hops.iter().any(|t| t.len() >= 3),
        "the interprocedural finding crosses a call: {text_hops:?}"
    );

    // JSON.
    let out = run(&["--format", "json", &target]);
    let doc = Json::parse(std::str::from_utf8(&out.stdout).expect("utf-8")).expect("json parses");
    let findings = doc
        .get("findings")
        .and_then(Json::as_arr)
        .expect("findings");
    let json_hops: Vec<Vec<(String, u64)>> = findings
        .iter()
        .map(|f| {
            f.get("trace")
                .and_then(Json::as_arr)
                .expect("every typestate finding has a trace")
                .iter()
                .map(|h| {
                    (
                        h.get("file")
                            .and_then(Json::as_str)
                            .expect("file")
                            .to_owned(),
                        h.get("line").and_then(Json::as_u64).expect("line"),
                    )
                })
                .collect()
        })
        .collect();
    assert_eq!(json_hops, text_hops, "JSON trace must match the text hops");

    // SARIF codeFlows.
    let out = run(&["--format", "sarif", &target]);
    let doc = Json::parse(std::str::from_utf8(&out.stdout).expect("utf-8")).expect("sarif parses");
    assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
    let results = doc
        .get("runs")
        .and_then(Json::as_arr)
        .and_then(|r| r[0].get("results"))
        .and_then(Json::as_arr)
        .expect("results");
    let sarif_hops: Vec<Vec<(String, u64)>> = results
        .iter()
        .map(|r| {
            r.get("codeFlows")
                .and_then(Json::as_arr)
                .and_then(|cf| cf[0].get("threadFlows"))
                .and_then(Json::as_arr)
                .and_then(|tf| tf[0].get("locations"))
                .and_then(Json::as_arr)
                .expect("codeFlows locations")
                .iter()
                .map(|l| {
                    let phys = l
                        .get("location")
                        .and_then(|loc| loc.get("physicalLocation"))
                        .expect("physicalLocation");
                    (
                        phys.get("artifactLocation")
                            .and_then(|a| a.get("uri"))
                            .and_then(Json::as_str)
                            .expect("uri")
                            .to_owned(),
                        phys.get("region")
                            .and_then(|r| r.get("startLine"))
                            .and_then(Json::as_u64)
                            .expect("startLine"),
                    )
                })
                .collect()
        })
        .collect();
    assert_eq!(
        sarif_hops, text_hops,
        "SARIF codeFlows must match the text hops"
    );
}

#[test]
fn git_diff_mode_reports_only_changed_files() {
    use std::fs;
    let root = std::env::temp_dir().join(format!("cce-analyze-gitdiff-{}", std::process::id()));
    fs::remove_dir_all(&root).ok();
    for krate in ["core", "sim"] {
        fs::create_dir_all(root.join(format!("crates/{krate}/src"))).expect("mkdir");
        fs::write(
            root.join(format!("crates/{krate}/src/lib.rs")),
            "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n",
        )
        .expect("write");
    }
    let git = |args: &[&str]| {
        let out = Command::new("git")
            .arg("-C")
            .arg(&root)
            .args(args)
            .output()
            .expect("spawn git");
        assert!(out.status.success(), "git {args:?}: {out:?}");
    };
    git(&["init", "-q"]);
    git(&["add", "-A"]);
    git(&[
        "-c",
        "user.email=ci@example.invalid",
        "-c",
        "user.name=ci",
        "commit",
        "-q",
        "-m",
        "seed",
    ]);
    // Change only the sim crate.
    fs::write(
        root.join("crates/sim/src/lib.rs"),
        "pub fn f(v: Option<u32>) -> u32 {\n    v.unwrap()\n}\n// touched\n",
    )
    .expect("rewrite");

    let out = run(&["--root", &root.to_string_lossy(), "--git-diff", "HEAD"]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(
        !out.status.success(),
        "changed file still violates:\n{stdout}"
    );
    assert!(stdout.contains("crates/sim/src/lib.rs"), "{stdout}");
    assert!(
        !stdout.contains("crates/core/src/lib.rs"),
        "unchanged files are filtered out:\n{stdout}"
    );
    assert!(stdout.contains("1 finding(s)"), "{stdout}");

    // A full scan of the same tree reports both.
    let out = run(&["--root", &root.to_string_lossy()]);
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("2 finding(s)"), "{stdout}");

    fs::remove_dir_all(&root).ok();
}

#[test]
fn git_diff_usage_and_failures_exit_two() {
    // An unknown revision is an I/O-style error, not a silent pass.
    let root = repo_root();
    let out = run(&[
        "--root",
        &root.to_string_lossy(),
        "--git-diff",
        "no-such-rev-xyzzy",
    ]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Mixing incremental mode with explicit fixture files is a usage
    // error.
    let out = run(&["--git-diff", "HEAD", &fixture("panic_path_clean.rs")]);
    assert_eq!(out.status.code(), Some(2));
}
