//! Ablation benches for the design choices DESIGN.md §7 calls out:
//! preemptive flushing vs plain FLUSH, adaptive vs fixed unit counts, and
//! the LRU baseline vs FIFO (the §3.3 fragmentation argument).
//!
//! Each bench reports wall time of the full replay; the interesting
//! *quality* numbers (miss rates) are printed once per run so the ablation
//! is visible in the bench log.

use cce_bench::bench_trace;
use cce_core::{
    AdaptiveUnits, AffinityUnits, CacheOrg, CodeCache, FineFifo, Generational, LruCache,
    PreemptiveFlush, SuperblockId, UnitFifo,
};
use cce_dbt::TraceLog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::sync::Once;

fn replay(org: Box<dyn CacheOrg>, trace: &TraceLog) -> CodeCache {
    let sizes: HashMap<SuperblockId, u32> =
        trace.superblocks.iter().map(|s| (s.id, s.size)).collect();
    let mut cache = CodeCache::new(org);
    for ev in &trace.events {
        let cce_dbt::TraceEvent::Access { id, direct_from } = *ev;
        if cache.access(id).is_miss() {
            let _ = cache.insert(id, sizes[&id]);
        }
        if let Some(from) = direct_from {
            if cache.is_resident(from) && cache.is_resident(id) {
                let _ = cache.link(from, id);
            }
        }
    }
    cache
}

fn print_quality_once(trace: &TraceLog, capacity: u64) {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let runs: Vec<(&str, Box<dyn CacheOrg>)> = vec![
            ("FLUSH", Box::new(UnitFifo::flush_policy(capacity).unwrap())),
            ("preemptive", Box::new(PreemptiveFlush::new(capacity).unwrap())),
            ("8-unit", Box::new(UnitFifo::new(capacity, 8).unwrap())),
            (
                "affinity-8",
                Box::new(AffinityUnits::new(capacity, 8).unwrap()),
            ),
            (
                "adaptive",
                Box::new(AdaptiveUnits::new(capacity, 8, 1, 256).unwrap()),
            ),
            (
                "generational",
                Box::new(Generational::new(capacity).unwrap()),
            ),
            ("fine FIFO", Box::new(FineFifo::new(capacity).unwrap())),
            ("LRU", Box::new(LruCache::new(capacity).unwrap())),
        ];
        eprintln!("[ablation quality] {} @ {} bytes:", trace.name, capacity);
        for (label, org) in runs {
            let cache = replay(org, trace);
            eprintln!(
                "  {label:>10}: miss {:.2}%  evictions {}  unlinks {}",
                cache.stats().miss_rate() * 100.0,
                cache.stats().eviction_invocations,
                cache.stats().unlink_operations,
            );
        }
    });
}

fn ablation_policies(c: &mut Criterion) {
    let trace = bench_trace("crafty");
    let capacity = trace.max_cache_bytes() / 6;
    print_quality_once(&trace, capacity);

    let mut g = c.benchmark_group("ablation_policies");
    let mk: Vec<(&str, fn(u64) -> Box<dyn CacheOrg>)> = vec![
        ("flush", |cap| Box::new(UnitFifo::flush_policy(cap).unwrap())),
        ("preemptive", |cap| Box::new(PreemptiveFlush::new(cap).unwrap())),
        ("unit8", |cap| Box::new(UnitFifo::new(cap, 8).unwrap())),
        ("affinity8", |cap| Box::new(AffinityUnits::new(cap, 8).unwrap())),
        ("generational", |cap| Box::new(Generational::new(cap).unwrap())),
        ("adaptive", |cap| {
            Box::new(AdaptiveUnits::new(cap, 8, 1, 256).unwrap())
        }),
        ("fine_fifo", |cap| Box::new(FineFifo::new(cap).unwrap())),
        ("lru", |cap| Box::new(LruCache::new(cap).unwrap())),
    ];
    for (label, make) in mk {
        g.bench_with_input(BenchmarkId::from_parameter(label), &make, |b, make| {
            b.iter(|| black_box(replay(make(capacity), &trace).stats().misses));
        });
    }
    g.finish();
}

criterion_group!(
    name = ablation;
    config = Criterion::default().sample_size(10);
    targets = ablation_policies
);
criterion_main!(ablation);
