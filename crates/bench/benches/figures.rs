//! One Criterion group per paper table/figure: each benchmark runs the
//! pipeline that regenerates that artifact, at bench scale.

use cce_bench::{bench_trace, BENCH_SEED};
use cce_core::Granularity;
use cce_sim::measurement::Campaign;
use cce_sim::pressure::simulate_at_pressure;
use cce_sim::regression::fit_line;
use cce_sim::simulator::SimConfig;
use cce_sim::exectime::{ChainingScenario, DispatchCost};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn table1_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_workloads");
    for name in ["gzip", "gcc", "word"] {
        g.bench_with_input(BenchmarkId::new("trace_generation", name), name, |b, n| {
            let model = cce_bench::bench_model(n);
            b.iter(|| black_box(model.trace(cce_bench::BENCH_SCALE, BENCH_SEED)));
        });
    }
    g.finish();
}

fn fig3_fig4_size_statistics(c: &mut Criterion) {
    let trace = bench_trace("word");
    c.bench_function("fig3_fig4_size_statistics", |b| {
        b.iter(|| black_box(trace.summary()));
    });
}

fn fig6_miss_rates(c: &mut Criterion) {
    let trace = bench_trace("gcc");
    let mut g = c.benchmark_group("fig6_miss_rates");
    for granularity in [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::units(64),
        Granularity::Superblock,
    ] {
        g.bench_with_input(
            BenchmarkId::new("pressure2", granularity.label()),
            &granularity,
            |b, &gr| {
                b.iter(|| {
                    black_box(
                        simulate_at_pressure(&trace, gr, 2, &SimConfig::default()).unwrap(),
                    )
                });
            },
        );
    }
    g.finish();
}

fn fig7_fig11_fig15_pressure_sweep(c: &mut Criterion) {
    let trace = bench_trace("crafty");
    c.bench_function("fig7_fig11_fig15_pressure_sweep", |b| {
        b.iter(|| {
            let points = cce_sim::pressure::sweep_trace(
                &trace,
                &[Granularity::Flush, Granularity::units(8), Granularity::Superblock],
                &[2, 6, 10],
                &SimConfig::default(),
            )
            .unwrap();
            black_box(points)
        });
    });
}

fn fig8_eviction_counts(c: &mut Criterion) {
    let trace = bench_trace("vortex");
    c.bench_function("fig8_eviction_counts", |b| {
        b.iter(|| {
            let fine =
                simulate_at_pressure(&trace, Granularity::Superblock, 2, &SimConfig::default())
                    .unwrap();
            let medium =
                simulate_at_pressure(&trace, Granularity::units(64), 2, &SimConfig::default())
                    .unwrap();
            black_box((
                fine.stats.eviction_invocations,
                medium.stats.eviction_invocations,
            ))
        });
    });
}

fn fig9_regression(c: &mut Criterion) {
    let campaign = Campaign::dynamorio_like();
    c.bench_function("fig9_regression_10k_samples", |b| {
        b.iter(|| {
            let samples = campaign.eviction_samples(10_000, BENCH_SEED);
            black_box(fit_line(&samples).unwrap())
        });
    });
}

fn fig10_fig14_overhead(c: &mut Criterion) {
    let trace = bench_trace("parser");
    let mut g = c.benchmark_group("fig10_fig14_overhead");
    for (label, charge) in [("without_links", false), ("with_links", true)] {
        g.bench_with_input(BenchmarkId::new("pressure10", label), &charge, |b, &ch| {
            let cfg = SimConfig {
                charge_unlinks: ch,
                ..SimConfig::default()
            };
            b.iter(|| {
                black_box(
                    simulate_at_pressure(&trace, Granularity::units(8), 10, &cfg).unwrap(),
                )
            });
        });
    }
    g.finish();
}

fn fig12_fig13_link_analysis(c: &mut Criterion) {
    let trace = bench_trace("twolf");
    c.bench_function("fig12_out_degree", |b| {
        b.iter(|| black_box(trace.summary().mean_out_degree));
    });
    c.bench_function("fig13_census", |b| {
        b.iter(|| {
            let r = simulate_at_pressure(&trace, Granularity::units(8), 2, &SimConfig::default())
                .unwrap();
            black_box(r.census_inter_fraction())
        });
    });
}

fn table2_chaining(c: &mut Criterion) {
    c.bench_function("table2_chaining_model", |b| {
        let dispatch = DispatchCost::dynamorio();
        b.iter(|| {
            let mut total = 0.0;
            for m in cce_workloads::catalog::table2() {
                let s = ChainingScenario {
                    base_seconds: m.base_seconds,
                    instrs_per_entry: m.instrs_per_entry,
                };
                total += s.slowdown_percent(&dispatch);
            }
            black_box(total)
        });
    });
    c.bench_function("table2_chaining_engine", |b| {
        let program = cce_tinyvm::gen::generate(&cce_tinyvm::gen::GenConfig::small(77));
        b.iter(|| {
            let mut cfg = cce_dbt::EngineConfig::default();
            cfg.hot_threshold = 2;
            cfg.chaining = false;
            let mut engine = cce_dbt::Engine::new(&program, cfg).unwrap();
            black_box(engine.run(5_000_000))
        });
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default().sample_size(10);
    targets =
        table1_workloads,
        fig3_fig4_size_statistics,
        fig6_miss_rates,
        fig7_fig11_fig15_pressure_sweep,
        fig8_eviction_counts,
        fig9_regression,
        fig10_fig14_overhead,
        fig12_fig13_link_analysis,
        table2_chaining
);
criterion_main!(figures);
