//! Sweep-engine benchmarks: the paper's granularity × pressure grid on
//! the per-cell naive oracle vs the single-pass configuration ladder
//! (DESIGN.md §14).
//!
//! The offline CI equivalent — which also emits `BENCH_grid.json` and
//! gates the speedup — is `cce-experiments bench_grid`; this criterion
//! group exists for machines with a crates.io mirror where statistical
//! timing is wanted.

use cce_core::Granularity;
use cce_sim::simulator::SimConfig;
use cce_sim::{Engine, Replay};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const PRESSURES: [u32; 5] = [2, 4, 6, 8, 10];

fn run_grid(traces: &[cce_dbt::TraceLog], engine: Engine) -> usize {
    Replay::matrix(traces)
        .granularities(&Granularity::spectrum(8))
        .pressures(&PRESSURES)
        .config(&SimConfig::default())
        .engine(engine)
        .run()
        .unwrap()
        .len()
}

fn grid_engines(c: &mut Criterion) {
    let traces = vec![cce_bench::bench_trace("gzip")];
    let cells = Granularity::spectrum(8).len() * PRESSURES.len();
    let events = traces[0].events.len() as u64;
    let mut g = c.benchmark_group("grid_sweep");
    // Cells per second is the figure of merit: the ladder's win is
    // amortizing one event-stream traversal across the whole grid.
    g.throughput(Throughput::Elements(cells as u64 * events));
    g.bench_function("naive_per_cell", |b| {
        b.iter(|| black_box(run_grid(&traces, Engine::Naive)));
    });
    g.bench_function("ladder_single_pass", |b| {
        b.iter(|| black_box(run_grid(&traces, Engine::Ladder)));
    });
    g.finish();
}

fn single_replay_baseline(c: &mut Criterion) {
    // The acceptance framing for the ladder: the whole grid should cost
    // on the order of ONE naive replay, not one per cell.
    let trace = cce_bench::bench_trace("gzip");
    let mut g = c.benchmark_group("grid_single_replay");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_function("naive_one_cell", |b| {
        b.iter(|| {
            black_box(
                Replay::new(&trace)
                    .config(&SimConfig::default())
                    .run()
                    .unwrap(),
            )
        });
    });
    g.finish();
}

criterion_group!(
    name = grid;
    config = Criterion::default().sample_size(10);
    targets = grid_engines, single_replay_baseline
);
criterion_main!(grid);
