//! Microbenchmarks of the core data structures: cache operations, link
//! graph maintenance, interpretation and superblock formation throughput.

use cce_core::{CodeCache, Granularity, LinkGraph, SuperblockId};
use cce_dbt::{Engine, EngineConfig};
use cce_tinyvm::gen::{generate, GenConfig};
use cce_tinyvm::interp::Interp;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Steady-state churn: repeated touch of a working set larger than the
/// cache, measuring accesses+insertions+evictions per second.
fn cache_churn(c: &mut Criterion) {
    const OPS: u64 = 10_000;
    let mut g = c.benchmark_group("cache_churn");
    g.throughput(Throughput::Elements(OPS));
    for granularity in [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::units(64),
        Granularity::Superblock,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(granularity.label()),
            &granularity,
            |b, &gr| {
                b.iter(|| {
                    let mut cache = CodeCache::with_granularity(gr, 64 * 1024).unwrap();
                    for i in 0..OPS {
                        let id = SuperblockId(i % 512);
                        if cache.access(id).is_miss() {
                            cache.insert(id, 200 + (i % 7) as u32 * 40).unwrap();
                        }
                    }
                    black_box(cache.stats().misses)
                });
            },
        );
    }
    g.finish();
}

fn link_graph_ops(c: &mut Criterion) {
    c.bench_function("link_graph_add_remove_1k_blocks", |b| {
        b.iter(|| {
            let mut g = LinkGraph::new();
            for i in 0..1000u64 {
                g.add_link(SuperblockId(i), SuperblockId((i + 1) % 1000));
                g.add_link(SuperblockId(i), SuperblockId((i * 7 + 3) % 1000));
            }
            for i in (0..1000u64).step_by(3) {
                g.remove_block(SuperblockId(i));
            }
            black_box(g.link_count())
        });
    });
    c.bench_function("link_census_resident_graph", |b| {
        let mut cache = CodeCache::with_granularity(Granularity::units(16), 1 << 20).unwrap();
        for i in 0..2000u64 {
            cache.insert(SuperblockId(i), 230).unwrap();
        }
        for i in 0..2000u64 {
            let from = SuperblockId(i);
            let to = SuperblockId((i * 13 + 7) % 2000);
            if cache.is_resident(from) && cache.is_resident(to) {
                let _ = cache.link(from, to);
            }
        }
        b.iter(|| black_box(cache.link_census()));
    });
}

fn interpreter_throughput(c: &mut Criterion) {
    let program = generate(&GenConfig::default());
    let mut g = c.benchmark_group("interpreter");
    g.bench_function("blocks_per_second", |b| {
        b.iter(|| {
            let mut interp = Interp::new(&program);
            interp.run(200_000);
            black_box(interp.blocks_entered())
        });
    });
    g.finish();
}

fn dbt_engine_end_to_end(c: &mut Criterion) {
    let program = generate(&GenConfig::default());
    c.bench_function("dbt_engine_end_to_end", |b| {
        b.iter(|| {
            let mut cfg = EngineConfig::default();
            cfg.hot_threshold = 10;
            let mut engine = Engine::new(&program, cfg).unwrap();
            black_box(engine.run(200_000))
        });
    });
}

fn trace_replay_throughput(c: &mut Criterion) {
    let trace = cce_bench::bench_trace("perlbmk");
    let mut g = c.benchmark_group("trace_replay");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_function("events_per_second", |b| {
        let cfg = cce_sim::simulator::SimConfig {
            granularity: Granularity::units(8),
            capacity: trace.max_cache_bytes() / 2,
            ..cce_sim::simulator::SimConfig::default()
        };
        b.iter(|| black_box(cce_sim::simulator::simulate(&trace, &cfg).unwrap()));
    });
    g.finish();
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(10);
    targets =
        cache_churn,
        link_graph_ops,
        interpreter_throughput,
        dbt_engine_end_to_end,
        trace_replay_throughput
);
criterion_main!(micro);
