//! Trace-I/O benchmarks: JSON vs binary encode/decode throughput and
//! in-memory vs streaming replay (DESIGN.md §11).
//!
//! The offline CI equivalent — which also emits `BENCH_trace_io.json` —
//! is `cce-experiments bench_trace_io`; this criterion group exists for
//! machines with a crates.io mirror where statistical timing is wanted.

use cce_dbt::{trace_bin, TraceLog, TraceReader};
use cce_sim::pressure::capacity_for_pressure;
use cce_sim::simulator::{simulate, simulate_reader, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn encoded(trace: &TraceLog) -> (Vec<u8>, Vec<u8>) {
    let mut json = Vec::new();
    trace.save(&mut json).unwrap();
    let mut bin = Vec::new();
    trace_bin::save_binary(trace, &mut bin).unwrap();
    (json, bin)
}

fn decode_formats(c: &mut Criterion) {
    let trace = cce_bench::bench_trace("gzip");
    let (json, bin) = encoded(&trace);
    let mut g = c.benchmark_group("trace_decode");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_function("json", |b| {
        b.iter(|| black_box(TraceLog::load(json.as_slice()).unwrap()));
    });
    g.bench_function("binary", |b| {
        b.iter(|| black_box(trace_bin::load_binary(bin.as_slice()).unwrap()));
    });
    g.finish();
}

fn encode_formats(c: &mut Criterion) {
    let trace = cce_bench::bench_trace("gzip");
    let mut g = c.benchmark_group("trace_encode");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_function("json", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            trace.save(&mut out).unwrap();
            black_box(out.len())
        });
    });
    g.bench_function("binary", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            trace_bin::save_binary(&trace, &mut out).unwrap();
            black_box(out.len())
        });
    });
    g.finish();
}

fn replay_end_to_end(c: &mut Criterion) {
    let trace = cce_bench::bench_trace("gzip");
    let (json, bin) = encoded(&trace);
    let config = SimConfig {
        capacity: capacity_for_pressure(trace.max_cache_bytes(), 4),
        ..SimConfig::default()
    };
    let mut g = c.benchmark_group("trace_replay_end_to_end");
    g.throughput(Throughput::Elements(trace.events.len() as u64));
    g.bench_function("json_then_simulate", |b| {
        b.iter(|| {
            let log = TraceLog::load(json.as_slice()).unwrap();
            black_box(simulate(&log, &config).unwrap())
        });
    });
    g.bench_function("binary_streamed", |b| {
        b.iter(|| {
            let mut reader = TraceReader::new(std::io::Cursor::new(bin.clone())).unwrap();
            black_box(simulate_reader(&mut reader, &config).unwrap())
        });
    });
    g.finish();
}

criterion_group!(
    name = trace_io;
    config = Criterion::default().sample_size(10);
    targets = decode_formats, encode_formats, replay_end_to_end
);
criterion_main!(trace_io);
