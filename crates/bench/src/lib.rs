//! # cce-bench — Criterion benchmark harness
//!
//! One benchmark group per paper table/figure (`benches/figures.rs`),
//! microbenchmarks of the core data structures (`benches/micro.rs`), and
//! ablation benches for the extension policies DESIGN.md §7 calls out
//! (`benches/ablation.rs`).
//!
//! Benches run the same pipelines as `cce-experiments` at reduced scale so
//! `cargo bench` completes in minutes; the experiment binary is the tool
//! for full-scale reproduction.
//!
//! Shared helpers for the benches live here.

#![deny(unsafe_code)]

use cce_workloads::BenchmarkModel;

/// Scale used by the benchmark harness (fractions of Table 1 sizes).
pub const BENCH_SCALE: f64 = 0.08;

/// Seed used by the benchmark harness.
pub const BENCH_SEED: u64 = 99;

/// A small, cached trace for a named benchmark at bench scale.
///
/// # Panics
///
/// Panics if `name` is not a Table 1 benchmark.
#[must_use]
pub fn bench_trace(name: &str) -> cce_dbt::TraceLog {
    bench_model(name).trace(BENCH_SCALE, BENCH_SEED)
}

/// Looks up a Table 1 benchmark model.
///
/// # Panics
///
/// Panics if `name` is not a Table 1 benchmark.
#[must_use]
pub fn bench_model(name: &str) -> BenchmarkModel {
    cce_workloads::by_name(name).unwrap_or_else(|| panic!("{name} is not in Table 1"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_traces_are_small_but_nonempty() {
        let t = bench_trace("gcc");
        assert!(!t.events.is_empty());
        assert!(t.superblocks.len() < 1000, "bench scale must stay small");
    }

    #[test]
    #[should_panic(expected = "not in Table 1")]
    fn unknown_benchmark_panics() {
        let _ = bench_model("nope");
    }
}
