//! The [`CodeCache`]: organization + link graph + statistics.
//!
//! This is the type a dynamic optimizer embeds. It exposes the three
//! operations the paper's control-flow diagram (Figure 1) requires of a
//! cache manager — **lookup** ([`CodeCache::access`]), **insert with
//! eviction** ([`CodeCache::insert`]) and **chain** ([`CodeCache::link`]) —
//! and transparently maintains the back-pointer table so no eviction can
//! leave a dangling link.

use crate::error::CacheError;
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::links::LinkGraph;
use crate::org::unit_fifo::UnitFifo;
use crate::org::{fine_fifo::FineFifo, CacheOrg, RawEviction};
use crate::stats::CacheStats;
use std::collections::HashSet;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// The superblock is resident; execution jumps straight into the cache.
    Hit,
    /// First-ever request for this superblock (compulsory miss).
    ColdMiss,
    /// The superblock was resident once but has been evicted — the
    /// replacement policy's fault.
    CapacityMiss,
}

impl AccessResult {
    /// True for [`AccessResult::Hit`].
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// True for either miss kind.
    #[must_use]
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }
}

/// One eviction-mechanism invocation, annotated with unlink work.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvictionReport {
    /// `(superblock, size)` pairs evicted, in eviction order.
    pub evicted: Vec<(SuperblockId, u32)>,
    /// Total bytes freed.
    pub bytes: u64,
    /// For each evicted block that had incoming links from *survivors*:
    /// `(block, number_of_incoming_links_unpatched)`. This is exactly the
    /// per-block `numLinks` of the paper's Eq. 4.
    pub unlinked: Vec<(SuperblockId, u32)>,
    /// Links dropped without unpatching work: both endpoints died in this
    /// invocation (intra-unit links, including self links), or the link's
    /// source died taking its patched jump with it.
    pub links_dropped_free: u64,
}

/// Result of a successful [`CodeCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InsertReport {
    /// Eviction invocations performed to make room.
    pub evictions: Vec<EvictionReport>,
    /// Bytes lost to unit padding by this insertion.
    pub padding: u64,
}

impl InsertReport {
    /// True if the insertion evicted anything.
    #[must_use]
    pub fn evicted_anything(&self) -> bool {
        !self.evictions.is_empty()
    }
}

/// A software code cache with pluggable eviction organization.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug)]
pub struct CodeCache {
    org: Box<dyn CacheOrg>,
    links: LinkGraph,
    stats: CacheStats,
    seen: HashSet<SuperblockId>,
}

impl CodeCache {
    /// Wraps an organization (use this for custom policies).
    #[must_use]
    pub fn new(org: Box<dyn CacheOrg>) -> CodeCache {
        CodeCache {
            org,
            links: LinkGraph::new(),
            stats: CacheStats::new(),
            seen: HashSet::new(),
        }
    }

    /// Creates a cache of `capacity` bytes at one of the paper's
    /// granularities.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] or [`CacheError::TooManyUnits`]
    /// for invalid geometry.
    pub fn with_granularity(g: Granularity, capacity: u64) -> Result<CodeCache, CacheError> {
        let org: Box<dyn CacheOrg> = match g {
            Granularity::Flush => Box::new(UnitFifo::new(capacity, 1)?),
            Granularity::Units(n) => Box::new(UnitFifo::new(capacity, n.get())?),
            Granularity::Superblock => Box::new(FineFifo::new(capacity)?),
        };
        Ok(CodeCache::new(org))
    }

    /// Looks up `id`, recording hit/miss statistics. Does **not** insert.
    pub fn access(&mut self, id: SuperblockId) -> AccessResult {
        self.stats.accesses += 1;
        let result = if self.org.contains(id) {
            self.stats.hits += 1;
            self.org.note_hit(id);
            AccessResult::Hit
        } else if self.seen.contains(&id) {
            self.stats.misses += 1;
            self.stats.capacity_misses += 1;
            AccessResult::CapacityMiss
        } else {
            self.stats.misses += 1;
            self.stats.cold_misses += 1;
            AccessResult::ColdMiss
        };
        self.org.note_access(result.is_hit());
        result
    }

    /// Inserts a freshly translated superblock, evicting as required and
    /// unpatching every link into each evicted block.
    ///
    /// # Errors
    ///
    /// Propagates the organization's validation errors
    /// ([`CacheError::AlreadyResident`], [`CacheError::ZeroSize`],
    /// [`CacheError::BlockTooLarge`]).
    pub fn insert(&mut self, id: SuperblockId, size: u32) -> Result<InsertReport, CacheError> {
        self.insert_hinted(id, size, None)
    }

    /// Like [`CodeCache::insert`], with a placement hint: `partner` is the
    /// resident superblock whose exit will immediately be chained to the
    /// newcomer (the transition source that caused this regeneration).
    /// Placement-aware organizations use it to keep the upcoming link
    /// intra-unit; others ignore it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CodeCache::insert`].
    pub fn insert_hinted(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
    ) -> Result<InsertReport, CacheError> {
        let raw = self.org.insert_with_hint(id, size, partner)?;
        self.seen.insert(id);
        self.stats.insertions += 1;
        self.stats.bytes_inserted += u64::from(size);
        self.stats.padding_bytes += raw.padding;
        let mut report = InsertReport {
            evictions: Vec::with_capacity(raw.evictions.len()),
            padding: raw.padding,
        };
        for ev in raw.evictions {
            report.evictions.push(self.settle_eviction(ev));
        }
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.org.used());
        self.stats.high_water_blocks = self
            .stats
            .high_water_blocks
            .max(self.org.resident_count() as u64);
        Ok(report)
    }

    /// Convenience: access, and on a miss insert with `size`. Returns the
    /// access outcome plus the insertion report when one happened.
    ///
    /// # Errors
    ///
    /// Propagates [`CodeCache::insert`] errors.
    pub fn access_or_insert(
        &mut self,
        id: SuperblockId,
        size: u32,
    ) -> Result<(AccessResult, Option<InsertReport>), CacheError> {
        let outcome = self.access(id);
        if outcome.is_hit() {
            Ok((outcome, None))
        } else {
            let report = self.insert(id, size)?;
            Ok((outcome, Some(report)))
        }
    }

    /// Chains `from → to` (the DBT patched `from`'s exit stub to jump
    /// directly to `to`). Returns `true` if the link is new.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotResident`] if either endpoint is not
    /// currently cached — a real DBT can only patch resident code.
    pub fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError> {
        if !self.org.contains(from) {
            return Err(CacheError::NotResident(from));
        }
        if !self.org.contains(to) {
            return Err(CacheError::NotResident(to));
        }
        let new = self.links.add_link(from, to);
        if new {
            self.stats.links_created += 1;
            let same_unit = self.org.unit_of(from) == self.org.unit_of(to);
            if !same_unit {
                self.stats.inter_unit_links_created += 1;
            }
        }
        Ok(new)
    }

    /// Flushes the entire cache manually (e.g. a Dynamo-style preemptive
    /// flush on a detected phase change). Returns the eviction report, or
    /// `None` if the cache was empty.
    pub fn flush(&mut self) -> Option<EvictionReport> {
        let ev = self.org.flush_all()?;
        Some(self.settle_eviction(ev))
    }

    /// True if `id` is resident.
    #[must_use]
    pub fn is_resident(&self, id: SuperblockId) -> bool {
        self.org.contains(id)
    }

    /// The eviction unit holding `id`, if resident.
    #[must_use]
    pub fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.org.unit_of(id)
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.org.capacity()
    }

    /// Occupied bytes.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.org.used()
    }

    /// Resident superblock count.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.org.resident_count()
    }

    /// The eviction granularity in force.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.org.granularity()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The live link graph (back-pointer table included).
    #[must_use]
    pub fn link_graph(&self) -> &LinkGraph {
        &self.links
    }

    /// Takes a census of the live link population: `(intra_unit,
    /// inter_unit)` counts. Self-links are intra by definition; a link is
    /// inter-unit when its endpoints currently reside in different
    /// eviction units (the paper's Figure 13 metric).
    #[must_use]
    pub fn link_census(&self) -> (u64, u64) {
        let mut intra = 0;
        let mut inter = 0;
        for (from, to) in self.links.iter_links() {
            if from == to || self.org.unit_of(from) == self.org.unit_of(to) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        (intra, inter)
    }

    /// Direct access to the underlying organization.
    #[must_use]
    pub fn org(&self) -> &dyn CacheOrg {
        self.org.as_ref()
    }

    /// Processes one raw eviction: classifies and removes all links
    /// touching the evicted set, updating statistics.
    fn settle_eviction(&mut self, ev: RawEviction) -> EvictionReport {
        let bytes = ev.bytes();
        self.stats.eviction_invocations += 1;
        self.stats.blocks_evicted += ev.evicted.len() as u64;
        self.stats.bytes_evicted += bytes;

        let dying: HashSet<SuperblockId> = ev.evicted.iter().map(|&(id, _)| id).collect();
        let mut report = EvictionReport {
            evicted: ev.evicted,
            bytes,
            unlinked: Vec::new(),
            links_dropped_free: 0,
        };
        let links_before = self.links.link_count();
        let mut unlinked_total = 0u64;
        for &(id, _) in &report.evicted {
            // Incoming links from blocks that survive this invocation are
            // the ones that must be unpatched through the back-pointer
            // table (Eq. 4). Links among co-victims — and outgoing links,
            // which die with their source — cost nothing.
            let survivors = self
                .links
                .incoming(id)
                .iter()
                .filter(|s| !dying.contains(s))
                .count() as u32;
            self.links.remove_block(id);
            if survivors > 0 {
                report.unlinked.push((id, survivors));
                self.stats.unlink_operations += 1;
                self.stats.links_unlinked += u64::from(survivors);
                unlinked_total += u64::from(survivors);
            }
        }
        report.links_dropped_free = (links_before - self.links.link_count()) - unlinked_total;
        self.stats.links_dropped_free += report.links_dropped_free;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn access_classifies_cold_and_capacity_misses() {
        let mut c = CodeCache::with_granularity(Granularity::Flush, 100).unwrap();
        assert_eq!(c.access(sb(1)), AccessResult::ColdMiss);
        c.insert(sb(1), 60).unwrap();
        assert_eq!(c.access(sb(1)), AccessResult::Hit);
        // Force eviction of sb1.
        assert_eq!(c.access(sb(2)), AccessResult::ColdMiss);
        c.insert(sb(2), 60).unwrap();
        assert_eq!(c.access(sb(1)), AccessResult::CapacityMiss);
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.cold_misses, 2);
        assert_eq!(s.capacity_misses, 1);
    }

    #[test]
    fn link_requires_residency() {
        let mut c = CodeCache::with_granularity(Granularity::units(2), 200).unwrap();
        c.insert(sb(1), 40).unwrap();
        assert_eq!(c.link(sb(1), sb(2)), Err(CacheError::NotResident(sb(2))));
        assert_eq!(c.link(sb(2), sb(1)), Err(CacheError::NotResident(sb(2))));
        c.insert(sb(2), 40).unwrap();
        assert_eq!(c.link(sb(1), sb(2)), Ok(true));
        assert_eq!(c.link(sb(1), sb(2)), Ok(false), "duplicate patch is a no-op");
        assert_eq!(c.stats().links_created, 1);
    }

    #[test]
    fn inter_unit_links_classified_at_creation() {
        // 2 units of 50 bytes each.
        let mut c = CodeCache::with_granularity(Granularity::units(2), 100).unwrap();
        c.insert(sb(1), 30).unwrap(); // unit 0
        c.insert(sb(2), 30).unwrap(); // unit 1 (doesn't fit unit 0)
        c.insert(sb(3), 15).unwrap(); // unit 1
        c.link(sb(2), sb(3)).unwrap(); // intra (both unit 1)
        c.link(sb(1), sb(2)).unwrap(); // inter
        c.link(sb(1), sb(1)).unwrap(); // self ⇒ intra
        let s = c.stats();
        assert_eq!(s.links_created, 3);
        assert_eq!(s.inter_unit_links_created, 1);
        assert!((s.inter_unit_link_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_drops_all_links_for_free() {
        let mut c = CodeCache::with_granularity(Granularity::Flush, 100).unwrap();
        c.insert(sb(1), 30).unwrap();
        c.insert(sb(2), 30).unwrap();
        c.link(sb(1), sb(2)).unwrap();
        c.link(sb(2), sb(1)).unwrap();
        // Overflow triggers the flush.
        let report = c.insert(sb(3), 60).unwrap();
        assert_eq!(report.evictions.len(), 1);
        let ev = &report.evictions[0];
        assert!(ev.unlinked.is_empty(), "full flush needs no unlinking");
        assert_eq!(ev.links_dropped_free, 2);
        assert_eq!(c.stats().unlink_operations, 0);
        assert_eq!(c.link_graph().link_count(), 0);
    }

    #[test]
    fn fine_fifo_eviction_unpatches_survivor_links() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        c.insert(sb(1), 40).unwrap();
        c.insert(sb(2), 40).unwrap();
        c.link(sb(2), sb(1)).unwrap(); // survivor → victim link
        // Inserting 30 evicts sb1 (oldest); sb2 survives and must be
        // unpatched.
        let report = c.insert(sb(3), 30).unwrap();
        let ev = &report.evictions[0];
        assert_eq!(ev.evicted, vec![(sb(1), 40)]);
        assert_eq!(ev.unlinked, vec![(sb(1), 1)]);
        assert_eq!(c.stats().unlink_operations, 1);
        assert_eq!(c.stats().links_unlinked, 1);
        // The graph no longer records the dangling link.
        assert!(!c.link_graph().contains_link(sb(2), sb(1)));
    }

    #[test]
    fn links_between_covictims_are_free() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        c.insert(sb(1), 50).unwrap();
        c.insert(sb(2), 50).unwrap();
        c.link(sb(1), sb(2)).unwrap();
        c.link(sb(2), sb(1)).unwrap();
        // 100-byte insert evicts both in one invocation.
        let report = c.insert(sb(3), 100).unwrap();
        let ev = &report.evictions[0];
        assert_eq!(ev.evicted.len(), 2);
        assert!(ev.unlinked.is_empty());
        assert_eq!(ev.links_dropped_free, 2);
    }

    #[test]
    fn self_link_never_requires_unpatching() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 50).unwrap();
        c.insert(sb(1), 50).unwrap();
        c.link(sb(1), sb(1)).unwrap();
        let report = c.insert(sb(2), 50).unwrap();
        let ev = &report.evictions[0];
        assert!(ev.unlinked.is_empty());
        assert_eq!(ev.links_dropped_free, 1);
    }

    #[test]
    fn access_or_insert_combines_the_two() {
        let mut c = CodeCache::with_granularity(Granularity::units(4), 400).unwrap();
        let (r, ins) = c.access_or_insert(sb(9), 80).unwrap();
        assert_eq!(r, AccessResult::ColdMiss);
        assert!(ins.is_some());
        let (r, ins) = c.access_or_insert(sb(9), 80).unwrap();
        assert_eq!(r, AccessResult::Hit);
        assert!(ins.is_none());
    }

    #[test]
    fn manual_flush_reports_and_empties() {
        let mut c = CodeCache::with_granularity(Granularity::units(2), 200).unwrap();
        assert!(c.flush().is_none());
        c.insert(sb(1), 50).unwrap();
        c.insert(sb(2), 50).unwrap();
        let ev = c.flush().unwrap();
        assert_eq!(ev.evicted.len(), 2);
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.used(), 0);
        assert_eq!(c.stats().eviction_invocations, 1);
    }

    #[test]
    fn high_water_marks_track_peaks() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        c.insert(sb(1), 60).unwrap();
        c.insert(sb(2), 40).unwrap();
        c.insert(sb(3), 90).unwrap(); // evicts both
        let s = c.stats();
        assert_eq!(s.high_water_bytes, 100);
        assert_eq!(s.high_water_blocks, 2);
    }

    #[test]
    fn stats_bytes_accounting_balances() {
        let mut c = CodeCache::with_granularity(Granularity::units(4), 400).unwrap();
        for i in 0..50 {
            let size = 30 + (i % 5) as u32 * 10;
            let _ = c.access_or_insert(sb(i), size).unwrap();
        }
        let s = c.stats();
        assert_eq!(s.bytes_inserted, s.bytes_evicted + c.used());
    }
}
