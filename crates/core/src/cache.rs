//! The [`CodeCache`]: organization + link graph + statistics.
//!
//! This is the type a dynamic optimizer embeds. It exposes the three
//! operations the paper's control-flow diagram (Figure 1) requires of a
//! cache manager — **lookup** ([`CodeCache::access`]), **insert with
//! eviction** ([`CodeCache::insert_request`]) and **chain**
//! ([`CodeCache::link`]) — and transparently maintains the back-pointer
//! table so no eviction can leave a dangling link.
//!
//! Insertion is event-driven: the organization streams its eviction
//! decisions into a reusable scratch [`EventBuffer`], and the cache
//! settles them (link unpatching, statistics) in a **single traversal**,
//! producing a compact [`InsertSummary`] with no per-insert heap
//! allocation in steady state. The settled stream — with `Unlinked`
//! events and real `links_dropped_free` counts — is forwarded to an
//! optional observer ([`CodeCache::set_observer`]) and to the sink the
//! caller passes.
//!
//! There is exactly **one** insert core ([`CodeCache::insert_request`],
//! taking an [`crate::InsertRequest`]) and one flush core
//! ([`CodeCache::flush`], taking a sink); callers usually drive either
//! through the [`crate::CacheSession`] trait, which serves a bare
//! `CodeCache`, a [`crate::shard::ShardedCache`] and a per-tenant
//! [`crate::concurrent::TenantSession`] identically. The pre-redesign
//! `#[deprecated]` shims were removed once every in-repo caller had
//! migrated; owned reports are materialized from event streams only via
//! [`EvictionReport::from`] / [`InsertReport::from_events`].

use crate::error::CacheError;
use crate::events::{CacheEvent, CacheObserver, EventBuffer, EventSink};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::links::LinkGraph;
use crate::org::unit_fifo::UnitFifo;
use crate::org::{fine_fifo::FineFifo, CacheOrg};
use crate::session::InsertRequest;
use crate::stats::CacheStats;
use std::collections::HashSet;
use std::fmt;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessResult {
    /// The superblock is resident; execution jumps straight into the cache.
    Hit,
    /// First-ever request for this superblock (compulsory miss).
    ColdMiss,
    /// The superblock was resident once but has been evicted — the
    /// replacement policy's fault.
    CapacityMiss,
}

impl AccessResult {
    /// True for [`AccessResult::Hit`].
    #[must_use]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// True for either miss kind.
    #[must_use]
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }
}

/// One eviction-mechanism invocation, annotated with unlink work.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvictionReport {
    /// `(superblock, size)` pairs evicted, in eviction order.
    pub evicted: Vec<(SuperblockId, u32)>,
    /// Total bytes freed.
    pub bytes: u64,
    /// For each evicted block that had incoming links from *survivors*:
    /// `(block, number_of_incoming_links_unpatched)`. This is exactly the
    /// per-block `numLinks` of the paper's Eq. 4.
    pub unlinked: Vec<(SuperblockId, u32)>,
    /// Links dropped without unpatching work: both endpoints died in this
    /// invocation (intra-unit links, including self links), or the link's
    /// source died taking its patched jump with it.
    pub links_dropped_free: u64,
}

/// The one events→report materialization point: parses the settled
/// stream of a **single** eviction invocation (from its `EvictionBegin`
/// through its `EvictionEnd`, inclusive). Events outside that grammar
/// are ignored, so malformed slices degrade to partial reports instead
/// of panicking.
impl From<&[CacheEvent]> for EvictionReport {
    fn from(invocation: &[CacheEvent]) -> EvictionReport {
        let mut report = EvictionReport::default();
        for &ev in invocation {
            match ev {
                CacheEvent::Evicted { id, size } => report.evicted.push((id, size)),
                CacheEvent::Unlinked { id, links } => report.unlinked.push((id, links)),
                CacheEvent::EvictionEnd {
                    bytes,
                    links_dropped_free,
                } => {
                    report.bytes = bytes;
                    report.links_dropped_free = links_dropped_free;
                }
                _ => {}
            }
        }
        report
    }
}

/// Result of a successful [`CodeCache::insert`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InsertReport {
    /// Eviction invocations performed to make room.
    pub evictions: Vec<EvictionReport>,
    /// Bytes lost to unit padding by this insertion.
    pub padding: u64,
}

impl InsertReport {
    /// True if the insertion evicted anything.
    #[must_use]
    pub fn evicted_anything(&self) -> bool {
        !self.evictions.is_empty()
    }

    /// Reassembles a report from a *settled* event stream (as produced
    /// by [`CodeCache::insert_request`]): accumulates padding and slices
    /// each `EvictionBegin … EvictionEnd` invocation through
    /// [`EvictionReport::from`], the single events→report
    /// materialization point.
    #[must_use]
    pub fn from_events(events: &[CacheEvent]) -> InsertReport {
        let mut report = InsertReport::default();
        let mut i = 0;
        while i < events.len() {
            match events[i] {
                CacheEvent::Padding { bytes } => report.padding += bytes,
                CacheEvent::EvictionBegin => {
                    let mut end = i + 1;
                    while end < events.len()
                        && !matches!(events[end], CacheEvent::EvictionEnd { .. })
                    {
                        end += 1;
                    }
                    if end < events.len() {
                        report
                            .evictions
                            .push(EvictionReport::from(&events[i..=end]));
                        i = end;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        report
    }
}

/// Allocation-free digest of one insertion: everything the overhead
/// models (Eqs. 2 and 4) need, without materializing per-eviction
/// vectors. All cost models are linear, so sums are sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InsertSummary {
    /// Bytes lost to unit padding.
    pub padding: u64,
    /// Eviction-mechanism invocations performed (Eq. 2 fixed cost each).
    pub evictions: u32,
    /// Superblocks evicted across all invocations.
    pub blocks_evicted: u32,
    /// Bytes evicted across all invocations (Eq. 2 per-byte cost).
    pub bytes_evicted: u64,
    /// Evicted blocks whose incoming links needed unpatching (Eq. 4
    /// fixed cost each).
    pub unlink_operations: u32,
    /// Total links unpatched (Eq. 4 per-link cost).
    pub links_unlinked: u64,
}

impl InsertSummary {
    /// True if the insertion evicted anything.
    #[must_use]
    pub fn evicted_anything(&self) -> bool {
        self.evictions > 0
    }
}

/// A software code cache with pluggable eviction organization.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
pub struct CodeCache {
    org: Box<dyn CacheOrg>,
    links: LinkGraph,
    stats: CacheStats,
    seen: HashSet<SuperblockId>,
    /// Scratch buffer the organization streams into; reused so the hot
    /// path performs no allocation once warm.
    buf: EventBuffer,
    /// Scratch set of the current invocation's victims; reused likewise.
    dying: HashSet<SuperblockId>,
    /// Optional subscriber to the settled event stream.
    observer: Option<Box<dyn CacheObserver>>,
}

impl fmt::Debug for CodeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CodeCache")
            .field("org", &self.org)
            .field("links", &self.links)
            .field("stats", &self.stats)
            .field("observer", &self.observer.is_some())
            .finish_non_exhaustive()
    }
}

/// Forwards a settled event to the observer (if any) and the sink.
/// A macro rather than a method so the surrounding traversal can keep
/// disjoint field borrows on `links`/`stats`/`buf`.
macro_rules! settle_emit {
    ($self:ident, $sink:ident, $ev:expr) => {{
        let ev = $ev;
        if let Some(obs) = $self.observer.as_mut() {
            obs.on_event(ev);
        }
        $sink.event(ev);
    }};
}

impl CodeCache {
    /// Wraps an organization (use this for custom policies).
    #[must_use]
    pub fn new(org: Box<dyn CacheOrg>) -> CodeCache {
        CodeCache {
            org,
            links: LinkGraph::new(),
            stats: CacheStats::new(),
            seen: HashSet::new(),
            buf: EventBuffer::new(),
            dying: HashSet::new(),
            observer: None,
        }
    }

    /// Creates a cache of `capacity` bytes at one of the paper's
    /// granularities.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] or [`CacheError::TooManyUnits`]
    /// for invalid geometry.
    pub fn with_granularity(g: Granularity, capacity: u64) -> Result<CodeCache, CacheError> {
        let org: Box<dyn CacheOrg> = match g {
            Granularity::Flush => Box::new(UnitFifo::new(capacity, 1)?),
            Granularity::Units(n) => Box::new(UnitFifo::new(capacity, n.get())?),
            Granularity::Superblock => Box::new(FineFifo::new(capacity)?),
        };
        Ok(CodeCache::new(org))
    }

    /// Subscribes `observer` to the settled event stream: every `Hit`,
    /// `Miss`, `Padding`, `EvictionBegin`, `Evicted`, `Unlinked`,
    /// `EvictionEnd` and `Inserted` the cache produces from now on.
    /// Replaces any previous observer.
    pub fn set_observer(&mut self, observer: Box<dyn CacheObserver>) {
        self.observer = Some(observer);
    }

    /// Removes and returns the current observer, if any.
    pub fn take_observer(&mut self) -> Option<Box<dyn CacheObserver>> {
        self.observer.take()
    }

    /// Looks up `id`, recording hit/miss statistics. Does **not** insert.
    pub fn access(&mut self, id: SuperblockId) -> AccessResult {
        self.stats.accesses += 1;
        let result = if self.org.contains(id) {
            self.stats.hits += 1;
            self.org.note_hit(id);
            AccessResult::Hit
        } else if self.seen.contains(&id) {
            self.stats.misses += 1;
            self.stats.capacity_misses += 1;
            AccessResult::CapacityMiss
        } else {
            self.stats.misses += 1;
            self.stats.cold_misses += 1;
            AccessResult::ColdMiss
        };
        if let Some(obs) = self.observer.as_mut() {
            obs.on_event(match result {
                AccessResult::Hit => CacheEvent::Hit { id },
                AccessResult::ColdMiss => CacheEvent::Miss { id, cold: true },
                AccessResult::CapacityMiss => CacheEvent::Miss { id, cold: false },
            });
        }
        self.org.note_access(result.is_hit());
        result
    }

    /// Inserts the superblock described by `req`, evicting as required
    /// and unpatching every link into each evicted block; the settled
    /// event stream is mirrored into `sink`. Allocation-free in steady
    /// state; returns the compact [`InsertSummary`]. This is the one
    /// insert core — every other insert entry point is a shim over it.
    ///
    /// # Errors
    ///
    /// Propagates the organization's validation errors
    /// ([`CacheError::AlreadyResident`], [`CacheError::ZeroSize`],
    /// [`CacheError::BlockTooLarge`]).
    pub fn insert_request(
        &mut self,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<InsertSummary, CacheError> {
        self.buf.clear();
        self.org
            .insert_events(req.id, req.size, req.hint, &mut self.buf)?;
        self.seen.insert(req.id);
        self.stats.insertions += 1;
        self.stats.bytes_inserted += u64::from(req.size);
        let summary = self.settle(sink);
        self.stats.high_water_bytes = self.stats.high_water_bytes.max(self.org.used());
        self.stats.high_water_blocks = self
            .stats
            .high_water_blocks
            .max(self.org.resident_count() as u64);
        Ok(summary)
    }

    /// Chains `from → to` (the DBT patched `from`'s exit stub to jump
    /// directly to `to`). Returns `true` if the link is new.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotResident`] if either endpoint is not
    /// currently cached — a real DBT can only patch resident code.
    pub fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError> {
        if !self.org.contains(from) {
            return Err(CacheError::NotResident(from));
        }
        if !self.org.contains(to) {
            return Err(CacheError::NotResident(to));
        }
        let new = self.links.add_link(from, to);
        if new {
            self.stats.links_created += 1;
            let same_unit = self.org.unit_of(from) == self.org.unit_of(to);
            if !same_unit {
                self.stats.inter_unit_links_created += 1;
            }
        }
        Ok(new)
    }

    /// Flushes the entire cache manually (e.g. a Dynamo-style preemptive
    /// flush on a detected phase change), streaming the settled eviction
    /// into `sink`. Returns its summary, or `None` if the cache was
    /// empty. This is the one flush core; for an owned report use
    /// [`crate::CacheSession::flush_report`].
    pub fn flush(&mut self, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        self.buf.clear();
        if !self.org.flush_events(&mut self.buf) {
            return None;
        }
        Some(self.settle(sink))
    }

    /// Swaps the organization of an **empty** cache, preserving its
    /// statistics, its `seen` set (so miss classification survives), its
    /// link graph and any observer. This is the capacity-re-partitioning
    /// primitive: the Memshare-style arbiter flushes a lane, replaces its
    /// organization at the new capacity, and re-inserts the survivors —
    /// without forgetting which superblocks the tenant has ever seen.
    ///
    /// # Panics
    ///
    /// Panics if the cache still holds resident bytes; callers must
    /// [`CodeCache::flush`] first.
    pub fn replace_org(&mut self, org: Box<dyn CacheOrg>) {
        assert_eq!(
            self.org.used(),
            0,
            "replace_org requires an empty cache; flush first"
        );
        self.org = org;
    }

    /// True if `id` is resident.
    #[must_use]
    pub fn is_resident(&self, id: SuperblockId) -> bool {
        self.org.contains(id)
    }

    /// The eviction unit holding `id`, if resident.
    #[must_use]
    pub fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.org.unit_of(id)
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> u64 {
        self.org.capacity()
    }

    /// Occupied bytes.
    #[must_use]
    pub fn used(&self) -> u64 {
        self.org.used()
    }

    /// Resident superblock count.
    #[must_use]
    pub fn resident_count(&self) -> usize {
        self.org.resident_count()
    }

    /// The eviction granularity in force.
    #[must_use]
    pub fn granularity(&self) -> Granularity {
        self.org.granularity()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The live link graph (back-pointer table included).
    #[must_use]
    pub fn link_graph(&self) -> &LinkGraph {
        &self.links
    }

    /// Takes a census of the live link population: `(intra_unit,
    /// inter_unit)` counts. Self-links are intra by definition; a link is
    /// inter-unit when its endpoints currently reside in different
    /// eviction units (the paper's Figure 13 metric).
    #[must_use]
    pub fn link_census(&self) -> (u64, u64) {
        let mut intra = 0;
        let mut inter = 0;
        for (from, to) in self.links.iter_links() {
            if from == to || self.org.unit_of(from) == self.org.unit_of(to) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        (intra, inter)
    }

    /// Direct access to the underlying organization.
    #[must_use]
    pub fn org(&self) -> &dyn CacheOrg {
        self.org.as_ref()
    }

    /// Settles the raw event stream buffered in `self.buf` in a single
    /// traversal: classifies and removes all links touching each
    /// invocation's victims, updates statistics, and forwards the settled
    /// stream (with `Unlinked` events and real `links_dropped_free`) to
    /// the observer and `sink`.
    fn settle(&mut self, sink: &mut dyn EventSink) -> InsertSummary {
        let mut summary = InsertSummary::default();
        let n = self.buf.len();
        let mut i = 0;
        while i < n {
            let ev = self.buf.get(i);
            match ev {
                CacheEvent::Padding { bytes } => {
                    self.stats.padding_bytes += bytes;
                    summary.padding += bytes;
                    settle_emit!(self, sink, ev);
                }
                CacheEvent::EvictionBegin => {
                    // Pre-scan the invocation to learn the complete dying
                    // set — survivor classification needs it.
                    self.dying.clear();
                    let mut inv_bytes = 0u64;
                    let mut inv_blocks = 0u32;
                    let mut j = i + 1;
                    while j < n {
                        if let CacheEvent::Evicted { id, size } = self.buf.get(j) {
                            self.dying.insert(id);
                            inv_bytes += u64::from(size);
                            inv_blocks += 1;
                            j += 1;
                        } else {
                            break;
                        }
                    }
                    debug_assert!(
                        matches!(self.buf.get(j), CacheEvent::EvictionEnd { .. }),
                        "organization emitted a malformed invocation"
                    );
                    self.stats.eviction_invocations += 1;
                    self.stats.blocks_evicted += u64::from(inv_blocks);
                    self.stats.bytes_evicted += inv_bytes;
                    summary.evictions += 1;
                    summary.blocks_evicted += inv_blocks;
                    summary.bytes_evicted += inv_bytes;
                    settle_emit!(self, sink, CacheEvent::EvictionBegin);
                    let links_before = self.links.link_count();
                    let mut unlinked_total = 0u64;
                    for k in (i + 1)..j {
                        let CacheEvent::Evicted { id, size } = self.buf.get(k) else {
                            unreachable!("pre-scan bounded the invocation")
                        };
                        // Incoming links from blocks that survive this
                        // invocation are the ones that must be unpatched
                        // through the back-pointer table (Eq. 4). Links
                        // among co-victims — and outgoing links, which
                        // die with their source — cost nothing.
                        let survivors = self
                            .links
                            .incoming_iter(id)
                            .filter(|s| !self.dying.contains(s))
                            .count() as u32;
                        self.links.remove_block_quiet(id);
                        settle_emit!(self, sink, CacheEvent::Evicted { id, size });
                        if survivors > 0 {
                            self.stats.unlink_operations += 1;
                            self.stats.links_unlinked += u64::from(survivors);
                            summary.unlink_operations += 1;
                            summary.links_unlinked += u64::from(survivors);
                            unlinked_total += u64::from(survivors);
                            settle_emit!(
                                self,
                                sink,
                                CacheEvent::Unlinked {
                                    id,
                                    links: survivors
                                }
                            );
                        }
                    }
                    let links_dropped_free =
                        (links_before - self.links.link_count()) - unlinked_total;
                    self.stats.links_dropped_free += links_dropped_free;
                    settle_emit!(
                        self,
                        sink,
                        CacheEvent::EvictionEnd {
                            bytes: inv_bytes,
                            links_dropped_free,
                        }
                    );
                    i = j; // at the org's EvictionEnd; replaced by ours.
                }
                other => settle_emit!(self, sink, other),
            }
            i += 1;
        }
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullSink;
    use crate::session::CacheSession;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    /// Inserts through the one core and materializes the owned report,
    /// the way the deprecated `insert` shim does.
    fn ins(c: &mut CodeCache, id: SuperblockId, size: u32) -> InsertReport {
        let mut buf = EventBuffer::new();
        c.insert_request(InsertRequest::new(id, size), &mut buf)
            .unwrap();
        InsertReport::from_events(buf.events())
    }

    #[test]
    fn access_classifies_cold_and_capacity_misses() {
        let mut c = CodeCache::with_granularity(Granularity::Flush, 100).unwrap();
        assert_eq!(c.access(sb(1)), AccessResult::ColdMiss);
        ins(&mut c, sb(1), 60);
        assert_eq!(c.access(sb(1)), AccessResult::Hit);
        // Force eviction of sb1.
        assert_eq!(c.access(sb(2)), AccessResult::ColdMiss);
        ins(&mut c, sb(2), 60);
        assert_eq!(c.access(sb(1)), AccessResult::CapacityMiss);
        let s = c.stats();
        assert_eq!(s.accesses, 4);
        assert_eq!(s.hits, 1);
        assert_eq!(s.cold_misses, 2);
        assert_eq!(s.capacity_misses, 1);
    }

    #[test]
    fn link_requires_residency() {
        let mut c = CodeCache::with_granularity(Granularity::units(2), 200).unwrap();
        ins(&mut c, sb(1), 40);
        assert_eq!(c.link(sb(1), sb(2)), Err(CacheError::NotResident(sb(2))));
        assert_eq!(c.link(sb(2), sb(1)), Err(CacheError::NotResident(sb(2))));
        ins(&mut c, sb(2), 40);
        assert_eq!(c.link(sb(1), sb(2)), Ok(true));
        assert_eq!(
            c.link(sb(1), sb(2)),
            Ok(false),
            "duplicate patch is a no-op"
        );
        assert_eq!(c.stats().links_created, 1);
    }

    #[test]
    fn inter_unit_links_classified_at_creation() {
        // 2 units of 50 bytes each.
        let mut c = CodeCache::with_granularity(Granularity::units(2), 100).unwrap();
        ins(&mut c, sb(1), 30); // unit 0
        ins(&mut c, sb(2), 30); // unit 1 (doesn't fit unit 0)
        ins(&mut c, sb(3), 15); // unit 1
        c.link(sb(2), sb(3)).unwrap(); // intra (both unit 1)
        c.link(sb(1), sb(2)).unwrap(); // inter
        c.link(sb(1), sb(1)).unwrap(); // self ⇒ intra
        let s = c.stats();
        assert_eq!(s.links_created, 3);
        assert_eq!(s.inter_unit_links_created, 1);
        assert!((s.inter_unit_link_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_drops_all_links_for_free() {
        let mut c = CodeCache::with_granularity(Granularity::Flush, 100).unwrap();
        ins(&mut c, sb(1), 30);
        ins(&mut c, sb(2), 30);
        c.link(sb(1), sb(2)).unwrap();
        c.link(sb(2), sb(1)).unwrap();
        // Overflow triggers the flush.
        let report = ins(&mut c, sb(3), 60);
        assert_eq!(report.evictions.len(), 1);
        let ev = &report.evictions[0];
        assert!(ev.unlinked.is_empty(), "full flush needs no unlinking");
        assert_eq!(ev.links_dropped_free, 2);
        assert_eq!(c.stats().unlink_operations, 0);
        assert_eq!(c.link_graph().link_count(), 0);
    }

    #[test]
    fn fine_fifo_eviction_unpatches_survivor_links() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, sb(1), 40);
        ins(&mut c, sb(2), 40);
        c.link(sb(2), sb(1)).unwrap(); // survivor → victim link
                                       // Inserting 30 evicts sb1 (oldest); sb2 survives and must be
                                       // unpatched.
        let report = ins(&mut c, sb(3), 30);
        let ev = &report.evictions[0];
        assert_eq!(ev.evicted, vec![(sb(1), 40)]);
        assert_eq!(ev.unlinked, vec![(sb(1), 1)]);
        assert_eq!(c.stats().unlink_operations, 1);
        assert_eq!(c.stats().links_unlinked, 1);
        // The graph no longer records the dangling link.
        assert!(!c.link_graph().contains_link(sb(2), sb(1)));
    }

    #[test]
    fn links_between_covictims_are_free() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, sb(1), 50);
        ins(&mut c, sb(2), 50);
        c.link(sb(1), sb(2)).unwrap();
        c.link(sb(2), sb(1)).unwrap();
        // 100-byte insert evicts both in one invocation.
        let report = ins(&mut c, sb(3), 100);
        let ev = &report.evictions[0];
        assert_eq!(ev.evicted.len(), 2);
        assert!(ev.unlinked.is_empty());
        assert_eq!(ev.links_dropped_free, 2);
    }

    #[test]
    fn self_link_never_requires_unpatching() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 50).unwrap();
        ins(&mut c, sb(1), 50);
        c.link(sb(1), sb(1)).unwrap();
        let report = ins(&mut c, sb(2), 50);
        let ev = &report.evictions[0];
        assert!(ev.unlinked.is_empty());
        assert_eq!(ev.links_dropped_free, 1);
    }

    #[test]
    fn manual_flush_reports_and_empties() {
        let mut c = CodeCache::with_granularity(Granularity::units(2), 200).unwrap();
        assert!(c.flush(&mut NullSink).is_none());
        ins(&mut c, sb(1), 50);
        ins(&mut c, sb(2), 50);
        let reports = c.flush_report();
        assert_eq!(reports.len(), 1, "bare cache flushes in one invocation");
        assert_eq!(reports[0].evicted.len(), 2);
        assert_eq!(c.resident_count(), 0);
        assert_eq!(c.used(), 0);
        assert_eq!(c.stats().eviction_invocations, 1);
    }

    #[test]
    fn high_water_marks_track_peaks() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, sb(1), 60);
        ins(&mut c, sb(2), 40);
        ins(&mut c, sb(3), 90); // evicts both
        let s = c.stats();
        assert_eq!(s.high_water_bytes, 100);
        assert_eq!(s.high_water_blocks, 2);
    }

    #[test]
    fn stats_bytes_accounting_balances() {
        let mut c = CodeCache::with_granularity(Granularity::units(4), 400).unwrap();
        for i in 0..50 {
            let size = 30 + (i % 5) as u32 * 10;
            c.access_or_insert_quiet(InsertRequest::new(sb(i), size))
                .unwrap();
        }
        let s = c.stats();
        assert_eq!(s.bytes_inserted, s.bytes_evicted + c.used());
    }

    #[test]
    fn replace_org_keeps_stats_and_the_seen_set() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, sb(1), 60);
        c.access(sb(1));
        c.flush(&mut NullSink).unwrap();
        let stats_before = *c.stats();
        c.replace_org(Box::new(FineFifo::new(200).unwrap()));
        assert_eq!(c.stats(), &stats_before, "statistics must survive");
        assert_eq!(c.capacity(), 200);
        // The seen set survives: re-requesting sb1 is a capacity miss,
        // not a cold one.
        assert_eq!(c.access(sb(1)), AccessResult::CapacityMiss);
    }

    #[test]
    #[should_panic(expected = "replace_org requires an empty cache")]
    fn replace_org_rejects_a_nonempty_cache() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, sb(1), 60);
        c.replace_org(Box::new(FineFifo::new(200).unwrap()));
    }

    #[test]
    fn observer_sees_settled_stream() {
        use std::sync::{Arc, Mutex};
        let events: Arc<Mutex<Vec<CacheEvent>>> = Arc::default();
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        let sink = Arc::clone(&events);
        c.set_observer(Box::new(move |ev: CacheEvent| {
            sink.lock().unwrap().push(ev);
        }));
        c.access(sb(1));
        ins(&mut c, sb(1), 60);
        c.access(sb(1));
        ins(&mut c, sb(2), 60); // evicts sb1
        let log = events.lock().unwrap();
        assert_eq!(
            log.as_slice(),
            &[
                CacheEvent::Miss {
                    id: sb(1),
                    cold: true
                },
                CacheEvent::Inserted {
                    id: sb(1),
                    size: 60
                },
                CacheEvent::Hit { id: sb(1) },
                CacheEvent::EvictionBegin,
                CacheEvent::Evicted {
                    id: sb(1),
                    size: 60
                },
                CacheEvent::EvictionEnd {
                    bytes: 60,
                    links_dropped_free: 0
                },
                CacheEvent::Inserted {
                    id: sb(2),
                    size: 60
                },
            ]
        );
    }

    #[test]
    fn observer_sees_unlink_events_with_real_drop_counts() {
        use std::sync::{Arc, Mutex};
        let events: Arc<Mutex<Vec<CacheEvent>>> = Arc::default();
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, sb(1), 40);
        ins(&mut c, sb(2), 40);
        c.link(sb(2), sb(1)).unwrap(); // survivor → victim
        c.link(sb(1), sb(1)).unwrap(); // self link, dropped free
        let sink = Arc::clone(&events);
        c.set_observer(Box::new(move |ev: CacheEvent| {
            sink.lock().unwrap().push(ev);
        }));
        ins(&mut c, sb(3), 30); // evicts sb1
        let log = events.lock().unwrap();
        assert_eq!(
            log.as_slice(),
            &[
                CacheEvent::EvictionBegin,
                CacheEvent::Evicted {
                    id: sb(1),
                    size: 40
                },
                CacheEvent::Unlinked {
                    id: sb(1),
                    links: 1
                },
                CacheEvent::EvictionEnd {
                    bytes: 40,
                    links_dropped_free: 1
                },
                CacheEvent::Inserted {
                    id: sb(3),
                    size: 30
                },
            ]
        );
    }

    #[test]
    fn code_cache_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<CodeCache>();
    }
}
