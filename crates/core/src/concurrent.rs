//! Concurrent multi-tenant serving: [`ConcurrentSession`].
//!
//! The ROADMAP's production-scale step: N guest programs (tenants) are
//! served against one sharded code cache **concurrently**, the way a
//! shared dynamic-optimization service would host several translated
//! processes. The design keeps three properties the single-threaded
//! layers already guarantee:
//!
//! * **Per-tenant determinism.** Every tenant owns a private lane (a
//!   [`CodeCache`]) inside each shard plus a private cross-shard link
//!   graph, and its lanes are sized by the same
//!   [`crate::shard::shard_capacities`] split and routed by the same
//!   jump hash a solo [`crate::shard::ShardedCache`] would use. A
//!   tenant's event stream and [`CacheStats`] are therefore
//!   **byte-identical** to that tenant running alone single-threaded,
//!   no matter how the global interleaving schedules the other tenants
//!   (enforced by `tests/concurrent_conformance.rs`).
//! * **Deadlock freedom.** Locks form a fixed hierarchy: the arbiter
//!   lock, then tenant locks in ascending tenant index, then shard
//!   locks in ascending shard index. The only two places allowed to
//!   acquire a shard lock are [`ConcurrentCache::lock_shard`] and the
//!   ordered-acquire helper [`ConcurrentCache::lock_shard_pair`] —
//!   cce-analyze's `lock-ordering` lint flags any other acquisition.
//! * **Honest accounting.** Cross-shard links are charged through the
//!   same [`CrossShardSink`] rewriter the sharded cache uses, and a
//!   capacity re-partition pays for itself: lanes are flushed (severing
//!   their cross-shard links at real Eq. 4 cost), re-sized via
//!   [`CodeCache::replace_org`] (statistics and the `seen` set survive)
//!   and re-populated block by block.
//!
//! Capacity arbitration follows Memshare (Cidon et al., ATC'17): every
//! `review_period` accesses the arbiter compares tenants by **ghost
//! benefit** — capacity misses accumulated over a decayed window, per
//! byte of capacity. Each such miss is a block the tenant once held and
//! lost, i.e. a hit its lane would have served with more room. When the
//! neediest tenant's benefit exceeds the most-satisfied tenant's by the
//! hysteresis factor, a fixed fraction of the donor's bytes moves over,
//! and the re-partition is recorded as an [`ArbiterDecision`] so
//! reallocations are observable and replayable.

use crate::cache::{AccessResult, CodeCache, InsertSummary};
use crate::error::CacheError;
use crate::events::{EventSink, NullSink};
use crate::ids::{Granularity, SuperblockId};
use crate::links::LinkGraph;
use crate::org::fine_fifo::FineFifo;
use crate::org::unit_fifo::UnitFifo;
use crate::org::CacheOrg;
use crate::session::{AccessOutcome, CacheSession, InsertRequest};
use crate::shard::{jump_hash, shard_capacities, CrossShardExtras, CrossShardSink};
use crate::stats::CacheStats;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Identifies one tenant (one guest program) of a [`ConcurrentSession`];
/// tenants are numbered densely from zero in declaration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Builds one lane's organization at a given capacity. The arbiter calls
/// this again at new capacities when it re-partitions, so the closure
/// must be pure in everything but the capacity argument.
pub type OrgFactory = Box<dyn Fn(u64) -> Result<Box<dyn CacheOrg>, CacheError> + Send + Sync>;

/// One tenant's declaration: its total byte budget (split over the
/// shards exactly like a solo [`crate::shard::ShardedCache`]) and the
/// organization its lanes run.
pub struct TenantConfig {
    /// Total capacity across all shards, in bytes.
    pub capacity: u64,
    /// Lane organization factory.
    pub factory: OrgFactory,
}

impl TenantConfig {
    /// A tenant with an explicit organization factory.
    #[must_use]
    pub fn new(capacity: u64, factory: OrgFactory) -> TenantConfig {
        TenantConfig { capacity, factory }
    }

    /// A tenant running one of the paper's granularities, mirroring
    /// [`CodeCache::with_granularity`].
    #[must_use]
    pub fn with_granularity(g: Granularity, capacity: u64) -> TenantConfig {
        TenantConfig::new(
            capacity,
            Box::new(move |c| {
                Ok(match g {
                    Granularity::Flush => Box::new(UnitFifo::new(c, 1)?) as Box<dyn CacheOrg>,
                    Granularity::Units(n) => Box::new(UnitFifo::new(c, n.get())?),
                    Granularity::Superblock => Box::new(FineFifo::new(c)?),
                })
            }),
        )
    }
}

impl fmt::Debug for TenantConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantConfig")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

/// Tuning knobs of the Memshare-style capacity arbiter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArbiterConfig {
    /// Global accesses between reviews.
    pub review_period: u64,
    /// Ghost-window decay per review (`0.0` = only the last window,
    /// `1.0` = never forget).
    pub decay: f64,
    /// A transfer moves `donor_capacity / transfer_divisor` bytes.
    pub transfer_divisor: u64,
    /// The recipient's per-byte benefit must exceed the donor's by this
    /// factor before any bytes move (guards against thrashing swaps).
    pub hysteresis: f64,
    /// No tenant is ever shrunk below this many bytes.
    pub floor_bytes: u64,
}

impl Default for ArbiterConfig {
    fn default() -> ArbiterConfig {
        ArbiterConfig {
            review_period: 4096,
            decay: 0.5,
            transfer_divisor: 8,
            hysteresis: 1.25,
            floor_bytes: 1024,
        }
    }
}

/// One recorded re-partition: which tenant donated how many bytes to
/// whom, and what the move cost in cache contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArbiterDecision {
    /// The review (1-based epoch of `review_period` accesses) that made
    /// this decision.
    pub review: u64,
    /// The tenant that gave up capacity.
    pub donor: TenantId,
    /// The tenant that received it.
    pub recipient: TenantId,
    /// Bytes moved from donor to recipient.
    pub bytes_moved: u64,
    /// Every tenant's assigned byte budget after the move, by tenant
    /// index; the sum is invariant across decisions. (A lane's
    /// organization may round its slice down internally, e.g. a
    /// unit-FIFO truncating to a unit multiple, exactly as in a solo
    /// sharded cache.)
    pub capacities: Vec<u64>,
    /// Blocks that survived the two rebuilds (flush + re-insert).
    pub blocks_reinserted: u64,
    /// Blocks dropped because they no longer fit their re-sized lane.
    pub blocks_dropped: u64,
}

/// One shard: every tenant's private lane behind a single lock. Lanes
/// are indexed by tenant, so `lanes[t]` is tenant `t`'s slice of this
/// shard's capacity.
#[derive(Debug)]
struct ShardSlot {
    lanes: Vec<CodeCache>,
}

/// Per-tenant state that is not per-shard: the tenant's cross-shard
/// link graph and the bookkeeping its lanes cannot see.
struct TenantState {
    xlinks: LinkGraph,
    extras: CrossShardExtras,
    /// `None` for the single-tenant wrapper path ([`crate::shard::ShardedCache`]
    /// over pre-built shards), where no re-partitioning is possible.
    factory: Option<OrgFactory>,
}

impl TenantState {
    fn new(factory: Option<OrgFactory>) -> TenantState {
        TenantState {
            xlinks: LinkGraph::new(),
            extras: CrossShardExtras::default(),
            factory,
        }
    }
}

impl fmt::Debug for TenantState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantState")
            .field("xlinks", &self.xlinks)
            .field("extras", &self.extras)
            .field("resizable", &self.factory.is_some())
            .finish()
    }
}

/// The arbiter's mutable state, guarded by its own lock at the top of
/// the hierarchy.
#[derive(Debug)]
struct ArbiterState {
    config: ArbiterConfig,
    /// Last completed review epoch.
    reviews: u64,
    /// Decayed ghost-hit window per tenant (capacity-miss deltas).
    ghosts: Vec<f64>,
    /// Capacity-miss totals at the previous review, per tenant.
    last_capacity_misses: Vec<u64>,
    /// Assigned byte budgets per tenant; the sum never changes.
    budgets: Vec<u64>,
    decisions: Vec<ArbiterDecision>,
}

/// The shared concurrent cache: shards behind per-shard locks, tenants
/// behind per-tenant locks, an optional arbiter on top. All serving
/// methods take `&self`; [`ConcurrentSession`] hands out clones of one
/// `Arc` of this.
pub(crate) struct ConcurrentCache {
    shards: Vec<Mutex<ShardSlot>>,
    tenants: Vec<Mutex<TenantState>>,
    arbiter: Option<Mutex<ArbiterState>>,
    /// Copy of the arbiter's `review_period` (0 = no arbiter), readable
    /// without a lock on the access fast path.
    review_period: u64,
    /// Global access counter driving review epochs.
    accesses: AtomicU64,
}

impl fmt::Debug for ConcurrentCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcurrentCache")
            .field("shards", &self.shards.len())
            .field("tenants", &self.tenants.len())
            .field("arbiter", &self.arbiter.is_some())
            .field("accesses", &self.accesses.load(Ordering::Relaxed))
            .finish()
    }
}

impl ConcurrentCache {
    /// Single-tenant construction over pre-built shards — the
    /// [`crate::shard::ShardedCache`] path. No factory, so no arbiter.
    pub(crate) fn from_shard_caches(shards: Vec<CodeCache>) -> Result<ConcurrentCache, CacheError> {
        if shards.is_empty() {
            return Err(CacheError::ZeroCapacity);
        }
        Ok(ConcurrentCache {
            shards: shards
                .into_iter()
                .map(|c| Mutex::new(ShardSlot { lanes: vec![c] }))
                .collect(),
            tenants: vec![Mutex::new(TenantState::new(None))],
            arbiter: None,
            review_period: 0,
            accesses: AtomicU64::new(0),
        })
    }

    /// Multi-tenant construction: every tenant's budget is split over
    /// `shard_count` shards exactly like a solo sharded cache.
    fn build(
        tenants: Vec<TenantConfig>,
        shard_count: u32,
        arbiter: Option<ArbiterConfig>,
    ) -> Result<ConcurrentCache, CacheError> {
        if tenants.is_empty() || shard_count == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        let budgets: Vec<u64> = tenants.iter().map(|tc| tc.capacity).collect();
        let splits: Vec<Vec<u64>> = tenants
            .iter()
            .map(|tc| shard_capacities(tc.capacity, shard_count))
            .collect();
        let mut shards = Vec::with_capacity(shard_count as usize);
        for s in 0..shard_count as usize {
            let lanes = tenants
                .iter()
                .zip(&splits)
                .map(|(tc, split)| Ok(CodeCache::new((tc.factory)(split[s])?)))
                .collect::<Result<Vec<_>, CacheError>>()?;
            shards.push(Mutex::new(ShardSlot { lanes }));
        }
        let n = tenants.len();
        let review_period = arbiter.as_ref().map_or(0, |a| a.review_period.max(1));
        Ok(ConcurrentCache {
            shards,
            tenants: tenants
                .into_iter()
                .map(|tc| Mutex::new(TenantState::new(Some(tc.factory))))
                .collect(),
            arbiter: arbiter.map(|config| {
                Mutex::new(ArbiterState {
                    config,
                    reviews: 0,
                    ghosts: vec![0.0; n],
                    last_capacity_misses: vec![0; n],
                    budgets,
                    decisions: Vec::new(),
                })
            }),
            review_period,
            accesses: AtomicU64::new(0),
        })
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// The home shard of `id` — the same pure function a solo
    /// [`crate::shard::ShardedCache`] uses, so per-tenant routing is
    /// identical to the tenant running alone.
    pub(crate) fn shard_of(&self, id: SuperblockId) -> usize {
        jump_hash(id.0, self.shards.len() as u32) as usize
    }

    /// Locks one shard slot. Together with
    /// [`ConcurrentCache::lock_shard_pair`] this is one of the only two
    /// functions allowed to acquire a shard lock (the `lock-ordering`
    /// lint in cce-analyze enforces this); both sit below the tenant
    /// locks in the fixed hierarchy.
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, ShardSlot> {
        self.shards[s]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks two **distinct** shard slots in the fixed global order —
    /// ascending shard index — and returns the guards in caller order.
    /// This is the canonical ordered-acquire helper: any code path that
    /// needs two shards at once must come through here, or two threads
    /// linking `a → b` and `b → a` could deadlock.
    fn lock_shard_pair(
        &self,
        a: usize,
        b: usize,
    ) -> (MutexGuard<'_, ShardSlot>, MutexGuard<'_, ShardSlot>) {
        debug_assert_ne!(a, b, "use lock_shard for a single shard");
        if a < b {
            let ga = self.shards[a]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let gb = self.shards[b]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (ga, gb)
        } else {
            let gb = self.shards[b]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let ga = self.shards[a]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            (ga, gb)
        }
    }

    fn lock_tenant(&self, t: usize) -> MutexGuard<'_, TenantState> {
        self.tenants[t]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Runs `f` against one lane under its shard lock — the inspection
    /// hook behind [`crate::shard::ShardedCache::with_shard`].
    pub(crate) fn with_lane<R>(&self, s: usize, t: usize, f: impl FnOnce(&CodeCache) -> R) -> R {
        f(&self.lock_shard(s).lanes[t])
    }

    /// Counts one access toward the review epoch and runs a review when
    /// the epoch boundary is crossed. Callers must have released every
    /// tenant and shard lock first.
    fn note_access(&self) {
        let n = self.accesses.fetch_add(1, Ordering::Relaxed) + 1;
        if self.review_period != 0 && n.is_multiple_of(self.review_period) {
            self.review(n / self.review_period);
        }
    }

    pub(crate) fn access_for(&self, t: usize, id: SuperblockId) -> AccessResult {
        let s = self.shard_of(id);
        let result = {
            let mut slot = self.lock_shard(s);
            slot.lanes[t].access(id)
        };
        self.note_access();
        result
    }

    /// The tenant-tagged insert path: byte-for-byte the arithmetic of
    /// [`crate::shard::ShardedCache::access_or_insert`], against tenant
    /// `t`'s private lanes and cross-shard link graph.
    pub(crate) fn access_or_insert_for(
        &self,
        t: usize,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError> {
        let mut tstate = self.lock_tenant(t);
        let s = self.shard_of(req.id);
        let mut slot = self.lock_shard(s);
        let lane = &mut slot.lanes[t];
        let access = lane.access(req.id);
        if access.is_hit() {
            drop(slot);
            drop(tstate);
            self.note_access();
            return Ok(AccessOutcome {
                access,
                inserted: None,
            });
        }
        // A hint routed to a different shard cannot inform placement in
        // this one; same-shard hints pass through untouched.
        let hint = req.hint.filter(|h| self.shard_of(*h) == s);
        let TenantState { xlinks, extras, .. } = &mut *tstate;
        let mut wrapper = CrossShardSink::new(sink, &mut *xlinks);
        let result = lane.insert_request(
            InsertRequest::new(req.id, req.size).with_hint(hint),
            &mut wrapper,
        );
        let mut summary = match result {
            Ok(summary) => summary,
            Err(e) => {
                drop(slot);
                drop(tstate);
                self.note_access();
                return Err(e);
            }
        };
        summary.unlink_operations += wrapper.unlink_operations;
        summary.links_unlinked += wrapper.links_unlinked;
        extras.unlink_operations += u64::from(wrapper.unlink_operations);
        extras.links_unlinked += wrapper.links_unlinked;
        extras.links_dropped_free += wrapper.links_dropped_free;
        drop(slot);
        drop(tstate);
        self.note_access();
        Ok(AccessOutcome {
            access,
            inserted: Some(summary),
        })
    }

    pub(crate) fn link_for(
        &self,
        t: usize,
        from: SuperblockId,
        to: SuperblockId,
    ) -> Result<bool, CacheError> {
        let mut tstate = self.lock_tenant(t);
        let sf = self.shard_of(from);
        let st = self.shard_of(to);
        if sf == st {
            let mut slot = self.lock_shard(sf);
            return slot.lanes[t].link(from, to);
        }
        let (gf, gt) = self.lock_shard_pair(sf, st);
        if !gf.lanes[t].is_resident(from) {
            return Err(CacheError::NotResident(from));
        }
        if !gt.lanes[t].is_resident(to) {
            return Err(CacheError::NotResident(to));
        }
        let new = tstate.xlinks.add_link(from, to);
        if new {
            tstate.extras.links_created += 1;
        }
        Ok(new)
    }

    pub(crate) fn flush_for(&self, t: usize, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        let mut tstate = self.lock_tenant(t);
        let TenantState { xlinks, extras, .. } = &mut *tstate;
        let mut total: Option<InsertSummary> = None;
        // Shard-index order: each lane flush settles its own links and,
        // via the wrapper, the cross-shard links its victims touch.
        for s in 0..self.shards.len() {
            let mut slot = self.lock_shard(s);
            let mut wrapper = CrossShardSink::new(&mut *sink, &mut *xlinks);
            if let Some(mut summary) = slot.lanes[t].flush(&mut wrapper) {
                summary.unlink_operations += wrapper.unlink_operations;
                summary.links_unlinked += wrapper.links_unlinked;
                extras.unlink_operations += u64::from(wrapper.unlink_operations);
                extras.links_unlinked += wrapper.links_unlinked;
                extras.links_dropped_free += wrapper.links_dropped_free;
                let tot = total.get_or_insert_with(InsertSummary::default);
                tot.padding += summary.padding;
                tot.evictions += summary.evictions;
                tot.blocks_evicted += summary.blocks_evicted;
                tot.bytes_evicted += summary.bytes_evicted;
                tot.unlink_operations += summary.unlink_operations;
                tot.links_unlinked += summary.links_unlinked;
            }
        }
        total
    }

    pub(crate) fn is_resident_for(&self, t: usize, id: SuperblockId) -> bool {
        let s = self.shard_of(id);
        self.lock_shard(s).lanes[t].is_resident(id)
    }

    pub(crate) fn contains_link_for(&self, t: usize, from: SuperblockId, to: SuperblockId) -> bool {
        let sf = self.shard_of(from);
        if sf == self.shard_of(to) {
            self.lock_shard(sf).lanes[t]
                .link_graph()
                .contains_link(from, to)
        } else {
            self.lock_tenant(t).xlinks.contains_link(from, to)
        }
    }

    pub(crate) fn capacity_for(&self, t: usize) -> u64 {
        (0..self.shards.len())
            .map(|s| self.lock_shard(s).lanes[t].capacity())
            .sum()
    }

    pub(crate) fn used_for(&self, t: usize) -> u64 {
        (0..self.shards.len())
            .map(|s| self.lock_shard(s).lanes[t].used())
            .sum()
    }

    pub(crate) fn resident_count_for(&self, t: usize) -> usize {
        (0..self.shards.len())
            .map(|s| self.lock_shard(s).lanes[t].resident_count())
            .sum()
    }

    pub(crate) fn granularity_for(&self, t: usize) -> Granularity {
        if self.shards.is_empty() {
            return Granularity::Flush;
        }
        self.lock_shard(0).lanes[t].granularity()
    }

    pub(crate) fn stats_snapshot_for(&self, t: usize) -> CacheStats {
        let mut stats = CacheStats::new();
        for s in 0..self.shards.len() {
            stats.merge(self.lock_shard(s).lanes[t].stats());
        }
        // Cross-shard links span eviction domains, so they are
        // inter-unit by definition; the Eq. 4 charges join the per-lane
        // unlink counters. High-water marks stay per-lane maxima.
        let tstate = self.lock_tenant(t);
        stats.links_created += tstate.extras.links_created;
        stats.inter_unit_links_created += tstate.extras.links_created;
        stats.unlink_operations += tstate.extras.unlink_operations;
        stats.links_unlinked += tstate.extras.links_unlinked;
        stats.links_dropped_free += tstate.extras.links_dropped_free;
        stats
    }

    pub(crate) fn link_census_for(&self, t: usize) -> (u64, u64) {
        let mut intra = 0;
        let mut inter = 0;
        for s in 0..self.shards.len() {
            let (a, b) = self.lock_shard(s).lanes[t].link_census();
            intra += a;
            inter += b;
        }
        (intra, inter + self.lock_tenant(t).xlinks.link_count())
    }

    pub(crate) fn cross_link_count(&self, t: usize) -> u64 {
        self.lock_tenant(t).xlinks.link_count()
    }

    fn decisions(&self) -> Vec<ArbiterDecision> {
        self.arbiter.as_ref().map_or_else(Vec::new, |a| {
            a.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .decisions
                .clone()
        })
    }

    /// One Memshare review: refresh the decayed ghost windows from the
    /// per-tenant capacity-miss deltas, and move a slice of capacity
    /// from the least- to the most-constrained tenant when the benefit
    /// gap clears the hysteresis bar. Takes the arbiter lock, then every
    /// tenant lock (ascending), then shard locks (ascending, one at a
    /// time) — the full hierarchy, so concurrent inserts simply wait.
    fn review(&self, epoch: u64) {
        let Some(arb) = &self.arbiter else { return };
        let mut ast = arb.lock().unwrap_or_else(PoisonError::into_inner);
        if epoch <= ast.reviews {
            return; // a racing thread already covered this epoch
        }
        let mut tenants: Vec<MutexGuard<'_, TenantState>> = self
            .tenants
            .iter()
            .map(|m| m.lock().unwrap_or_else(PoisonError::into_inner))
            .collect();
        let ntenants = tenants.len();
        let mut cap_misses = vec![0u64; ntenants];
        for s in 0..self.shards.len() {
            let slot = self.lock_shard(s);
            for (misses, lane) in cap_misses.iter_mut().zip(&slot.lanes) {
                *misses += lane.stats().capacity_misses;
            }
        }
        ast.reviews = epoch;
        let config = ast.config;
        for (t, &misses) in cap_misses.iter().enumerate() {
            let fresh = misses.saturating_sub(ast.last_capacity_misses[t]);
            ast.last_capacity_misses[t] = misses;
            ast.ghosts[t] = ast.ghosts[t] * config.decay + fresh as f64;
        }
        if ntenants < 2 {
            return;
        }
        let benefit: Vec<f64> = (0..ntenants)
            .map(|t| ast.ghosts[t] / ast.budgets[t].max(1) as f64)
            .collect();
        let recipient = arg_extreme(&benefit, |a, b| a > b);
        let donor = arg_extreme(&benefit, |a, b| a < b);
        if donor == recipient || benefit[recipient] <= config.hysteresis * benefit[donor] {
            return;
        }
        let step = (ast.budgets[donor] / config.transfer_divisor.max(1))
            .min(ast.budgets[donor].saturating_sub(config.floor_bytes));
        if step == 0 {
            return;
        }
        let donor_cap = ast.budgets[donor] - step;
        let recipient_cap = ast.budgets[recipient] + step;
        // Build every replacement organization up front, so a factory
        // failure (e.g. a slice rounding to zero bytes) aborts the
        // decision with no state mutated.
        let Some(donor_orgs) = self.build_orgs(&tenants[donor], donor_cap) else {
            return;
        };
        let Some(recipient_orgs) = self.build_orgs(&tenants[recipient], recipient_cap) else {
            return;
        };
        let (rd, dd) = self.rebuild_lanes(&mut tenants[donor], donor, donor_orgs);
        let (rr, dr) = self.rebuild_lanes(&mut tenants[recipient], recipient, recipient_orgs);
        ast.budgets[donor] = donor_cap;
        ast.budgets[recipient] = recipient_cap;
        let capacities = ast.budgets.clone();
        ast.decisions.push(ArbiterDecision {
            review: epoch,
            donor: TenantId(donor as u32),
            recipient: TenantId(recipient as u32),
            bytes_moved: step,
            capacities,
            blocks_reinserted: rd + rr,
            blocks_dropped: dd + dr,
        });
    }

    /// Builds one replacement organization per shard at the tenant's new
    /// total, or `None` when the tenant is not resizable or a slice is
    /// rejected by the factory.
    fn build_orgs(&self, state: &TenantState, total: u64) -> Option<Vec<Box<dyn CacheOrg>>> {
        let factory = state.factory.as_ref()?;
        let mut orgs = Vec::with_capacity(self.shards.len());
        for c in shard_capacities(total, self.shards.len() as u32) {
            orgs.push(factory(c).ok()?);
        }
        Some(orgs)
    }

    /// Re-sizes one tenant's lanes to the pre-built organizations:
    /// flush (severing the lane's cross-shard links at honest Eq. 4
    /// cost), [`CodeCache::replace_org`] (statistics and the `seen` set
    /// survive), then re-insert the survivors in deterministic order.
    /// Returns `(blocks_reinserted, blocks_dropped)`.
    fn rebuild_lanes(
        &self,
        state: &mut TenantState,
        t: usize,
        orgs: Vec<Box<dyn CacheOrg>>,
    ) -> (u64, u64) {
        let TenantState { xlinks, extras, .. } = state;
        let mut reinserted = 0u64;
        let mut dropped = 0u64;
        let mut discard = NullSink;
        for (s, org) in orgs.into_iter().enumerate() {
            let mut slot = self.lock_shard(s);
            let lane = &mut slot.lanes[t];
            let survivors = lane.org().resident_entries();
            let mut wrapper = CrossShardSink::new(&mut discard, &mut *xlinks);
            lane.flush(&mut wrapper);
            extras.unlink_operations += u64::from(wrapper.unlink_operations);
            extras.links_unlinked += wrapper.links_unlinked;
            extras.links_dropped_free += wrapper.links_dropped_free;
            lane.replace_org(org);
            for (id, size) in survivors {
                // Re-inserted blocks carry no links yet, so a bare sink
                // is exact; a block that no longer fits is dropped.
                match lane.insert_request(InsertRequest::new(id, size), &mut NullSink) {
                    Ok(_) => reinserted += 1,
                    Err(_) => dropped += 1,
                }
            }
        }
        (reinserted, dropped)
    }
}

fn arg_extreme(values: &[f64], better: impl Fn(f64, f64) -> bool) -> usize {
    let mut best = 0;
    for (i, &v) in values.iter().enumerate().skip(1) {
        if better(v, values[best]) {
            best = i;
        }
    }
    best
}

/// The multi-tenant serving handle. Cheap to clone (all clones share
/// one cache); hand each serving thread its own clone, or a per-tenant
/// [`TenantSession`] from [`ConcurrentSession::tenant`].
#[derive(Debug, Clone)]
pub struct ConcurrentSession {
    inner: Arc<ConcurrentCache>,
}

impl ConcurrentSession {
    /// Builds the shared cache: every tenant's budget is split over
    /// `shard_count` shards with [`shard_capacities`] and routed by the
    /// same jump hash as a solo [`crate::shard::ShardedCache`], which is
    /// what makes per-tenant streams solo-identical. Pass an
    /// [`ArbiterConfig`] to enable Memshare-style re-partitioning.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] for an empty tenant list or
    /// zero shards, and propagates factory errors (e.g. a tenant budget
    /// whose per-shard slice rounds to zero bytes).
    pub fn new(
        tenants: Vec<TenantConfig>,
        shard_count: u32,
        arbiter: Option<ArbiterConfig>,
    ) -> Result<ConcurrentSession, CacheError> {
        Ok(ConcurrentSession {
            inner: Arc::new(ConcurrentCache::build(tenants, shard_count, arbiter)?),
        })
    }

    /// Number of tenants.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        self.inner.tenant_count()
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// A per-tenant [`CacheSession`] handle sharing this cache; give
    /// each serving thread the handle for its tenant.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    #[must_use]
    pub fn tenant(&self, tenant: TenantId) -> TenantSession {
        assert!(
            (tenant.0 as usize) < self.tenant_count(),
            "unknown {tenant}"
        );
        TenantSession {
            session: self.clone(),
            tenant,
        }
    }

    /// The tenant-tagged insert path: looks `req.id` up in `tenant`'s
    /// lanes and on a miss inserts it, streaming the settled events into
    /// `sink`. Identical semantics to
    /// [`CacheSession::access_or_insert`] on that tenant's solo cache.
    ///
    /// # Errors
    ///
    /// Propagates the organization's validation errors; the access is
    /// recorded either way.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn insert_request(
        &self,
        tenant: TenantId,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError> {
        self.inner
            .access_or_insert_for(tenant.0 as usize, req, sink)
    }

    /// Looks up `id` for `tenant` without inserting.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn access(&self, tenant: TenantId, id: SuperblockId) -> AccessResult {
        self.inner.access_for(tenant.0 as usize, id)
    }

    /// Chains `from → to` in `tenant`'s link graphs.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotResident`] if either endpoint is not
    /// resident for this tenant.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn link(
        &self,
        tenant: TenantId,
        from: SuperblockId,
        to: SuperblockId,
    ) -> Result<bool, CacheError> {
        self.inner.link_for(tenant.0 as usize, from, to)
    }

    /// Flushes every lane of `tenant`, in shard-index order.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    pub fn flush(&self, tenant: TenantId, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        self.inner.flush_for(tenant.0 as usize, sink)
    }

    /// `tenant`'s aggregated statistics (its lanes plus its cross-shard
    /// extras) — exactly what the tenant's solo sharded cache would
    /// report.
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    #[must_use]
    pub fn tenant_stats(&self, tenant: TenantId) -> CacheStats {
        self.inner.stats_snapshot_for(tenant.0 as usize)
    }

    /// `tenant`'s current total capacity (moves when the arbiter
    /// re-partitions).
    ///
    /// # Panics
    ///
    /// Panics if `tenant` is out of range.
    #[must_use]
    pub fn tenant_capacity(&self, tenant: TenantId) -> u64 {
        self.inner.capacity_for(tenant.0 as usize)
    }

    /// Every re-partition the arbiter has made so far, in decision
    /// order. Empty when the arbiter is disabled.
    #[must_use]
    pub fn decisions(&self) -> Vec<ArbiterDecision> {
        self.inner.decisions()
    }
}

/// One tenant's [`CacheSession`] view of a shared [`ConcurrentSession`]:
/// the handle `cce_sim` drives per tenant, indistinguishable from that
/// tenant's solo sharded cache.
#[derive(Debug, Clone)]
pub struct TenantSession {
    session: ConcurrentSession,
    tenant: TenantId,
}

impl TenantSession {
    /// Which tenant this handle serves.
    #[must_use]
    pub fn tenant_id(&self) -> TenantId {
        self.tenant
    }

    /// The underlying shared session.
    #[must_use]
    pub fn session(&self) -> &ConcurrentSession {
        &self.session
    }
}

impl CacheSession for TenantSession {
    fn access(&mut self, id: SuperblockId) -> AccessResult {
        self.session.inner.access_for(self.tenant.0 as usize, id)
    }

    fn access_or_insert(
        &mut self,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError> {
        self.session
            .inner
            .access_or_insert_for(self.tenant.0 as usize, req, sink)
    }

    fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError> {
        self.session
            .inner
            .link_for(self.tenant.0 as usize, from, to)
    }

    fn flush(&mut self, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        self.session.inner.flush_for(self.tenant.0 as usize, sink)
    }

    fn is_resident(&self, id: SuperblockId) -> bool {
        self.session
            .inner
            .is_resident_for(self.tenant.0 as usize, id)
    }

    fn contains_link(&self, from: SuperblockId, to: SuperblockId) -> bool {
        self.session
            .inner
            .contains_link_for(self.tenant.0 as usize, from, to)
    }

    fn capacity(&self) -> u64 {
        self.session.inner.capacity_for(self.tenant.0 as usize)
    }

    fn used(&self) -> u64 {
        self.session.inner.used_for(self.tenant.0 as usize)
    }

    fn resident_count(&self) -> usize {
        self.session
            .inner
            .resident_count_for(self.tenant.0 as usize)
    }

    fn granularity(&self) -> Granularity {
        self.session.inner.granularity_for(self.tenant.0 as usize)
    }

    fn stats_snapshot(&self) -> CacheStats {
        self.session
            .inner
            .stats_snapshot_for(self.tenant.0 as usize)
    }

    fn link_census(&self) -> (u64, u64) {
        self.session.inner.link_census_for(self.tenant.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::ShardedCache;
    use crate::testutil::assert_sessions_equivalent;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    fn session(
        tenants: usize,
        capacity: u64,
        shards: u32,
        arbiter: Option<ArbiterConfig>,
    ) -> ConcurrentSession {
        let configs = (0..tenants)
            .map(|_| TenantConfig::with_granularity(Granularity::units(2), capacity))
            .collect();
        ConcurrentSession::new(configs, shards, arbiter).unwrap()
    }

    #[test]
    fn one_tenant_matches_a_solo_sharded_cache() {
        for shards in [1u32, 2, 4] {
            let concurrent = session(1, 4096, shards, None);
            let mut tenant = concurrent.tenant(TenantId(0));
            let mut solo =
                ShardedCache::with_granularity(Granularity::units(2), 4096, shards).unwrap();
            assert_sessions_equivalent(&mut tenant, &mut solo, 400);
        }
    }

    #[test]
    fn tenants_are_fully_isolated() {
        let s = session(2, 2048, 2, None);
        let a = TenantId(0);
        let b = TenantId(1);
        s.insert_request(a, InsertRequest::new(sb(1), 64), &mut NullSink)
            .unwrap();
        assert!(s.tenant(a).is_resident(sb(1)));
        assert!(!s.tenant(b).is_resident(sb(1)), "tenants must not share");
        let stats_b = s.tenant_stats(b);
        assert_eq!(stats_b.accesses, 0, "tenant b saw none of a's traffic");
        s.insert_request(b, InsertRequest::new(sb(1), 32), &mut NullSink)
            .unwrap();
        // Same id, different tenants, different sizes: both resident.
        assert_eq!(s.tenant(a).used(), 64);
        assert_eq!(s.tenant(b).used(), 32);
    }

    #[test]
    fn cross_shard_links_stay_per_tenant() {
        let s = session(2, 2048, 2, None);
        let a = sb(0);
        let shard_of = |id: SuperblockId| jump_hash(id.0, 2);
        let b = (1..64)
            .map(sb)
            .find(|&b| shard_of(b) != shard_of(a))
            .unwrap();
        for t in [TenantId(0), TenantId(1)] {
            s.insert_request(t, InsertRequest::new(a, 64), &mut NullSink)
                .unwrap();
            s.insert_request(t, InsertRequest::new(b, 64), &mut NullSink)
                .unwrap();
        }
        assert!(s.link(TenantId(0), a, b).unwrap());
        assert!(s.tenant(TenantId(0)).contains_link(a, b));
        assert!(!s.tenant(TenantId(1)).contains_link(a, b));
        assert_eq!(s.tenant_stats(TenantId(0)).links_created, 1);
        assert_eq!(s.tenant_stats(TenantId(1)).links_created, 0);
    }

    #[test]
    fn arbiter_moves_capacity_toward_the_needier_tenant() {
        let arbiter = ArbiterConfig {
            review_period: 64,
            transfer_divisor: 4,
            floor_bytes: 256,
            ..ArbiterConfig::default()
        };
        let s = session(2, 2048, 2, Some(arbiter));
        let hot = TenantId(0);
        let cold = TenantId(1);
        // Tenant 0 cycles a working set far beyond its capacity (every
        // revisit is a capacity miss = a ghost hit); tenant 1 re-hits
        // one small block.
        for round in 0..40u64 {
            for i in 0..32u64 {
                s.insert_request(hot, InsertRequest::new(sb(i), 128), &mut NullSink)
                    .unwrap();
                let _ = round;
            }
            s.insert_request(cold, InsertRequest::new(sb(1000), 64), &mut NullSink)
                .unwrap();
        }
        let decisions = s.decisions();
        assert!(!decisions.is_empty(), "the arbiter must have acted");
        for d in &decisions {
            assert_eq!(d.donor, cold);
            assert_eq!(d.recipient, hot);
            assert!(d.bytes_moved > 0);
            assert_eq!(
                d.capacities.iter().sum::<u64>(),
                4096,
                "re-partitioning conserves the total budget"
            );
            assert!(d.capacities.iter().all(|&c| c >= arbiter.floor_bytes));
        }
        assert!(s.tenant_capacity(hot) > 2048);
        // Measured lane capacities may sit a unit-rounding below the
        // assigned budgets (4 lanes of 2-unit FIFOs: at most 4 bytes).
        let total = s.tenant_capacity(hot) + s.tenant_capacity(cold);
        assert!((4092..=4096).contains(&total), "total drifted to {total}");
    }

    #[test]
    fn arbiter_rebuild_preserves_miss_classification() {
        let arbiter = ArbiterConfig {
            review_period: 32,
            transfer_divisor: 4,
            floor_bytes: 256,
            ..ArbiterConfig::default()
        };
        let s = session(2, 1024, 1, Some(arbiter));
        let hot = TenantId(0);
        for round in 0..20u64 {
            for i in 0..24u64 {
                s.insert_request(hot, InsertRequest::new(sb(i), 96), &mut NullSink)
                    .unwrap();
                let _ = round;
            }
        }
        assert!(!s.decisions().is_empty());
        // Every id was seen before, so even across rebuilds a re-request
        // must classify as a capacity miss, never cold.
        let stats = s.tenant_stats(hot);
        assert_eq!(stats.cold_misses, 24, "rebuilds must not reset `seen`");
    }

    #[test]
    fn threaded_tenants_match_their_solo_runs() {
        // A miniature of the conformance suite: 4 tenants, 4 threads,
        // each thread churning its own tenant; per-tenant statistics
        // must equal the tenant's solo single-threaded run.
        let shards = 2u32;
        let capacity = 2048u64;
        let concurrent = session(4, capacity, shards, None);
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let mut tenant = concurrent.tenant(TenantId(t));
                scope.spawn(move || churn(&mut tenant, t));
            }
        });
        for t in 0..4u32 {
            let mut solo =
                ShardedCache::with_granularity(Granularity::units(2), capacity, shards).unwrap();
            churn(&mut solo, t);
            assert_eq!(
                concurrent.tenant_stats(TenantId(t)),
                solo.stats_snapshot(),
                "tenant {t} diverged from its solo run"
            );
        }
    }

    /// Deterministic per-tenant workload, seeded by tenant index.
    fn churn<S: CacheSession>(session: &mut S, seed: u32) {
        let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (u64::from(seed) << 17);
        let mut last: Option<SuperblockId> = None;
        for _ in 0..600 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let id = sb(rng % 41);
            let size = 32 + (rng >> 8) % 97;
            let out = session
                .access_or_insert_quiet(InsertRequest::new(id, size as u32).with_hint(last))
                .unwrap();
            if out.is_miss() {
                if let Some(from) = last {
                    if session.is_resident(from) && session.is_resident(id) && from != id {
                        session.link(from, id).unwrap();
                    }
                }
            }
            last = Some(id);
        }
    }

    #[test]
    fn concurrent_session_is_send_sync_and_clone() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<ConcurrentSession>();
        assert_send_sync::<TenantSession>();
    }

    #[test]
    fn construction_rejects_degenerate_geometries() {
        assert!(matches!(
            ConcurrentSession::new(Vec::new(), 2, None),
            Err(CacheError::ZeroCapacity)
        ));
        let one = |cap| vec![TenantConfig::with_granularity(Granularity::Flush, cap)];
        assert!(matches!(
            ConcurrentSession::new(one(1024), 0, None),
            Err(CacheError::ZeroCapacity)
        ));
        // A 3-byte budget over 8 shards rounds some slices to zero.
        assert!(ConcurrentSession::new(one(3), 8, None).is_err());
    }
}
