//! Error type for code-cache operations.

use crate::ids::SuperblockId;
use std::error::Error;
use std::fmt;

/// An error returned by [`crate::CodeCache`] and the cache organizations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// A cache was created with zero capacity.
    ZeroCapacity,
    /// A superblock of zero bytes was inserted.
    ZeroSize(SuperblockId),
    /// The superblock cannot fit in the cache's eviction granule.
    ///
    /// For unit-partitioned caches `max` is the unit capacity; for the
    /// fine-grained FIFO it is the full cache capacity.
    BlockTooLarge {
        /// The offending superblock.
        id: SuperblockId,
        /// Its size in bytes.
        size: u32,
        /// The largest insertable size.
        max: u64,
    },
    /// The superblock is already resident; re-inserting it would corrupt
    /// the layout.
    AlreadyResident(SuperblockId),
    /// A link endpoint is not resident in the cache.
    NotResident(SuperblockId),
    /// More units were requested than the capacity can hold (each unit
    /// would be zero bytes).
    TooManyUnits {
        /// Requested unit count.
        units: u32,
        /// Cache capacity in bytes.
        capacity: u64,
    },
}

impl fmt::Display for CacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheError::ZeroCapacity => write!(f, "cache capacity must be nonzero"),
            CacheError::ZeroSize(id) => write!(f, "superblock {id} has zero size"),
            CacheError::BlockTooLarge { id, size, max } => write!(
                f,
                "superblock {id} ({size} bytes) exceeds the eviction granule ({max} bytes)"
            ),
            CacheError::AlreadyResident(id) => {
                write!(f, "superblock {id} is already resident")
            }
            CacheError::NotResident(id) => write!(f, "superblock {id} is not resident"),
            CacheError::TooManyUnits { units, capacity } => write!(
                f,
                "cannot split {capacity}-byte cache into {units} nonempty units"
            ),
        }
    }
}

impl Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let msgs = [
            CacheError::ZeroCapacity.to_string(),
            CacheError::ZeroSize(SuperblockId(1)).to_string(),
            CacheError::BlockTooLarge {
                id: SuperblockId(2),
                size: 100,
                max: 50,
            }
            .to_string(),
            CacheError::AlreadyResident(SuperblockId(3)).to_string(),
            CacheError::NotResident(SuperblockId(4)).to_string(),
            CacheError::TooManyUnits {
                units: 9,
                capacity: 8,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_err<E: Error + Send + Sync + 'static>(_e: E) {}
        takes_err(CacheError::ZeroCapacity);
    }
}
