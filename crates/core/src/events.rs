//! The cache event stream — the zero-allocation spine of the workspace.
//!
//! Historically every [`crate::CacheOrg::insert`] heap-allocated a
//! `RawInsert` holding `Vec<RawEviction>` values, and each consumer
//! (the [`crate::CodeCache`] bookkeeping, the DBT engine's stub
//! patching, the simulator's Eq. 2–4 overhead charging) re-walked those
//! vectors. The event layer inverts that: an organization *streams*
//! [`CacheEvent`]s into a caller-supplied [`EventSink`], the cache
//! settles them in a single traversal, and downstream layers consume a
//! compact [`crate::InsertSummary`] or subscribe via
//! [`crate::CodeCache::set_observer`]. In steady state the only storage
//! touched is a reusable scratch [`EventBuffer`] — no per-insert heap
//! allocation.
//!
//! Event grammar per insertion (as emitted by an organization):
//!
//! ```text
//! insert := Padding? ( EvictionBegin Evicted+ EvictionEnd )* Inserted
//! ```
//!
//! The settled stream produced by [`crate::CodeCache`] additionally
//! interleaves `Unlinked` after the `Evicted` events of blocks whose
//! incoming links had to be unpatched, and fills in
//! [`CacheEvent::EvictionEnd::links_dropped_free`]. `Hit`/`Miss` events
//! are emitted by [`crate::CodeCache::access`] to the observer only.

use crate::ids::SuperblockId;

/// One cache lifecycle event. `Copy`, 16 bytes — streams allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheEvent {
    /// A lookup found `id` resident.
    Hit {
        /// The superblock looked up.
        id: SuperblockId,
    },
    /// A lookup missed; `cold` distinguishes compulsory from capacity.
    Miss {
        /// The superblock looked up.
        id: SuperblockId,
        /// True for a first-ever (compulsory) miss.
        cold: bool,
    },
    /// `id` was placed in the cache (always the final event of an insert).
    Inserted {
        /// The newly resident superblock.
        id: SuperblockId,
        /// Its size in bytes.
        size: u32,
    },
    /// Bytes lost to unit padding before this insertion was placed.
    Padding {
        /// Padded (skipped) bytes.
        bytes: u64,
    },
    /// An eviction-mechanism invocation starts (Eq. 2 fixed cost).
    EvictionBegin,
    /// One superblock removed by the current invocation.
    Evicted {
        /// The removed superblock.
        id: SuperblockId,
        /// Its size in bytes.
        size: u32,
    },
    /// The current invocation is complete.
    EvictionEnd {
        /// Total bytes freed by the invocation (Eq. 2 per-byte cost).
        bytes: u64,
        /// Links dropped without unpatching work (both endpoints died
        /// together, or the source died taking its patched jump along).
        /// Organizations emit 0; the settled stream carries the real
        /// count.
        links_dropped_free: u64,
    },
    /// An evicted block had `links` incoming links from survivors that
    /// were unpatched through the back-pointer table (Eq. 4's
    /// `numLinks`). Settled stream only.
    Unlinked {
        /// The evicted block whose incoming links were unpatched.
        id: SuperblockId,
        /// Number of links unpatched.
        links: u32,
    },
}

/// A consumer of cache events.
///
/// Object-safe: organizations take `&mut dyn EventSink` so the trait
/// object can be a scratch buffer, a channel, a metrics counter, …
pub trait EventSink {
    /// Receives one event.
    fn event(&mut self, event: CacheEvent);
}

/// A reusable, growable event buffer.
///
/// [`crate::CodeCache`] keeps one of these as scratch: cleared (capacity
/// retained) before every insertion, so the hot path stops allocating
/// once the high-water event count is reached.
#[derive(Debug, Clone, Default)]
pub struct EventBuffer {
    events: Vec<CacheEvent>,
}

impl EventBuffer {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> EventBuffer {
        EventBuffer::default()
    }

    /// Clears the buffer, retaining its allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The buffered events, in emission order.
    #[must_use]
    pub fn events(&self) -> &[CacheEvent] {
        &self.events
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The event at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> CacheEvent {
        self.events[index]
    }
}

impl EventSink for EventBuffer {
    fn event(&mut self, event: CacheEvent) {
        self.events.push(event);
    }
}

/// A sink that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn event(&mut self, _event: CacheEvent) {}
}

/// A forwarding sink that counts eviction invocations — used by
/// composite organizations (e.g. [`crate::AdaptiveUnits`]) that need to
/// know how many invocations an inner insert produced without buffering
/// the stream.
pub struct CountingSink<'a> {
    inner: &'a mut dyn EventSink,
    invocations: u64,
}

impl<'a> CountingSink<'a> {
    /// Wraps `inner`.
    pub fn new(inner: &'a mut dyn EventSink) -> CountingSink<'a> {
        CountingSink {
            inner,
            invocations: 0,
        }
    }

    /// Eviction invocations seen so far.
    #[must_use]
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

impl EventSink for CountingSink<'_> {
    fn event(&mut self, event: CacheEvent) {
        if matches!(event, CacheEvent::EvictionBegin) {
            self.invocations += 1;
        }
        self.inner.event(event);
    }
}

/// Helper for organizations: lazily opens an eviction invocation on the
/// first victim and closes it (with the byte total) on [`Self::finish`].
///
/// This keeps the "no empty invocations" invariant without the
/// organization having to know up front whether any block will actually
/// die (the generational nursery, for instance, may promote everything).
pub struct EvictionScope<'a> {
    sink: &'a mut dyn EventSink,
    begun: bool,
    bytes: u64,
}

impl<'a> EvictionScope<'a> {
    /// Creates a scope writing into `sink`.
    pub fn new(sink: &'a mut dyn EventSink) -> EvictionScope<'a> {
        EvictionScope {
            sink,
            begun: false,
            bytes: 0,
        }
    }

    /// Reports one evicted block, opening the invocation if needed.
    pub fn evict(&mut self, id: SuperblockId, size: u32) {
        if !self.begun {
            self.begun = true;
            self.sink.event(CacheEvent::EvictionBegin);
        }
        self.bytes += u64::from(size);
        self.sink.event(CacheEvent::Evicted { id, size });
    }

    /// Closes the invocation. Returns true if any block was evicted.
    pub fn finish(self) -> bool {
        if self.begun {
            self.sink.event(CacheEvent::EvictionEnd {
                bytes: self.bytes,
                links_dropped_free: 0,
            });
        }
        self.begun
    }
}

/// A subscriber to the settled event stream of a [`crate::CodeCache`]
/// (see [`crate::CodeCache::set_observer`]). `Send` so an observing
/// cache can move across the sweep runner's worker threads.
pub trait CacheObserver: Send {
    /// Receives one settled event.
    fn on_event(&mut self, event: CacheEvent);
}

impl<F: FnMut(CacheEvent) + Send> CacheObserver for F {
    fn on_event(&mut self, event: CacheEvent) {
        self(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn events_are_small_and_copy() {
        // The zero-allocation contract leans on cheap event moves.
        assert!(std::mem::size_of::<CacheEvent>() <= 24);
        let e = CacheEvent::Hit { id: sb(1) };
        let f = e; // Copy
        assert_eq!(e, f);
    }

    #[test]
    fn buffer_retains_capacity_across_clears() {
        let mut buf = EventBuffer::new();
        for i in 0..64 {
            buf.event(CacheEvent::Hit { id: sb(i) });
        }
        let cap_events = buf.events.capacity();
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.events.capacity(), cap_events);
    }

    #[test]
    fn eviction_scope_is_lazy() {
        let mut buf = EventBuffer::new();
        let scope = EvictionScope::new(&mut buf);
        assert!(!scope.finish(), "no victims, no invocation");
        assert!(buf.is_empty());

        let mut scope = EvictionScope::new(&mut buf);
        scope.evict(sb(1), 10);
        scope.evict(sb(2), 30);
        assert!(scope.finish());
        assert_eq!(
            buf.events(),
            &[
                CacheEvent::EvictionBegin,
                CacheEvent::Evicted {
                    id: sb(1),
                    size: 10
                },
                CacheEvent::Evicted {
                    id: sb(2),
                    size: 30
                },
                CacheEvent::EvictionEnd {
                    bytes: 40,
                    links_dropped_free: 0
                },
            ]
        );
    }

    #[test]
    fn counting_sink_counts_invocations_only() {
        let mut buf = EventBuffer::new();
        let mut counter = CountingSink::new(&mut buf);
        counter.event(CacheEvent::Padding { bytes: 4 });
        counter.event(CacheEvent::EvictionBegin);
        counter.event(CacheEvent::Evicted { id: sb(1), size: 8 });
        counter.event(CacheEvent::EvictionEnd {
            bytes: 8,
            links_dropped_free: 0,
        });
        counter.event(CacheEvent::EvictionBegin);
        assert_eq!(counter.invocations(), 2);
        assert_eq!(buf.len(), 5, "all events forwarded");
    }

    #[test]
    fn closures_are_observers() {
        let mut hits = 0u32;
        let mut obs = |ev: CacheEvent| {
            if matches!(ev, CacheEvent::Hit { .. }) {
                hits += 1;
            }
        };
        obs.on_event(CacheEvent::Hit { id: sb(1) });
        obs.on_event(CacheEvent::Miss {
            id: sb(2),
            cold: true,
        });
        assert_eq!(hits, 1);
    }
}
