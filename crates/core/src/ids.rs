//! Identifiers and the eviction-granularity spectrum.

use std::fmt;
use std::num::NonZeroU32;

/// Identity of a superblock as assigned by the dynamic optimizer.
///
/// In a real DBT this is the original-code PC of the superblock head; the
/// cache only needs it to be unique and stable across re-insertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SuperblockId(pub u64);

impl fmt::Display for SuperblockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sb{}", self.0)
    }
}

/// Identity of a cache unit (an eviction granule).
///
/// For unit-partitioned organizations this is the unit index; for the
/// fine-grained FIFO every superblock is its own unit, so the unit id is
/// derived from the superblock id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(pub u64);

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A point on the eviction-granularity spectrum (paper §4, Figure 5).
///
/// Ordered from coarsest to finest:
///
/// * [`Granularity::Flush`] — the whole cache is one unit; filling it
///   triggers a full flush (Dynamo, DELI, and the paper's `FLUSH` baseline).
/// * [`Granularity::Units`] — the cache is split into N equal units, each
///   flushed whole in FIFO (round-robin) order; N = 2 is Mojo's policy,
///   larger N is the *medium-grained* middle ground the paper advocates.
/// * [`Granularity::Superblock`] — every superblock is its own unit; a
///   circular buffer evicts just enough of the oldest blocks to make room
///   (DynamoRIO's bounded-cache policy, the paper's finest-grained FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// Coarsest: flush the entire cache when full.
    Flush,
    /// Medium: N equal cache units flushed round-robin. `Units(1)` is
    /// semantically identical to `Flush`.
    Units(NonZeroU32),
    /// Finest: evict individual superblocks in FIFO order.
    Superblock,
}

impl Granularity {
    /// Convenience constructor for [`Granularity::Units`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn units(n: u32) -> Granularity {
        Granularity::Units(NonZeroU32::new(n).expect("unit count must be nonzero"))
    }

    /// Number of units the cache is partitioned into, if bounded.
    /// `None` means per-superblock granularity (unbounded unit count).
    #[must_use]
    pub fn unit_count(self) -> Option<u32> {
        match self {
            Granularity::Flush => Some(1),
            Granularity::Units(n) => Some(n.get()),
            Granularity::Superblock => None,
        }
    }

    /// True if this is the coarsest (full-flush) granularity.
    #[must_use]
    pub fn is_flush(self) -> bool {
        self.unit_count() == Some(1)
    }

    /// The sweep of granularities used throughout the paper's evaluation:
    /// FLUSH, 2, 4, 8, …, `2^max_pow2` units, then fine-grained FIFO.
    ///
    /// # Example
    ///
    /// ```
    /// use cce_core::Granularity;
    /// let sweep = Granularity::spectrum(8);
    /// assert_eq!(sweep.len(), 10); // FLUSH, 2..=256 by powers of two, FIFO
    /// assert_eq!(sweep[0], Granularity::Flush);
    /// assert_eq!(sweep[9], Granularity::Superblock);
    /// ```
    #[must_use]
    pub fn spectrum(max_pow2: u32) -> Vec<Granularity> {
        let mut v = vec![Granularity::Flush];
        for p in 1..=max_pow2 {
            v.push(Granularity::units(1 << p));
        }
        v.push(Granularity::Superblock);
        v
    }

    /// A short label matching the paper's figures (`FLUSH`, `8-Unit`,
    /// `FIFO`).
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Granularity::Flush => "FLUSH".to_owned(),
            Granularity::Units(n) if n.get() == 1 => "FLUSH".to_owned(),
            Granularity::Units(n) => format!("{}-Unit", n.get()),
            Granularity::Superblock => "FIFO".to_owned(),
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Orders coarsest → finest (FLUSH < 2-Unit < … < FIFO).
impl PartialOrd for Granularity {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Granularity {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Map to a comparable fineness key: unit count, with Superblock as
        // infinity.
        let key = |g: &Granularity| g.unit_count().map_or(u64::MAX, u64::from);
        key(self).cmp(&key(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_is_sorted_coarse_to_fine() {
        let s = Granularity::spectrum(8);
        for w in s.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn labels_match_paper_terms() {
        assert_eq!(Granularity::Flush.label(), "FLUSH");
        assert_eq!(Granularity::units(1).label(), "FLUSH");
        assert_eq!(Granularity::units(8).label(), "8-Unit");
        assert_eq!(Granularity::Superblock.label(), "FIFO");
    }

    #[test]
    fn unit_counts() {
        assert_eq!(Granularity::Flush.unit_count(), Some(1));
        assert_eq!(Granularity::units(64).unit_count(), Some(64));
        assert_eq!(Granularity::Superblock.unit_count(), None);
        assert!(Granularity::Flush.is_flush());
        assert!(Granularity::units(1).is_flush());
        assert!(!Granularity::units(2).is_flush());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_units_panics() {
        let _ = Granularity::units(0);
    }

    #[test]
    fn display_ids() {
        assert_eq!(SuperblockId(7).to_string(), "sb7");
        assert_eq!(UnitId(3).to_string(), "u3");
    }
}
