//! # cce-core — software code cache with a spectrum of eviction granularities
//!
//! This crate is the primary contribution of the reproduced paper
//! (*Exploring Code Cache Eviction Granularities in Dynamic Optimization
//! Systems*, Hazelwood & Smith, CGO 2004): a software-managed code cache
//! whose eviction policy ranges from a **full flush** (the whole cache is
//! one unit), through **medium-grained N-unit FIFO** (the cache is
//! partitioned into N equal units, each flushed whole in round-robin
//! order), down to **fine-grained FIFO** (individual superblocks evicted
//! from a circular buffer, just enough to fit the incoming block).
//!
//! What makes code caches different from hardware caches (paper §3):
//!
//! * entries (superblocks) are **variable-sized**;
//! * entries are **chained** — jumps between cached superblocks are patched
//!   directly, so evicting a block requires *unlinking* every incoming jump
//!   via a back-pointer table or execution would run through dangling
//!   pointers ([`links::LinkGraph`] enforces this bookkeeping);
//! * there is **no backing store** — a miss regenerates the superblock at a
//!   cost orders of magnitude above a hardware miss.
//!
//! The central type is [`CodeCache`], which combines a cache organization
//! ([`org::CacheOrg`] implementation — the eviction policy) with the link
//! graph and full statistics ([`stats::CacheStats`]). Serving goes through
//! the narrow [`CacheSession`] trait — one evented
//! `access_or_insert(req, sink)` core plus thin wrappers — implemented by
//! `CodeCache`, the sharded multi-cache [`shard::ShardedCache`] and the
//! per-tenant handles of the concurrent multi-tenant layer
//! ([`concurrent::ConcurrentSession`]).
//!
//! # Quick start
//!
//! ```
//! use cce_core::{CacheSession, CodeCache, Granularity, InsertRequest, SuperblockId};
//!
//! // 1 KiB cache split into 4 FIFO units (a medium granularity).
//! let mut cache = CodeCache::with_granularity(Granularity::units(4), 1024)?;
//!
//! let a = SuperblockId(1);
//! let b = SuperblockId(2);
//! assert!(cache
//!     .access_or_insert_quiet(InsertRequest::new(a, 200))?
//!     .is_miss());
//! cache.access_or_insert_quiet(InsertRequest::new(b, 120))?;
//! cache.link(a, b)?; // DBT patched a's exit to jump straight to b
//! assert!(cache.access(a).is_hit());
//! assert_eq!(cache.stats().links_created, 1);
//! # Ok::<(), cce_core::CacheError>(())
//! ```

#![deny(unsafe_code)]

pub mod cache;
pub mod concurrent;
pub mod error;
pub mod events;
pub mod ids;
pub mod links;
pub mod org;
pub mod session;
pub mod shard;
pub mod stats;
pub mod testutil;
pub mod visualize;

pub use cache::{AccessResult, CodeCache, EvictionReport, InsertReport, InsertSummary};
pub use concurrent::{
    ArbiterConfig, ArbiterDecision, ConcurrentSession, OrgFactory, TenantConfig, TenantId,
    TenantSession,
};
pub use error::CacheError;
pub use events::{
    CacheEvent, CacheObserver, CountingSink, EventBuffer, EventSink, EvictionScope, NullSink,
};
pub use ids::{Granularity, SuperblockId, UnitId};
pub use links::LinkGraph;
pub use org::adaptive::AdaptiveUnits;
pub use org::affinity::AffinityUnits;
pub use org::fine_fifo::FineFifo;
pub use org::generational::Generational;
pub use org::lru::LruCache;
pub use org::preemptive::PreemptiveFlush;
pub use org::unit_fifo::UnitFifo;
pub use org::{CacheOrg, RawEviction, RawInsert};
pub use session::{AccessOutcome, CacheSession, InsertRequest};
pub use shard::ShardedCache;
pub use stats::CacheStats;
