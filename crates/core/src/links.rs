//! Superblock chaining: the link graph and back-pointer table.
//!
//! When a dynamic optimizer patches the exit of cached superblock *A* to
//! jump directly to cached superblock *B* ("chaining", paper §3.1), the
//! cache manager must remember the link: if *B* is later evicted while *A*
//! survives, *A*'s patched jump would dangle into freed memory. The
//! industry solution — and the one modelled here — is a **back-pointer
//! table**: for every block, the set of blocks that link *into* it.
//!
//! [`LinkGraph`] stores both directions. The forward direction answers
//! "which exits does this block have patched" (outbound degree, Figure 12);
//! the backward direction is the back-pointer table consulted on eviction
//! (unlinking overhead, Eq. 4). The paper estimates 16 bytes per back
//! pointer, making the table ≈11.5% of the code cache; see
//! [`LinkGraph::back_pointer_bytes`].

use crate::ids::SuperblockId;
use std::collections::{BTreeMap, BTreeSet};

/// Bytes per back-pointer-table entry (an 8-byte pointer plus an 8-byte
/// list link, per the paper's footnote 2).
pub const BYTES_PER_BACK_POINTER: u64 = 16;

/// Links removed when a block leaves the graph.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RemovedLinks {
    /// Blocks that linked *into* the removed block (excluding itself).
    /// These are the potential dangling jumps that must be unpatched.
    pub incoming: Vec<SuperblockId>,
    /// Blocks the removed block linked *out* to (excluding itself). Their
    /// back-pointer entries for the removed block were dropped.
    pub outgoing: Vec<SuperblockId>,
    /// Whether the block linked to itself (a loop).
    pub had_self_link: bool,
}

/// A directed graph of superblock links with a back-pointer table.
///
/// The graph only ever contains *resident* blocks; [`crate::CodeCache`]
/// removes a block's links at eviction time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkGraph {
    out: BTreeMap<SuperblockId, BTreeSet<SuperblockId>>,
    /// The back-pointer table.
    incoming: BTreeMap<SuperblockId, BTreeSet<SuperblockId>>,
    link_count: u64,
}

impl LinkGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> LinkGraph {
        LinkGraph::default()
    }

    /// Records a link `from → to`. Returns `false` if the link already
    /// existed (patching an already-patched exit is a no-op).
    pub fn add_link(&mut self, from: SuperblockId, to: SuperblockId) -> bool {
        let inserted = self.out.entry(from).or_default().insert(to);
        if inserted {
            self.incoming.entry(to).or_default().insert(from);
            self.link_count += 1;
        }
        inserted
    }

    /// True if the link `from → to` is present.
    #[must_use]
    pub fn contains_link(&self, from: SuperblockId, to: SuperblockId) -> bool {
        self.out.get(&from).is_some_and(|s| s.contains(&to))
    }

    /// Number of links currently recorded.
    #[must_use]
    pub fn link_count(&self) -> u64 {
        self.link_count
    }

    /// Number of links leaving `id`.
    #[must_use]
    pub fn out_degree(&self, id: SuperblockId) -> usize {
        self.out.get(&id).map_or(0, BTreeSet::len)
    }

    /// Number of links entering `id` (back-pointer-table fan-in).
    #[must_use]
    pub fn in_degree(&self, id: SuperblockId) -> usize {
        self.incoming.get(&id).map_or(0, BTreeSet::len)
    }

    /// The blocks linking into `id`, in deterministic order.
    #[must_use]
    pub fn incoming(&self, id: SuperblockId) -> Vec<SuperblockId> {
        self.incoming
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Allocation-free variant of [`LinkGraph::incoming`]: iterates the
    /// blocks linking into `id` in deterministic order.
    pub fn incoming_iter(&self, id: SuperblockId) -> impl Iterator<Item = SuperblockId> + '_ {
        self.incoming.get(&id).into_iter().flatten().copied()
    }

    /// The blocks `id` links out to, in deterministic order.
    #[must_use]
    pub fn outgoing(&self, id: SuperblockId) -> Vec<SuperblockId> {
        self.out
            .get(&id)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Removes `id` and every link touching it.
    pub fn remove_block(&mut self, id: SuperblockId) -> RemovedLinks {
        let mut removed = RemovedLinks::default();
        if let Some(targets) = self.out.remove(&id) {
            for t in targets {
                if t == id {
                    removed.had_self_link = true;
                    self.link_count -= 1;
                    continue;
                }
                if let Some(back) = self.incoming.get_mut(&t) {
                    back.remove(&id);
                    if back.is_empty() {
                        self.incoming.remove(&t);
                    }
                }
                removed.outgoing.push(t);
                self.link_count -= 1;
            }
        }
        if let Some(sources) = self.incoming.remove(&id) {
            for s in sources {
                if s == id {
                    // Self link already accounted for above.
                    continue;
                }
                if let Some(fwd) = self.out.get_mut(&s) {
                    fwd.remove(&id);
                    if fwd.is_empty() {
                        self.out.remove(&s);
                    }
                }
                removed.incoming.push(s);
                self.link_count -= 1;
            }
        }
        removed
    }

    /// Allocation-free variant of [`LinkGraph::remove_block`]: removes
    /// `id` and every link touching it without materializing the removed
    /// edge lists. Callers that need the edges must inspect them (e.g.
    /// via [`LinkGraph::incoming_iter`]) *before* removal.
    pub fn remove_block_quiet(&mut self, id: SuperblockId) {
        if let Some(targets) = self.out.remove(&id) {
            for t in targets {
                self.link_count -= 1;
                if t == id {
                    continue;
                }
                if let Some(back) = self.incoming.get_mut(&t) {
                    back.remove(&id);
                    if back.is_empty() {
                        self.incoming.remove(&t);
                    }
                }
            }
        }
        if let Some(sources) = self.incoming.remove(&id) {
            for s in sources {
                if s == id {
                    // Self link already accounted for above.
                    continue;
                }
                if let Some(fwd) = self.out.get_mut(&s) {
                    fwd.remove(&id);
                    if fwd.is_empty() {
                        self.out.remove(&s);
                    }
                }
                self.link_count -= 1;
            }
        }
    }

    /// Drops every link at once (a full cache flush needs no back-pointer
    /// walks — this is the FLUSH policy's key advantage).
    pub fn clear(&mut self) {
        self.out.clear();
        self.incoming.clear();
        self.link_count = 0;
    }

    /// Estimated memory footprint of the back-pointer table at
    /// [`BYTES_PER_BACK_POINTER`] bytes per link.
    #[must_use]
    pub fn back_pointer_bytes(&self) -> u64 {
        self.link_count * BYTES_PER_BACK_POINTER
    }

    /// Iterates every live link as `(from, to)` pairs in deterministic
    /// order.
    pub fn iter_links(&self) -> impl Iterator<Item = (SuperblockId, SuperblockId)> + '_ {
        self.out
            .iter()
            .flat_map(|(&from, targets)| targets.iter().map(move |&to| (from, to)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn add_and_query_links() {
        let mut g = LinkGraph::new();
        assert!(g.add_link(sb(1), sb(2)));
        assert!(!g.add_link(sb(1), sb(2)), "duplicate link rejected");
        assert!(g.contains_link(sb(1), sb(2)));
        assert!(!g.contains_link(sb(2), sb(1)));
        assert_eq!(g.link_count(), 1);
        assert_eq!(g.out_degree(sb(1)), 1);
        assert_eq!(g.in_degree(sb(2)), 1);
        assert_eq!(g.incoming(sb(2)), vec![sb(1)]);
        assert_eq!(g.outgoing(sb(1)), vec![sb(2)]);
    }

    #[test]
    fn remove_block_reports_both_directions() {
        let mut g = LinkGraph::new();
        g.add_link(sb(1), sb(3));
        g.add_link(sb(2), sb(3));
        g.add_link(sb(3), sb(4));
        let removed = g.remove_block(sb(3));
        assert_eq!(removed.incoming, vec![sb(1), sb(2)]);
        assert_eq!(removed.outgoing, vec![sb(4)]);
        assert!(!removed.had_self_link);
        assert_eq!(g.link_count(), 0);
        // Survivors keep no stale edges.
        assert_eq!(g.out_degree(sb(1)), 0);
        assert_eq!(g.in_degree(sb(4)), 0);
    }

    #[test]
    fn self_links_are_tracked_but_not_dangling() {
        let mut g = LinkGraph::new();
        g.add_link(sb(7), sb(7));
        assert_eq!(g.link_count(), 1);
        let removed = g.remove_block(sb(7));
        assert!(removed.had_self_link);
        assert!(removed.incoming.is_empty());
        assert!(removed.outgoing.is_empty());
        assert_eq!(g.link_count(), 0);
    }

    #[test]
    fn clear_drops_everything_at_once() {
        let mut g = LinkGraph::new();
        for i in 0..10 {
            g.add_link(sb(i), sb(i + 1));
        }
        assert_eq!(g.link_count(), 10);
        g.clear();
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.back_pointer_bytes(), 0);
    }

    #[test]
    fn back_pointer_table_footprint() {
        let mut g = LinkGraph::new();
        g.add_link(sb(1), sb(2));
        g.add_link(sb(2), sb(3));
        assert_eq!(g.back_pointer_bytes(), 32);
    }

    #[test]
    fn quiet_removal_matches_reporting_removal() {
        let mut loud = LinkGraph::new();
        let mut quiet = LinkGraph::new();
        for i in 0..20u64 {
            loud.add_link(sb(i), sb((i + 1) % 20));
            loud.add_link(sb(i), sb((i + 7) % 20));
            quiet.add_link(sb(i), sb((i + 1) % 20));
            quiet.add_link(sb(i), sb((i + 7) % 20));
        }
        loud.add_link(sb(5), sb(5));
        quiet.add_link(sb(5), sb(5));
        assert_eq!(
            quiet.incoming_iter(sb(5)).collect::<Vec<_>>(),
            loud.incoming(sb(5))
        );
        loud.remove_block(sb(5));
        quiet.remove_block_quiet(sb(5));
        assert_eq!(loud, quiet);
    }

    #[test]
    fn link_count_stays_consistent_under_churn() {
        let mut g = LinkGraph::new();
        for i in 0..20u64 {
            g.add_link(sb(i), sb((i + 1) % 20));
            g.add_link(sb(i), sb((i + 7) % 20));
        }
        let before = g.link_count();
        let removed = g.remove_block(sb(5));
        let dropped = removed.incoming.len() as u64
            + removed.outgoing.len() as u64
            + u64::from(removed.had_self_link);
        assert_eq!(g.link_count(), before - dropped);
    }
}
