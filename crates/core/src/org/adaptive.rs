//! Pressure-adaptive eviction granularity (the paper's §5.4 future work).
//!
//! The paper's headline finding is that the best unit count depends on
//! cache pressure: fine granularity wins when pressure is low, coarser
//! medium grains win as pressure rises. Its future-work section proposes a
//! manager that "dynamically adjusts the eviction granularity on-the-fly,
//! based on the perceived cache pressure". [`AdaptiveUnits`] implements
//! that idea.
//!
//! Every `epoch` insertions the policy inspects the epoch's miss count and
//! eviction-invocation count, weighted by approximate per-event costs (a
//! miss costs far more than an eviction invocation, per Eqs. 2–3):
//!
//! * miss-dominated epoch ⇒ *finer* (double the unit count) — misses are
//!   what finer grains reduce;
//! * invocation-dominated epoch ⇒ *coarser* (halve the unit count).
//!
//! Re-partitioning happens by flushing the cache (one invocation), which
//! is exactly how a real system would avoid re-linking live code across a
//! moved unit boundary; adaptation is rate-limited so this cost is
//! amortized.

use crate::error::CacheError;
use crate::events::{CountingSink, EventSink};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::unit_fifo::UnitFifo;
use crate::org::CacheOrg;

/// Unit-FIFO organization that retunes its unit count from observed
/// pressure. See the module docs.
#[derive(Debug)]
pub struct AdaptiveUnits {
    inner: UnitFifo,
    capacity: u64,
    min_units: u32,
    max_units: u32,
    epoch: u64,
    insertions_this_epoch: u64,
    misses_this_epoch: u64,
    invocations_this_epoch: u64,
    adaptations: u64,
    /// Largest superblock inserted so far; bounds how fine the unit count
    /// may go (a unit must hold the largest block).
    max_block_seen: u32,
    /// Relative cost of one miss vs one eviction invocation, used to
    /// compare the two pressure signals (≈ Eq.3 / Eq.2 at the paper's
    /// median superblock size).
    miss_weight: f64,
}

impl AdaptiveUnits {
    /// Default adaptation epoch, in insertions.
    pub const DEFAULT_EPOCH: u64 = 256;
    /// Default miss/invocation cost ratio (≈19 264 / 3 690 at 230 bytes).
    pub const DEFAULT_MISS_WEIGHT: f64 = 5.2;

    /// Creates an adaptive cache starting at `start_units`, constrained to
    /// `[min_units, max_units]`.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`UnitFifo`] constructor errors.
    ///
    /// # Panics
    ///
    /// Panics if the unit bounds are not `1 <= min <= start <= max`.
    pub fn new(
        capacity: u64,
        start_units: u32,
        min_units: u32,
        max_units: u32,
    ) -> Result<AdaptiveUnits, CacheError> {
        assert!(
            1 <= min_units && min_units <= start_units && start_units <= max_units,
            "need 1 <= min <= start <= max"
        );
        Ok(AdaptiveUnits {
            inner: UnitFifo::new(capacity, start_units)?,
            capacity,
            min_units,
            max_units,
            epoch: Self::DEFAULT_EPOCH,
            insertions_this_epoch: 0,
            misses_this_epoch: 0,
            invocations_this_epoch: 0,
            adaptations: 0,
            max_block_seen: 1,
            miss_weight: Self::DEFAULT_MISS_WEIGHT,
        })
    }

    /// Sets the adaptation epoch (insertions between retuning decisions).
    ///
    /// # Panics
    ///
    /// Panics if `epoch == 0`.
    pub fn set_epoch(&mut self, epoch: u64) {
        assert!(epoch > 0, "epoch must be nonzero");
        self.epoch = epoch;
    }

    /// The current unit count.
    #[must_use]
    pub fn unit_count(&self) -> u32 {
        self.inner.unit_count()
    }

    /// How many times the unit count has been changed.
    #[must_use]
    pub fn adaptations(&self) -> u64 {
        self.adaptations
    }

    /// Decides a new unit count at an epoch boundary, retuning the inner
    /// cache if the decision changes it. The retune flush (if the cache
    /// was nonempty) streams into `sink`.
    fn maybe_adapt(&mut self, sink: &mut dyn EventSink) {
        if self.insertions_this_epoch < self.epoch {
            return;
        }
        let misses = self.misses_this_epoch as f64 * self.miss_weight;
        let invocations = self.invocations_this_epoch as f64;
        self.insertions_this_epoch = 0;
        self.misses_this_epoch = 0;
        self.invocations_this_epoch = 0;

        let current = self.inner.unit_count();
        // A unit must still hold the largest superblock seen, or finer
        // partitioning just makes code uncacheable.
        let fit = u32::try_from(self.capacity / u64::from(self.max_block_seen.max(1)))
            .unwrap_or(u32::MAX)
            .max(1);
        // Hysteresis: require a 2× imbalance before moving.
        let target = if misses > invocations * 2.0 {
            (current * 2)
                .min(self.max_units)
                .min(fit)
                .max(self.min_units.min(fit))
        } else if invocations > misses * 2.0 {
            (current / 2).max(self.min_units).min(fit).max(1)
        } else {
            current
        };
        if target == current {
            return;
        }
        self.inner.flush_events(sink);
        self.inner =
            UnitFifo::new(self.capacity, target).expect("bounds were validated at construction");
        self.adaptations += 1;
    }
}

impl CacheOrg for AdaptiveUnits {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.inner.contains(id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.inner.unit_of(id)
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.inner.contains(id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            // Reject before adapting so a doomed insert emits no events.
            return Err(CacheError::ZeroSize(id));
        }
        let mut counting = CountingSink::new(sink);
        self.maybe_adapt(&mut counting);
        self.inner.insert_events(id, size, partner, &mut counting)?;
        self.max_block_seen = self.max_block_seen.max(size);
        self.insertions_this_epoch += 1;
        self.invocations_this_epoch += counting.invocations();
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.inner.resident_count()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        self.inner.resident_entries()
    }

    fn granularity(&self) -> Granularity {
        self.inner.granularity()
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        self.inner.flush_events(sink)
    }

    fn note_access(&mut self, hit: bool) {
        if !hit {
            self.misses_this_epoch += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn conformance_adaptive() {
        conformance(Box::new(AdaptiveUnits::new(1024, 4, 1, 64).unwrap()));
    }

    #[test]
    fn bounds_are_validated() {
        assert!(AdaptiveUnits::new(1024, 4, 1, 64).is_ok());
    }

    #[test]
    #[should_panic(expected = "min <= start <= max")]
    fn bad_bounds_panic() {
        let _ = AdaptiveUnits::new(1024, 1, 2, 64);
    }

    #[test]
    fn miss_pressure_refines_granularity() {
        let mut c = AdaptiveUnits::new(4096, 2, 1, 64).unwrap();
        c.set_epoch(16);
        // Register heavy miss pressure, then insert across an epoch
        // boundary.
        for i in 0..17u64 {
            c.note_access(false);
            c.note_access(false);
            c.insert(sb(i), 64).unwrap();
        }
        assert!(c.unit_count() > 2, "unit count should have doubled");
        assert!(c.adaptations() >= 1);
    }

    #[test]
    fn invocation_pressure_coarsens_granularity() {
        let mut c = AdaptiveUnits::new(256, 16, 1, 64).unwrap();
        c.set_epoch(32);
        // Tiny 16-byte units, 16-byte blocks: every insertion past the
        // first lap flushes a unit ⇒ invocation-dominated, no misses
        // recorded.
        for i in 0..40u64 {
            c.insert(sb(i), 16).unwrap();
        }
        assert!(c.unit_count() < 16, "unit count should have halved");
    }

    #[test]
    fn stable_balance_does_not_thrash() {
        let mut c = AdaptiveUnits::new(4096, 8, 1, 64).unwrap();
        c.set_epoch(16);
        // No misses, no evictions (cache big enough): no adaptation.
        for i in 0..64u64 {
            c.note_access(true);
            c.insert(sb(i), 16).unwrap();
        }
        assert_eq!(c.unit_count(), 8);
        assert_eq!(c.adaptations(), 0);
    }
}
