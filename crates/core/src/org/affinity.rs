//! Link-affinity unit placement — the paper's §5.4 future work.
//!
//! > "Our future work includes a more detailed analysis … to determine
//! > whether a better method exists for determining the placement of
//! > superblocks into the cache units to minimize inter-unit superblock
//! > links while still achieving low miss rates."
//!
//! [`AffinityUnits`] is that experiment. Like [`crate::UnitFifo`] it
//! partitions the cache into N equal units flushed whole, but placement is
//! *not* strictly sequential: an insertion carrying a placement hint (the
//! chain partner that triggered the regeneration — see
//! [`CacheOrg::insert_with_hint`]) goes into the **partner's unit** when
//! there is room, keeping the about-to-be-patched link intra-unit. Hintless
//! insertions (and hinted ones that don't fit) fall back to the fill unit,
//! and when nothing fits anywhere the *least-recently-filled* unit is
//! flushed, FIFO over units.
//!
//! Compared against plain `UnitFifo` at the same unit count, this trades a
//! slightly less strict FIFO order for fewer inter-unit links — exactly
//! the trade-off the paper wanted explored (measured by the `future_work`
//! experiment and the ablation bench).

use crate::error::CacheError;
use crate::events::{CacheEvent, EventSink, EvictionScope};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::CacheOrg;
use std::collections::HashMap;

#[derive(Debug, Default, Clone)]
struct Unit {
    blocks: Vec<(SuperblockId, u32)>,
    used: u64,
    /// Monotone sequence number of the last flush (0 = never): the unit
    /// flushed longest ago is the next FIFO victim.
    last_flush_seq: u64,
}

/// Unit-partitioned organization with link-affinity placement. See the
/// module docs.
#[derive(Debug)]
pub struct AffinityUnits {
    unit_capacity: u64,
    units: Vec<Unit>,
    resident: HashMap<SuperblockId, usize>,
    used: u64,
    /// Default fill unit for hintless insertions.
    head: usize,
    flush_seq: u64,
    hinted_placements: u64,
    hint_hits: u64,
}

impl AffinityUnits {
    /// Creates a cache of `capacity` bytes split into `units` equal units.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::UnitFifo::new`].
    pub fn new(capacity: u64, units: u32) -> Result<AffinityUnits, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        if units == 0 || u64::from(units) > capacity {
            return Err(CacheError::TooManyUnits { units, capacity });
        }
        Ok(AffinityUnits {
            unit_capacity: capacity / u64::from(units),
            units: vec![Unit::default(); units as usize],
            resident: HashMap::new(),
            used: 0,
            head: 0,
            flush_seq: 0,
            hinted_placements: 0,
            hint_hits: 0,
        })
    }

    /// Insertions that carried a placement hint.
    #[must_use]
    pub fn hinted_placements(&self) -> u64 {
        self.hinted_placements
    }

    /// Hinted insertions that were actually co-located with their partner.
    #[must_use]
    pub fn hint_hits(&self) -> u64 {
        self.hint_hits
    }

    /// Number of units.
    #[must_use]
    pub fn unit_count(&self) -> u32 {
        self.units.len() as u32
    }

    fn place(&mut self, unit_idx: usize, id: SuperblockId, size: u32) {
        self.units[unit_idx].blocks.push((id, size));
        self.units[unit_idx].used += u64::from(size);
        self.used += u64::from(size);
        self.resident.insert(id, unit_idx);
    }

    fn fits(&self, unit_idx: usize, size: u32) -> bool {
        self.units[unit_idx].used + u64::from(size) <= self.unit_capacity
    }

    /// Streams the eviction of unit `idx` into `scope`, clearing the unit
    /// in place so its `Vec` allocation is reused. The flush sequence is
    /// bumped even for an empty unit (matching the FIFO victim rotation).
    fn flush_unit_into(&mut self, idx: usize, scope: &mut EvictionScope<'_>) {
        self.flush_seq += 1;
        let seq = self.flush_seq;
        let unit = &mut self.units[idx];
        unit.last_flush_seq = seq;
        for &(id, size) in &unit.blocks {
            self.resident.remove(&id);
            scope.evict(id, size);
        }
        unit.blocks.clear();
        self.used -= unit.used;
        unit.used = 0;
    }

    /// The FIFO victim: the unit whose last flush is oldest.
    fn victim_unit(&self) -> usize {
        self.units
            .iter()
            .enumerate()
            .min_by_key(|(_, u)| u.last_flush_seq)
            .map(|(i, _)| i)
            .expect("at least one unit")
    }
}

impl CacheOrg for AffinityUnits {
    fn capacity(&self) -> u64 {
        self.unit_capacity * self.units.len() as u64
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.resident.contains_key(&id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.resident.get(&id).map(|&u| UnitId(u as u64))
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.unit_capacity {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.unit_capacity,
            });
        }
        // 1. Affinity placement: join the partner's unit if it has room.
        if let Some(p) = partner {
            self.hinted_placements += 1;
            if let Some(&unit_idx) = self.resident.get(&p) {
                if self.fits(unit_idx, size) {
                    self.hint_hits += 1;
                    self.place(unit_idx, id, size);
                    sink.event(CacheEvent::Inserted { id, size });
                    return Ok(());
                }
            }
        }
        // 2. Fall back to the fill unit.
        if self.fits(self.head, size) {
            let head = self.head;
            self.place(head, id, size);
            sink.event(CacheEvent::Inserted { id, size });
            return Ok(());
        }
        // 3. Any other unit with room (most free space first, index as
        //    the deterministic tiebreak).
        if let Some(best) = (0..self.units.len())
            .filter(|&i| self.fits(i, size))
            .max_by_key(|&i| (self.unit_capacity - self.units[i].used, usize::MAX - i))
        {
            self.head = best;
            self.place(best, id, size);
            sink.event(CacheEvent::Inserted { id, size });
            return Ok(());
        }
        // 4. Nothing fits: flush the FIFO victim unit and place there.
        let victim = self.victim_unit();
        let mut scope = EvictionScope::new(sink);
        self.flush_unit_into(victim, &mut scope);
        scope.finish();
        self.head = victim;
        self.place(victim, id, size);
        sink.event(CacheEvent::Inserted { id, size });
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.resident.len()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        self.units
            .iter()
            .flat_map(|u| u.blocks.iter().copied())
            .collect()
    }

    fn granularity(&self) -> Granularity {
        if self.units.len() == 1 {
            Granularity::Flush
        } else {
            Granularity::units(self.units.len() as u32)
        }
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        let mut scope = EvictionScope::new(sink);
        for i in 0..self.units.len() {
            self.flush_unit_into(i, &mut scope);
        }
        self.head = 0;
        scope.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn conformance_affinity() {
        conformance(Box::new(AffinityUnits::new(1024, 8).unwrap()));
    }

    #[test]
    fn hinted_insertions_join_their_partner() {
        let mut c = AffinityUnits::new(400, 4).unwrap(); // 100-byte units
        c.insert(sb(1), 40).unwrap(); // unit 0
                                      // Fill unit 0 a bit more so a hintless insert would still land
                                      // there, then place far away.
        c.insert(sb(2), 40).unwrap(); // unit 0 (80/100)
                                      // Hintless 60-byte block: unit 0 full → most-free unit.
        c.insert(sb(3), 60).unwrap();
        let u3 = c.unit_of(sb(3)).unwrap();
        assert_ne!(u3, c.unit_of(sb(1)).unwrap());
        // Hinted toward sb3: lands in sb3's unit.
        c.insert_with_hint(sb(4), 30, Some(sb(3))).unwrap();
        assert_eq!(c.unit_of(sb(4)), Some(u3));
        assert_eq!(c.hinted_placements(), 1);
        assert_eq!(c.hint_hits(), 1);
    }

    #[test]
    fn hint_falls_back_when_partner_unit_is_full() {
        let mut c = AffinityUnits::new(200, 2).unwrap(); // 100-byte units
        c.insert(sb(1), 90).unwrap();
        let u1 = c.unit_of(sb(1)).unwrap();
        c.insert_with_hint(sb(2), 50, Some(sb(1))).unwrap();
        assert_ne!(c.unit_of(sb(2)), Some(u1), "no room next to the partner");
        assert_eq!(c.hint_hits(), 0);
    }

    #[test]
    fn full_cache_flushes_least_recently_flushed_unit() {
        let mut c = AffinityUnits::new(200, 2).unwrap();
        c.insert(sb(1), 90).unwrap();
        c.insert(sb(2), 90).unwrap();
        // Both units ~full; next insertion flushes unit with oldest flush
        // seq (unit 0, never flushed, index tiebreak).
        let r = c.insert(sb(3), 50).unwrap();
        assert_eq!(r.evictions.len(), 1);
        assert!(!c.contains(sb(1)));
        assert!(c.contains(sb(2)));
        assert!(c.contains(sb(3)));
    }

    #[test]
    fn stale_partner_hint_is_harmless() {
        let mut c = AffinityUnits::new(200, 2).unwrap();
        // Partner never existed.
        c.insert_with_hint(sb(1), 40, Some(sb(99))).unwrap();
        assert!(c.contains(sb(1)));
        assert_eq!(c.hinted_placements(), 1);
        assert_eq!(c.hint_hits(), 0);
    }
}
