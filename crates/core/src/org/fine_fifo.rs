//! The finest-grained FIFO organization (per-superblock eviction).
//!
//! The cache is a circular buffer of variable-size superblocks in insertion
//! order. When an insertion needs room, the *oldest* superblocks are
//! evicted — only as many as required to fit the incoming block — and the
//! whole batch counts as **one** eviction-mechanism invocation (the paper's
//! baseline for Figure 8). This is DynamoRIO's bounded-cache policy and the
//! circular-buffer scheme of Hazelwood & Smith (Interact 2002).
//!
//! Because insertion order equals address order in a circular buffer,
//! FIFO eviction causes no internal fragmentation (paper §3.3) — so, unlike
//! [`crate::LruCache`], this organization never pads.

use crate::error::CacheError;
use crate::events::{CacheEvent, EventSink, EvictionScope};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::CacheOrg;
use std::collections::{HashMap, VecDeque};

/// Fine-grained FIFO (circular buffer) organization. See the module docs.
#[derive(Debug, Clone)]
pub struct FineFifo {
    capacity: u64,
    used: u64,
    /// Resident blocks, oldest first.
    queue: VecDeque<(SuperblockId, u32)>,
    resident: HashMap<SuperblockId, u32>,
}

impl FineFifo {
    /// Creates a fine-grained FIFO cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: u64) -> Result<FineFifo, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        Ok(FineFifo {
            capacity,
            used: 0,
            queue: VecDeque::new(),
            resident: HashMap::new(),
        })
    }

    /// The superblock that would be evicted next, if any.
    #[must_use]
    pub fn oldest(&self) -> Option<SuperblockId> {
        self.queue.front().map(|&(id, _)| id)
    }
}

impl CacheOrg for FineFifo {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.resident.contains_key(&id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        // Every superblock is its own eviction unit.
        self.resident.get(&id).map(|_| UnitId(id.0))
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        _partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.capacity {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.capacity,
            });
        }
        let mut scope = EvictionScope::new(sink);
        while self.used + u64::from(size) > self.capacity {
            let (old, old_size) = self
                .queue
                .pop_front()
                .expect("used > 0 implies nonempty queue");
            self.resident.remove(&old);
            self.used -= u64::from(old_size);
            scope.evict(old, old_size);
        }
        scope.finish();
        self.queue.push_back((id, size));
        self.resident.insert(id, size);
        self.used += u64::from(size);
        sink.event(CacheEvent::Inserted { id, size });
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.resident.len()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        self.queue.iter().copied().collect()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Superblock
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        let mut scope = EvictionScope::new(sink);
        for &(id, size) in &self.queue {
            scope.evict(id, size);
        }
        self.queue.clear();
        self.resident.clear();
        self.used = 0;
        scope.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    #[test]
    fn conformance_fine_fifo() {
        conformance(Box::new(FineFifo::new(1024).unwrap()));
    }

    #[test]
    fn evicts_minimum_necessary_in_fifo_order() {
        let mut c = FineFifo::new(100).unwrap();
        c.insert(SuperblockId(0), 40).unwrap();
        c.insert(SuperblockId(1), 40).unwrap();
        // 20 free; a 30-byte block evicts only sb0 (frees 40).
        let r = c.insert(SuperblockId(2), 30).unwrap();
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(r.evictions[0].evicted, vec![(SuperblockId(0), 40)]);
        assert_eq!(c.used(), 70);
        // A 70-byte block fits after evicting just sb1 (40 frees enough).
        let r = c.insert(SuperblockId(3), 70).unwrap();
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(r.evictions[0].evicted, vec![(SuperblockId(1), 40)]);
        assert!(c.contains(SuperblockId(2)));
        assert_eq!(c.used(), 100);
        // A full-capacity block evicts everything left in one invocation.
        let r = c.insert(SuperblockId(4), 100).unwrap();
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(
            r.evictions[0].evicted,
            vec![(SuperblockId(2), 30), (SuperblockId(3), 70)]
        );
    }

    #[test]
    fn no_eviction_when_space_suffices() {
        let mut c = FineFifo::new(100).unwrap();
        let r = c.insert(SuperblockId(0), 100).unwrap();
        assert!(r.evictions.is_empty());
        assert_eq!(r.padding, 0);
    }

    #[test]
    fn oldest_tracks_fifo_head() {
        let mut c = FineFifo::new(100).unwrap();
        assert_eq!(c.oldest(), None);
        c.insert(SuperblockId(5), 10).unwrap();
        c.insert(SuperblockId(6), 10).unwrap();
        assert_eq!(c.oldest(), Some(SuperblockId(5)));
    }

    #[test]
    fn each_block_is_its_own_unit() {
        let mut c = FineFifo::new(100).unwrap();
        c.insert(SuperblockId(3), 10).unwrap();
        c.insert(SuperblockId(4), 10).unwrap();
        assert_ne!(c.unit_of(SuperblockId(3)), c.unit_of(SuperblockId(4)));
        assert_eq!(c.unit_of(SuperblockId(99)), None);
    }

    #[test]
    fn exact_fit_replacement_cycles() {
        let mut c = FineFifo::new(60).unwrap();
        for i in 0..100u64 {
            c.insert(SuperblockId(i), 20).unwrap();
            assert!(c.used() <= 60);
            assert!(c.resident_count() <= 3);
        }
        assert_eq!(c.resident_count(), 3);
    }
}
