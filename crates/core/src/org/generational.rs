//! Generational code-cache management (Hazelwood & Smith, MICRO 2003 —
//! reference 15 of the reproduced paper, and the "multiple superblock
//! code caches distinguished by the lifetimes of the superblocks they
//! contain" of §2.2).
//!
//! The cache is split into a **nursery** and a **tenured** region.
//! Freshly translated superblocks enter the nursery; when the nursery
//! overflows, its oldest blocks are evicted in FIFO order — but blocks
//! that were *re-executed* while in the nursery have proven useful and are
//! **promoted** to the tenured region instead of dying. The tenured
//! region itself is a fine-grained FIFO. Short-lived code (initialization,
//! error paths) thus never pollutes the long-lived region, while the hot
//! kernel stops cycling through evictions.

use crate::error::CacheError;
use crate::events::{CacheEvent, EventSink, EvictionScope};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::CacheOrg;
use std::collections::{HashMap, VecDeque};

/// Which region a block lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Region {
    Nursery,
    Tenured,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    size: u32,
    region: Region,
    /// Hits received while in the nursery.
    nursery_hits: u32,
}

/// Two-generation cache organization. See the module docs.
#[derive(Debug)]
pub struct Generational {
    nursery_capacity: u64,
    tenured_capacity: u64,
    nursery_used: u64,
    tenured_used: u64,
    /// FIFO order within each region.
    nursery_queue: VecDeque<SuperblockId>,
    tenured_queue: VecDeque<SuperblockId>,
    resident: HashMap<SuperblockId, Entry>,
    /// Nursery hits required for promotion.
    promote_threshold: u32,
    promotions: u64,
}

impl Generational {
    /// Default fraction of capacity given to the nursery.
    pub const DEFAULT_NURSERY_FRACTION: f64 = 0.25;
    /// Default nursery hits required for promotion.
    pub const DEFAULT_PROMOTE_THRESHOLD: u32 = 1;

    /// Creates a generational cache of `capacity` bytes with the default
    /// nursery fraction and promotion threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: u64) -> Result<Generational, CacheError> {
        Generational::with_config(
            capacity,
            Self::DEFAULT_NURSERY_FRACTION,
            Self::DEFAULT_PROMOTE_THRESHOLD,
        )
    }

    /// Creates a generational cache with an explicit nursery fraction and
    /// promotion threshold.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `nursery_fraction` is not in `(0, 1)` or
    /// `promote_threshold == 0`.
    pub fn with_config(
        capacity: u64,
        nursery_fraction: f64,
        promote_threshold: u32,
    ) -> Result<Generational, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        assert!(
            nursery_fraction > 0.0 && nursery_fraction < 1.0,
            "nursery fraction must be in (0, 1)"
        );
        assert!(promote_threshold > 0, "promotion threshold must be nonzero");
        let nursery_capacity = ((capacity as f64 * nursery_fraction) as u64).max(1);
        Ok(Generational {
            nursery_capacity,
            tenured_capacity: capacity - nursery_capacity,
            nursery_used: 0,
            tenured_used: 0,
            nursery_queue: VecDeque::new(),
            tenured_queue: VecDeque::new(),
            resident: HashMap::new(),
            promote_threshold,
            promotions: 0,
        })
    }

    /// Blocks promoted nursery → tenured so far.
    #[must_use]
    pub fn promotions(&self) -> u64 {
        self.promotions
    }

    /// Nursery capacity in bytes.
    #[must_use]
    pub fn nursery_capacity(&self) -> u64 {
        self.nursery_capacity
    }

    /// Evicts from the tenured FIFO until `needed` bytes fit there,
    /// streaming victims into `scope`.
    fn make_tenured_room(&mut self, needed: u64, scope: &mut EvictionScope<'_>) {
        while self.tenured_used + needed > self.tenured_capacity {
            let Some(old) = self.tenured_queue.pop_front() else {
                break;
            };
            let entry = self.resident.remove(&old).expect("tenured queue in sync");
            self.tenured_used -= u64::from(entry.size);
            scope.evict(old, entry.size);
        }
    }

    /// Makes room in the nursery: oldest blocks either die or get
    /// promoted, possibly cascading evictions in the tenured region. All
    /// victims stream into `scope` (which may end up empty — the whole
    /// overflow may promote).
    fn make_nursery_room(&mut self, needed: u64, scope: &mut EvictionScope<'_>) {
        while self.nursery_used + needed > self.nursery_capacity {
            let Some(old) = self.nursery_queue.pop_front() else {
                break;
            };
            let entry = *self.resident.get(&old).expect("nursery queue in sync");
            self.nursery_used -= u64::from(entry.size);
            let promote = entry.nursery_hits >= self.promote_threshold
                && u64::from(entry.size) <= self.tenured_capacity;
            if promote {
                self.make_tenured_room(u64::from(entry.size), scope);
                let e = self.resident.get_mut(&old).expect("still present");
                e.region = Region::Tenured;
                self.tenured_queue.push_back(old);
                self.tenured_used += u64::from(entry.size);
                self.promotions += 1;
            } else {
                self.resident.remove(&old);
                scope.evict(old, entry.size);
            }
        }
    }
}

impl CacheOrg for Generational {
    fn capacity(&self) -> u64 {
        self.nursery_capacity + self.tenured_capacity
    }

    fn used(&self) -> u64 {
        self.nursery_used + self.tenured_used
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.resident.contains_key(&id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        // Per-superblock eviction in both regions: each block is its own
        // unit (links need unpatching regardless of region).
        self.resident.get(&id).map(|_| UnitId(id.0))
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        _partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.nursery_capacity {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.nursery_capacity,
            });
        }
        let mut scope = EvictionScope::new(sink);
        self.make_nursery_room(u64::from(size), &mut scope);
        scope.finish();
        self.nursery_queue.push_back(id);
        self.nursery_used += u64::from(size);
        self.resident.insert(
            id,
            Entry {
                size,
                region: Region::Nursery,
                nursery_hits: 0,
            },
        );
        sink.event(CacheEvent::Inserted { id, size });
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.resident.len()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        // Tenured (oldest first), then nursery (oldest first).
        self.tenured_queue
            .iter()
            .chain(self.nursery_queue.iter())
            .map(|id| (*id, self.resident[id].size))
            .collect()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Superblock
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        let mut scope = EvictionScope::new(sink);
        // Tenured (oldest first), then nursery — the enumeration order.
        for &id in self.tenured_queue.iter().chain(self.nursery_queue.iter()) {
            scope.evict(id, self.resident[&id].size);
        }
        self.resident.clear();
        self.nursery_queue.clear();
        self.tenured_queue.clear();
        self.nursery_used = 0;
        self.tenured_used = 0;
        scope.finish()
    }

    fn note_hit(&mut self, id: SuperblockId) {
        if let Some(e) = self.resident.get_mut(&id) {
            if e.region == Region::Nursery {
                e.nursery_hits = e.nursery_hits.saturating_add(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn conformance_generational() {
        conformance(Box::new(Generational::new(1024).unwrap()));
    }

    #[test]
    fn reused_blocks_get_promoted_cold_blocks_die() {
        // Nursery 100 bytes, tenured 300.
        let mut c = Generational::with_config(400, 0.25, 1).unwrap();
        c.insert(sb(1), 50).unwrap();
        c.insert(sb(2), 50).unwrap();
        c.note_hit(sb(1)); // sb1 proves itself; sb2 stays cold
                           // Overflow the nursery: sb1 promotes, sb2 dies.
        let r = c.insert(sb(3), 60).unwrap();
        assert!(c.contains(sb(1)), "hot block must be promoted");
        assert!(!c.contains(sb(2)), "cold block must die");
        assert_eq!(c.promotions(), 1);
        let evicted: Vec<_> = r.evictions[0].evicted.iter().map(|&(id, _)| id).collect();
        assert_eq!(evicted, vec![sb(2)]);
    }

    #[test]
    fn tenured_overflow_cascades_fifo() {
        // Nursery 100, tenured 100.
        let mut c = Generational::with_config(200, 0.5, 1).unwrap();
        // Promote three 50-byte blocks one after another; the third
        // promotion must evict the first from tenured.
        for i in 0..3u64 {
            c.insert(sb(i), 50).unwrap();
            c.note_hit(sb(i));
            // Push two fillers to force the hot block out of the nursery.
            c.insert(sb(100 + i * 2), 50).unwrap();
            c.insert(sb(101 + i * 2), 50).unwrap();
        }
        assert_eq!(c.promotions(), 3);
        assert!(!c.contains(sb(0)), "tenured FIFO evicted the oldest");
        assert!(c.contains(sb(1)));
        assert!(c.contains(sb(2)));
    }

    #[test]
    fn promotion_threshold_is_respected() {
        let mut c = Generational::with_config(400, 0.25, 3).unwrap();
        c.insert(sb(1), 50).unwrap();
        c.note_hit(sb(1));
        c.note_hit(sb(1)); // only 2 hits < threshold 3
        c.insert(sb(2), 60).unwrap(); // overflows the 100-byte nursery
        assert!(!c.contains(sb(1)), "2 hits must not promote at threshold 3");
        assert_eq!(c.promotions(), 0);
    }

    #[test]
    fn used_accounting_spans_both_regions() {
        let mut c = Generational::with_config(400, 0.25, 1).unwrap();
        c.insert(sb(1), 50).unwrap();
        c.note_hit(sb(1));
        c.insert(sb(2), 60).unwrap(); // promotes sb1
        assert_eq!(c.used(), 110);
        assert_eq!(c.resident_count(), 2);
        let entries = c.resident_entries();
        assert_eq!(entries.len(), 2);
    }

    #[test]
    #[should_panic(expected = "nursery fraction")]
    fn bad_fraction_panics() {
        let _ = Generational::with_config(100, 1.5, 1);
    }
}
