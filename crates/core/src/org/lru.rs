//! A fine-grained LRU organization — the fragmenting baseline of §3.3.
//!
//! The paper argues that LRU-like policies are a poor fit for code caches:
//! because entries are variable-sized and eviction order is *not* address
//! order, freeing the least-recently-used block leaves holes that incoming
//! blocks may not fit, so either additional blocks must be sacrificed or
//! the cache must be compacted — and compaction means re-patching every
//! link. This implementation makes that argument quantitative: it manages
//! a real address space with a free-hole list and counts
//! [`LruCache::fragmentation_stalls`] — insertions that evicted *more*
//! bytes than requested purely because the free bytes were not contiguous.

use crate::error::CacheError;
use crate::events::{CacheEvent, EventSink, EvictionScope};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::CacheOrg;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug, Clone, Copy)]
struct Placement {
    addr: u64,
    size: u32,
    stamp: u64,
}

/// Least-recently-used organization with explicit address management.
/// See the module docs.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    clock: u64,
    resident: HashMap<SuperblockId, Placement>,
    /// Recency index: stamp → block (stamps are unique).
    by_recency: BTreeMap<u64, SuperblockId>,
    /// Free holes: start address → length, kept coalesced.
    holes: BTreeMap<u64, u64>,
    fragmentation_stalls: u64,
}

impl LruCache {
    /// Creates an LRU cache of `capacity` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: u64) -> Result<LruCache, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        let mut holes = BTreeMap::new();
        holes.insert(0, capacity);
        Ok(LruCache {
            capacity,
            used: 0,
            clock: 0,
            resident: HashMap::new(),
            by_recency: BTreeMap::new(),
            holes,
            fragmentation_stalls: 0,
        })
    }

    /// Insertions that had to over-evict because free space was
    /// fragmented (enough free bytes existed, but no hole was large
    /// enough). This is the cost §3.3 warns about.
    #[must_use]
    pub fn fragmentation_stalls(&self) -> u64 {
        self.fragmentation_stalls
    }

    fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// First-fit search for a hole of at least `size` bytes.
    fn find_hole(&self, size: u32) -> Option<u64> {
        self.holes
            .iter()
            .find(|&(_, &len)| len >= u64::from(size))
            .map(|(&addr, _)| addr)
    }

    /// Carves `size` bytes from the hole at `addr`.
    fn take_from_hole(&mut self, addr: u64, size: u32) {
        let len = self.holes.remove(&addr).expect("hole must exist");
        debug_assert!(len >= u64::from(size));
        if len > u64::from(size) {
            self.holes
                .insert(addr + u64::from(size), len - u64::from(size));
        }
    }

    /// Returns `[addr, addr+len)` to the free list, coalescing neighbours.
    fn free_range(&mut self, addr: u64, len: u64) {
        let mut start = addr;
        let mut length = len;
        // Coalesce with the predecessor.
        if let Some((&p_addr, &p_len)) = self.holes.range(..addr).next_back() {
            if p_addr + p_len == addr {
                self.holes.remove(&p_addr);
                start = p_addr;
                length += p_len;
            }
        }
        // Coalesce with the successor.
        if let Some(&s_len) = self.holes.get(&(addr + len)) {
            self.holes.remove(&(addr + len));
            length += s_len;
        }
        self.holes.insert(start, length);
    }

    fn evict_lru(&mut self) -> Option<(SuperblockId, u32)> {
        let (&stamp, &id) = self.by_recency.iter().next()?;
        self.by_recency.remove(&stamp);
        let p = self.resident.remove(&id).expect("recency index is in sync");
        self.used -= u64::from(p.size);
        self.free_range(p.addr, u64::from(p.size));
        Some((id, p.size))
    }
}

impl CacheOrg for LruCache {
    fn capacity(&self) -> u64 {
        self.capacity
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.resident.contains_key(&id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.resident.get(&id).map(|_| UnitId(id.0))
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        _partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.capacity {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.capacity,
            });
        }
        let addr = if let Some(addr) = self.find_hole(size) {
            addr
        } else {
            // Evict LRU blocks until some hole fits the request.
            let had_enough_bytes = self.free_bytes() >= u64::from(size);
            let mut scope = EvictionScope::new(sink);
            let addr = loop {
                let (vid, vsize) = self
                    .evict_lru()
                    .expect("a nonempty cache always has an LRU victim");
                scope.evict(vid, vsize);
                if let Some(addr) = self.find_hole(size) {
                    break addr;
                }
            };
            scope.finish();
            if had_enough_bytes {
                self.fragmentation_stalls += 1;
            }
            addr
        };
        self.take_from_hole(addr, size);
        self.clock += 1;
        self.resident.insert(
            id,
            Placement {
                addr,
                size,
                stamp: self.clock,
            },
        );
        self.by_recency.insert(self.clock, id);
        self.used += u64::from(size);
        sink.event(CacheEvent::Inserted { id, size });
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.resident.len()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        // Deterministic order: LRU → MRU.
        self.by_recency
            .values()
            .map(|id| (*id, self.resident[id].size))
            .collect()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Superblock
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        let mut scope = EvictionScope::new(sink);
        for (&id, p) in self.by_recency.values().map(|id| (id, &self.resident[id])) {
            scope.evict(id, p.size);
        }
        self.resident.clear();
        self.by_recency.clear();
        self.used = 0;
        self.holes.clear();
        self.holes.insert(0, self.capacity);
        scope.finish()
    }

    fn note_hit(&mut self, id: SuperblockId) {
        if let Some(p) = self.resident.get_mut(&id) {
            self.by_recency.remove(&p.stamp);
            self.clock += 1;
            p.stamp = self.clock;
            self.by_recency.insert(self.clock, id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn conformance_lru() {
        conformance(Box::new(LruCache::new(1024).unwrap()));
    }

    #[test]
    fn evicts_least_recently_used_not_oldest() {
        let mut c = LruCache::new(100).unwrap();
        c.insert(sb(1), 40).unwrap();
        c.insert(sb(2), 40).unwrap();
        // Touch sb1 so sb2 becomes LRU.
        c.note_hit(sb(1));
        let r = c.insert(sb(3), 40).unwrap();
        let victims: Vec<u64> = r.evictions[0].evicted.iter().map(|&(id, _)| id.0).collect();
        assert_eq!(victims, vec![2], "sb2 was least recently used");
        assert!(c.contains(sb(1)));
    }

    #[test]
    fn holes_coalesce() {
        let mut c = LruCache::new(120).unwrap();
        c.insert(sb(1), 40).unwrap();
        c.insert(sb(2), 40).unwrap();
        c.insert(sb(3), 40).unwrap();
        // Evict everything via flush; the free list must be one hole again.
        c.flush_all().unwrap();
        assert_eq!(c.holes.len(), 1);
        assert_eq!(c.holes[&0], 120);
        // And a full-capacity block must fit.
        assert!(c.insert(sb(4), 120).is_ok());
    }

    #[test]
    fn fragmentation_forces_over_eviction() {
        let mut c = LruCache::new(100).unwrap();
        // Layout: [a:40][b:20][c:40]
        c.insert(sb(1), 40).unwrap();
        c.insert(sb(2), 20).unwrap();
        c.insert(sb(3), 40).unwrap();
        // Make b LRU-first, then a, then c most recent.
        c.note_hit(sb(2));
        c.note_hit(sb(1));
        c.note_hit(sb(3));
        // Evicting sb2 (LRU) frees a 20-byte hole at offset 40 — not enough
        // for 30 bytes, and not adjacent to anything free, so sb1 must also
        // go even though total free bytes (20) were "close".
        let r = c.insert(sb(4), 30).unwrap();
        assert!(r.evictions[0].evicted.len() >= 2);
        assert_eq!(
            c.fragmentation_stalls(),
            0,
            "free bytes were insufficient anyway"
        );
    }

    #[test]
    fn fragmentation_stall_counted_when_bytes_sufficed() {
        let mut c = LruCache::new(120).unwrap();
        // [a:40][b:20][c:40] + 20-byte tail hole.
        c.insert(sb(1), 40).unwrap();
        c.insert(sb(2), 20).unwrap();
        c.insert(sb(3), 40).unwrap();
        // Make b LRU and evict it: free space is now 20 (middle) + 20
        // (tail) = 40 bytes, but scattered.
        c.note_hit(sb(1));
        c.note_hit(sb(3));
        let (victim, _) = c.evict_lru().unwrap();
        assert_eq!(victim, sb(2));
        assert_eq!(c.free_bytes(), 40);
        // d needs 40: free bytes suffice but no hole fits ⇒ stall, and a
        // (the next LRU) is sacrificed too.
        let r = c.insert(sb(4), 40).unwrap();
        assert_eq!(c.fragmentation_stalls(), 1);
        assert_eq!(r.evictions[0].evicted, vec![(sb(1), 40)]);
    }

    #[test]
    fn note_hit_on_absent_block_is_harmless() {
        let mut c = LruCache::new(100).unwrap();
        c.note_hit(sb(99));
        assert_eq!(c.resident_count(), 0);
    }
}
