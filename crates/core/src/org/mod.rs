//! Cache organizations — the eviction-policy layer.
//!
//! A [`CacheOrg`] owns the placement of superblocks in the cache's byte
//! space and decides *what to evict* when an insertion needs room. It knows
//! nothing about superblock links; [`crate::CodeCache`] layers the link
//! graph and the derived statistics on top.
//!
//! Eviction decisions are *streamed*: the required
//! [`CacheOrg::insert_events`] writes [`CacheEvent`]s into a
//! caller-supplied [`EventSink`] (usually the cache's reusable scratch
//! buffer), so the hot path performs no per-insert heap allocation. The
//! legacy [`CacheOrg::insert`]/[`CacheOrg::insert_with_hint`] methods
//! survive as provided shims that materialize the stream into
//! [`RawInsert`] values for callers that still want owned reports.
//!
//! Provided organizations:
//!
//! | Type | Granularity | Paper reference |
//! |---|---|---|
//! | [`unit_fifo::UnitFifo`] | FLUSH / N-unit FIFO | §4, Figure 5 |
//! | [`fine_fifo::FineFifo`] | per-superblock FIFO | §4.2 (DynamoRIO) |
//! | [`preemptive::PreemptiveFlush`] | full flush on phase change | §2.3 (Dynamo) |
//! | [`lru::LruCache`] | per-superblock LRU (fragmenting baseline) | §3.3 |
//! | [`adaptive::AdaptiveUnits`] | pressure-adaptive unit count | §5.4 future work |
//! | [`affinity::AffinityUnits`] | link-affinity unit placement | §5.4 future work |
//! | [`generational::Generational`] | nursery + tenured regions | §2.2 / paper ref. 15 |

pub mod adaptive;
pub mod affinity;
pub mod fine_fifo;
pub mod generational;
pub mod lru;
pub mod preemptive;
pub mod unit_fifo;

use crate::error::CacheError;
use crate::events::{CacheEvent, EventBuffer, EventSink};
use crate::ids::{Granularity, SuperblockId, UnitId};
use std::fmt;

/// One invocation of the eviction mechanism: the set of superblocks it
/// removed, in eviction order.
///
/// The paper charges a *fixed* invocation cost plus a per-byte cost per
/// event (Eq. 2), so the grouping of evicted blocks into events is what the
/// granularity trade-off is about.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawEviction {
    /// `(superblock, size_bytes)` pairs removed by this invocation.
    pub evicted: Vec<(SuperblockId, u32)>,
}

impl RawEviction {
    /// Total bytes freed by this invocation.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.evicted.iter().map(|&(_, s)| u64::from(s)).sum()
    }
}

/// The result of a successful insertion at the organization layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawInsert {
    /// Eviction-mechanism invocations performed to make room (possibly
    /// empty).
    pub evictions: Vec<RawEviction>,
    /// Bytes lost to padding (e.g. the unused tail of a unit skipped
    /// because the incoming block did not fit).
    pub padding: u64,
}

impl RawInsert {
    /// Reassembles an owned report from an insertion's event stream.
    #[must_use]
    pub fn from_events(events: &[CacheEvent]) -> RawInsert {
        let mut report = RawInsert::default();
        let mut current: Option<RawEviction> = None;
        for &ev in events {
            match ev {
                CacheEvent::Padding { bytes } => report.padding += bytes,
                CacheEvent::EvictionBegin => current = Some(RawEviction::default()),
                CacheEvent::Evicted { id, size } => {
                    current
                        .as_mut()
                        .expect("Evicted outside EvictionBegin/End")
                        .evicted
                        .push((id, size));
                }
                CacheEvent::EvictionEnd { .. } => {
                    report
                        .evictions
                        .push(current.take().expect("EvictionEnd without EvictionBegin"));
                }
                _ => {}
            }
        }
        debug_assert!(current.is_none(), "unterminated eviction invocation");
        report
    }
}

/// A cache organization: placement plus eviction policy.
///
/// Implementations must be deterministic — identical operation sequences
/// must produce identical event streams — because the workspace's
/// experiments rely on reproducibility. `Send` is a supertrait so caches
/// can be built and driven inside the sweep runner's worker threads.
///
/// This trait is object-safe; [`crate::CodeCache`] stores a
/// `Box<dyn CacheOrg>` so user code can plug in custom policies (see the
/// `custom_policy` example at the workspace root).
pub trait CacheOrg: fmt::Debug + Send {
    /// Total capacity in bytes.
    fn capacity(&self) -> u64;

    /// Bytes currently occupied by resident superblocks (excluding
    /// padding).
    fn used(&self) -> u64;

    /// True if `id` is resident.
    fn contains(&self, id: SuperblockId) -> bool;

    /// The eviction unit currently holding `id`, if resident.
    ///
    /// Two superblocks in the same unit die together on a flush; that is
    /// what makes their links *intra-unit* (removable for free).
    fn unit_of(&self, id: SuperblockId) -> Option<UnitId>;

    /// Inserts `id` with the given byte size, streaming the eviction
    /// decisions into `sink`. This is the primary insertion entry point;
    /// it must emit, in order: an optional [`CacheEvent::Padding`], zero
    /// or more `EvictionBegin / Evicted+ / EvictionEnd` invocations, and
    /// a final [`CacheEvent::Inserted`]. Implementations must not buffer
    /// — events are written as decisions are made, so a reused sink sees
    /// no per-insert allocation.
    ///
    /// `partner` is a *placement hint*: a resident superblock the
    /// newcomer is about to be linked with (the chain source that
    /// triggered the regeneration). Placement-aware organizations
    /// (e.g. [`crate::AffinityUnits`]) co-locate the two to keep the link
    /// intra-unit; others ignore it.
    ///
    /// # Errors
    ///
    /// * [`CacheError::AlreadyResident`] if `id` is resident.
    /// * [`CacheError::ZeroSize`] if `size == 0`.
    /// * [`CacheError::BlockTooLarge`] if `size` exceeds the granule.
    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError>;

    /// Legacy shim: inserts and materializes the event stream into an
    /// owned [`RawInsert`]. Allocates; prefer [`CacheOrg::insert_events`]
    /// on hot paths.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheOrg::insert_events`].
    fn insert(&mut self, id: SuperblockId, size: u32) -> Result<RawInsert, CacheError> {
        let mut buf = EventBuffer::new();
        self.insert_events(id, size, None, &mut buf)?;
        Ok(RawInsert::from_events(buf.events()))
    }

    /// Legacy shim: like [`CacheOrg::insert`], forwarding the placement
    /// hint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheOrg::insert_events`].
    fn insert_with_hint(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
    ) -> Result<RawInsert, CacheError> {
        let mut buf = EventBuffer::new();
        self.insert_events(id, size, partner, &mut buf)?;
        Ok(RawInsert::from_events(buf.events()))
    }

    /// Number of resident superblocks.
    fn resident_count(&self) -> usize;

    /// Resident superblocks in an implementation-defined deterministic
    /// order.
    fn resident_blocks(&self) -> Vec<SuperblockId> {
        self.resident_entries()
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Resident superblocks with their byte sizes, in the same
    /// deterministic order as [`CacheOrg::resident_blocks`].
    fn resident_entries(&self) -> Vec<(SuperblockId, u32)>;

    /// The granularity this organization implements.
    fn granularity(&self) -> Granularity;

    /// Evicts everything as a single invocation, streaming into `sink`.
    /// Returns `true` if anything was evicted (an empty cache emits no
    /// events).
    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool;

    /// Legacy shim: evicts everything as a single owned invocation, or
    /// `None` if the cache was already empty.
    fn flush_all(&mut self) -> Option<RawEviction> {
        let mut buf = EventBuffer::new();
        if !self.flush_events(&mut buf) {
            return None;
        }
        let mut all = RawEviction::default();
        for &ev in buf.events() {
            if let CacheEvent::Evicted { id, size } = ev {
                all.evicted.push((id, size));
            }
        }
        Some(all)
    }

    /// Feedback channel: called by [`crate::CodeCache`] after every access
    /// with the hit/miss outcome. Policies that react to runtime behaviour
    /// (preemptive flush, adaptive granularity) override this; the default
    /// is a no-op.
    fn note_access(&mut self, hit: bool) {
        let _ = hit;
    }

    /// Recency feedback: called by [`crate::CodeCache`] when `id` is hit.
    /// Only recency-aware policies (LRU) need to override this.
    fn note_hit(&mut self, id: SuperblockId) {
        let _ = id;
    }
}
