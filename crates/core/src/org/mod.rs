//! Cache organizations — the eviction-policy layer.
//!
//! A [`CacheOrg`] owns the placement of superblocks in the cache's byte
//! space and decides *what to evict* when an insertion needs room. It knows
//! nothing about superblock links; [`crate::CodeCache`] layers the link
//! graph and the derived statistics on top.
//!
//! Provided organizations:
//!
//! | Type | Granularity | Paper reference |
//! |---|---|---|
//! | [`unit_fifo::UnitFifo`] | FLUSH / N-unit FIFO | §4, Figure 5 |
//! | [`fine_fifo::FineFifo`] | per-superblock FIFO | §4.2 (DynamoRIO) |
//! | [`preemptive::PreemptiveFlush`] | full flush on phase change | §2.3 (Dynamo) |
//! | [`lru::LruCache`] | per-superblock LRU (fragmenting baseline) | §3.3 |
//! | [`adaptive::AdaptiveUnits`] | pressure-adaptive unit count | §5.4 future work |
//! | [`affinity::AffinityUnits`] | link-affinity unit placement | §5.4 future work |
//! | [`generational::Generational`] | nursery + tenured regions | §2.2 / paper ref. 15 |

pub mod adaptive;
pub mod affinity;
pub mod fine_fifo;
pub mod generational;
pub mod lru;
pub mod preemptive;
pub mod unit_fifo;

use crate::error::CacheError;
use crate::ids::{Granularity, SuperblockId, UnitId};
use std::fmt;

/// One invocation of the eviction mechanism: the set of superblocks it
/// removed, in eviction order.
///
/// The paper charges a *fixed* invocation cost plus a per-byte cost per
/// event (Eq. 2), so the grouping of evicted blocks into events is what the
/// granularity trade-off is about.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawEviction {
    /// `(superblock, size_bytes)` pairs removed by this invocation.
    pub evicted: Vec<(SuperblockId, u32)>,
}

impl RawEviction {
    /// Total bytes freed by this invocation.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.evicted.iter().map(|&(_, s)| u64::from(s)).sum()
    }
}

/// The result of a successful insertion at the organization layer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawInsert {
    /// Eviction-mechanism invocations performed to make room (possibly
    /// empty).
    pub evictions: Vec<RawEviction>,
    /// Bytes lost to padding (e.g. the unused tail of a unit skipped
    /// because the incoming block did not fit).
    pub padding: u64,
}

/// A cache organization: placement plus eviction policy.
///
/// Implementations must be deterministic — identical operation sequences
/// must produce identical eviction sequences — because the workspace's
/// experiments rely on reproducibility.
///
/// This trait is object-safe; [`crate::CodeCache`] stores a
/// `Box<dyn CacheOrg>` so user code can plug in custom policies (see the
/// `custom_policy` example at the workspace root).
pub trait CacheOrg: fmt::Debug {
    /// Total capacity in bytes.
    fn capacity(&self) -> u64;

    /// Bytes currently occupied by resident superblocks (excluding
    /// padding).
    fn used(&self) -> u64;

    /// True if `id` is resident.
    fn contains(&self, id: SuperblockId) -> bool;

    /// The eviction unit currently holding `id`, if resident.
    ///
    /// Two superblocks in the same unit die together on a flush; that is
    /// what makes their links *intra-unit* (removable for free).
    fn unit_of(&self, id: SuperblockId) -> Option<UnitId>;

    /// Inserts `id` with the given byte size, evicting as required.
    ///
    /// # Errors
    ///
    /// * [`CacheError::AlreadyResident`] if `id` is resident.
    /// * [`CacheError::ZeroSize`] if `size == 0`.
    /// * [`CacheError::BlockTooLarge`] if `size` exceeds the granule.
    fn insert(&mut self, id: SuperblockId, size: u32) -> Result<RawInsert, CacheError>;

    /// Inserts with a *placement hint*: `partner` is a resident superblock
    /// the newcomer is about to be linked with (the chain source that
    /// triggered the regeneration). Placement-aware organizations
    /// (e.g. [`crate::AffinityUnits`]) co-locate the two to keep the link
    /// intra-unit; the default ignores the hint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheOrg::insert`].
    fn insert_with_hint(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
    ) -> Result<RawInsert, CacheError> {
        let _ = partner;
        self.insert(id, size)
    }

    /// Number of resident superblocks.
    fn resident_count(&self) -> usize;

    /// Resident superblocks in an implementation-defined deterministic
    /// order.
    fn resident_blocks(&self) -> Vec<SuperblockId> {
        self.resident_entries().into_iter().map(|(id, _)| id).collect()
    }

    /// Resident superblocks with their byte sizes, in the same
    /// deterministic order as [`CacheOrg::resident_blocks`].
    fn resident_entries(&self) -> Vec<(SuperblockId, u32)>;

    /// The granularity this organization implements.
    fn granularity(&self) -> Granularity;

    /// Evicts everything as a single invocation. Returns the invocation,
    /// or `None` if the cache was already empty.
    fn flush_all(&mut self) -> Option<RawEviction>;

    /// Feedback channel: called by [`crate::CodeCache`] after every access
    /// with the hit/miss outcome. Policies that react to runtime behaviour
    /// (preemptive flush, adaptive granularity) override this; the default
    /// is a no-op.
    fn note_access(&mut self, hit: bool) {
        let _ = hit;
    }

    /// Recency feedback: called by [`crate::CodeCache`] when `id` is hit.
    /// Only recency-aware policies (LRU) need to override this.
    fn note_hit(&mut self, id: SuperblockId) {
        let _ = id;
    }
}

#[cfg(test)]
pub(crate) mod org_tests {
    //! A reusable conformance suite run against every organization.

    use super::*;

    /// Drives `org` through a generic workload and checks the invariants
    /// every organization must uphold.
    pub(crate) fn conformance(mut org: Box<dyn CacheOrg>) {
        let cap = org.capacity();
        assert!(cap > 0);
        assert_eq!(org.used(), 0);
        assert_eq!(org.resident_count(), 0);

        // Insert blocks of varied sizes until well past capacity.
        let mut next = 0u64;
        let sizes = [64u32, 96, 48, 128, 80, 56, 112, 72];
        let mut inserted = Vec::new();
        while inserted.iter().map(|&(_, s)| u64::from(s)).sum::<u64>() < cap * 3 {
            let id = SuperblockId(next);
            let size = sizes[(next as usize) % sizes.len()];
            next += 1;
            let r = org.insert(id, size).expect("insert must succeed");
            inserted.push((id, size));
            // Evicted blocks must no longer be resident.
            for ev in &r.evictions {
                assert!(!ev.evicted.is_empty(), "empty eviction invocation");
                for &(eid, _) in &ev.evicted {
                    assert!(!org.contains(eid), "evicted {eid} still resident");
                }
            }
            // The inserted block must be resident with a unit.
            assert!(org.contains(id));
            assert!(org.unit_of(id).is_some());
            // Usage never exceeds capacity.
            assert!(org.used() <= cap, "used {} > capacity {cap}", org.used());
            assert_eq!(
                org.resident_blocks().len(),
                org.resident_count(),
                "resident enumeration disagrees with count"
            );
        }

        // Duplicate insertion is rejected.
        let last = inserted.last().unwrap().0;
        assert!(matches!(
            org.insert(last, 64),
            Err(CacheError::AlreadyResident(_))
        ));

        // Zero-size insertion is rejected.
        assert!(matches!(
            org.insert(SuperblockId(u64::MAX), 0),
            Err(CacheError::ZeroSize(_))
        ));

        // Oversized insertion is rejected.
        let too_big = u32::try_from(cap + 1).unwrap_or(u32::MAX);
        assert!(matches!(
            org.insert(SuperblockId(u64::MAX - 1), too_big),
            Err(CacheError::BlockTooLarge { .. })
        ));

        // flush_all empties the cache.
        let ev = org.flush_all().expect("cache was nonempty");
        assert!(ev.bytes() > 0);
        assert_eq!(org.used(), 0);
        assert_eq!(org.resident_count(), 0);
        assert!(org.flush_all().is_none());
    }
}
