//! Dynamo's preemptive-flush policy (paper §2.3).
//!
//! Dynamo flushed its entire code cache when it detected a *program phase
//! change* — a burst of new superblock formation — rather than waiting for
//! the cache to fill. The intuition: at a phase boundary the cached
//! working set is dead weight, so evicting it early is cheap, and doing so
//! pre-empts a string of capacity evictions in the middle of the new
//! phase.
//!
//! Phase detection here follows Bala et al.: a sliding window over recent
//! lookups; when the miss fraction in the window exceeds a threshold while
//! the cache is substantially full, the next insertion flushes everything.

use crate::error::CacheError;
use crate::events::EventSink;
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::unit_fifo::UnitFifo;
use crate::org::CacheOrg;
use std::collections::VecDeque;

/// Full-flush organization with phase-change pre-emption. See module docs.
#[derive(Debug)]
pub struct PreemptiveFlush {
    inner: UnitFifo,
    window: VecDeque<bool>,
    window_len: usize,
    misses_in_window: usize,
    miss_threshold: f64,
    min_fill: f64,
    preemptive_flushes: u64,
    flush_pending: bool,
}

impl PreemptiveFlush {
    /// Default sliding-window length (lookups).
    pub const DEFAULT_WINDOW: usize = 128;
    /// Default miss fraction that signals a phase change.
    pub const DEFAULT_THRESHOLD: f64 = 0.5;
    /// Default minimum cache fill fraction before pre-emption engages.
    pub const DEFAULT_MIN_FILL: f64 = 0.5;

    /// Creates a preemptive-flush cache of `capacity` bytes with default
    /// detector parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    pub fn new(capacity: u64) -> Result<PreemptiveFlush, CacheError> {
        PreemptiveFlush::with_detector(
            capacity,
            Self::DEFAULT_WINDOW,
            Self::DEFAULT_THRESHOLD,
            Self::DEFAULT_MIN_FILL,
        )
    }

    /// Creates a preemptive-flush cache with explicit detector parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or the fractions are outside `0.0..=1.0`.
    pub fn with_detector(
        capacity: u64,
        window: usize,
        miss_threshold: f64,
        min_fill: f64,
    ) -> Result<PreemptiveFlush, CacheError> {
        assert!(window > 0, "window must be nonzero");
        assert!((0.0..=1.0).contains(&miss_threshold));
        assert!((0.0..=1.0).contains(&min_fill));
        Ok(PreemptiveFlush {
            inner: UnitFifo::new(capacity, 1)?,
            window: VecDeque::with_capacity(window),
            window_len: window,
            misses_in_window: 0,
            miss_threshold,
            min_fill,
            preemptive_flushes: 0,
            flush_pending: false,
        })
    }

    /// Number of flushes triggered by phase detection (as opposed to the
    /// cache simply filling).
    #[must_use]
    pub fn preemptive_flushes(&self) -> u64 {
        self.preemptive_flushes
    }

    fn phase_change_detected(&self) -> bool {
        self.window.len() == self.window_len
            && (self.misses_in_window as f64 / self.window_len as f64) >= self.miss_threshold
            && (self.inner.used() as f64) >= self.min_fill * self.inner.capacity() as f64
    }
}

impl CacheOrg for PreemptiveFlush {
    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.inner.contains(id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.inner.unit_of(id)
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.inner.contains(id) {
            return Err(CacheError::AlreadyResident(id));
        }
        // Validate before acting on a pending flush so a rejected insert
        // emits no events (the inner cache is a single full-size unit, so
        // its limits are known here).
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.inner.unit_capacity() {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.inner.unit_capacity(),
            });
        }
        if self.flush_pending {
            self.flush_pending = false;
            if self.inner.flush_events(sink) {
                self.preemptive_flushes += 1;
            }
            self.inner.insert_events(id, size, partner, sink)?;
            // The flushed window no longer describes the (empty) cache.
            self.window.clear();
            self.misses_in_window = 0;
            return Ok(());
        }
        self.inner.insert_events(id, size, partner, sink)
    }

    fn resident_count(&self) -> usize {
        self.inner.resident_count()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        self.inner.resident_entries()
    }

    fn granularity(&self) -> Granularity {
        Granularity::Flush
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        self.inner.flush_events(sink)
    }

    fn note_access(&mut self, hit: bool) {
        if self.window.len() == self.window_len {
            if let Some(old) = self.window.pop_front() {
                if !old {
                    self.misses_in_window -= 1;
                }
            }
        }
        self.window.push_back(hit);
        if !hit {
            self.misses_in_window += 1;
        }
        if self.phase_change_detected() {
            self.flush_pending = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn conformance_preemptive() {
        conformance(Box::new(PreemptiveFlush::new(1024).unwrap()));
    }

    #[test]
    fn behaves_like_flush_without_phase_changes() {
        let mut c = PreemptiveFlush::new(100).unwrap();
        for i in 0..4 {
            c.insert(sb(i), 25).unwrap();
        }
        let r = c.insert(sb(4), 25).unwrap();
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(r.evictions[0].evicted.len(), 4);
        assert_eq!(c.preemptive_flushes(), 0);
    }

    #[test]
    fn phase_change_triggers_early_flush() {
        let mut c = PreemptiveFlush::with_detector(1000, 8, 0.5, 0.5).unwrap();
        // Fill to 60% with 6 blocks.
        for i in 0..6 {
            c.insert(sb(i), 100).unwrap();
        }
        // A burst of misses (new phase): 8 misses in a window of 8.
        for _ in 0..8 {
            c.note_access(false);
        }
        // Next insertion flushes preemptively even though 400 bytes remain.
        let r = c.insert(sb(100), 100).unwrap();
        assert_eq!(c.preemptive_flushes(), 1);
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(r.evictions[0].evicted.len(), 6);
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn no_preemption_when_cache_nearly_empty() {
        let mut c = PreemptiveFlush::with_detector(1000, 8, 0.5, 0.5).unwrap();
        c.insert(sb(0), 100).unwrap(); // 10% full
        for _ in 0..8 {
            c.note_access(false);
        }
        let r = c.insert(sb(1), 100).unwrap();
        assert_eq!(c.preemptive_flushes(), 0);
        assert!(r.evictions.is_empty());
    }

    #[test]
    fn hits_decay_the_detector() {
        let mut c = PreemptiveFlush::with_detector(1000, 4, 0.75, 0.1).unwrap();
        c.insert(sb(0), 200).unwrap();
        // Window: miss, miss, hit, hit → fraction 0.5 < 0.75.
        c.note_access(false);
        c.note_access(false);
        c.note_access(true);
        c.note_access(true);
        let r = c.insert(sb(1), 100).unwrap();
        assert!(r.evictions.is_empty());
        assert_eq!(c.preemptive_flushes(), 0);
    }
}
