//! The unit-partitioned FIFO organization (FLUSH and N-unit FIFO).
//!
//! The cache's byte space is divided into `n` equal units. New superblocks
//! fill the current unit front to back; when an incoming block does not fit
//! in the remaining space, the write head advances to the next unit in
//! round-robin order, flushing that entire unit first if it holds code
//! (one eviction-mechanism invocation). `n == 1` is exactly the paper's
//! FLUSH policy; `n == 2` is Mojo's alternating half-flush; larger `n` is
//! the medium-grained middle ground the paper explores.
//!
//! A superblock never spans units; the skipped tail of a unit is counted as
//! padding (emitted as a [`CacheEvent::Padding`] event).

use crate::error::CacheError;
use crate::events::{CacheEvent, EventSink, EvictionScope};
use crate::ids::{Granularity, SuperblockId, UnitId};
use crate::org::CacheOrg;
use std::collections::HashMap;

#[derive(Debug, Default, Clone)]
struct Unit {
    /// Resident blocks in insertion order.
    blocks: Vec<(SuperblockId, u32)>,
    /// Occupied bytes (excluding padding).
    used: u64,
}

/// FLUSH / N-unit FIFO cache organization. See the module docs.
#[derive(Debug, Clone)]
pub struct UnitFifo {
    unit_capacity: u64,
    units: Vec<Unit>,
    /// Unit currently being filled.
    head: usize,
    /// Superblock → index of the unit holding it.
    resident: HashMap<SuperblockId, usize>,
    used: u64,
    granularity: Granularity,
}

impl UnitFifo {
    /// Creates a cache of `capacity` bytes split into `units` equal units.
    ///
    /// # Errors
    ///
    /// * [`CacheError::ZeroCapacity`] if `capacity == 0`.
    /// * [`CacheError::TooManyUnits`] if `units > capacity` (units would be
    ///   zero bytes) or `units == 0`.
    pub fn new(capacity: u64, units: u32) -> Result<UnitFifo, CacheError> {
        if capacity == 0 {
            return Err(CacheError::ZeroCapacity);
        }
        if units == 0 || u64::from(units) > capacity {
            return Err(CacheError::TooManyUnits { units, capacity });
        }
        let unit_capacity = capacity / u64::from(units);
        let granularity = if units == 1 {
            Granularity::Flush
        } else {
            Granularity::units(units)
        };
        Ok(UnitFifo {
            unit_capacity,
            units: vec![Unit::default(); units as usize],
            head: 0,
            resident: HashMap::new(),
            used: 0,
            granularity,
        })
    }

    /// Creates the FLUSH organization (a single unit).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `capacity == 0`.
    pub fn flush_policy(capacity: u64) -> Result<UnitFifo, CacheError> {
        UnitFifo::new(capacity, 1)
    }

    /// Byte capacity of each unit.
    #[must_use]
    pub fn unit_capacity(&self) -> u64 {
        self.unit_capacity
    }

    /// Number of units.
    #[must_use]
    pub fn unit_count(&self) -> u32 {
        self.units.len() as u32
    }

    /// Streams the eviction of unit `idx` (if occupied) into `scope`,
    /// clearing the unit in place so its `Vec` allocation is reused.
    fn flush_unit_into(&mut self, idx: usize, scope: &mut EvictionScope<'_>) {
        let unit = &mut self.units[idx];
        for &(id, size) in &unit.blocks {
            self.resident.remove(&id);
            scope.evict(id, size);
        }
        unit.blocks.clear();
        self.used -= unit.used;
        unit.used = 0;
    }
}

impl CacheOrg for UnitFifo {
    fn capacity(&self) -> u64 {
        self.unit_capacity * self.units.len() as u64
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn contains(&self, id: SuperblockId) -> bool {
        self.resident.contains_key(&id)
    }

    fn unit_of(&self, id: SuperblockId) -> Option<UnitId> {
        self.resident.get(&id).map(|&u| UnitId(u as u64))
    }

    fn insert_events(
        &mut self,
        id: SuperblockId,
        size: u32,
        _partner: Option<SuperblockId>,
        sink: &mut dyn EventSink,
    ) -> Result<(), CacheError> {
        if self.resident.contains_key(&id) {
            return Err(CacheError::AlreadyResident(id));
        }
        if size == 0 {
            return Err(CacheError::ZeroSize(id));
        }
        if u64::from(size) > self.unit_capacity {
            return Err(CacheError::BlockTooLarge {
                id,
                size,
                max: self.unit_capacity,
            });
        }
        if self.units[self.head].used + u64::from(size) > self.unit_capacity {
            // Advance to the next unit, flushing it if occupied.
            let padding = self.unit_capacity - self.units[self.head].used;
            if padding > 0 {
                sink.event(CacheEvent::Padding { bytes: padding });
            }
            self.head = (self.head + 1) % self.units.len();
            let mut scope = EvictionScope::new(sink);
            self.flush_unit_into(self.head, &mut scope);
            scope.finish();
        }
        let head = self.head;
        self.units[head].blocks.push((id, size));
        self.units[head].used += u64::from(size);
        self.used += u64::from(size);
        self.resident.insert(id, head);
        sink.event(CacheEvent::Inserted { id, size });
        Ok(())
    }

    fn resident_count(&self) -> usize {
        self.resident.len()
    }

    fn resident_entries(&self) -> Vec<(SuperblockId, u32)> {
        // Deterministic order: units in index order, blocks in insertion
        // order.
        self.units
            .iter()
            .flat_map(|u| u.blocks.iter().copied())
            .collect()
    }

    fn granularity(&self) -> Granularity {
        self.granularity
    }

    fn flush_events(&mut self, sink: &mut dyn EventSink) -> bool {
        let mut scope = EvictionScope::new(sink);
        for i in 0..self.units.len() {
            self.flush_unit_into(i, &mut scope);
        }
        self.head = 0;
        scope.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::conformance;

    #[test]
    fn conformance_flush() {
        conformance(Box::new(UnitFifo::new(1024, 1).unwrap()));
    }

    #[test]
    fn conformance_2_unit() {
        conformance(Box::new(UnitFifo::new(1024, 2).unwrap()));
    }

    #[test]
    fn conformance_8_unit() {
        conformance(Box::new(UnitFifo::new(1024, 8).unwrap()));
    }

    #[test]
    fn constructor_validation() {
        assert_eq!(UnitFifo::new(0, 1).unwrap_err(), CacheError::ZeroCapacity);
        assert!(matches!(
            UnitFifo::new(8, 0).unwrap_err(),
            CacheError::TooManyUnits { .. }
        ));
        assert!(matches!(
            UnitFifo::new(8, 9).unwrap_err(),
            CacheError::TooManyUnits { .. }
        ));
    }

    #[test]
    fn flush_policy_evicts_everything_at_once() {
        let mut c = UnitFifo::flush_policy(100).unwrap();
        for i in 0..4 {
            let r = c.insert(SuperblockId(i), 25).unwrap();
            assert!(r.evictions.is_empty());
        }
        assert_eq!(c.used(), 100);
        // Next insertion flushes all four.
        let r = c.insert(SuperblockId(4), 25).unwrap();
        assert_eq!(r.evictions.len(), 1);
        assert_eq!(r.evictions[0].evicted.len(), 4);
        assert_eq!(r.evictions[0].bytes(), 100);
        assert_eq!(c.resident_count(), 1);
    }

    #[test]
    fn two_units_alternate_like_mojo() {
        let mut c = UnitFifo::new(200, 2).unwrap();
        // Fill unit 0 (100 bytes).
        c.insert(SuperblockId(0), 60).unwrap();
        c.insert(SuperblockId(1), 40).unwrap();
        // Next goes to unit 1 — empty, no eviction.
        let r = c.insert(SuperblockId(2), 80).unwrap();
        assert!(r.evictions.is_empty());
        assert_eq!(c.unit_of(SuperblockId(2)), Some(UnitId(1)));
        // Unit 1 overflows back into unit 0, flushing blocks 0 and 1.
        let r = c.insert(SuperblockId(3), 50).unwrap();
        assert_eq!(r.evictions.len(), 1);
        let evicted: Vec<u64> = r.evictions[0].evicted.iter().map(|&(id, _)| id.0).collect();
        assert_eq!(evicted, vec![0, 1]);
        assert_eq!(c.unit_of(SuperblockId(3)), Some(UnitId(0)));
    }

    #[test]
    fn padding_is_reported_when_units_advance() {
        let mut c = UnitFifo::new(200, 2).unwrap();
        c.insert(SuperblockId(0), 70).unwrap();
        // 30 bytes left in unit 0; a 50-byte block skips them.
        let r = c.insert(SuperblockId(1), 50).unwrap();
        assert_eq!(r.padding, 30);
    }

    #[test]
    fn block_exactly_unit_sized_fits() {
        let mut c = UnitFifo::new(100, 2).unwrap();
        assert!(c.insert(SuperblockId(0), 50).is_ok());
        assert!(matches!(
            c.insert(SuperblockId(1), 51),
            Err(CacheError::BlockTooLarge { max: 50, .. })
        ));
    }

    #[test]
    fn round_robin_is_fifo_over_units() {
        let mut c = UnitFifo::new(300, 3).unwrap();
        // One 100-byte block per unit.
        for i in 0..3 {
            c.insert(SuperblockId(i), 100).unwrap();
        }
        // Insertions now flush units 0, 1, 2 in order.
        for (i, expect_evicted) in [(3u64, 0u64), (4, 1), (5, 2)] {
            let r = c.insert(SuperblockId(i), 100).unwrap();
            assert_eq!(r.evictions[0].evicted[0].0, SuperblockId(expect_evicted));
        }
    }

    #[test]
    fn unit_of_tracks_placement() {
        let mut c = UnitFifo::new(100, 2).unwrap();
        c.insert(SuperblockId(0), 30).unwrap();
        c.insert(SuperblockId(1), 30).unwrap(); // still unit 0 (60 <= 50? no!)
                                                // unit capacity is 50, so sb1 went to unit 1.
        assert_eq!(c.unit_of(SuperblockId(0)), Some(UnitId(0)));
        assert_eq!(c.unit_of(SuperblockId(1)), Some(UnitId(1)));
        assert_eq!(c.unit_of(SuperblockId(99)), None);
    }
}
