//! The narrow serving surface: [`CacheSession`].
//!
//! `CodeCache` historically grew five overlapping insert entry points
//! (`insert`, `insert_hinted`, `insert_evented`, `insert_with_events`,
//! `access_or_insert`) plus parallel `flush`/`flush_with_events`. A
//! sharding layer cannot sanely wrap all of them, so the surface is
//! collapsed to **one evented core per verb**:
//!
//! * [`CacheSession::access_or_insert`] — look up, and on a miss insert
//!   the block described by an [`InsertRequest`], streaming the settled
//!   events into the caller's sink;
//! * [`CacheSession::flush`] — evict everything, streaming likewise.
//!
//! Thin convenience wrappers ([`CacheSession::access_or_insert_quiet`],
//! [`CacheSession::flush_report`]) are provided methods, so
//! [`CodeCache`], [`crate::shard::ShardedCache`] and the per-tenant
//! [`crate::concurrent::TenantSession`] expose them for free.
//! `cce_sim::simulator` and `cce_dbt::engine` drive any of the three
//! through this trait; the legacy `CodeCache` quintet of shims has been
//! deleted — [`CodeCache::insert_request`] is the one insert core.

use crate::cache::{AccessResult, CodeCache, EvictionReport, InsertReport, InsertSummary};
use crate::error::CacheError;
use crate::events::{EventBuffer, EventSink, NullSink};
use crate::ids::{Granularity, SuperblockId};
use crate::stats::CacheStats;
use std::fmt;

/// One insertion, described declaratively: the block, its size, and an
/// optional placement hint (the resident chain source that triggered the
/// regeneration — placement-aware organizations co-locate the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertRequest {
    /// The superblock to insert.
    pub id: SuperblockId,
    /// Its size in bytes.
    pub size: u32,
    /// Optional placement hint: a resident partner about to be linked.
    pub hint: Option<SuperblockId>,
}

impl InsertRequest {
    /// A request with no placement hint.
    #[must_use]
    pub fn new(id: SuperblockId, size: u32) -> InsertRequest {
        InsertRequest {
            id,
            size,
            hint: None,
        }
    }

    /// Sets (or clears) the placement hint. This is the one canonical
    /// hint constructor: pass `Some(partner)` where the deleted
    /// `hinted(partner)` shim used to be called.
    #[must_use]
    pub fn with_hint(mut self, hint: Option<SuperblockId>) -> InsertRequest {
        self.hint = hint;
        self
    }
}

/// Result of [`CacheSession::access_or_insert`]: the lookup outcome plus
/// the insertion digest when the miss was filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// The lookup outcome (hit, cold miss, capacity miss).
    pub access: AccessResult,
    /// The insertion summary — `Some` exactly when the access missed.
    pub inserted: Option<InsertSummary>,
}

impl AccessOutcome {
    /// True if the lookup hit (no insertion happened).
    #[must_use]
    pub fn is_hit(&self) -> bool {
        self.access.is_hit()
    }

    /// True if the lookup missed (and the block was inserted).
    #[must_use]
    pub fn is_miss(&self) -> bool {
        self.access.is_miss()
    }
}

/// A serving handle over one code cache — bare or sharded.
///
/// The trait is deliberately narrow: one evented insert core, one
/// evented flush core, chaining, and read-only inspection. Everything
/// else (owned reports, quiet variants) is a provided wrapper.
///
/// # Error contract
///
/// [`CacheSession::access_or_insert`] records the access *before*
/// attempting any insertion, so on `Err` the miss has already been
/// counted and the cache is unchanged otherwise. Callers that tolerate
/// uncacheable blocks (e.g. oversized superblocks) match on
/// [`CacheError::BlockTooLarge`] and carry on.
pub trait CacheSession: fmt::Debug + Send {
    /// Looks up `id`, recording hit/miss statistics. Does **not** insert.
    fn access(&mut self, id: SuperblockId) -> AccessResult;

    /// Looks up `req.id`; on a miss, inserts the block (evicting as
    /// required), streaming the settled events into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates the organization's validation errors
    /// ([`CacheError::ZeroSize`], [`CacheError::BlockTooLarge`]). The
    /// access is recorded either way; see the trait-level error contract.
    fn access_or_insert(
        &mut self,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError>;

    /// Chains `from → to`. Returns `true` if the link is new.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::NotResident`] if either endpoint is not
    /// currently cached.
    fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError>;

    /// Flushes everything, streaming the settled eviction(s) into `sink`.
    /// Returns the combined summary, or `None` if the cache was empty.
    fn flush(&mut self, sink: &mut dyn EventSink) -> Option<InsertSummary>;

    /// True if `id` is resident.
    fn is_resident(&self, id: SuperblockId) -> bool;

    /// True if the link `from → to` is currently recorded.
    fn contains_link(&self, from: SuperblockId, to: SuperblockId) -> bool;

    /// Total capacity in bytes (summed across shards when sharded).
    fn capacity(&self) -> u64;

    /// Occupied bytes.
    fn used(&self) -> u64;

    /// Resident superblock count.
    fn resident_count(&self) -> usize;

    /// The eviction granularity in force.
    fn granularity(&self) -> Granularity;

    /// An owned snapshot of the accumulated statistics (aggregated
    /// across shards when sharded).
    fn stats_snapshot(&self) -> CacheStats;

    /// Census of the live link population: `(intra_unit, inter_unit)`.
    /// Cross-shard links count as inter-unit.
    fn link_census(&self) -> (u64, u64);

    /// [`CacheSession::access_or_insert`] with the events discarded.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CacheSession::access_or_insert`].
    fn access_or_insert_quiet(&mut self, req: InsertRequest) -> Result<AccessOutcome, CacheError> {
        self.access_or_insert(req, &mut NullSink)
    }

    /// Owned-report flush: materializes each eviction invocation (one per
    /// nonempty shard) into an [`EvictionReport`]. Allocates; prefer
    /// [`CacheSession::flush`] on hot paths.
    fn flush_report(&mut self) -> Vec<EvictionReport> {
        let mut buf = EventBuffer::new();
        if self.flush(&mut buf).is_none() {
            return Vec::new();
        }
        InsertReport::from_events(buf.events()).evictions
    }
}

/// Boxed sessions forward every method, so heterogeneous caches (a bare
/// [`CodeCache`], a [`crate::shard::ShardedCache`], a custom policy) can
/// flow through one non-generic replay pipeline.
impl CacheSession for Box<dyn CacheSession> {
    fn access(&mut self, id: SuperblockId) -> AccessResult {
        (**self).access(id)
    }

    fn access_or_insert(
        &mut self,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError> {
        (**self).access_or_insert(req, sink)
    }

    fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError> {
        (**self).link(from, to)
    }

    fn flush(&mut self, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        (**self).flush(sink)
    }

    fn is_resident(&self, id: SuperblockId) -> bool {
        (**self).is_resident(id)
    }

    fn contains_link(&self, from: SuperblockId, to: SuperblockId) -> bool {
        (**self).contains_link(from, to)
    }

    fn capacity(&self) -> u64 {
        (**self).capacity()
    }

    fn used(&self) -> u64 {
        (**self).used()
    }

    fn resident_count(&self) -> usize {
        (**self).resident_count()
    }

    fn granularity(&self) -> Granularity {
        (**self).granularity()
    }

    fn stats_snapshot(&self) -> CacheStats {
        (**self).stats_snapshot()
    }

    fn link_census(&self) -> (u64, u64) {
        (**self).link_census()
    }
}

impl CacheSession for CodeCache {
    fn access(&mut self, id: SuperblockId) -> AccessResult {
        CodeCache::access(self, id)
    }

    fn access_or_insert(
        &mut self,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError> {
        let access = CodeCache::access(self, req.id);
        if access.is_hit() {
            return Ok(AccessOutcome {
                access,
                inserted: None,
            });
        }
        let summary = self.insert_request(req, sink)?;
        Ok(AccessOutcome {
            access,
            inserted: Some(summary),
        })
    }

    fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError> {
        CodeCache::link(self, from, to)
    }

    fn flush(&mut self, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        CodeCache::flush(self, sink)
    }

    fn is_resident(&self, id: SuperblockId) -> bool {
        CodeCache::is_resident(self, id)
    }

    fn contains_link(&self, from: SuperblockId, to: SuperblockId) -> bool {
        self.link_graph().contains_link(from, to)
    }

    fn capacity(&self) -> u64 {
        CodeCache::capacity(self)
    }

    fn used(&self) -> u64 {
        CodeCache::used(self)
    }

    fn resident_count(&self) -> usize {
        CodeCache::resident_count(self)
    }

    fn granularity(&self) -> Granularity {
        CodeCache::granularity(self)
    }

    fn stats_snapshot(&self) -> CacheStats {
        *self.stats()
    }

    fn link_census(&self) -> (u64, u64) {
        CodeCache::link_census(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::CacheEvent;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    /// Generic driver: exercises a session through the trait only, the
    /// way `cce-sim` and `cce-dbt` do.
    fn churn<S: CacheSession>(session: &mut S, steps: u64) {
        for i in 0..steps {
            let id = sb(i % 17);
            let out = session
                .access_or_insert_quiet(InsertRequest::new(id, 40 + (i % 5) as u32 * 16))
                .expect("insert in-range blocks");
            assert_eq!(out.is_hit(), out.inserted.is_none());
            let to = sb((i + 3) % 17);
            if session.is_resident(id) && session.is_resident(to) {
                session.link(id, to).expect("both resident");
            }
        }
    }

    #[test]
    fn code_cache_implements_the_session_trait() {
        let mut c = CodeCache::with_granularity(Granularity::units(4), 512).unwrap();
        churn(&mut c, 200);
        let s = c.stats_snapshot();
        assert_eq!(s.accesses, 200);
        assert_eq!(s.accesses, s.hits + s.misses);
        assert!(CacheSession::used(&c) <= CacheSession::capacity(&c));
        let reports = c.flush_report();
        assert_eq!(reports.len(), 1, "bare cache flushes in one invocation");
        assert_eq!(CacheSession::resident_count(&c), 0);
        assert!(c.flush_report().is_empty(), "empty cache flushes nothing");
    }

    #[test]
    fn request_builder_sets_and_clears_hints() {
        let req = InsertRequest::new(sb(1), 64);
        assert_eq!(req.hint, None);
        assert_eq!(req.with_hint(Some(sb(3))).hint, Some(sb(3)));
        assert_eq!(req.with_hint(Some(sb(2))).with_hint(None).hint, None);
    }

    #[test]
    fn access_outcome_mirrors_the_access_result() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 256).unwrap();
        let out = c
            .access_or_insert_quiet(InsertRequest::new(sb(1), 64))
            .unwrap();
        assert!(out.is_miss() && !out.is_hit());
        assert_eq!(out.access, AccessResult::ColdMiss);
        let out = c
            .access_or_insert_quiet(InsertRequest::new(sb(1), 64))
            .unwrap();
        assert!(out.is_hit());
        assert!(out.inserted.is_none());
    }

    #[test]
    fn errors_still_record_the_miss() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        let err = c
            .access_or_insert_quiet(InsertRequest::new(sb(1), 4000))
            .unwrap_err();
        assert!(matches!(err, CacheError::BlockTooLarge { .. }));
        let s = c.stats_snapshot();
        assert_eq!((s.accesses, s.misses, s.insertions), (1, 1, 0));
    }

    #[test]
    fn evented_core_streams_the_settled_stream() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        let mut buf = EventBuffer::new();
        c.access_or_insert(InsertRequest::new(sb(1), 60), &mut buf)
            .unwrap();
        c.access_or_insert(InsertRequest::new(sb(2), 60), &mut buf)
            .unwrap();
        let evs = buf.events();
        assert_eq!(
            evs.first(),
            Some(&CacheEvent::Inserted {
                id: sb(1),
                size: 60
            })
        );
        assert!(evs
            .iter()
            .any(|e| matches!(e, CacheEvent::Evicted { id, .. } if *id == sb(1))));
    }
}
