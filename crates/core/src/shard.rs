//! Sharded multi-cache serving: [`ShardedCache`].
//!
//! The ROADMAP's next scale step is serving one workload across several
//! [`CodeCache`] instances — toward multi-tenant code caching, where each
//! guest (or each hash slice of a shared superblock universe) gets its
//! own eviction domain. A `ShardedCache` consistent-hashes
//! [`SuperblockId`]s over N shards with Lamping & Veach's jump hash, so
//! a block's home shard is a pure function of `(id, shard_count)` and
//! every run is reproducible.
//!
//! **Intra-shard** links live in the owning shard's [`LinkGraph`] and
//! patch exactly as in a bare cache. **Cross-shard** links are
//! always-indirect (a patched jump into another eviction domain could
//! dangle at any time, so real systems route them through stubs); they
//! are tracked in a shard-aware link graph here, and when their target
//! is evicted the stub redirect is charged through the paper's Eq. 4
//! model: the eviction's `Unlinked` event is merged with the cross-shard
//! fan-in (one back-pointer walk per victim covers both tables), while a
//! victim with *only* cross-shard fan-in pays a standalone unlink
//! operation. Links whose *source* is evicted die with it, for free.
//!
//! Since the concurrency refactor the type is a thin single-tenant
//! wrapper over [`crate::concurrent`]'s shared cache: the same per-shard
//! locks, routing and cross-shard accounting that serve N tenants serve
//! this one tenant, so the sharded and concurrent paths cannot drift
//! apart. The type implements [`CacheSession`], so `cce_sim::simulator`
//! and `cce_dbt::engine` drive a sharded cache and a bare [`CodeCache`]
//! through the same trait. With N=1 the wrapper is a strict pass-through
//! and the event stream is byte-identical to a bare cache (enforced by
//! [`crate::testutil::assert_sessions_equivalent`] and the conformance
//! suite in `tests/shard_conformance.rs`).

use crate::cache::{AccessResult, CodeCache, InsertSummary};
use crate::concurrent::ConcurrentCache;
use crate::error::CacheError;
use crate::events::{CacheEvent, EventSink};
use crate::ids::{Granularity, SuperblockId};
use crate::links::LinkGraph;
use crate::session::{AccessOutcome, CacheSession, InsertRequest};
use crate::stats::CacheStats;

/// Jump consistent hash (Lamping & Veach, 2014): maps `key` to a bucket
/// in `0..buckets` with no lookup tables and minimal reshuffling when
/// the bucket count changes. `buckets` must be at least 1.
#[must_use]
pub fn jump_hash(mut key: u64, buckets: u32) -> u32 {
    let mut b: i64 = 0;
    let mut j: i64 = 0;
    while j < i64::from(buckets) {
        b = j;
        key = key.wrapping_mul(2_862_933_555_777_941_757).wrapping_add(1);
        let shifted = (key >> 33).wrapping_add(1);
        j = ((b.wrapping_add(1) as f64) * ((1u64 << 31) as f64 / shifted as f64)) as i64;
    }
    b as u32
}

/// Splits `total_capacity` bytes as evenly as possible over
/// `shard_count` shards: every shard gets `total / n` bytes and the
/// first `total % n` shards get one extra, so the sum is exactly the
/// total and a sharding sweep compares at **fixed total capacity**.
/// Returns an empty vector when `shard_count` is zero.
#[must_use]
pub fn shard_capacities(total_capacity: u64, shard_count: u32) -> Vec<u64> {
    let n = u64::from(shard_count);
    if n == 0 {
        return Vec::new();
    }
    let base = total_capacity / n;
    let remainder = total_capacity % n;
    (0..n).map(|i| base + u64::from(i < remainder)).collect()
}

/// Cross-shard bookkeeping the per-shard statistics cannot see: the
/// shard-aware link graph's contribution to link creation and Eq. 4
/// eviction charges. Folded into stats snapshots per tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct CrossShardExtras {
    pub(crate) links_created: u64,
    pub(crate) unlink_operations: u64,
    pub(crate) links_unlinked: u64,
    pub(crate) links_dropped_free: u64,
}

/// Rewrites one shard's settled event stream with cross-shard link
/// accounting before forwarding it to the caller's sink.
///
/// Per victim: cross-shard *incoming* links come from blocks in other
/// shards (which necessarily survive this shard's invocation), so they
/// are Eq. 4 charges — merged into the shard's own `Unlinked` event when
/// one follows, or emitted standalone (one extra unlink operation)
/// otherwise. Cross-shard *outgoing* links die with the victim, free.
pub(crate) struct CrossShardSink<'a> {
    inner: &'a mut dyn EventSink,
    xlinks: &'a mut LinkGraph,
    pub(crate) unlink_operations: u32,
    pub(crate) links_unlinked: u64,
    pub(crate) links_dropped_free: u64,
    /// Victim with cross-shard fan-in, awaiting a possible merge with
    /// the shard's own `Unlinked` event for the same block.
    pending: Option<(SuperblockId, u32)>,
    /// Cross-shard links dropped free so far in the open invocation.
    invocation_dropped: u64,
}

impl<'a> CrossShardSink<'a> {
    pub(crate) fn new(
        inner: &'a mut dyn EventSink,
        xlinks: &'a mut LinkGraph,
    ) -> CrossShardSink<'a> {
        CrossShardSink {
            inner,
            xlinks,
            unlink_operations: 0,
            links_unlinked: 0,
            links_dropped_free: 0,
            pending: None,
            invocation_dropped: 0,
        }
    }

    /// Emits the pending standalone `Unlinked`: the victim had cross-
    /// shard fan-in but no intra-shard unlink work to merge with, so the
    /// back-pointer walk is a fresh Eq. 4 operation.
    fn flush_pending(&mut self) {
        if let Some((id, links)) = self.pending.take() {
            self.unlink_operations += 1;
            self.links_unlinked += u64::from(links);
            self.inner.event(CacheEvent::Unlinked { id, links });
        }
    }
}

impl EventSink for CrossShardSink<'_> {
    fn event(&mut self, event: CacheEvent) {
        match event {
            CacheEvent::Evicted { id, size } => {
                self.flush_pending();
                let cross_in = self.xlinks.in_degree(id) as u32;
                let cross_out = self.xlinks.out_degree(id) as u64;
                self.xlinks.remove_block_quiet(id);
                self.invocation_dropped += cross_out;
                if cross_in > 0 {
                    self.pending = Some((id, cross_in));
                }
                self.inner.event(CacheEvent::Evicted { id, size });
            }
            CacheEvent::Unlinked { id, links } => match self.pending.take() {
                // One back-pointer walk per victim covers both tables:
                // merge, charging the cross links but no extra operation.
                Some((pid, cross)) if pid == id => {
                    self.links_unlinked += u64::from(cross);
                    self.inner.event(CacheEvent::Unlinked {
                        id,
                        links: links + cross,
                    });
                }
                other => {
                    self.pending = other;
                    self.flush_pending();
                    self.inner.event(CacheEvent::Unlinked { id, links });
                }
            },
            CacheEvent::EvictionEnd {
                bytes,
                links_dropped_free,
            } => {
                self.flush_pending();
                self.links_dropped_free += self.invocation_dropped;
                let links_dropped_free = links_dropped_free + self.invocation_dropped;
                self.invocation_dropped = 0;
                self.inner.event(CacheEvent::EvictionEnd {
                    bytes,
                    links_dropped_free,
                });
            }
            other => self.inner.event(other),
        }
    }
}

/// N independent [`CodeCache`] shards behind one [`CacheSession`]
/// surface, with consistent-hash routing and cross-shard link
/// accounting: the single-tenant view of the concurrent serving core.
#[derive(Debug)]
pub struct ShardedCache {
    inner: ConcurrentCache,
}

impl ShardedCache {
    /// Wraps pre-built shards (use this for heterogeneous geometries or
    /// custom organizations per shard).
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] if `shards` is empty.
    pub fn new(shards: Vec<CodeCache>) -> Result<ShardedCache, CacheError> {
        Ok(ShardedCache {
            inner: ConcurrentCache::from_shard_caches(shards)?,
        })
    }

    /// Creates `shard_count` shards of granularity `g` splitting
    /// `total_capacity` bytes as evenly as possible (the first
    /// `total_capacity % shard_count` shards get the extra byte), so a
    /// sharding sweep compares at **fixed total capacity**.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::ZeroCapacity`] when `shard_count` is zero
    /// or a shard's slice rounds down to zero bytes, and propagates
    /// [`CacheError::TooManyUnits`] for invalid per-shard geometry.
    pub fn with_granularity(
        g: Granularity,
        total_capacity: u64,
        shard_count: u32,
    ) -> Result<ShardedCache, CacheError> {
        let capacities = shard_capacities(total_capacity, shard_count);
        if capacities.is_empty() {
            return Err(CacheError::ZeroCapacity);
        }
        let mut shards = Vec::with_capacity(capacities.len());
        for capacity in capacities {
            shards.push(CodeCache::with_granularity(g, capacity)?);
        }
        ShardedCache::new(shards)
    }

    /// The home shard of `id` — a pure function of the id and the shard
    /// count, so routing is reproducible across runs and worker counts.
    #[must_use]
    pub fn shard_of(&self, id: SuperblockId) -> usize {
        self.inner.shard_of(id)
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }

    /// Runs `f` against one shard's cache under its lock, for
    /// inspection in tests and diagnostics.
    pub fn with_shard<R>(&self, s: usize, f: impl FnOnce(&CodeCache) -> R) -> R {
        self.inner.with_lane(s, 0, f)
    }

    /// Number of live cross-shard (always-indirect) links.
    #[must_use]
    pub fn cross_link_count(&self) -> u64 {
        self.inner.cross_link_count(0)
    }
}

impl CacheSession for ShardedCache {
    fn access(&mut self, id: SuperblockId) -> AccessResult {
        self.inner.access_for(0, id)
    }

    fn access_or_insert(
        &mut self,
        req: InsertRequest,
        sink: &mut dyn EventSink,
    ) -> Result<AccessOutcome, CacheError> {
        self.inner.access_or_insert_for(0, req, sink)
    }

    fn link(&mut self, from: SuperblockId, to: SuperblockId) -> Result<bool, CacheError> {
        self.inner.link_for(0, from, to)
    }

    fn flush(&mut self, sink: &mut dyn EventSink) -> Option<InsertSummary> {
        self.inner.flush_for(0, sink)
    }

    fn is_resident(&self, id: SuperblockId) -> bool {
        self.inner.is_resident_for(0, id)
    }

    fn contains_link(&self, from: SuperblockId, to: SuperblockId) -> bool {
        self.inner.contains_link_for(0, from, to)
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity_for(0)
    }

    fn used(&self) -> u64 {
        self.inner.used_for(0)
    }

    fn resident_count(&self) -> usize {
        self.inner.resident_count_for(0)
    }

    fn granularity(&self) -> Granularity {
        self.inner.granularity_for(0)
    }

    fn stats_snapshot(&self) -> CacheStats {
        self.inner.stats_snapshot_for(0)
    }

    fn link_census(&self) -> (u64, u64) {
        self.inner.link_census_for(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventBuffer, NullSink};

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn jump_hash_is_stable_and_in_range() {
        for key in 0..256u64 {
            assert_eq!(jump_hash(key, 1), 0);
            for buckets in [2u32, 4, 8, 13] {
                let b = jump_hash(key, buckets);
                assert!(b < buckets);
                assert_eq!(b, jump_hash(key, buckets), "hash must be pure");
            }
        }
    }

    #[test]
    fn jump_hash_moves_few_keys_when_growing() {
        // The consistent-hash property: growing 4 → 5 buckets relocates
        // roughly 1/5 of the keys, never a wholesale reshuffle.
        let moved = (0..1000u64)
            .filter(|&k| jump_hash(k, 4) != jump_hash(k, 5))
            .count();
        assert!((100..350).contains(&moved), "moved {moved}/1000");
    }

    #[test]
    fn routing_spreads_blocks_over_all_shards() {
        let mut sharded = ShardedCache::with_granularity(Granularity::units(2), 4096, 4).unwrap();
        for i in 0..64u64 {
            sharded
                .access_or_insert_quiet(InsertRequest::new(sb(i), 32))
                .unwrap();
        }
        for i in 0..sharded.shard_count() {
            let resident = sharded.with_shard(i, CodeCache::resident_count);
            assert!(resident > 0, "shard {i} got nothing");
        }
        assert_eq!(sharded.resident_count(), 64);
        assert_eq!(CacheSession::capacity(&sharded), 4096);
    }

    #[test]
    fn capacity_split_preserves_the_total() {
        let sharded = ShardedCache::with_granularity(Granularity::Flush, 1003, 8).unwrap();
        assert_eq!(CacheSession::capacity(&sharded), 1003);
        let sharded = ShardedCache::with_granularity(Granularity::Flush, 7, 8);
        assert_eq!(sharded.unwrap_err(), CacheError::ZeroCapacity);
        assert!(matches!(
            ShardedCache::with_granularity(Granularity::Flush, 100, 0),
            Err(CacheError::ZeroCapacity)
        ));
        assert!(matches!(
            ShardedCache::new(Vec::new()),
            Err(CacheError::ZeroCapacity)
        ));
    }

    /// Two ids that land on different shards at N=2, found by scanning.
    fn cross_pair(sharded: &ShardedCache) -> (SuperblockId, SuperblockId) {
        let a = sb(0);
        let other = (1..64)
            .map(sb)
            .find(|&b| sharded.shard_of(b) != sharded.shard_of(a))
            .expect("jump hash uses both shards");
        (a, other)
    }

    /// Sum of every shard's own (intra-shard) live link count.
    fn intra_link_count(sharded: &ShardedCache) -> u64 {
        (0..sharded.shard_count())
            .map(|i| sharded.with_shard(i, |c| c.link_graph().link_count()))
            .sum()
    }

    #[test]
    fn cross_shard_links_are_tracked_separately() {
        let mut sharded = ShardedCache::with_granularity(Granularity::units(2), 2048, 2).unwrap();
        let (a, b) = cross_pair(&sharded);
        sharded
            .access_or_insert_quiet(InsertRequest::new(a, 64))
            .unwrap();
        sharded
            .access_or_insert_quiet(InsertRequest::new(b, 64))
            .unwrap();
        assert!(sharded.link(a, b).unwrap());
        assert!(!sharded.link(a, b).unwrap(), "duplicate patch is a no-op");
        assert!(sharded.contains_link(a, b));
        assert!(!sharded.contains_link(b, a));
        assert_eq!(sharded.cross_link_count(), 1);
        let s = sharded.stats_snapshot();
        assert_eq!(s.links_created, 1);
        assert_eq!(s.inter_unit_links_created, 1);
        let (_, inter) = sharded.link_census();
        assert_eq!(inter, 1);
        // Both shards' own graphs stay empty.
        assert_eq!(intra_link_count(&sharded), 0);
    }

    #[test]
    fn cross_shard_link_requires_residency() {
        let mut sharded = ShardedCache::with_granularity(Granularity::units(2), 2048, 2).unwrap();
        let (a, b) = cross_pair(&sharded);
        sharded
            .access_or_insert_quiet(InsertRequest::new(a, 64))
            .unwrap();
        assert_eq!(sharded.link(a, b), Err(CacheError::NotResident(b)));
        assert_eq!(sharded.link(b, a), Err(CacheError::NotResident(b)));
    }

    #[test]
    fn evicting_a_cross_link_target_charges_eq4() {
        // Shard capacities of 100 bytes, superblock granularity: filling
        // the target's shard evicts it while the source survives in the
        // other shard, so the cross link must be charged.
        let mut sharded = ShardedCache::with_granularity(Granularity::Superblock, 200, 2).unwrap();
        let (a, b) = cross_pair(&sharded);
        sharded
            .access_or_insert_quiet(InsertRequest::new(a, 60))
            .unwrap();
        sharded
            .access_or_insert_quiet(InsertRequest::new(b, 60))
            .unwrap();
        sharded.link(a, b).unwrap(); // a → b crosses shards
        let victim_shard = sharded.shard_of(b);
        // Insert same-shard blocks at b until b is evicted.
        let mut buf = EventBuffer::new();
        let mut filler = 1000u64;
        while sharded.is_resident(b) {
            filler += 1;
            if sharded.shard_of(sb(filler)) != victim_shard {
                continue;
            }
            buf.clear();
            sharded
                .access_or_insert(InsertRequest::new(sb(filler), 60), &mut buf)
                .unwrap();
        }
        // The settled stream of the evicting insert carries the merged
        // cross-shard unlink.
        assert!(
            buf.events().iter().any(
                |e| matches!(e, CacheEvent::Unlinked { id, links } if *id == b && *links >= 1)
            ),
            "expected an Unlinked for {b}: {:?}",
            buf.events()
        );
        let s = sharded.stats_snapshot();
        assert!(s.unlink_operations >= 1);
        assert!(s.links_unlinked >= 1);
        assert!(sharded.is_resident(a), "source must have survived");
        assert_eq!(sharded.cross_link_count(), 0);
        // Link conservation across the shard boundary.
        let live = intra_link_count(&sharded) + sharded.cross_link_count();
        assert_eq!(
            s.links_created,
            s.links_unlinked + s.links_dropped_free + live
        );
    }

    #[test]
    fn evicting_a_cross_link_source_drops_it_free() {
        let mut sharded = ShardedCache::with_granularity(Granularity::Superblock, 200, 2).unwrap();
        let (a, b) = cross_pair(&sharded);
        sharded
            .access_or_insert_quiet(InsertRequest::new(a, 60))
            .unwrap();
        sharded
            .access_or_insert_quiet(InsertRequest::new(b, 60))
            .unwrap();
        sharded.link(a, b).unwrap();
        let source_shard = sharded.shard_of(a);
        let mut filler = 2000u64;
        while sharded.is_resident(a) {
            filler += 1;
            if sharded.shard_of(sb(filler)) != source_shard {
                continue;
            }
            sharded
                .access_or_insert_quiet(InsertRequest::new(sb(filler), 60))
                .unwrap();
        }
        let s = sharded.stats_snapshot();
        assert_eq!(s.unlink_operations, 0, "source death unpatches nothing");
        assert_eq!(s.links_dropped_free, 1);
        assert_eq!(sharded.cross_link_count(), 0);
    }

    #[test]
    fn flush_accounts_every_cross_link_exactly_once() {
        let mut sharded = ShardedCache::with_granularity(Granularity::units(2), 4096, 4).unwrap();
        for i in 0..32u64 {
            sharded
                .access_or_insert_quiet(InsertRequest::new(sb(i), 64))
                .unwrap();
        }
        for i in 0..32u64 {
            let (from, to) = (sb(i), sb((i + 7) % 32));
            if sharded.is_resident(from) && sharded.is_resident(to) {
                sharded.link(from, to).unwrap();
            }
        }
        let created = sharded.stats_snapshot().links_created;
        assert!(created > 0);
        let summary = sharded.flush(&mut NullSink).expect("cache was nonempty");
        assert!(summary.evictions >= 1);
        assert_eq!(CacheSession::used(&sharded), 0);
        assert_eq!(sharded.cross_link_count(), 0);
        let s = sharded.stats_snapshot();
        assert_eq!(s.links_created, s.links_unlinked + s.links_dropped_free);
    }

    #[test]
    fn sharded_cache_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardedCache>();
    }
}
