//! Cache-management statistics.
//!
//! Every counter the paper's evaluation needs is collected here: miss
//! rates (Figures 6–7), eviction-invocation counts (Figure 8), link
//! creation and classification (Figures 12–13), and the raw inputs to the
//! overhead models (Figures 10–11, 14–15 are computed by `cce-sim` from
//! these counters plus the per-event byte/link quantities).

/// Counters accumulated by a [`crate::CodeCache`] over its lifetime.
///
/// This is a passive data structure (all fields public) so analysis code
/// can consume it freely; it is only ever *written* by `cce-core`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Superblock lookups.
    pub accesses: u64,
    /// Lookups that found the block resident.
    pub hits: u64,
    /// Lookups that missed (cold or capacity).
    pub misses: u64,
    /// Misses for blocks never previously resident (compulsory).
    pub cold_misses: u64,
    /// Misses for blocks that had been evicted (the replacement policy's
    /// fault).
    pub capacity_misses: u64,

    /// Successful insertions.
    pub insertions: u64,
    /// Total bytes inserted.
    pub bytes_inserted: u64,
    /// Bytes lost to unit padding (unit-partitioned policies only).
    pub padding_bytes: u64,

    /// Invocations of the eviction mechanism (the unit of Eq. 2's fixed
    /// cost and the quantity plotted in Figure 8).
    pub eviction_invocations: u64,
    /// Superblocks evicted across all invocations.
    pub blocks_evicted: u64,
    /// Bytes evicted across all invocations.
    pub bytes_evicted: u64,

    /// Links recorded (successful chain patches).
    pub links_created: u64,
    /// Links whose endpoints resided in *different* eviction units at
    /// creation time (Figure 13's numerator).
    pub inter_unit_links_created: u64,
    /// Evicted superblocks that had at least one incoming link from a
    /// surviving block — each such block is one unlink operation charged
    /// by Eq. 4.
    pub unlink_operations: u64,
    /// Incoming links from survivors removed across all unlink operations
    /// (Eq. 4's `numLinks` summed).
    pub links_unlinked: u64,
    /// Links dropped without unpatching work: both endpoints evicted in
    /// the same invocation (intra-unit links, incl. self links), or the
    /// link's *source* was evicted so the patched jump dies with it.
    pub links_dropped_free: u64,

    /// Peak bytes resident.
    pub high_water_bytes: u64,
    /// Peak superblock count resident.
    pub high_water_blocks: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    #[must_use]
    pub fn new() -> CacheStats {
        CacheStats::default()
    }

    /// Miss rate over all accesses (0 when no accesses yet).
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate over all accesses (0 when no accesses yet).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Fraction of created links that crossed unit boundaries (Figure 13).
    #[must_use]
    pub fn inter_unit_link_fraction(&self) -> f64 {
        if self.links_created == 0 {
            0.0
        } else {
            self.inter_unit_links_created as f64 / self.links_created as f64
        }
    }

    /// Mean superblocks evicted per eviction-mechanism invocation.
    #[must_use]
    pub fn blocks_per_eviction(&self) -> f64 {
        if self.eviction_invocations == 0 {
            0.0
        } else {
            self.blocks_evicted as f64 / self.eviction_invocations as f64
        }
    }

    /// Mean bytes evicted per eviction-mechanism invocation.
    #[must_use]
    pub fn bytes_per_eviction(&self) -> f64 {
        if self.eviction_invocations == 0 {
            0.0
        } else {
            self.bytes_evicted as f64 / self.eviction_invocations as f64
        }
    }

    /// Merges another stats block into this one (used to aggregate across
    /// benchmarks for the paper's weighted unified miss rate, Eq. 1).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.cold_misses += other.cold_misses;
        self.capacity_misses += other.capacity_misses;
        self.insertions += other.insertions;
        self.bytes_inserted += other.bytes_inserted;
        self.padding_bytes += other.padding_bytes;
        self.eviction_invocations += other.eviction_invocations;
        self.blocks_evicted += other.blocks_evicted;
        self.bytes_evicted += other.bytes_evicted;
        self.links_created += other.links_created;
        self.inter_unit_links_created += other.inter_unit_links_created;
        self.unlink_operations += other.unlink_operations;
        self.links_unlinked += other.links_unlinked;
        self.links_dropped_free += other.links_dropped_free;
        self.high_water_bytes = self.high_water_bytes.max(other.high_water_bytes);
        self.high_water_blocks = self.high_water_blocks.max(other.high_water_blocks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_zero_accesses() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.inter_unit_link_fraction(), 0.0);
        assert_eq!(s.blocks_per_eviction(), 0.0);
        assert_eq!(s.bytes_per_eviction(), 0.0);
    }

    #[test]
    fn rates_compute() {
        let s = CacheStats {
            accesses: 10,
            hits: 7,
            misses: 3,
            links_created: 4,
            inter_unit_links_created: 1,
            eviction_invocations: 2,
            blocks_evicted: 10,
            bytes_evicted: 600,
            ..CacheStats::default()
        };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
        assert!((s.inter_unit_link_fraction() - 0.25).abs() < 1e-12);
        assert!((s.blocks_per_eviction() - 5.0).abs() < 1e-12);
        assert!((s.bytes_per_eviction() - 300.0).abs() < 1e-12);
    }

    #[test]
    fn merge_sums_counters_and_maxes_high_water() {
        let mut a = CacheStats {
            accesses: 5,
            misses: 2,
            high_water_bytes: 100,
            ..CacheStats::default()
        };
        let b = CacheStats {
            accesses: 7,
            misses: 1,
            high_water_bytes: 80,
            high_water_blocks: 9,
            ..CacheStats::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 12);
        assert_eq!(a.misses, 3);
        assert_eq!(a.high_water_bytes, 100);
        assert_eq!(a.high_water_blocks, 9);
    }
}
