//! Reusable conformance checks for [`CacheOrg`] implementations.
//!
//! Promoted from an internal `#[cfg(test)]` module so out-of-crate
//! policies (the `custom_policy` example, downstream experiments) can
//! validate themselves against the same contract the seven built-in
//! organizations satisfy. Call [`conformance`] from a test with a fresh
//! instance of your organization:
//!
//! ```
//! use cce_core::{testutil, UnitFifo};
//! testutil::conformance(Box::new(UnitFifo::new(1024, 8).unwrap()));
//! ```
//!
//! The suite drives a generic overflow workload through both the event
//! stream ([`CacheOrg::insert_events`]) and the legacy shim, asserting:
//!
//! * residency, usage and enumeration invariants after every insert;
//! * rejection of duplicate / zero-sized / oversized insertions;
//! * event-grammar invariants — every `EvictionBegin` is closed by an
//!   `EvictionEnd`, invocations are never empty, the byte total carried
//!   by `EvictionEnd` equals the sum of its `Evicted` sizes **and** the
//!   bytes actually freed, and every insert ends with `Inserted`;
//! * `flush_events`/`flush_all` empty the cache as a single invocation.

use crate::error::CacheError;
use crate::events::{CacheEvent, EventBuffer};
use crate::ids::SuperblockId;
use crate::org::CacheOrg;
use crate::session::{CacheSession, InsertRequest};

/// Checks the event grammar of one insertion's stream and returns the
/// total bytes reported evicted.
///
/// # Panics
///
/// Panics if the stream violates the grammar described in the module
/// docs.
pub fn check_event_grammar(events: &[CacheEvent], id: SuperblockId, size: u32) -> u64 {
    let mut in_invocation = false;
    let mut invocation_bytes = 0u64;
    let mut invocation_blocks = 0usize;
    let mut total_evicted = 0u64;
    let mut inserted_seen = false;
    for (i, &ev) in events.iter().enumerate() {
        assert!(
            !inserted_seen,
            "Inserted must terminate the stream, got {ev:?} after it"
        );
        match ev {
            CacheEvent::Padding { bytes } => {
                assert!(!in_invocation, "Padding inside an invocation");
                assert!(bytes > 0, "zero-byte Padding event");
            }
            CacheEvent::EvictionBegin => {
                assert!(!in_invocation, "nested EvictionBegin at event {i}");
                in_invocation = true;
                invocation_bytes = 0;
                invocation_blocks = 0;
            }
            CacheEvent::Evicted { size, .. } => {
                assert!(in_invocation, "Evicted outside an invocation");
                invocation_bytes += u64::from(size);
                invocation_blocks += 1;
            }
            CacheEvent::EvictionEnd { bytes, .. } => {
                assert!(in_invocation, "EvictionEnd without EvictionBegin");
                assert!(invocation_blocks > 0, "empty eviction invocation");
                assert_eq!(
                    bytes, invocation_bytes,
                    "EvictionEnd byte total disagrees with Evicted events"
                );
                total_evicted += invocation_bytes;
                in_invocation = false;
            }
            CacheEvent::Inserted {
                id: iid,
                size: isize,
            } => {
                assert!(!in_invocation, "Inserted inside an invocation");
                assert_eq!((iid, isize), (id, size), "Inserted carries wrong block");
                inserted_seen = true;
            }
            CacheEvent::Hit { .. } | CacheEvent::Miss { .. } | CacheEvent::Unlinked { .. } => {
                panic!("organizations must not emit {ev:?}");
            }
        }
    }
    assert!(!in_invocation, "unterminated eviction invocation");
    assert!(inserted_seen, "stream did not end with Inserted");
    total_evicted
}

/// Drives `org` through a generic workload and checks the invariants
/// every organization must uphold.
///
/// # Panics
///
/// Panics (with a diagnostic) on any contract violation.
pub fn conformance(mut org: Box<dyn CacheOrg>) {
    let cap = org.capacity();
    assert!(cap > 0);
    assert_eq!(org.used(), 0);
    assert_eq!(org.resident_count(), 0);

    // Insert blocks of varied sizes until well past capacity, checking
    // the event stream of every insertion.
    let mut next = 0u64;
    let sizes = [64u32, 96, 48, 128, 80, 56, 112, 72];
    let mut inserted = Vec::new();
    let mut buf = EventBuffer::new();
    while inserted.iter().map(|&(_, s)| u64::from(s)).sum::<u64>() < cap * 3 {
        let id = SuperblockId(next);
        let size = sizes[(next as usize) % sizes.len()];
        next += 1;
        let used_before = org.used();
        buf.clear();
        org.insert_events(id, size, None, &mut buf)
            .expect("insert must succeed");
        inserted.push((id, size));
        let evicted_bytes = check_event_grammar(buf.events(), id, size);
        // Bytes reported via events equal bytes actually freed.
        assert_eq!(
            org.used(),
            used_before + u64::from(size) - evicted_bytes,
            "event byte totals disagree with the usage delta"
        );
        // Evicted blocks must no longer be resident; the insertee must.
        for &ev in buf.events() {
            if let CacheEvent::Evicted { id: eid, .. } = ev {
                assert!(!org.contains(eid), "evicted {eid} still resident");
            }
        }
        assert!(org.contains(id));
        assert!(org.unit_of(id).is_some());
        // Usage never exceeds capacity.
        assert!(org.used() <= cap, "used {} > capacity {cap}", org.used());
        assert_eq!(
            org.resident_blocks().len(),
            org.resident_count(),
            "resident enumeration disagrees with count"
        );
    }

    // Duplicate insertion is rejected (via the legacy shim, which must
    // stay wired to the event path).
    let last = inserted.last().unwrap().0;
    assert!(matches!(
        org.insert(last, 64),
        Err(CacheError::AlreadyResident(_))
    ));

    // Zero-size insertion is rejected.
    assert!(matches!(
        org.insert(SuperblockId(u64::MAX), 0),
        Err(CacheError::ZeroSize(_))
    ));

    // Oversized insertion is rejected.
    let too_big = u32::try_from(cap + 1).unwrap_or(u32::MAX);
    assert!(matches!(
        org.insert(SuperblockId(u64::MAX - 1), too_big),
        Err(CacheError::BlockTooLarge { .. })
    ));

    // Failed insertions must leave no events behind.
    buf.clear();
    assert!(org
        .insert_events(SuperblockId(u64::MAX), 0, None, &mut buf)
        .is_err());
    assert!(buf.is_empty(), "failed insert leaked events");

    // flush_events empties the cache as one invocation.
    let used_before_flush = org.used();
    buf.clear();
    assert!(org.flush_events(&mut buf), "cache was nonempty");
    let mut begins = 0;
    let mut flushed_bytes = 0u64;
    for &ev in buf.events() {
        match ev {
            CacheEvent::EvictionBegin => begins += 1,
            CacheEvent::EvictionEnd { bytes, .. } => flushed_bytes += bytes,
            CacheEvent::Evicted { .. } => {}
            other => panic!("flush emitted non-eviction event {other:?}"),
        }
    }
    assert_eq!(begins, 1, "flush must be a single invocation");
    assert_eq!(flushed_bytes, used_before_flush);
    assert_eq!(org.used(), 0);
    assert_eq!(org.resident_count(), 0);
    assert!(org.flush_all().is_none());
}

/// Drives two [`CacheSession`]s through the same deterministic churn
/// workload (hinted inserts, chaining, re-accesses, a final flush) and
/// asserts they are **event-stream byte-identical** at every step, with
/// matching statistics and link censuses afterwards.
///
/// This is the redesign's safety net: a `ShardedCache` with one shard
/// must be indistinguishable from the bare [`crate::CodeCache`] it wraps,
/// for every organization.
///
/// # Panics
///
/// Panics (with the step number and both streams) on the first
/// divergence.
pub fn assert_sessions_equivalent<A: CacheSession, B: CacheSession>(
    a: &mut A,
    b: &mut B,
    steps: u64,
) {
    assert_eq!(a.capacity(), b.capacity(), "capacities must match");
    let mut buf_a = EventBuffer::new();
    let mut buf_b = EventBuffer::new();
    // xorshift64: deterministic, no external deps.
    let mut rng = 0x9e37_79b9_7f4a_7c15u64;
    let mut step = || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let mut last: Option<SuperblockId> = None;
    for i in 0..steps {
        let r = step();
        let id = SuperblockId(r % 37);
        let size = 32 + (r >> 8) % 97;
        let hint = last.filter(|_| r & 0x10 != 0);
        let req = InsertRequest::new(id, size as u32).with_hint(hint);
        buf_a.clear();
        buf_b.clear();
        let out_a = a.access_or_insert(req, &mut buf_a);
        let out_b = b.access_or_insert(req, &mut buf_b);
        assert_eq!(out_a, out_b, "step {i}: outcomes diverged for {id}");
        assert_eq!(
            buf_a.events(),
            buf_b.events(),
            "step {i}: event streams diverged for {id}"
        );
        if out_a.is_ok() {
            if let Some(from) = last {
                let can = a.is_resident(from) && a.is_resident(id) && from != id;
                assert_eq!(
                    can,
                    b.is_resident(from) && b.is_resident(id) && from != id,
                    "step {i}: residency diverged"
                );
                if can {
                    assert_eq!(
                        a.link(from, id),
                        b.link(from, id),
                        "step {i}: link diverged"
                    );
                }
            }
            last = Some(id);
        }
        assert_eq!(a.used(), b.used(), "step {i}: usage diverged");
        assert_eq!(
            a.resident_count(),
            b.resident_count(),
            "step {i}: population diverged"
        );
    }
    buf_a.clear();
    buf_b.clear();
    assert_eq!(
        a.flush(&mut buf_a),
        b.flush(&mut buf_b),
        "flush summaries diverged"
    );
    assert_eq!(buf_a.events(), buf_b.events(), "flush streams diverged");
    assert_eq!(
        a.stats_snapshot(),
        b.stats_snapshot(),
        "statistics diverged"
    );
    assert_eq!(a.link_census(), b.link_census(), "link censuses diverged");
}
