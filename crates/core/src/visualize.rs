//! Visualization of cache occupancy and superblock interconnectivity.
//!
//! The paper's §5.4: *"Our future work includes a more detailed analysis
//! and visualization of the interconnectivity of superblocks within the
//! cache."* This module renders two views of a live [`CodeCache`]:
//!
//! * [`occupancy_chart`] — an ASCII bar per eviction unit showing fill
//!   level and block count (unit-partitioned organizations), or a single
//!   bar for per-superblock organizations;
//! * [`link_graph_dot`] — the live link graph in Graphviz DOT, with
//!   superblocks clustered by their current eviction unit and inter-unit
//!   links highlighted, ready for `dot -Tsvg`.

use crate::cache::CodeCache;
use crate::ids::UnitId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders an ASCII occupancy chart of the cache.
///
/// # Example
///
/// ```
/// use cce_core::{CacheSession, CodeCache, Granularity, InsertRequest, SuperblockId};
/// use cce_core::visualize::occupancy_chart;
///
/// let mut cache = CodeCache::with_granularity(Granularity::units(2), 200)?;
/// cache.access_or_insert_quiet(InsertRequest::new(SuperblockId(1), 60))?;
/// let chart = occupancy_chart(&cache);
/// assert!(chart.contains("u0"));
/// # Ok::<(), cce_core::CacheError>(())
/// ```
#[must_use]
pub fn occupancy_chart(cache: &CodeCache) -> String {
    const WIDTH: usize = 40;
    let mut per_unit: BTreeMap<UnitId, (u64, usize)> = BTreeMap::new();
    for (id, size) in cache.org().resident_entries() {
        let unit = cache.unit_of(id).expect("resident blocks have units");
        let e = per_unit.entry(unit).or_insert((0, 0));
        e.0 += u64::from(size);
        e.1 += 1;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "code cache: {} / {} bytes in {} blocks ({})",
        cache.used(),
        cache.capacity(),
        cache.resident_count(),
        cache.granularity()
    );
    if per_unit.len() > 32 {
        // Per-superblock organizations: one aggregate bar.
        let filled = (cache.used() as f64 / cache.capacity() as f64 * WIDTH as f64) as usize;
        let _ = writeln!(
            out,
            "[{}{}] {} blocks (per-superblock units)",
            "#".repeat(filled.min(WIDTH)),
            "-".repeat(WIDTH - filled.min(WIDTH)),
            cache.resident_count()
        );
        return out;
    }
    let unit_cap = (cache.capacity() / per_unit.len().max(1) as u64).max(1);
    for (unit, (bytes, blocks)) in &per_unit {
        let filled = (*bytes as f64 / unit_cap as f64 * WIDTH as f64) as usize;
        let _ = writeln!(
            out,
            "{unit:>4} [{}{}] {bytes:>7} B, {blocks:>3} blocks",
            "#".repeat(filled.min(WIDTH)),
            "-".repeat(WIDTH - filled.min(WIDTH)),
        );
    }
    out
}

/// Renders the live link graph as Graphviz DOT, clustering superblocks by
/// eviction unit. Inter-unit links (the ones needing back-pointer
/// maintenance) are drawn in red with a `penwidth` of 2.
#[must_use]
pub fn link_graph_dot(cache: &CodeCache) -> String {
    let mut clusters: BTreeMap<UnitId, Vec<String>> = BTreeMap::new();
    for (id, size) in cache.org().resident_entries() {
        let unit = cache.unit_of(id).expect("resident blocks have units");
        clusters
            .entry(unit)
            .or_default()
            .push(format!("  \"{id}\" [label=\"{id}\\n{size}B\"];"));
    }
    let mut out = String::from("digraph code_cache {\n  rankdir=LR;\n  node [shape=box];\n");
    // Only cluster when units are shared (unit-partitioned orgs).
    let cluster = clusters.len() < cache.resident_count();
    for (unit, nodes) in &clusters {
        if cluster {
            let _ = writeln!(out, "  subgraph \"cluster_{unit}\" {{");
            let _ = writeln!(out, "    label=\"{unit}\";");
            for n in nodes {
                let _ = writeln!(out, "  {n}");
            }
            let _ = writeln!(out, "  }}");
        } else {
            for n in nodes {
                let _ = writeln!(out, "{n}");
            }
        }
    }
    for (from, to) in cache.link_graph().iter_links() {
        let inter = from != to && cache.unit_of(from) != cache.unit_of(to);
        if inter {
            let _ = writeln!(out, "  \"{from}\" -> \"{to}\" [color=red, penwidth=2];");
        } else {
            let _ = writeln!(out, "  \"{from}\" -> \"{to}\";");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullSink;
    use crate::ids::{Granularity, SuperblockId};
    use crate::session::InsertRequest;

    fn ins(c: &mut CodeCache, id: u64, size: u32) {
        c.insert_request(InsertRequest::new(SuperblockId(id), size), &mut NullSink)
            .unwrap();
    }

    fn sample_cache() -> CodeCache {
        let mut c = CodeCache::with_granularity(Granularity::units(2), 200).unwrap();
        ins(&mut c, 1, 60);
        ins(&mut c, 2, 30);
        ins(&mut c, 3, 80); // lands in unit 1
        c.link(SuperblockId(1), SuperblockId(2)).unwrap(); // intra
        c.link(SuperblockId(1), SuperblockId(3)).unwrap(); // inter
        c
    }

    #[test]
    fn occupancy_chart_lists_units_and_totals() {
        let chart = occupancy_chart(&sample_cache());
        assert!(chart.contains("170 / 200 bytes in 3 blocks"));
        assert!(chart.contains("u0"));
        assert!(chart.contains("u1"));
        assert!(chart.contains('#'));
    }

    #[test]
    fn occupancy_chart_collapses_per_superblock_orgs() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 10_000).unwrap();
        for i in 0..40 {
            ins(&mut c, i, 100);
        }
        let chart = occupancy_chart(&c);
        assert!(chart.contains("per-superblock units"));
    }

    #[test]
    fn dot_output_marks_inter_unit_links_red() {
        let dot = link_graph_dot(&sample_cache());
        assert!(dot.starts_with("digraph code_cache {"));
        assert!(dot.contains("subgraph \"cluster_u0\""));
        assert!(dot.contains("\"sb1\" -> \"sb2\";"), "intra link plain");
        assert!(
            dot.contains("\"sb1\" -> \"sb3\" [color=red, penwidth=2];"),
            "inter link highlighted"
        );
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_output_on_empty_cache_is_valid() {
        let c = CodeCache::with_granularity(Granularity::Flush, 100).unwrap();
        let dot = link_graph_dot(&c);
        assert!(dot.contains("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn self_links_are_never_inter_unit_in_dot() {
        let mut c = CodeCache::with_granularity(Granularity::Superblock, 100).unwrap();
        ins(&mut c, 7, 50);
        c.link(SuperblockId(7), SuperblockId(7)).unwrap();
        let dot = link_graph_dot(&c);
        assert!(dot.contains("\"sb7\" -> \"sb7\";"));
        assert!(!dot.contains("red"));
    }
}
