//! Concurrent-serving conformance (ISSUE 6 acceptance criteria).
//!
//! 1. One tenant on a [`ConcurrentSession`] is event-stream
//!    byte-identical to a bare [`ShardedCache`] of the same geometry —
//!    for all eight organizations and shard counts {1, 2, 4}
//!    ([`testutil::assert_sessions_equivalent`] checks streams,
//!    summaries, statistics and link censuses step by step).
//! 2. In an N-tenant, T-thread run, **every tenant's** event stream,
//!    statistics and link census are byte-identical to that tenant
//!    running alone single-threaded on its own sharded cache — for all
//!    eight organizations, shard counts {1, 2, 4} and T ∈ {1, 2, 4}.
//!
//! Set `CCE_TEST_THREADS=<T>` to pin part 2 to a single thread count
//! (CI runs the suite at both 1 and 4).

use cce_core::testutil::assert_sessions_equivalent;
use cce_core::{
    AdaptiveUnits, AffinityUnits, CacheError, CacheOrg, CacheSession, CodeCache, ConcurrentSession,
    EventBuffer, FineFifo, Generational, InsertRequest, LruCache, OrgFactory, PreemptiveFlush,
    ShardedCache, SuperblockId, TenantConfig, TenantId, UnitFifo,
};

const ORGS: [&str; 8] = [
    "unit_fifo(1)",
    "unit_fifo(8)",
    "fine_fifo",
    "lru",
    "preemptive",
    "adaptive",
    "affinity",
    "generational",
];

const SHARD_COUNTS: [u32; 3] = [1, 2, 4];
const CAPACITY: u64 = 2048;
const TENANTS: u32 = 4;

fn org_factory(kind: &'static str) -> OrgFactory {
    Box::new(move |c| {
        Ok(match kind {
            "unit_fifo(1)" => Box::new(UnitFifo::new(c, 1)?) as Box<dyn CacheOrg>,
            "unit_fifo(8)" => Box::new(UnitFifo::new(c, 8)?),
            "fine_fifo" => Box::new(FineFifo::new(c)?),
            "lru" => Box::new(LruCache::new(c)?),
            "preemptive" => Box::new(PreemptiveFlush::new(c)?),
            "adaptive" => Box::new(AdaptiveUnits::new(c, 4, 1, 64)?),
            "affinity" => Box::new(AffinityUnits::new(c, 4)?),
            "generational" => Box::new(Generational::new(c)?),
            other => panic!("unknown organization {other}"),
        })
    })
}

/// A solo sharded cache with the exact same per-shard organizations a
/// tenant's lanes get.
fn solo_sharded(kind: &'static str, shards: u32) -> ShardedCache {
    let factory = org_factory(kind);
    let caches = cce_core::shard::shard_capacities(CAPACITY, shards)
        .into_iter()
        .map(|c| CodeCache::new(factory(c).unwrap()))
        .collect();
    ShardedCache::new(caches).unwrap()
}

fn concurrent(kind: &'static str, tenants: u32, shards: u32) -> ConcurrentSession {
    let configs = (0..tenants)
        .map(|_| TenantConfig::new(CAPACITY, org_factory(kind)))
        .collect();
    ConcurrentSession::new(configs, shards, None).unwrap()
}

#[test]
fn one_tenant_is_byte_identical_to_a_sharded_cache() {
    for kind in ORGS {
        for shards in SHARD_COUNTS {
            let session = concurrent(kind, 1, shards);
            let mut tenant = session.tenant(TenantId(0));
            let mut solo = solo_sharded(kind, shards);
            assert_sessions_equivalent(&mut tenant, &mut solo, 500);
        }
    }
}

/// Deterministic per-tenant workload, seeded by tenant index: inserts
/// with hints, chains, and a final flush — every settled event lands in
/// `buf` in order.
fn drive<S: CacheSession>(session: &mut S, seed: u64, buf: &mut EventBuffer) {
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (seed.wrapping_mul(0x0100_0000_01b3) | 1);
    let mut last: Option<SuperblockId> = None;
    for _ in 0..800 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let id = SuperblockId(rng % 53);
        let size = 24 + ((rng >> 9) % 101) as u32;
        let hint = if rng & 0x40 != 0 { last } else { None };
        match session.access_or_insert(InsertRequest::new(id, size).with_hint(hint), buf) {
            Ok(_) | Err(CacheError::BlockTooLarge { .. }) => {}
            Err(e) => panic!("unexpected cache error: {e}"),
        }
        if rng & 0x3 == 0 {
            if let Some(from) = last {
                if from != id && session.is_resident(from) && session.is_resident(id) {
                    session.link(from, id).unwrap();
                }
            }
        }
        last = Some(id);
    }
    session.flush(buf);
}

fn thread_counts() -> Vec<usize> {
    match std::env::var("CCE_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CCE_TEST_THREADS must be an integer")],
        Err(_) => vec![1, 2, 4],
    }
}

#[test]
fn every_tenant_stream_matches_its_solo_run() {
    for threads in thread_counts() {
        for kind in ORGS {
            for shards in SHARD_COUNTS {
                let session = concurrent(kind, TENANTS, shards);
                // Thread j serves tenants j, j+T, …; each records its
                // tenants' settled streams in private buffers.
                let mut streams: Vec<(u32, EventBuffer)> = std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..threads)
                        .map(|j| {
                            let session = &session;
                            scope.spawn(move || {
                                let mut out = Vec::new();
                                let mut t = j as u32;
                                while t < TENANTS {
                                    let mut tenant = session.tenant(TenantId(t));
                                    let mut buf = EventBuffer::new();
                                    drive(&mut tenant, u64::from(t), &mut buf);
                                    out.push((t, buf));
                                    t += threads as u32;
                                }
                                out
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("worker panicked"))
                        .collect()
                });
                streams.sort_by_key(|(t, _)| *t);
                assert_eq!(streams.len(), TENANTS as usize);
                for (t, buf) in streams {
                    let mut solo = solo_sharded(kind, shards);
                    let mut solo_buf = EventBuffer::new();
                    drive(&mut solo, u64::from(t), &mut solo_buf);
                    let label = format!("{kind}/shards={shards}/threads={threads}/tenant={t}");
                    assert_eq!(
                        buf.events(),
                        solo_buf.events(),
                        "{label}: event streams diverged"
                    );
                    let tenant = session.tenant(TenantId(t));
                    assert_eq!(
                        tenant.stats_snapshot(),
                        solo.stats_snapshot(),
                        "{label}: statistics diverged"
                    );
                    assert_eq!(
                        tenant.link_census(),
                        solo.link_census(),
                        "{label}: link censuses diverged"
                    );
                }
            }
        }
    }
}
