//! Legacy-shim vs event-sink equivalence.
//!
//! For every organization, the same seeded random insert/access/link
//! sequence is driven through two identically configured caches — one via
//! the legacy [`CodeCache::insert_hinted`] shim (owned `InsertReport`s),
//! one via [`CodeCache::insert_with_events`] (streamed into a reusable
//! buffer) — and the eviction sequences, byte totals and final
//! [`cce_core::CacheStats`] must match exactly.
//!
//! Both entry points are now `#[deprecated]` shims over
//! [`CodeCache::insert_request`]; this suite is their byte-identical
//! equivalence guarantee, so it calls them on purpose.
#![allow(deprecated)]

use cce_core::{
    AdaptiveUnits, AffinityUnits, CacheEvent, CacheOrg, CodeCache, EventBuffer, FineFifo,
    Generational, InsertReport, LruCache, PreemptiveFlush, SuperblockId, UnitFifo,
};
use cce_util::{Rng, StdRng};

type OrgPair = (&'static str, Box<dyn CacheOrg>, Box<dyn CacheOrg>);

fn all_orgs(capacity: u64) -> Vec<OrgPair> {
    vec![
        (
            "unit_fifo(1)",
            Box::new(UnitFifo::new(capacity, 1).unwrap()),
            Box::new(UnitFifo::new(capacity, 1).unwrap()),
        ),
        (
            "unit_fifo(8)",
            Box::new(UnitFifo::new(capacity, 8).unwrap()),
            Box::new(UnitFifo::new(capacity, 8).unwrap()),
        ),
        (
            "fine_fifo",
            Box::new(FineFifo::new(capacity).unwrap()),
            Box::new(FineFifo::new(capacity).unwrap()),
        ),
        (
            "lru",
            Box::new(LruCache::new(capacity).unwrap()),
            Box::new(LruCache::new(capacity).unwrap()),
        ),
        (
            "preemptive",
            Box::new(PreemptiveFlush::new(capacity).unwrap()),
            Box::new(PreemptiveFlush::new(capacity).unwrap()),
        ),
        (
            "adaptive",
            Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).unwrap()),
            Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).unwrap()),
        ),
        (
            "affinity",
            Box::new(AffinityUnits::new(capacity, 4).unwrap()),
            Box::new(AffinityUnits::new(capacity, 4).unwrap()),
        ),
        (
            "generational",
            Box::new(Generational::new(capacity).unwrap()),
            Box::new(Generational::new(capacity).unwrap()),
        ),
    ]
}

#[test]
fn legacy_and_event_paths_are_equivalent_for_every_org() {
    for (name, legacy_org, evented_org) in all_orgs(1024) {
        let mut legacy = CodeCache::new(legacy_org);
        let mut evented = CodeCache::new(evented_org);
        let mut rng = StdRng::seed_from_u64(0xEC0);
        let mut buf = EventBuffer::new();
        for step in 0..600u32 {
            let id = SuperblockId(rng.gen_range(0..48u64));
            let size = rng.gen_range(16..128u32);
            let partner = rng
                .gen_bool(0.3)
                .then(|| SuperblockId(rng.gen_range(0..48u64)))
                .filter(|p| legacy.is_resident(*p));
            let (a, b) = (legacy.access(id), evented.access(id));
            assert_eq!(a, b, "{name}: access diverged at step {step}");
            if a.is_miss() {
                let report = legacy
                    .insert_hinted(id, size, partner)
                    .unwrap_or_else(|e| panic!("{name}: legacy insert failed: {e}"));
                buf.clear();
                let summary = evented
                    .insert_with_events(id, size, partner, &mut buf)
                    .unwrap_or_else(|e| panic!("{name}: evented insert failed: {e}"));
                // The settled stream reassembles into the legacy report:
                // identical eviction sequences, unlink counts, byte totals.
                let rebuilt = InsertReport::from_events(buf.events());
                assert_eq!(report, rebuilt, "{name}: reports diverged at step {step}");
                // The compact summary agrees with both.
                assert_eq!(summary.padding, report.padding);
                assert_eq!(summary.evictions as usize, report.evictions.len());
                assert_eq!(
                    summary.bytes_evicted,
                    report.evictions.iter().map(|e| e.bytes).sum::<u64>(),
                    "{name}: byte totals diverged at step {step}"
                );
                assert_eq!(
                    summary.links_unlinked,
                    report
                        .evictions
                        .iter()
                        .flat_map(|e| &e.unlinked)
                        .map(|&(_, n)| u64::from(n))
                        .sum::<u64>()
                );
                // Event-stream invariants on the settled stream.
                let mut depth = 0i32;
                for &ev in buf.events() {
                    match ev {
                        CacheEvent::EvictionBegin => depth += 1,
                        CacheEvent::EvictionEnd { .. } => depth -= 1,
                        _ => {}
                    }
                    assert!((0..=1).contains(&depth), "{name}: malformed nesting");
                }
                assert_eq!(depth, 0, "{name}: unbalanced EvictionBegin/End");
            }
            if rng.gen_bool(0.4) {
                let to = SuperblockId(rng.gen_range(0..48u64));
                if legacy.is_resident(id) && legacy.is_resident(to) {
                    let (x, y) = (legacy.link(id, to).unwrap(), evented.link(id, to).unwrap());
                    assert_eq!(x, y, "{name}: link outcome diverged");
                }
            }
            assert_eq!(legacy.used(), evented.used(), "{name}: usage diverged");
        }
        assert_eq!(
            legacy.stats(),
            evented.stats(),
            "{name}: final statistics diverged"
        );
        assert_eq!(
            legacy.org().resident_entries(),
            evented.org().resident_entries(),
            "{name}: resident sets diverged"
        );
    }
}
