//! Core-vs-trait equivalence on the settled event stream.
//!
//! For every organization, the same seeded random insert/access/link
//! sequence is driven through two identically configured caches — one
//! via the bare [`CodeCache::insert_request`] core, one through the
//! [`CacheSession`] trait the serving layers use — and the event
//! streams, their [`InsertReport`] reassembly, the compact summaries and
//! the final [`cce_core::CacheStats`] must match exactly. This is the
//! guarantee that let the legacy `#[deprecated]` insert shims be
//! deleted: every surviving entry point is the same core.

use cce_core::{
    AdaptiveUnits, AffinityUnits, CacheEvent, CacheOrg, CacheSession, CodeCache, EventBuffer,
    FineFifo, Generational, InsertReport, InsertRequest, LruCache, PreemptiveFlush, SuperblockId,
    UnitFifo,
};
use cce_util::{Rng, StdRng};

type OrgPair = (&'static str, Box<dyn CacheOrg>, Box<dyn CacheOrg>);

fn all_orgs(capacity: u64) -> Vec<OrgPair> {
    vec![
        (
            "unit_fifo(1)",
            Box::new(UnitFifo::new(capacity, 1).unwrap()),
            Box::new(UnitFifo::new(capacity, 1).unwrap()),
        ),
        (
            "unit_fifo(8)",
            Box::new(UnitFifo::new(capacity, 8).unwrap()),
            Box::new(UnitFifo::new(capacity, 8).unwrap()),
        ),
        (
            "fine_fifo",
            Box::new(FineFifo::new(capacity).unwrap()),
            Box::new(FineFifo::new(capacity).unwrap()),
        ),
        (
            "lru",
            Box::new(LruCache::new(capacity).unwrap()),
            Box::new(LruCache::new(capacity).unwrap()),
        ),
        (
            "preemptive",
            Box::new(PreemptiveFlush::new(capacity).unwrap()),
            Box::new(PreemptiveFlush::new(capacity).unwrap()),
        ),
        (
            "adaptive",
            Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).unwrap()),
            Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).unwrap()),
        ),
        (
            "affinity",
            Box::new(AffinityUnits::new(capacity, 4).unwrap()),
            Box::new(AffinityUnits::new(capacity, 4).unwrap()),
        ),
        (
            "generational",
            Box::new(Generational::new(capacity).unwrap()),
            Box::new(Generational::new(capacity).unwrap()),
        ),
    ]
}

#[test]
fn core_and_trait_paths_are_equivalent_for_every_org() {
    for (name, core_org, trait_org) in all_orgs(1024) {
        let mut core = CodeCache::new(core_org);
        let mut traited = CodeCache::new(trait_org);
        let mut rng = StdRng::seed_from_u64(0xEC0);
        let mut core_buf = EventBuffer::new();
        let mut trait_buf = EventBuffer::new();
        for step in 0..600u32 {
            let id = SuperblockId(rng.gen_range(0..48u64));
            let size = rng.gen_range(16..128u32);
            let partner = rng
                .gen_bool(0.3)
                .then(|| SuperblockId(rng.gen_range(0..48u64)))
                .filter(|p| core.is_resident(*p));
            let req = InsertRequest::new(id, size).with_hint(partner);
            let access = core.access(id);
            trait_buf.clear();
            let outcome = traited
                .access_or_insert(req, &mut trait_buf)
                .unwrap_or_else(|e| panic!("{name}: trait insert failed: {e}"));
            assert_eq!(access, outcome.access, "{name}: access diverged at {step}");
            if access.is_miss() {
                core_buf.clear();
                let summary = core
                    .insert_request(req, &mut core_buf)
                    .unwrap_or_else(|e| panic!("{name}: core insert failed: {e}"));
                // Byte-identical settled streams from both entry points.
                assert_eq!(
                    core_buf.events(),
                    trait_buf.events(),
                    "{name}: event streams diverged at step {step}"
                );
                assert_eq!(Some(summary), outcome.inserted);
                // The settled stream reassembles into the owned report:
                // identical eviction sequences, unlink counts, byte totals.
                let report = InsertReport::from_events(core_buf.events());
                assert_eq!(summary.padding, report.padding);
                assert_eq!(summary.evictions as usize, report.evictions.len());
                assert_eq!(
                    summary.bytes_evicted,
                    report.evictions.iter().map(|e| e.bytes).sum::<u64>(),
                    "{name}: byte totals diverged at step {step}"
                );
                assert_eq!(
                    summary.links_unlinked,
                    report
                        .evictions
                        .iter()
                        .flat_map(|e| &e.unlinked)
                        .map(|&(_, n)| u64::from(n))
                        .sum::<u64>()
                );
                // Event-stream invariants on the settled stream.
                let mut depth = 0i32;
                for &ev in core_buf.events() {
                    match ev {
                        CacheEvent::EvictionBegin => depth += 1,
                        CacheEvent::EvictionEnd { .. } => depth -= 1,
                        _ => {}
                    }
                    assert!((0..=1).contains(&depth), "{name}: malformed nesting");
                }
                assert_eq!(depth, 0, "{name}: unbalanced EvictionBegin/End");
            } else {
                assert!(outcome.inserted.is_none());
                assert!(trait_buf.events().is_empty(), "{name}: a hit emits nothing");
            }
            if rng.gen_bool(0.4) {
                let to = SuperblockId(rng.gen_range(0..48u64));
                if core.is_resident(id) && core.is_resident(to) {
                    let (x, y) = (core.link(id, to).unwrap(), traited.link(id, to).unwrap());
                    assert_eq!(x, y, "{name}: link outcome diverged");
                }
            }
            assert_eq!(core.used(), traited.used(), "{name}: usage diverged");
        }
        assert_eq!(
            core.stats(),
            traited.stats(),
            "{name}: final statistics diverged"
        );
        assert_eq!(
            core.org().resident_entries(),
            traited.org().resident_entries(),
            "{name}: resident sets diverged"
        );
    }
}
