//! Interleaving stress for the `ConcurrentCache` lock paths.
//!
//! The lock-graph lint proves the hierarchy **arbiter → tenant
//! (ascending) → shard (ascending)** is acyclic on every static call
//! path (its model is cross-checked against this very file's subject
//! in `crates/analyze/tests/golden.rs`,
//! `lock_model_matches_the_real_concurrent_cache`). This test attacks
//! the same property dynamically: the arbiter's review runs every
//! [`REVIEW_PERIOD`] accesses — so the full three-class descent
//! executes hundreds of times per run — while every thread hammers
//! accesses, cross-shard links (driving `lock_shard_pair` through both
//! of its branch orders) and flushes. A deadlock would show up as a
//! watchdog timeout here rather than a hung CI job.
//!
//! Workloads are seed-pinned xorshift streams, and the thread sweep is
//! pinned with `CCE_TEST_THREADS=<T>` exactly as in
//! `concurrent_conformance.rs` (CI runs 1 and 4).

use std::sync::mpsc;
use std::time::Duration;

use cce_core::{
    ArbiterConfig, CacheError, CacheOrg, CacheSession, ConcurrentSession, EventBuffer,
    InsertRequest, LruCache, OrgFactory, SuperblockId, TenantConfig, TenantId,
};

/// Per-tenant byte budget.
const CAPACITY: u64 = 2048;
/// Global accesses between arbiter reviews — tiny, so reviews fire
/// continuously under contention.
const REVIEW_PERIOD: u64 = 32;
/// Accesses per serving thread.
const ACCESSES: u64 = 2_000;
/// Generous bound for one thread's workload; only a lost lock ever
/// gets near it.
const WATCHDOG: Duration = Duration::from_secs(120);

fn factory() -> OrgFactory {
    Box::new(|c| Ok(Box::new(LruCache::new(c)?) as Box<dyn CacheOrg>))
}

fn arbiter() -> ArbiterConfig {
    ArbiterConfig {
        review_period: REVIEW_PERIOD,
        ..ArbiterConfig::default()
    }
}

fn session(tenants: usize, shards: u32) -> ConcurrentSession {
    let configs = (0..tenants)
        .map(|_| TenantConfig::new(CAPACITY, factory()))
        .collect();
    ConcurrentSession::new(configs, shards, Some(arbiter())).expect("geometry is valid")
}

fn thread_counts() -> Vec<usize> {
    match std::env::var("CCE_TEST_THREADS") {
        Ok(v) => vec![v.parse().expect("CCE_TEST_THREADS must be an integer")],
        Err(_) => vec![1, 2, 4],
    }
}

/// Seed-pinned workload over a wide id range so consecutive ids land on
/// different shards: accesses with occasional hints, links between the
/// last two touched blocks (both shard orders occur), periodic flushes.
fn drive<S: CacheSession>(s: &mut S, seed: u64, buf: &mut EventBuffer) {
    let mut rng = 0x9e37_79b9_7f4a_7c15u64 ^ (seed.wrapping_mul(0x0100_0000_01b3) | 1);
    let mut last: Option<SuperblockId> = None;
    for step in 0..ACCESSES {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let id = SuperblockId(rng % 97);
        let size = 24 + ((rng >> 9) % 101) as u32;
        let hint = if rng & 0x40 != 0 { last } else { None };
        match s.access_or_insert(InsertRequest::new(id, size).with_hint(hint), buf) {
            Ok(_) | Err(CacheError::BlockTooLarge { .. }) => {}
            Err(e) => panic!("unexpected cache error: {e}"),
        }
        if rng & 0x3 == 0 {
            if let Some(from) = last {
                if from != id && s.is_resident(from) && s.is_resident(id) {
                    s.link(from, id).expect("both endpoints are resident");
                }
            }
        }
        if step % 512 == 511 {
            s.flush(buf);
        }
        last = Some(id);
    }
    s.flush(buf);
}

#[test]
fn arbiter_reviews_interleave_with_serving_without_deadlock() {
    for threads in thread_counts() {
        for shards in [2u32, 4] {
            let sess = session(threads, shards);
            let (tx, rx) = mpsc::channel();
            let mut workers = Vec::new();
            for t in 0..threads {
                let mut tenant = sess.tenant(TenantId(t as u32));
                let tx = tx.clone();
                workers.push(std::thread::spawn(move || {
                    let mut buf = EventBuffer::new();
                    drive(&mut tenant, 0xC0FF_EE00 | t as u64, &mut buf);
                    tx.send(t).expect("main thread is waiting");
                    buf.events().len()
                }));
            }
            drop(tx);
            for _ in 0..threads {
                rx.recv_timeout(WATCHDOG).unwrap_or_else(|_| {
                    panic!(
                        "watchdog: a serving thread stalled \
                         ({threads} threads, {shards} shards) — possible deadlock"
                    )
                });
            }
            for w in workers {
                assert!(
                    w.join().expect("worker panicked") > 0,
                    "events were settled"
                );
            }

            // The arbiter really ran, and every decision conserved the
            // total budget while respecting the per-tenant floor.
            let total: u64 = CAPACITY * threads as u64;
            let cfg = arbiter();
            for d in sess.decisions() {
                assert_eq!(
                    d.capacities.iter().sum::<u64>(),
                    total,
                    "re-partitioning must conserve total capacity"
                );
                assert!(d.capacities.iter().all(|&c| c >= cfg.floor_bytes));
                assert!(d.bytes_moved > 0);
            }
            let assigned: u64 = (0..threads)
                .map(|t| sess.tenant_capacity(TenantId(t as u32)))
                .sum();
            assert_eq!(assigned, total, "final budgets sum to the initial total");
        }
    }
}

#[test]
fn single_threaded_interleave_is_reproducible() {
    // With one serving thread the whole run — arbiter decisions
    // included — must be bit-reproducible from the seed: if the lock
    // paths leaked any scheduling dependence into the serving results,
    // identical seeds would diverge.
    let run = || {
        let sess = session(1, 4);
        let mut tenant = sess.tenant(TenantId(0));
        let mut buf = EventBuffer::new();
        drive(&mut tenant, 0x00DE_C0DE, &mut buf);
        (buf.events().to_vec(), sess.decisions())
    };
    let (events_a, decisions_a) = run();
    let (events_b, decisions_b) = run();
    assert_eq!(events_a, events_b, "event streams must be identical");
    assert_eq!(
        decisions_a, decisions_b,
        "arbiter decisions must be identical"
    );
}
