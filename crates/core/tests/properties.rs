//! Property-based tests over the code-cache invariants.
//!
//! These drive random access/insert/link workloads through every cache
//! organization and assert the bookkeeping identities that the paper's
//! overhead models depend on (if these break, every figure downstream is
//! garbage).

use cce_core::{CodeCache, Granularity, SuperblockId};
use proptest::prelude::*;

/// A randomly generated workload step.
#[derive(Debug, Clone)]
enum Op {
    /// Touch superblock `id` of `size` bytes: access, insert on miss.
    Touch { id: u64, size: u32 },
    /// Try to chain `from → to` (ignored unless both resident).
    Link { from: u64, to: u64 },
}

fn op_strategy(max_id: u64, max_size: u32) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..max_id, 1..=max_size).prop_map(|(id, size)| Op::Touch { id, size }),
        1 => (0..max_id, 0..max_id).prop_map(|(from, to)| Op::Link { from, to }),
    ]
}

fn granularity_strategy() -> impl Strategy<Value = Granularity> {
    prop_oneof![
        Just(Granularity::Flush),
        (1u32..=6).prop_map(|p| Granularity::units(1 << p)),
        Just(Granularity::Superblock),
    ]
}

/// Runs `ops` against a fresh cache, asserting step invariants, and
/// returns the cache for end-state checks.
fn run_workload(g: Granularity, capacity: u64, ops: &[Op]) -> CodeCache {
    let mut cache = CodeCache::with_granularity(g, capacity).expect("valid geometry");
    // Mirror of truth: per-id sizes used, to keep sizes stable per id.
    for op in ops {
        match *op {
            Op::Touch { id, size } => {
                let id = SuperblockId(id);
                let r = cache.access(id);
                if r.is_miss() {
                    match cache.insert(id, size) {
                        Ok(_) => {}
                        Err(cce_core::CacheError::BlockTooLarge { .. }) => continue,
                        Err(e) => panic!("unexpected insert failure: {e}"),
                    }
                    assert!(cache.is_resident(id), "inserted block must be resident");
                }
            }
            Op::Link { from, to } => {
                let from = SuperblockId(from);
                let to = SuperblockId(to);
                if cache.is_resident(from) && cache.is_resident(to) {
                    cache.link(from, to).expect("both endpoints are resident");
                } else {
                    assert!(cache.link(from, to).is_err());
                }
            }
        }
        assert!(cache.used() <= cache.capacity(), "over-full cache");
    }
    cache
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_identities_hold(
        g in granularity_strategy(),
        ops in prop::collection::vec(op_strategy(64, 120), 1..400),
    ) {
        let cache = run_workload(g, 512, &ops);
        let s = cache.stats();
        // Access identity.
        prop_assert_eq!(s.accesses, s.hits + s.misses);
        prop_assert_eq!(s.misses, s.cold_misses + s.capacity_misses);
        // Byte conservation: everything inserted is either resident or was
        // evicted.
        prop_assert_eq!(s.bytes_inserted, s.bytes_evicted + cache.used());
        // Block conservation.
        prop_assert_eq!(s.insertions, s.blocks_evicted + cache.resident_count() as u64);
        // Link conservation: created = unlinked + dropped free + live.
        prop_assert_eq!(
            s.links_created,
            s.links_unlinked + s.links_dropped_free + cache.link_graph().link_count()
        );
        // High-water marks bound current state.
        prop_assert!(s.high_water_bytes <= cache.capacity());
        prop_assert!(cache.used() <= s.high_water_bytes || s.insertions == 0);
    }

    #[test]
    fn flush_and_one_unit_are_equivalent(
        ops in prop::collection::vec(op_strategy(48, 100), 1..300),
    ) {
        let a = run_workload(Granularity::Flush, 400, &ops);
        let b = run_workload(Granularity::units(1), 400, &ops);
        prop_assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn flush_policy_never_unlinks(
        ops in prop::collection::vec(op_strategy(48, 100), 1..300),
    ) {
        let cache = run_workload(Granularity::Flush, 400, &ops);
        prop_assert_eq!(cache.stats().unlink_operations, 0);
        prop_assert_eq!(cache.stats().inter_unit_links_created, 0);
    }

    #[test]
    fn finer_granularity_never_misses_more_on_scan_free_reuse(
        seed_ops in prop::collection::vec((0u64..32, 40u32..80), 50..200),
    ) {
        // A repeated-touch workload (every block touched twice in a row):
        // fine FIFO must do at least as well as FLUSH on misses, because
        // back-to-back touches always hit under any policy, and FIFO keeps
        // a superset of recently inserted blocks compared to a flushed
        // cache right after a flush.
        let mut ops = Vec::new();
        for &(id, size) in &seed_ops {
            ops.push(Op::Touch { id, size });
            ops.push(Op::Touch { id, size });
        }
        let coarse = run_workload(Granularity::Flush, 256, &ops);
        let fine = run_workload(Granularity::Superblock, 256, &ops);
        // Immediate-reuse hits exist under both.
        prop_assert!(fine.stats().hits >= seed_ops.len() as u64);
        prop_assert!(coarse.stats().hits >= seed_ops.len() as u64);
    }

    #[test]
    fn eviction_invocations_monotone_in_granularity(
        seed_ops in prop::collection::vec((0u64..64, 30u32..60), 100..300),
    ) {
        // Coarser granularities must invoke eviction at most as often as
        // the finest FIFO on the same workload (the premise of Figure 8).
        let ops: Vec<Op> = seed_ops
            .iter()
            .map(|&(id, size)| Op::Touch { id, size })
            .collect();
        let fine = run_workload(Granularity::Superblock, 512, &ops);
        for g in [Granularity::Flush, Granularity::units(4), Granularity::units(16)] {
            let c = run_workload(g, 512, &ops);
            prop_assert!(
                c.stats().eviction_invocations <= fine.stats().eviction_invocations,
                "{} invoked {} > fine {}",
                g,
                c.stats().eviction_invocations,
                fine.stats().eviction_invocations
            );
        }
    }

    #[test]
    fn resident_blocks_enumeration_matches_count(
        g in granularity_strategy(),
        ops in prop::collection::vec(op_strategy(64, 120), 1..200),
    ) {
        let cache = run_workload(g, 512, &ops);
        let blocks = cache.org().resident_blocks();
        prop_assert_eq!(blocks.len(), cache.resident_count());
        for b in blocks {
            prop_assert!(cache.is_resident(b));
            prop_assert!(cache.unit_of(b).is_some());
        }
    }
}

#[test]
fn lru_org_upholds_identities_too() {
    use cce_core::LruCache;
    let mut cache = CodeCache::new(Box::new(LruCache::new(512).unwrap()));
    for i in 0..200u64 {
        let id = SuperblockId(i % 37);
        let size = 20 + (i % 7) as u32 * 13;
        if cache.access(id).is_miss() {
            cache.insert(id, size).unwrap();
        }
        if i % 3 == 0 {
            let to = SuperblockId((i + 5) % 37);
            if cache.is_resident(id) && cache.is_resident(to) {
                cache.link(id, to).unwrap();
            }
        }
    }
    let s = cache.stats();
    assert_eq!(s.accesses, s.hits + s.misses);
    assert_eq!(s.bytes_inserted, s.bytes_evicted + cache.used());
    assert_eq!(
        s.links_created,
        s.links_unlinked + s.links_dropped_free + cache.link_graph().link_count()
    );
}

mod extension_orgs {
    //! The accounting identities, re-checked over the extension
    //! organizations (affinity placement, generational, preemptive,
    //! adaptive) with randomized workloads and hinted insertions.

    use cce_core::{
        AdaptiveUnits, AffinityUnits, CacheOrg, CodeCache, Generational, PreemptiveFlush,
        SuperblockId,
    };
    use proptest::prelude::*;

    #[derive(Debug, Clone)]
    enum Op {
        Touch { id: u64, size: u32, partner: Option<u64> },
        Link { from: u64, to: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => (0u64..48, 16u32..96, prop::option::of(0u64..48))
                .prop_map(|(id, size, partner)| Op::Touch { id, size, partner }),
            1 => (0u64..48, 0u64..48).prop_map(|(from, to)| Op::Link { from, to }),
        ]
    }

    fn org_strategy() -> impl Strategy<Value = u8> {
        0u8..4
    }

    fn build(kind: u8, capacity: u64) -> CodeCache {
        let org: Box<dyn CacheOrg> = match kind {
            0 => Box::new(AffinityUnits::new(capacity, 4).expect("geometry")),
            1 => Box::new(Generational::new(capacity).expect("geometry")),
            2 => Box::new(PreemptiveFlush::new(capacity).expect("geometry")),
            _ => Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).expect("geometry")),
        };
        CodeCache::new(org)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn extension_orgs_uphold_accounting(
            kind in org_strategy(),
            ops in prop::collection::vec(op_strategy(), 1..300),
        ) {
            let mut cache = build(kind, 640);
            for op in &ops {
                match *op {
                    Op::Touch { id, size, partner } => {
                        let id = SuperblockId(id);
                        if cache.access(id).is_miss() {
                            let hint = partner.map(SuperblockId).filter(|p| cache.is_resident(*p));
                            match cache.insert_hinted(id, size, hint) {
                                Ok(_) => prop_assert!(cache.is_resident(id)),
                                Err(cce_core::CacheError::BlockTooLarge { .. }) => {}
                                Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
                            }
                        }
                    }
                    Op::Link { from, to } => {
                        let (from, to) = (SuperblockId(from), SuperblockId(to));
                        if cache.is_resident(from) && cache.is_resident(to) {
                            cache.link(from, to).expect("resident endpoints");
                        }
                    }
                }
                prop_assert!(cache.used() <= cache.capacity());
            }
            let s = cache.stats();
            prop_assert_eq!(s.accesses, s.hits + s.misses);
            prop_assert_eq!(s.misses, s.cold_misses + s.capacity_misses);
            prop_assert_eq!(s.bytes_inserted, s.bytes_evicted + cache.used());
            prop_assert_eq!(s.insertions, s.blocks_evicted + cache.resident_count() as u64);
            prop_assert_eq!(
                s.links_created,
                s.links_unlinked + s.links_dropped_free + cache.link_graph().link_count()
            );
            // Resident enumeration agrees with membership and units exist.
            let entries = cache.org().resident_entries();
            prop_assert_eq!(entries.len(), cache.resident_count());
            for (id, size) in entries {
                prop_assert!(cache.is_resident(id));
                prop_assert!(size > 0);
                prop_assert!(cache.unit_of(id).is_some());
            }
        }

        #[test]
        fn census_never_counts_self_links_as_inter(
            kind in org_strategy(),
            ids in prop::collection::vec(0u64..32, 10..60),
        ) {
            let mut cache = build(kind, 2048);
            for &i in &ids {
                let id = SuperblockId(i);
                if cache.access(id).is_miss() {
                    let _ = cache.insert(id, 64);
                }
                if cache.is_resident(id) {
                    cache.link(id, id).expect("self link on resident block");
                }
            }
            let (_, inter) = cache.link_census();
            // Only self-links were created, so the census must see zero
            // inter-unit links under every organization.
            let only_self = cache
                .link_graph()
                .iter_links()
                .all(|(a, b)| a == b);
            prop_assert!(only_self);
            prop_assert_eq!(inter, 0);
        }
    }
}
