//! Randomized tests over the code-cache invariants.
//!
//! These drive seeded random access/insert/link workloads (deterministic
//! xoshiro256++ streams from `cce-util`, so failures reproduce exactly)
//! through every cache organization and assert the bookkeeping identities
//! that the paper's overhead models depend on (if these break, every
//! figure downstream is garbage).

use cce_core::{CodeCache, Granularity, InsertRequest, NullSink, SuperblockId};
use cce_util::{Rng, StdRng};

/// A randomly generated workload step.
#[derive(Debug, Clone)]
enum Op {
    /// Touch superblock `id` of `size` bytes: access, insert on miss.
    Touch { id: u64, size: u32 },
    /// Try to chain `from → to` (ignored unless both resident).
    Link { from: u64, to: u64 },
}

fn random_ops(rng: &mut StdRng, count: usize, max_id: u64, max_size: u32) -> Vec<Op> {
    (0..count)
        .map(|_| {
            if rng.gen_range(0..5u32) < 4 {
                Op::Touch {
                    id: rng.gen_range(0..max_id),
                    size: rng.gen_range(1..=max_size),
                }
            } else {
                Op::Link {
                    from: rng.gen_range(0..max_id),
                    to: rng.gen_range(0..max_id),
                }
            }
        })
        .collect()
}

fn random_granularity(rng: &mut StdRng) -> Granularity {
    match rng.gen_range(0..3u32) {
        0 => Granularity::Flush,
        1 => Granularity::units(1 << rng.gen_range(1..=6u32)),
        _ => Granularity::Superblock,
    }
}

/// Runs `ops` against a fresh cache, asserting step invariants, and
/// returns the cache for end-state checks.
fn run_workload(g: Granularity, capacity: u64, ops: &[Op]) -> CodeCache {
    let mut cache = CodeCache::with_granularity(g, capacity).expect("valid geometry");
    for op in ops {
        match *op {
            Op::Touch { id, size } => {
                let id = SuperblockId(id);
                let r = cache.access(id);
                if r.is_miss() {
                    match cache.insert_request(InsertRequest::new(id, size), &mut NullSink) {
                        Ok(_) => {}
                        Err(cce_core::CacheError::BlockTooLarge { .. }) => continue,
                        Err(e) => panic!("unexpected insert failure: {e}"),
                    }
                    assert!(cache.is_resident(id), "inserted block must be resident");
                }
            }
            Op::Link { from, to } => {
                let from = SuperblockId(from);
                let to = SuperblockId(to);
                if cache.is_resident(from) && cache.is_resident(to) {
                    cache.link(from, to).expect("both endpoints are resident");
                } else {
                    assert!(cache.link(from, to).is_err());
                }
            }
        }
        assert!(cache.used() <= cache.capacity(), "over-full cache");
    }
    cache
}

#[test]
fn accounting_identities_hold() {
    for seed in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xACC0 + seed);
        let g = random_granularity(&mut rng);
        let count = rng.gen_range(1..400usize);
        let ops = random_ops(&mut rng, count, 64, 120);
        let cache = run_workload(g, 512, &ops);
        let s = cache.stats();
        // Access identity.
        assert_eq!(s.accesses, s.hits + s.misses);
        assert_eq!(s.misses, s.cold_misses + s.capacity_misses);
        // Byte conservation: everything inserted is either resident or was
        // evicted.
        assert_eq!(s.bytes_inserted, s.bytes_evicted + cache.used());
        // Block conservation.
        assert_eq!(
            s.insertions,
            s.blocks_evicted + cache.resident_count() as u64
        );
        // Link conservation: created = unlinked + dropped free + live.
        assert_eq!(
            s.links_created,
            s.links_unlinked + s.links_dropped_free + cache.link_graph().link_count()
        );
        // High-water marks bound current state.
        assert!(s.high_water_bytes <= cache.capacity());
        assert!(cache.used() <= s.high_water_bytes || s.insertions == 0);
    }
}

#[test]
fn flush_and_one_unit_are_equivalent() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xF1 + seed);
        let count = rng.gen_range(1..300usize);
        let ops = random_ops(&mut rng, count, 48, 100);
        let a = run_workload(Granularity::Flush, 400, &ops);
        let b = run_workload(Granularity::units(1), 400, &ops);
        assert_eq!(a.stats(), b.stats());
    }
}

#[test]
fn flush_policy_never_unlinks() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xF2 + seed);
        let count = rng.gen_range(1..300usize);
        let ops = random_ops(&mut rng, count, 48, 100);
        let cache = run_workload(Granularity::Flush, 400, &ops);
        assert_eq!(cache.stats().unlink_operations, 0);
        assert_eq!(cache.stats().inter_unit_links_created, 0);
    }
}

#[test]
fn finer_granularity_never_misses_more_on_scan_free_reuse() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x5CA + seed);
        let count = rng.gen_range(50..200usize);
        // A repeated-touch workload (every block touched twice in a row):
        // back-to-back touches always hit under any policy.
        let mut ops = Vec::new();
        for _ in 0..count {
            let id = rng.gen_range(0..32u64);
            let size = rng.gen_range(40..80u32);
            ops.push(Op::Touch { id, size });
            ops.push(Op::Touch { id, size });
        }
        let coarse = run_workload(Granularity::Flush, 256, &ops);
        let fine = run_workload(Granularity::Superblock, 256, &ops);
        // Immediate-reuse hits exist under both.
        assert!(fine.stats().hits >= count as u64);
        assert!(coarse.stats().hits >= count as u64);
    }
}

#[test]
fn eviction_invocations_monotone_in_granularity() {
    for seed in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0xE111 + seed);
        let count = rng.gen_range(100..300usize);
        // Coarser granularities must invoke eviction at most as often as
        // the finest FIFO on the same workload (the premise of Figure 8).
        let ops: Vec<Op> = (0..count)
            .map(|_| Op::Touch {
                id: rng.gen_range(0..64u64),
                size: rng.gen_range(30..60u32),
            })
            .collect();
        let fine = run_workload(Granularity::Superblock, 512, &ops);
        for g in [
            Granularity::Flush,
            Granularity::units(4),
            Granularity::units(16),
        ] {
            let c = run_workload(g, 512, &ops);
            assert!(
                c.stats().eviction_invocations <= fine.stats().eviction_invocations,
                "{} invoked {} > fine {}",
                g,
                c.stats().eviction_invocations,
                fine.stats().eviction_invocations
            );
        }
    }
}

#[test]
fn resident_blocks_enumeration_matches_count() {
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xE003 + seed);
        let g = random_granularity(&mut rng);
        let count = rng.gen_range(1..200usize);
        let ops = random_ops(&mut rng, count, 64, 120);
        let cache = run_workload(g, 512, &ops);
        let blocks = cache.org().resident_blocks();
        assert_eq!(blocks.len(), cache.resident_count());
        for b in blocks {
            assert!(cache.is_resident(b));
            assert!(cache.unit_of(b).is_some());
        }
    }
}

#[test]
fn lru_org_upholds_identities_too() {
    use cce_core::LruCache;
    let mut cache = CodeCache::new(Box::new(LruCache::new(512).unwrap()));
    for i in 0..200u64 {
        let id = SuperblockId(i % 37);
        let size = 20 + (i % 7) as u32 * 13;
        if cache.access(id).is_miss() {
            cache
                .insert_request(
                    cce_core::InsertRequest::new(id, size),
                    &mut cce_core::NullSink,
                )
                .unwrap();
        }
        if i.is_multiple_of(3) {
            let to = SuperblockId((i + 5) % 37);
            if cache.is_resident(id) && cache.is_resident(to) {
                cache.link(id, to).unwrap();
            }
        }
    }
    let s = cache.stats();
    assert_eq!(s.accesses, s.hits + s.misses);
    assert_eq!(s.bytes_inserted, s.bytes_evicted + cache.used());
    assert_eq!(
        s.links_created,
        s.links_unlinked + s.links_dropped_free + cache.link_graph().link_count()
    );
}

mod extension_orgs {
    //! The accounting identities, re-checked over the extension
    //! organizations (affinity placement, generational, preemptive,
    //! adaptive) with randomized workloads and hinted insertions.

    use cce_core::{
        AdaptiveUnits, AffinityUnits, CacheOrg, CodeCache, Generational, InsertRequest, NullSink,
        PreemptiveFlush, SuperblockId,
    };
    use cce_util::{Rng, StdRng};

    #[derive(Debug, Clone)]
    enum Op {
        Touch {
            id: u64,
            size: u32,
            partner: Option<u64>,
        },
        Link {
            from: u64,
            to: u64,
        },
    }

    fn random_op(rng: &mut StdRng) -> Op {
        if rng.gen_range(0..5u32) < 4 {
            Op::Touch {
                id: rng.gen_range(0..48u64),
                size: rng.gen_range(16..96u32),
                partner: rng.gen_bool(0.5).then(|| rng.gen_range(0..48u64)),
            }
        } else {
            Op::Link {
                from: rng.gen_range(0..48u64),
                to: rng.gen_range(0..48u64),
            }
        }
    }

    fn build(kind: u8, capacity: u64) -> CodeCache {
        let org: Box<dyn CacheOrg> = match kind {
            0 => Box::new(AffinityUnits::new(capacity, 4).expect("geometry")),
            1 => Box::new(Generational::new(capacity).expect("geometry")),
            2 => Box::new(PreemptiveFlush::new(capacity).expect("geometry")),
            _ => Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).expect("geometry")),
        };
        CodeCache::new(org)
    }

    #[test]
    fn extension_orgs_uphold_accounting() {
        for seed in 0..48u64 {
            let mut rng = StdRng::seed_from_u64(0xE07 + seed);
            let kind = rng.gen_range(0..4u32) as u8;
            let count = rng.gen_range(1..300usize);
            let mut cache = build(kind, 640);
            for _ in 0..count {
                match random_op(&mut rng) {
                    Op::Touch { id, size, partner } => {
                        let id = SuperblockId(id);
                        if cache.access(id).is_miss() {
                            let hint = partner.map(SuperblockId).filter(|p| cache.is_resident(*p));
                            let req = InsertRequest::new(id, size).with_hint(hint);
                            match cache.insert_request(req, &mut NullSink) {
                                Ok(_) => assert!(cache.is_resident(id)),
                                Err(cce_core::CacheError::BlockTooLarge { .. }) => {}
                                Err(e) => panic!("unexpected insert failure: {e}"),
                            }
                        }
                    }
                    Op::Link { from, to } => {
                        let (from, to) = (SuperblockId(from), SuperblockId(to));
                        if cache.is_resident(from) && cache.is_resident(to) {
                            cache.link(from, to).expect("resident endpoints");
                        }
                    }
                }
                assert!(cache.used() <= cache.capacity());
            }
            let s = cache.stats();
            assert_eq!(s.accesses, s.hits + s.misses);
            assert_eq!(s.misses, s.cold_misses + s.capacity_misses);
            assert_eq!(s.bytes_inserted, s.bytes_evicted + cache.used());
            assert_eq!(
                s.insertions,
                s.blocks_evicted + cache.resident_count() as u64
            );
            assert_eq!(
                s.links_created,
                s.links_unlinked + s.links_dropped_free + cache.link_graph().link_count()
            );
            // Resident enumeration agrees with membership and units exist.
            let entries = cache.org().resident_entries();
            assert_eq!(entries.len(), cache.resident_count());
            for (id, size) in entries {
                assert!(cache.is_resident(id));
                assert!(size > 0);
                assert!(cache.unit_of(id).is_some());
            }
        }
    }

    #[test]
    fn census_never_counts_self_links_as_inter() {
        for seed in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(0xCE45 + seed);
            let kind = rng.gen_range(0..4u32) as u8;
            let count = rng.gen_range(10..60usize);
            let mut cache = build(kind, 2048);
            for _ in 0..count {
                let id = SuperblockId(rng.gen_range(0..32u64));
                if cache.access(id).is_miss() {
                    let _ = cache.insert_request(InsertRequest::new(id, 64), &mut NullSink);
                }
                if cache.is_resident(id) {
                    cache.link(id, id).expect("self link on resident block");
                }
            }
            let (_, inter) = cache.link_census();
            // Only self-links were created, so the census must see zero
            // inter-unit links under every organization.
            let only_self = cache.link_graph().iter_links().all(|(a, b)| a == b);
            assert!(only_self);
            assert_eq!(inter, 0);
        }
    }
}
