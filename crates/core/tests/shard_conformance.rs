//! Sharding conformance (ISSUE 4 acceptance criteria).
//!
//! 1. A [`ShardedCache`] with **one** shard is event-stream
//!    byte-identical to the bare [`CodeCache`] it wraps — for every one
//!    of the seven organizations ([`testutil::assert_sessions_equivalent`]
//!    checks streams, summaries, statistics and link censuses).
//! 2. Under multi-shard eviction the link population is conserved:
//!    every link ever created is either still live (intra-shard,
//!    cross-shard) or accounted as unlinked / dropped-free.

use cce_core::testutil::assert_sessions_equivalent;
use cce_core::{
    AdaptiveUnits, AffinityUnits, CacheOrg, CacheSession, CodeCache, FineFifo, Generational,
    Granularity, InsertRequest, LruCache, PreemptiveFlush, ShardedCache, SuperblockId, UnitFifo,
};

type OrgPair = (&'static str, Box<dyn CacheOrg>, Box<dyn CacheOrg>);

fn all_orgs(capacity: u64) -> Vec<OrgPair> {
    vec![
        (
            "unit_fifo(1)",
            Box::new(UnitFifo::new(capacity, 1).unwrap()),
            Box::new(UnitFifo::new(capacity, 1).unwrap()),
        ),
        (
            "unit_fifo(8)",
            Box::new(UnitFifo::new(capacity, 8).unwrap()),
            Box::new(UnitFifo::new(capacity, 8).unwrap()),
        ),
        (
            "fine_fifo",
            Box::new(FineFifo::new(capacity).unwrap()),
            Box::new(FineFifo::new(capacity).unwrap()),
        ),
        (
            "lru",
            Box::new(LruCache::new(capacity).unwrap()),
            Box::new(LruCache::new(capacity).unwrap()),
        ),
        (
            "preemptive",
            Box::new(PreemptiveFlush::new(capacity).unwrap()),
            Box::new(PreemptiveFlush::new(capacity).unwrap()),
        ),
        (
            "adaptive",
            Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).unwrap()),
            Box::new(AdaptiveUnits::new(capacity, 4, 1, 64).unwrap()),
        ),
        (
            "affinity",
            Box::new(AffinityUnits::new(capacity, 4).unwrap()),
            Box::new(AffinityUnits::new(capacity, 4).unwrap()),
        ),
        (
            "generational",
            Box::new(Generational::new(capacity).unwrap()),
            Box::new(Generational::new(capacity).unwrap()),
        ),
    ]
}

#[test]
fn single_shard_is_byte_identical_to_a_bare_cache_for_every_org() {
    for (name, bare_org, sharded_org) in all_orgs(1024) {
        let mut bare = CodeCache::new(bare_org);
        let mut sharded =
            ShardedCache::new(vec![CodeCache::new(sharded_org)]).expect("one shard is valid");
        // The driver panics with the org baked into the assertion
        // context via this eprintln-free wrapper: run per-org so a
        // failure names the culprit.
        eprintln!("N=1 equivalence: {name}");
        assert_sessions_equivalent(&mut bare, &mut sharded, 800);
    }
}

#[test]
fn sharded_link_population_is_conserved_under_eviction() {
    for shards in [2u32, 4, 8] {
        for g in [
            Granularity::Flush,
            Granularity::units(4),
            Granularity::Superblock,
        ] {
            let mut cache = ShardedCache::with_granularity(g, 4096, shards).unwrap();
            let mut last: Option<SuperblockId> = None;
            let mut crossings = 0u64;
            for i in 0..2000u64 {
                let id = SuperblockId(i % 61);
                let out = cache
                    .access_or_insert_quiet(InsertRequest::new(id, 32 + (i % 7) as u32 * 16))
                    .expect("in-range insert");
                if out.is_miss() {
                    if let Some(from) = last {
                        if from != id
                            && cache.is_resident(from)
                            && cache.is_resident(id)
                            && cache.link(from, id).expect("both resident")
                            && cache.shard_of(from) != cache.shard_of(id)
                        {
                            crossings += 1;
                        }
                    }
                    last = Some(id);
                }
            }
            let stats = cache.stats_snapshot();
            let (intra, inter) = cache.link_census();
            assert!(stats.links_created > 0, "workload created no links");
            assert!(crossings > 0, "workload never crossed a shard boundary");
            assert_eq!(
                stats.links_created,
                stats.links_unlinked + stats.links_dropped_free + intra + inter,
                "census not conserved at shards={shards} g={g:?}"
            );
            // Flushing everything moves every live link into the
            // unlinked/dropped totals.
            cache.flush_report();
            let stats = cache.stats_snapshot();
            assert_eq!(cache.link_census(), (0, 0));
            assert_eq!(
                stats.links_created,
                stats.links_unlinked + stats.links_dropped_free,
                "flush leaked links at shards={shards} g={g:?}"
            );
        }
    }
}
