//! Steady-state allocation check for the event-driven insert path.
//!
//! A counting global allocator (own test binary, so other tests are not
//! affected) verifies that once the cache's scratch structures are warm,
//! [`cce_core::CodeCache::insert_request`] performs **zero** heap
//! allocations per insertion — the tentpole guarantee of the event
//! pipeline. [`cce_core::InsertRequest`] is `Copy`, so the redesigned
//! entry point inherits the guarantee.

use cce_core::{CodeCache, Granularity, InsertRequest, NullSink, SuperblockId};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Drives a steady churn workload and returns the allocation count over
/// the measured (post-warmup) phase.
fn measure(g: Granularity) -> u64 {
    let mut cache = CodeCache::with_granularity(g, 4096).unwrap();
    // Warm-up: reach steady state. The workload cycles a fixed id
    // universe with fixed sizes so the scratch buffer, the dying set and
    // the organization's internal vectors all reach their high-water
    // capacities.
    let touch = |cache: &mut CodeCache, i: u64| {
        let id = SuperblockId(i % 96);
        let size = 64 + (i % 7) as u32 * 32;
        if cache.access(id).is_miss() {
            cache
                .insert_request(InsertRequest::new(id, size), &mut NullSink)
                .unwrap();
        }
        if i.is_multiple_of(3) {
            let to = SuperblockId((i + 5) % 96);
            if cache.is_resident(id) && cache.is_resident(to) {
                cache.link(id, to).unwrap();
            }
        }
    };
    for i in 0..4000u64 {
        touch(&mut cache, i);
    }
    let before = allocations();
    for i in 4000..8000u64 {
        touch(&mut cache, i);
    }
    allocations() - before
}

#[test]
fn steady_state_inserts_do_not_allocate() {
    for g in [
        Granularity::Flush,
        Granularity::units(8),
        Granularity::Superblock,
    ] {
        let allocs = measure(g);
        // The hot path itself is allocation-free. The link graph's BTree
        // node pool may still grow occasionally on re-linking after an
        // eviction reshuffles the graph shape, so allow a tiny residue
        // rather than exactly zero across 4000 steady-state operations.
        assert!(
            allocs <= 8,
            "{g}: {allocs} allocations in 4000 steady-state inserts"
        );
    }
}

#[test]
fn insert_without_links_is_exactly_allocation_free() {
    // With no link traffic at all, the measured phase must not allocate.
    let mut cache = CodeCache::with_granularity(Granularity::units(8), 4096).unwrap();
    for i in 0..2000u64 {
        let id = SuperblockId(i % 64);
        if cache.access(id).is_miss() {
            cache
                .insert_request(InsertRequest::new(id, 128), &mut NullSink)
                .unwrap();
        }
    }
    let before = allocations();
    for i in 2000..4000u64 {
        let id = SuperblockId(i % 64);
        if cache.access(id).is_miss() {
            cache
                .insert_request(InsertRequest::new(id, 128), &mut NullSink)
                .unwrap();
        }
    }
    assert_eq!(
        allocations() - before,
        0,
        "steady-state insert_request must not touch the heap"
    );
}
