//! Emission of translated superblock code with patchable exit stubs.
//!
//! The cache experiments only need superblock *sizes*, but a credible
//! translator must be able to produce the bytes those sizes describe.
//! [`emit`] lowers a recorded guest path into translated code:
//!
//! * an 8-byte prologue (the guest-context spill slot a real translator
//!   reserves);
//! * the re-encoded guest instructions, inflated to the configured
//!   expansion factor with interleaved padding (standing in for the
//!   address-translation and side-table work real translations add);
//! * one 16-byte **exit stub** per superblock exit: a jump slot that
//!   either holds a patched target address (a chained link) or the
//!   dispatcher sentinel.
//!
//! [`TranslatedCode::patch_stub`] and [`TranslatedCode::unpatch_stub`]
//! are the byte-level operations behind [`cce_core::CodeCache::link`] and
//! the unlink pass of every eviction — the thing Eq. 4 charges for.
//!
//! The emitted byte length equals
//! [`TranslationConfig::translated_size`] *exactly*; a test pins that, so
//! the size model used by every experiment is the size of real output.

use crate::translate::TranslationConfig;
use crate::DbtError;
use cce_tinyvm::encode::encode_instr;
use cce_tinyvm::program::{BlockId, Program};

/// Byte the dispatcher sentinel fills stub slots with.
pub const DISPATCH_SENTINEL: u8 = 0x00;
/// Opcode byte of a patched (chained) stub.
pub const STUB_JMP_OPCODE: u8 = 0xE9;

/// One exit stub within a translated superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExitStub {
    /// Byte offset of the stub within the translated code.
    pub offset: usize,
    /// Patched target address, if chained.
    pub target: Option<u64>,
}

/// Translated superblock code. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslatedCode {
    /// The emitted bytes.
    pub bytes: Vec<u8>,
    /// Exit stubs, in path order.
    stubs: Vec<ExitStub>,
}

impl TranslatedCode {
    /// The exit stubs, in path order.
    #[must_use]
    pub fn stubs(&self) -> &[ExitStub] {
        &self.stubs
    }

    /// True if stub `idx` is patched to a target.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn is_patched(&self, idx: usize) -> bool {
        self.stubs[idx].target.is_some()
    }

    /// Patches stub `idx` to jump directly to `target_addr` (chaining).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn patch_stub(&mut self, idx: usize, target_addr: u64) {
        let stub = &mut self.stubs[idx];
        stub.target = Some(target_addr);
        let off = stub.offset;
        self.bytes[off] = STUB_JMP_OPCODE;
        self.bytes[off + 1..off + 9].copy_from_slice(&target_addr.to_le_bytes());
    }

    /// Reverts stub `idx` to the dispatcher (unlinking — what the
    /// back-pointer table exists to make possible).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn unpatch_stub(&mut self, idx: usize) {
        let stub = &mut self.stubs[idx];
        stub.target = None;
        let off = stub.offset;
        for b in &mut self.bytes[off..off + 9] {
            *b = DISPATCH_SENTINEL;
        }
    }

    /// The patched target of stub `idx`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn stub_target(&self, idx: usize) -> Option<u64> {
        self.stubs[idx].target
    }
}

/// Emits translated code for the recorded `path`.
///
/// # Errors
///
/// Returns [`DbtError::InvalidConfig`] if the translation config shrinks
/// code (expansion < 1), which leaves no room for the guest encodings, or
/// if a guest instruction cannot be encoded.
pub fn emit(
    program: &Program,
    path: &[BlockId],
    config: &TranslationConfig,
) -> Result<TranslatedCode, DbtError> {
    if config.expansion_num < config.expansion_den {
        return Err(DbtError::InvalidConfig(
            "translation cannot shrink code below its guest encoding",
        ));
    }
    let guest_bytes = crate::superblock::guest_bytes(program, path);
    let exits = crate::superblock::count_exits(program, path);
    let total = config.translated_size(guest_bytes, exits) as usize;

    let mut bytes = Vec::with_capacity(total);
    // Prologue: context-pointer slot.
    bytes.resize(config.prologue_bytes as usize, 0xCC);
    // Body: guest encodings inflated to the expansion target.
    let body_target = (u64::from(guest_bytes) * u64::from(config.expansion_num)
        / u64::from(config.expansion_den)) as usize;
    for &bid in path {
        for instr in &program.block(bid).instrs {
            encode_instr(instr, &mut bytes)
                .map_err(|_| DbtError::InvalidConfig("guest instruction not encodable"))?;
        }
        // Terminators become either fall-through checks (padding here) or
        // exit stubs (emitted below); reserve their guest length as body.
        let tlen = program.block(bid).terminator.encoded_len() as usize;
        bytes.resize(bytes.len() + tlen, 0x90);
    }
    // Inflation padding up to the expansion target.
    let body_end = config.prologue_bytes as usize + body_target;
    if bytes.len() > body_end {
        return Err(DbtError::InvalidConfig(
            "expansion target smaller than the guest encoding",
        ));
    }
    bytes.resize(body_end, 0x90);
    // Exit stubs.
    let mut stubs = Vec::with_capacity(exits as usize);
    for _ in 0..exits {
        let offset = bytes.len();
        bytes.resize(offset + config.exit_stub_bytes as usize, DISPATCH_SENTINEL);
        stubs.push(ExitStub {
            offset,
            target: None,
        });
    }
    debug_assert_eq!(bytes.len(), total, "emitted size vs size model");
    Ok(TranslatedCode { bytes, stubs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_tinyvm::builder::ProgramBuilder;
    use cce_tinyvm::isa::{Cond, Instr, Reg};

    fn path_program() -> (Program, Vec<BlockId>) {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        let mid = b.block(f);
        let out = b.block(f);
        let exit = b.block(f);
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 5,
            },
        );
        b.jump(e, mid);
        b.push(
            mid,
            Instr::AddImm {
                dst: Reg::R1,
                src: Reg::R1,
                imm: -1,
            },
        );
        b.branch(mid, Cond::Gt, Reg::R1, Reg::ZERO, out, exit);
        b.push(out, Instr::Nop);
        b.halt(out);
        b.halt(exit);
        b.set_entry(f, e);
        (b.finish().unwrap(), vec![e, mid])
    }

    #[test]
    fn emitted_size_matches_the_size_model() {
        let (p, path) = path_program();
        let cfg = TranslationConfig::default();
        let code = emit(&p, &path, &cfg).unwrap();
        let guest = crate::superblock::guest_bytes(&p, &path);
        let exits = crate::superblock::count_exits(&p, &path);
        assert_eq!(code.bytes.len() as u32, cfg.translated_size(guest, exits));
        assert_eq!(code.stubs().len(), exits as usize);
    }

    #[test]
    fn stubs_patch_and_unpatch_bytes() {
        let (p, path) = path_program();
        let mut code = emit(&p, &path, &TranslationConfig::default()).unwrap();
        assert!(!code.is_patched(0));
        code.patch_stub(0, 0xDEAD_BEEF_1234);
        assert!(code.is_patched(0));
        assert_eq!(code.stub_target(0), Some(0xDEAD_BEEF_1234));
        let off = code.stubs()[0].offset;
        assert_eq!(code.bytes[off], STUB_JMP_OPCODE);
        assert_eq!(
            u64::from_le_bytes(code.bytes[off + 1..off + 9].try_into().unwrap()),
            0xDEAD_BEEF_1234
        );
        code.unpatch_stub(0);
        assert!(!code.is_patched(0));
        assert!(code.bytes[off..off + 9]
            .iter()
            .all(|&b| b == DISPATCH_SENTINEL));
    }

    #[test]
    fn shrinking_translation_is_rejected() {
        let (p, path) = path_program();
        let cfg = TranslationConfig {
            expansion_num: 1,
            expansion_den: 2,
            ..TranslationConfig::default()
        };
        assert!(matches!(
            emit(&p, &path, &cfg),
            Err(DbtError::InvalidConfig(_))
        ));
    }

    #[test]
    fn every_engine_superblock_is_emittable() {
        use crate::engine::{Engine, EngineConfig};
        use cce_tinyvm::gen::{generate, GenConfig};
        let program = generate(&GenConfig::small(61));
        let cfg = EngineConfig {
            hot_threshold: 2,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(&program, cfg.clone()).unwrap();
        let _ = engine.run(50_000_000);
        for sb in engine.superblocks() {
            let code = emit(&program, &sb.blocks, &cfg.translation)
                .unwrap_or_else(|e| panic!("{:?}: {e}", sb.id));
            assert_eq!(
                code.bytes.len() as u32,
                sb.translated_bytes,
                "{:?}: emitted bytes disagree with the registry size",
                sb.id
            );
            assert_eq!(code.stubs().len(), sb.exits as usize);
        }
    }
}
