//! Dispatcher event accounting.
//!
//! Every entry into cached code goes through one of two doors:
//!
//! * a **linked** (chained) transition — the previous superblock's exit
//!   stub was patched to jump straight to the target: no dispatcher, no
//!   hash lookup, no protection changes;
//! * a **dispatched** entry — control returns to the translator, which
//!   saves guest state, re-protects the code cache (DynamoRIO issues a
//!   pair of `mprotect` system calls to guard the translator from guest
//!   code — the cost the paper blames for Table 2's slowdowns), looks up
//!   the hash table, and context-switches back in.
//!
//! [`DispatchStats`] counts those events; `cce-sim`'s execution-time model
//! turns them into instruction and wall-clock estimates.

/// Counters for the dispatch-path events of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatchStats {
    /// Superblock entries that rode a patched link (no dispatcher).
    pub linked_entries: u64,
    /// Superblock entries that went through the dispatcher.
    pub dispatched_entries: u64,
    /// Basic blocks executed by the interpreter (cold code).
    pub interpreted_blocks: u64,
    /// Basic blocks executed from the basic-block cache (dual-cache
    /// configurations only; DynamoRIO's first-level cache, §2.2).
    pub bb_cache_entries: u64,
    /// Superblock translations (initial formations plus regenerations
    /// after eviction).
    pub translations: u64,
    /// Exit stubs restored to point back at the dispatcher because their
    /// target was evicted while the source survived (Eq. 4's `numLinks`,
    /// summed over the run). Fed by the cache's settled event stream.
    pub stub_unpatches: u64,
    /// Guest instructions retired in total.
    pub guest_instructions: u64,
}

impl DispatchStats {
    /// Total superblock entries.
    #[must_use]
    pub fn total_entries(&self) -> u64 {
        self.linked_entries + self.dispatched_entries
    }

    /// Fraction of entries that were linked (1.0 = perfect chaining).
    #[must_use]
    pub fn linked_fraction(&self) -> f64 {
        let total = self.total_entries();
        if total == 0 {
            0.0
        } else {
            self.linked_entries as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linked_fraction_handles_zero() {
        assert_eq!(DispatchStats::default().linked_fraction(), 0.0);
    }

    #[test]
    fn linked_fraction_computes() {
        let s = DispatchStats {
            linked_entries: 3,
            dispatched_entries: 1,
            ..DispatchStats::default()
        };
        assert_eq!(s.total_entries(), 4);
        assert!((s.linked_fraction() - 0.75).abs() < 1e-12);
    }
}
