//! The dynamic-binary-translation engine.
//!
//! [`Engine`] runs a guest [`Program`] under observation and performs the
//! full DBT control loop of the paper's Figure 1: interpret cold code,
//! profile candidate heads, form superblocks when heads go hot, translate
//! and insert them into the [`CodeCache`], execute from the cache on hits,
//! regenerate on misses, and chain direct superblock→superblock
//! transitions. Along the way it emits the replayable [`TraceLog`] and
//! counts the dispatch events behind the paper's Table 2.
//!
//! Guest execution semantics always come from the interpreter; the engine
//! mirrors what a real translator's *cache state* would be. That is
//! exactly the paper's methodology — DynamoRIO executed the program while
//! a simulator replayed its cache behaviour — collapsed into one process.

use crate::dispatch::DispatchStats;
use crate::formation::{FormationConfig, Recorder};
use crate::profile::Profiler;
use crate::superblock::{count_exits, guest_bytes, Superblock};
use crate::trace_log::{SuperblockInfo, TraceLog};
use crate::translate::TranslationConfig;
use crate::DbtError;
use cce_core::{
    CacheError, CacheSession, CacheStats, CodeCache, Granularity, InsertRequest, NullSink,
    ShardedCache, SuperblockId,
};
use cce_tinyvm::interp::{ExecObserver, Interp, StopReason};
use cce_tinyvm::program::{BasicBlock, Pc, Program};
use std::collections::HashMap;

/// Capacity used when [`EngineConfig::cache_capacity`] is `None`
/// (effectively unbounded: 1 TiB).
pub const UNBOUNDED_CAPACITY: u64 = 1 << 40;

/// Configuration of the translation engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Workload name recorded in the trace log.
    pub name: String,
    /// Hotness threshold (executions before superblock formation).
    pub hot_threshold: u32,
    /// Trace-formation limits.
    pub formation: FormationConfig,
    /// Translated-size model.
    pub translation: TranslationConfig,
    /// Eviction granularity of the code cache.
    pub granularity: Granularity,
    /// Cache capacity in bytes; `None` lets the cache grow unbounded
    /// (how `maxCache` is measured in §4.2).
    pub cache_capacity: Option<u64>,
    /// Whether superblock chaining is enabled (Table 2 turns this off).
    pub chaining: bool,
    /// Capacity of the first-level *basic-block cache* (DynamoRIO's
    /// dual-cache architecture, §2.2): every executed basic block is
    /// cached once so later executions avoid interpretation. `None`
    /// disables the basic-block cache (single-cache configuration).
    pub bb_cache_capacity: Option<u64>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            name: "dbt-run".to_owned(),
            hot_threshold: crate::profile::DEFAULT_HOT_THRESHOLD,
            formation: FormationConfig::default(),
            translation: TranslationConfig::default(),
            granularity: Granularity::Superblock,
            cache_capacity: None,
            chaining: true,
            bb_cache_capacity: None,
        }
    }
}

/// Aggregate results of an [`Engine::run`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunSummary {
    /// Why guest execution stopped.
    pub stop: StopReason,
    /// Basic blocks entered by the interpreter.
    pub blocks_entered: u64,
    /// Guest instructions retired.
    pub guest_instructions: u64,
    /// Superblocks formed (distinct heads promoted).
    pub superblocks_formed: u64,
    /// Re-translations of evicted superblocks.
    pub regenerations: u64,
    /// Final code-cache statistics.
    pub cache_stats: CacheStats,
    /// Dispatch-path event counts.
    pub dispatch: DispatchStats,
    /// Total translated bytes over all formed superblocks (`maxCache`).
    pub max_cache_bytes: u64,
    /// Statistics of the basic-block cache, when one is configured.
    pub bb_cache_stats: Option<CacheStats>,
}

#[derive(Debug, Clone, Copy)]
struct ActivePath {
    id: SuperblockId,
    pos: usize,
}

/// The dynamic binary translator. See the module docs and
/// [crate-level example](crate).
///
/// Generic over the serving surface: the default `S = CodeCache` is the
/// single-cache engine; [`Engine::sharded`] runs the same control loop
/// over a [`ShardedCache`] through the identical [`CacheSession`] trait.
#[derive(Debug)]
pub struct Engine<'p, S: CacheSession = CodeCache> {
    program: &'p Program,
    config: EngineConfig,
    profiler: Profiler,
    cache: S,
    /// Head PC → superblock id, for every superblock ever formed.
    heads: HashMap<Pc, SuperblockId>,
    /// Superblock registry, indexed by `SuperblockId::0`.
    registry: Vec<Superblock>,
    trace: TraceLog,
    /// First-level basic-block cache (dual-cache configurations).
    bb_cache: Option<CodeCache>,
    recorder: Option<Recorder>,
    active: Option<ActivePath>,
    pending_from: Option<SuperblockId>,
    dispatch: DispatchStats,
    regenerations: u64,
}

impl<'p> Engine<'p> {
    /// Creates an engine for `program` over a single [`CodeCache`].
    ///
    /// # Errors
    ///
    /// Returns [`DbtError::Cache`] if the cache geometry is invalid, or
    /// [`DbtError::InvalidConfig`] for a zero hot threshold.
    pub fn new(program: &'p Program, config: EngineConfig) -> Result<Engine<'p>, DbtError> {
        let capacity = config.cache_capacity.unwrap_or(UNBOUNDED_CAPACITY);
        let cache = CodeCache::with_granularity(config.granularity, capacity)?;
        Engine::with_session(program, config, cache)
    }
}

impl<'p> Engine<'p, ShardedCache> {
    /// Creates an engine serving its superblocks from a
    /// [`ShardedCache`]: the configured capacity is split over
    /// `shard_count` consistent-hashed shards of the configured
    /// granularity.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Engine::new`].
    pub fn sharded(
        program: &'p Program,
        config: EngineConfig,
        shard_count: u32,
    ) -> Result<Engine<'p, ShardedCache>, DbtError> {
        let capacity = config.cache_capacity.unwrap_or(UNBOUNDED_CAPACITY);
        let cache = ShardedCache::with_granularity(config.granularity, capacity, shard_count)?;
        Engine::with_session(program, config, cache)
    }
}

impl<'p, S: CacheSession> Engine<'p, S> {
    /// Creates an engine over an arbitrary pre-built serving session
    /// (`config.granularity` / `config.cache_capacity` are ignored — the
    /// session brings its own geometry).
    ///
    /// # Errors
    ///
    /// Returns [`DbtError::Cache`] if the basic-block cache geometry is
    /// invalid, or [`DbtError::InvalidConfig`] for a zero hot threshold.
    pub fn with_session(
        program: &'p Program,
        config: EngineConfig,
        session: S,
    ) -> Result<Engine<'p, S>, DbtError> {
        if config.hot_threshold == 0 {
            return Err(DbtError::InvalidConfig("hot_threshold must be nonzero"));
        }
        // The basic-block cache evicts per block (a circular buffer), as
        // in DynamoRIO.
        let bb_cache = match config.bb_cache_capacity {
            Some(cap) => Some(CodeCache::with_granularity(Granularity::Superblock, cap)?),
            None => None,
        };
        let trace = TraceLog::new(&config.name);
        Ok(Engine {
            program,
            profiler: Profiler::new(config.hot_threshold),
            cache: session,
            heads: HashMap::new(),
            registry: Vec::new(),
            trace,
            bb_cache,
            recorder: None,
            active: None,
            pending_from: None,
            dispatch: DispatchStats::default(),
            regenerations: 0,
            config,
        })
    }

    /// Executes the guest program from its entry for at most `max_blocks`
    /// basic blocks, returning the run summary.
    pub fn run(&mut self, max_blocks: u64) -> RunSummary {
        let mut interp = Interp::new(self.program);
        let stop = interp.run_observed(max_blocks, self);
        // A recording in flight when the program ends is finalized so its
        // code is accounted for.
        if let Some(rec) = self.recorder.take() {
            self.finish_superblock(rec.into_path());
        }
        self.dispatch.guest_instructions = interp.instructions_retired();
        RunSummary {
            stop,
            blocks_entered: interp.blocks_entered(),
            guest_instructions: interp.instructions_retired(),
            superblocks_formed: self.registry.len() as u64,
            regenerations: self.regenerations,
            cache_stats: self.cache.stats_snapshot(),
            dispatch: self.dispatch,
            max_cache_bytes: self.trace.max_cache_bytes(),
            bb_cache_stats: self.bb_cache.as_ref().map(|c| *c.stats()),
        }
    }

    /// The serving session (inspect stats, residency, links).
    #[must_use]
    pub fn cache(&self) -> &S {
        &self.cache
    }

    /// All superblocks formed so far.
    #[must_use]
    pub fn superblocks(&self) -> &[Superblock] {
        &self.registry
    }

    /// The trace log accumulated so far.
    #[must_use]
    pub fn trace(&self) -> &TraceLog {
        &self.trace
    }

    /// Consumes the engine, yielding the trace log for replay.
    #[must_use]
    pub fn into_trace(self) -> TraceLog {
        self.trace
    }

    /// Finalizes a recorded path into a superblock: translate, register,
    /// insert, log.
    fn finish_superblock(&mut self, path: Vec<cce_tinyvm::program::BlockId>) {
        let head_pc = self.program.block_addr(path[0]);
        debug_assert!(!self.heads.contains_key(&head_pc), "head formed twice");
        let id = SuperblockId(self.registry.len() as u64);
        let gbytes = guest_bytes(self.program, &path);
        let exits = count_exits(self.program, &path);
        let translated = self.config.translation.translated_size(gbytes, exits);
        let sb = Superblock {
            id,
            head_pc,
            blocks: path,
            guest_bytes: gbytes,
            translated_bytes: translated,
            exits,
        };
        self.heads.insert(head_pc, id);
        self.trace.record_superblock(SuperblockInfo {
            id,
            head_pc,
            size: translated,
            guest_blocks: sb.blocks.len() as u32,
            exits,
        });
        self.registry.push(sb);
        // Initial insertion: the cold miss that creates the cache entry.
        // Eviction consequences (stub unpatching work) arrive pre-settled
        // in the summary, through the allocation-free event path.
        self.dispatch.translations += 1;
        match self
            .cache
            .access_or_insert_quiet(InsertRequest::new(id, translated))
        {
            Ok(outcome) => {
                if let Some(summary) = outcome.inserted {
                    self.dispatch.stub_unpatches += summary.links_unlinked;
                }
            }
            Err(CacheError::BlockTooLarge { .. }) => {}
            Err(e) => unreachable!("insertion of a fresh superblock failed: {e}"),
        }
        self.trace.record_access(id, None);
        self.dispatch.dispatched_entries += 1;
    }

    /// Handles control entering the head of formed superblock `id`.
    fn enter_superblock(&mut self, id: SuperblockId, from: Option<SuperblockId>) {
        // Did this entry ride an existing patched link?
        let rode_link =
            self.config.chaining && from.is_some_and(|s| self.cache.contains_link(s, id));
        let size = self.registry[id.0 as usize].translated_bytes;
        let hit = match self
            .cache
            .access_or_insert_quiet(InsertRequest::new(id, size))
        {
            Ok(outcome) => {
                if let Some(summary) = outcome.inserted {
                    // Regenerated the evicted superblock (steps 1–5 of
                    // §3.2).
                    self.regenerations += 1;
                    self.dispatch.translations += 1;
                    self.dispatch.stub_unpatches += summary.links_unlinked;
                }
                outcome.is_hit()
            }
            Err(CacheError::BlockTooLarge { .. }) => {
                // The miss was recorded; the block stays uncached.
                self.regenerations += 1;
                self.dispatch.translations += 1;
                false
            }
            Err(e) => unreachable!("regeneration insert failed: {e}"),
        };
        self.trace.record_access(id, from);
        if rode_link && hit {
            self.dispatch.linked_entries += 1;
        } else {
            self.dispatch.dispatched_entries += 1;
        }
        // Patch a new link if this was a direct transition between two
        // now-resident superblocks.
        if self.config.chaining {
            if let Some(s) = from {
                if self.cache.is_resident(s) && self.cache.is_resident(id) {
                    let _ = self.cache.link(s, id);
                }
            }
        }
        self.active = Some(ActivePath { id, pos: 0 });
    }
}

impl<S: CacheSession> ExecObserver for Engine<'_, S> {
    fn on_block_enter(&mut self, pc: Pc, block: &BasicBlock) {
        let bid = block.id;

        // 1. Are we executing inside a cached superblock's recorded path?
        if let Some(act) = self.active {
            let path = &self.registry[act.id.0 as usize].blocks;
            if act.pos + 1 < path.len() && path[act.pos + 1] == bid {
                self.active = Some(ActivePath {
                    id: act.id,
                    pos: act.pos + 1,
                });
                return;
            }
            // Fell off the end or took a side exit: the next superblock
            // entry (if immediate) is a chainable transition from here.
            self.pending_from = Some(act.id);
            self.active = None;
        }

        // 2. Recording mode: try to extend the nascent superblock.
        if self.recorder.is_some() {
            let is_head = self.heads.contains_key(&pc);
            let finished =
                self.recorder
                    .as_mut()
                    .expect("checked above")
                    .observe(self.program, bid, is_head);
            match finished {
                None => {
                    // Block absorbed into the recording; it executes via
                    // the interpreter while being recorded.
                    self.dispatch.interpreted_blocks += 1;
                    return;
                }
                Some(_reason) => {
                    let rec = self.recorder.take().expect("checked above");
                    self.finish_superblock(rec.into_path());
                    // Fall through: the current block still executes.
                }
            }
        }

        let from = self.pending_from.take();

        // 3. Entry into a formed superblock?
        if let Some(&id) = self.heads.get(&pc) {
            self.enter_superblock(id, from);
            return;
        }

        // 4. Cold code: executed from the basic-block cache when one is
        // configured and warm, interpreted otherwise.
        match &mut self.bb_cache {
            Some(bb) => {
                let bb_id = SuperblockId(bid.0 as u64);
                if bb.access(bb_id).is_hit() {
                    self.dispatch.bb_cache_entries += 1;
                } else {
                    self.dispatch.interpreted_blocks += 1;
                    let size = self.config.translation.translated_size(block.byte_len(), 1);
                    match bb.insert_request(InsertRequest::new(bb_id, size), &mut NullSink) {
                        Ok(_) | Err(CacheError::BlockTooLarge { .. }) => {}
                        Err(e) => unreachable!("bb-cache insert failed: {e}"),
                    }
                }
            }
            None => self.dispatch.interpreted_blocks += 1,
        }
        if self.profiler.record(pc) {
            self.profiler.retire(pc);
            self.recorder = Some(Recorder::new(self.program, bid, self.config.formation));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_tinyvm::builder::ProgramBuilder;
    use cce_tinyvm::gen::{generate, GenConfig};
    use cce_tinyvm::isa::{Cond, Instr, Reg};

    fn hot_loop_program(iters: i64) -> Program {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let entry = b.block(f);
        let body = b.block(f);
        let body2 = b.block(f);
        let done = b.block(f);
        b.push(
            entry,
            Instr::MovImm {
                dst: Reg::R1,
                imm: iters,
            },
        );
        b.jump(entry, body);
        b.push(body, Instr::Nop);
        b.push(body, Instr::Nop);
        b.jump(body, body2);
        b.push(
            body2,
            Instr::AddImm {
                dst: Reg::R1,
                src: Reg::R1,
                imm: -1,
            },
        );
        b.branch(body2, Cond::Gt, Reg::R1, Reg::ZERO, body, done);
        b.halt(done);
        b.set_entry(f, entry);
        b.finish().unwrap()
    }

    #[test]
    fn hot_loop_forms_a_superblock() {
        let p = hot_loop_program(200);
        let cfg = EngineConfig {
            hot_threshold: 50,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(&p, cfg).unwrap();
        let s = e.run(u64::MAX);
        assert_eq!(s.stop, StopReason::Halted);
        assert!(
            s.superblocks_formed >= 1,
            "a 200-iteration loop must go hot at threshold 50"
        );
        assert!(s.cache_stats.accesses > 0);
        assert_eq!(s.regenerations, 0, "unbounded cache never evicts");
    }

    #[test]
    fn below_threshold_nothing_forms() {
        let p = hot_loop_program(20);
        let mut e = Engine::new(&p, EngineConfig::default()).unwrap();
        let s = e.run(u64::MAX);
        assert_eq!(s.superblocks_formed, 0);
        assert_eq!(s.cache_stats.accesses, 0);
        assert_eq!(s.dispatch.interpreted_blocks, s.blocks_entered);
    }

    #[test]
    fn chaining_links_the_loop_back_edge() {
        let p = hot_loop_program(500);
        let mut e = Engine::new(&p, EngineConfig::default()).unwrap();
        let s = e.run(u64::MAX);
        assert!(s.cache_stats.links_created >= 1, "loop must self-chain");
        assert!(
            s.dispatch.linked_entries > 0,
            "after patching, iterations ride the link"
        );
        assert!(s.dispatch.linked_fraction() > 0.5);
    }

    #[test]
    fn chaining_disabled_dispatches_every_entry() {
        let p = hot_loop_program(500);
        let cfg = EngineConfig {
            chaining: false,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(&p, cfg).unwrap();
        let s = e.run(u64::MAX);
        assert_eq!(s.dispatch.linked_entries, 0);
        assert_eq!(s.cache_stats.links_created, 0);
        assert!(s.dispatch.dispatched_entries > 50);
    }

    #[test]
    fn trace_registry_matches_formed_superblocks() {
        let p = generate(&GenConfig::small(3));
        let mut e = Engine::new(&p, EngineConfig::default()).unwrap();
        let s = e.run(50_000_000);
        let summary = e.trace().summary();
        assert_eq!(summary.superblock_count as u64, s.superblocks_formed);
        assert_eq!(summary.total_code_bytes, s.max_cache_bytes);
        assert_eq!(summary.accesses, s.cache_stats.accesses);
    }

    #[test]
    fn engine_is_deterministic() {
        let p = generate(&GenConfig::small(9));
        let run = || {
            let mut e = Engine::new(&p, EngineConfig::default()).unwrap();
            let s = e.run(50_000_000);
            (
                s.superblocks_formed,
                s.cache_stats.accesses,
                s.cache_stats.links_created,
                s.max_cache_bytes,
                e.into_trace(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_cache_forces_regenerations() {
        let p = generate(&GenConfig::small(5));
        // First, measure maxCache unbounded (low threshold so the small
        // program's blocks actually go hot).
        let base = EngineConfig {
            hot_threshold: 2,
            ..EngineConfig::default()
        };
        let mut probe = Engine::new(&p, base.clone()).unwrap();
        let unbounded = probe.run(50_000_000);
        assert!(unbounded.max_cache_bytes > 0);
        // Now squeeze to a third (pressure 3).
        let mut cfg = base;
        cfg.cache_capacity = Some((unbounded.max_cache_bytes / 3).max(512));
        cfg.granularity = Granularity::units(4);
        let mut e = Engine::new(&p, cfg).unwrap();
        let s = e.run(50_000_000);
        if s.superblocks_formed > 3 {
            assert!(
                s.cache_stats.eviction_invocations > 0,
                "pressure must trigger evictions"
            );
        }
        // Identical guest behaviour regardless of cache size.
        assert_eq!(s.guest_instructions, unbounded.guest_instructions);
        // Every unpatched link the cache reported reached the dispatcher's
        // stub accounting through the event summaries.
        assert_eq!(s.dispatch.stub_unpatches, s.cache_stats.links_unlinked);
        assert_eq!(unbounded.dispatch.stub_unpatches, 0);
    }

    #[test]
    fn invalid_config_rejected() {
        let p = hot_loop_program(10);
        let cfg = EngineConfig {
            hot_threshold: 0,
            ..EngineConfig::default()
        };
        assert!(matches!(
            Engine::new(&p, cfg),
            Err(DbtError::InvalidConfig(_))
        ));
        let cfg = EngineConfig {
            cache_capacity: Some(0),
            ..EngineConfig::default()
        };
        assert!(matches!(Engine::new(&p, cfg), Err(DbtError::Cache(_))));
    }

    #[test]
    fn direct_transitions_recorded_in_trace() {
        let p = hot_loop_program(500);
        let mut e = Engine::new(&p, EngineConfig::default()).unwrap();
        let _ = e.run(u64::MAX);
        let direct = e
            .trace()
            .events
            .iter()
            .filter(|ev| {
                let crate::trace_log::TraceEvent::Access { direct_from, .. } = ev;
                direct_from.is_some()
            })
            .count();
        assert!(direct > 0, "loop iterations are direct transitions");
    }
}

#[cfg(test)]
mod sharded_engine_tests {
    use super::*;
    use cce_tinyvm::gen::{generate, GenConfig};

    #[test]
    fn one_shard_engine_matches_the_bare_engine() {
        let p = generate(&GenConfig::small(17));
        let cfg = EngineConfig {
            hot_threshold: 2,
            cache_capacity: Some(8192),
            granularity: Granularity::units(4),
            ..EngineConfig::default()
        };
        let mut bare = Engine::new(&p, cfg.clone()).unwrap();
        let b = bare.run(50_000_000);
        let mut sharded = Engine::sharded(&p, cfg, 1).unwrap();
        let s = sharded.run(50_000_000);
        assert_eq!(b.guest_instructions, s.guest_instructions);
        assert_eq!(b.superblocks_formed, s.superblocks_formed);
        assert_eq!(b.regenerations, s.regenerations);
        assert_eq!(b.cache_stats, s.cache_stats);
        assert_eq!(b.dispatch, s.dispatch);
        assert_eq!(bare.into_trace(), sharded.into_trace());
    }

    #[test]
    fn multi_shard_engine_preserves_guest_behaviour() {
        let p = generate(&GenConfig::small(18));
        let cfg = EngineConfig {
            hot_threshold: 2,
            cache_capacity: Some(8192),
            granularity: Granularity::units(4),
            ..EngineConfig::default()
        };
        let mut bare = Engine::new(&p, cfg.clone()).unwrap();
        let b = bare.run(50_000_000);
        let mut sharded = Engine::sharded(&p, cfg, 4).unwrap();
        let s = sharded.run(50_000_000);
        // Sharding changes cache behaviour, never guest execution.
        assert_eq!(b.guest_instructions, s.guest_instructions);
        assert_eq!(b.superblocks_formed, s.superblocks_formed);
        assert_eq!(b.cache_stats.accesses, s.cache_stats.accesses);
        // The per-shard breakdown covers the whole population.
        let cache = sharded.cache();
        assert_eq!(cache.shard_count(), 4);
        assert_eq!(
            (0..cache.shard_count())
                .map(|i| cache.with_shard(i, cce_core::CodeCache::used))
                .sum::<u64>(),
            CacheSession::used(cache)
        );
        // Stub unpatching still reaches the dispatcher through the
        // summaries, cross-shard charges included.
        assert_eq!(
            s.dispatch.stub_unpatches, s.cache_stats.links_unlinked,
            "sharded unlink accounting must reach the dispatcher"
        );
    }
}

#[cfg(test)]
mod bb_cache_tests {
    use super::*;
    use cce_tinyvm::gen::{generate, GenConfig};

    #[test]
    fn bb_cache_absorbs_repeat_cold_executions() {
        let p = generate(&GenConfig::small(41));
        // High threshold: nothing forms superblocks, everything stays in
        // the basic-block tier.
        let cfg = EngineConfig {
            hot_threshold: 1_000_000,
            bb_cache_capacity: Some(UNBOUNDED_CAPACITY),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(&p, cfg).unwrap();
        let s = e.run(50_000_000);
        assert_eq!(s.superblocks_formed, 0);
        let bb = s.bb_cache_stats.expect("bb cache configured");
        // Every block interpreted exactly once (its cold miss), all other
        // executions served from the bb cache.
        assert_eq!(s.dispatch.interpreted_blocks, bb.misses);
        assert_eq!(s.dispatch.bb_cache_entries, bb.hits);
        assert_eq!(
            s.dispatch.interpreted_blocks + s.dispatch.bb_cache_entries,
            s.blocks_entered
        );
        assert!(bb.hits > bb.misses, "loops must re-execute cached blocks");
    }

    #[test]
    fn bounded_bb_cache_evicts_and_still_tracks() {
        let p = generate(&GenConfig::small(42));
        let cfg = EngineConfig {
            hot_threshold: 1_000_000,
            bb_cache_capacity: Some(2048),
            ..EngineConfig::default()
        };
        let mut e = Engine::new(&p, cfg).unwrap();
        let s = e.run(50_000_000);
        let bb = s.bb_cache_stats.unwrap();
        assert!(bb.accesses > 0);
        assert!(bb.bytes_inserted >= bb.bytes_evicted);
    }

    #[test]
    fn single_cache_config_reports_none() {
        let p = generate(&GenConfig::small(43));
        let mut e = Engine::new(&p, EngineConfig::default()).unwrap();
        let s = e.run(50_000_000);
        assert!(s.bb_cache_stats.is_none());
        assert_eq!(s.dispatch.bb_cache_entries, 0);
    }

    #[test]
    fn guest_behaviour_unchanged_by_bb_cache() {
        let p = generate(&GenConfig::small(44));
        let run = |bb: Option<u64>| {
            let cfg = EngineConfig {
                hot_threshold: 2,
                bb_cache_capacity: bb,
                ..EngineConfig::default()
            };
            let mut e = Engine::new(&p, cfg).unwrap();
            let s = e.run(50_000_000);
            (s.guest_instructions, s.superblocks_formed, s.cache_stats)
        };
        assert_eq!(run(None), run(Some(4096)));
    }
}
