//! NET-style superblock formation (next-executing-tail trace selection).
//!
//! When a profiled head crosses the hotness threshold, the translator
//! enters *recording mode*: the basic blocks executed next are appended to
//! the nascent superblock until a stop condition fires. The stop
//! conditions follow Dynamo/DynamoRIO practice:
//!
//! * a **backward branch** (target at or before the current block — the
//!   classic NET loop-closing heuristic);
//! * an **existing superblock head** (traces never swallow other traces);
//! * a **cycle** within the recording itself;
//! * a **control boundary**: return or indirect jump (their targets are
//!   unpredictable, so the trace ends with an unchainable exit);
//! * the **maximum trace length**.

use cce_tinyvm::program::{BlockId, Pc, Program, Terminator};
use std::collections::HashSet;

/// Why a recording stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FinishReason {
    /// The next block was at or before the current one (loop closed by a
    /// backward branch).
    BackwardBranch,
    /// The next block is the head of an already-formed superblock.
    ExistingHead,
    /// The next block is already part of this recording.
    LoopClosed,
    /// The recorded block ended in a return or indirect jump.
    ControlBoundary,
    /// The trace reached the configured maximum length.
    MaxLength,
}

/// Formation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FormationConfig {
    /// Maximum basic blocks per superblock (DynamoRIO-like default: 16).
    pub max_blocks: usize,
}

impl Default for FormationConfig {
    fn default() -> FormationConfig {
        FormationConfig { max_blocks: 16 }
    }
}

/// An in-progress superblock recording.
#[derive(Debug, Clone)]
pub struct Recorder {
    head_pc: Pc,
    path: Vec<BlockId>,
    seen: HashSet<BlockId>,
    max_blocks: usize,
}

impl Recorder {
    /// Starts a recording at `head` (which becomes the first path block).
    ///
    /// # Panics
    ///
    /// Panics if `config.max_blocks == 0`.
    #[must_use]
    pub fn new(program: &Program, head: BlockId, config: FormationConfig) -> Recorder {
        assert!(config.max_blocks > 0, "max_blocks must be nonzero");
        let mut seen = HashSet::new();
        seen.insert(head);
        Recorder {
            head_pc: program.block_addr(head),
            path: vec![head],
            seen,
            max_blocks: config.max_blocks,
        }
    }

    /// The head address of the superblock being formed.
    #[must_use]
    pub fn head_pc(&self) -> Pc {
        self.head_pc
    }

    /// The path recorded so far.
    #[must_use]
    pub fn path(&self) -> &[BlockId] {
        &self.path
    }

    /// Offers the next executed block. Returns `None` if recording
    /// continues (the block was appended), or the reason it stopped (the
    /// block was *not* appended).
    pub fn observe(
        &mut self,
        program: &Program,
        next: BlockId,
        is_existing_head: bool,
    ) -> Option<FinishReason> {
        let last = *self.path.last().expect("path is never empty");
        // Control-boundary exits end the trace after the block containing
        // them.
        match program.block(last).terminator {
            Terminator::Return | Terminator::IndirectJump { .. } | Terminator::Halt => {
                return Some(FinishReason::ControlBoundary);
            }
            _ => {}
        }
        if is_existing_head {
            return Some(FinishReason::ExistingHead);
        }
        if self.seen.contains(&next) {
            return Some(FinishReason::LoopClosed);
        }
        if program.block_addr(next) <= program.block_addr(last) {
            return Some(FinishReason::BackwardBranch);
        }
        if self.path.len() >= self.max_blocks {
            return Some(FinishReason::MaxLength);
        }
        self.path.push(next);
        self.seen.insert(next);
        None
    }

    /// Consumes the recorder, yielding the recorded path.
    #[must_use]
    pub fn into_path(self) -> Vec<BlockId> {
        self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_tinyvm::builder::ProgramBuilder;
    use cce_tinyvm::isa::{Cond, Instr, Reg};

    /// A simple loop: entry → body → latch → (body | exit).
    fn loop_program() -> (Program, Vec<BlockId>) {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let entry = b.block(f);
        let body = b.block(f);
        let latch = b.block(f);
        let exit = b.block(f);
        b.push(
            entry,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 5,
            },
        );
        b.jump(entry, body);
        b.push(body, Instr::Nop);
        b.jump(body, latch);
        b.push(
            latch,
            Instr::AddImm {
                dst: Reg::R1,
                src: Reg::R1,
                imm: -1,
            },
        );
        b.branch(latch, Cond::Gt, Reg::R1, Reg::ZERO, body, exit);
        b.halt(exit);
        b.set_entry(f, entry);
        (b.finish().unwrap(), vec![entry, body, latch, exit])
    }

    #[test]
    fn records_forward_path() {
        let (p, ids) = loop_program();
        let mut r = Recorder::new(&p, ids[1], FormationConfig::default());
        assert_eq!(r.observe(&p, ids[2], false), None);
        assert_eq!(r.path(), &[ids[1], ids[2]]);
    }

    #[test]
    fn backward_branch_stops_recording() {
        let (p, ids) = loop_program();
        let mut r = Recorder::new(&p, ids[1], FormationConfig::default());
        assert_eq!(r.observe(&p, ids[2], false), None);
        // latch → body is a backward branch (body is earlier); also a loop
        // close — the seen-set check fires first.
        assert_eq!(r.observe(&p, ids[1], false), Some(FinishReason::LoopClosed));
    }

    #[test]
    fn backward_branch_to_unseen_block() {
        let (p, ids) = loop_program();
        // Start at latch; body lies earlier in the layout and is unseen.
        let mut r = Recorder::new(&p, ids[2], FormationConfig::default());
        assert_eq!(
            r.observe(&p, ids[1], false),
            Some(FinishReason::BackwardBranch)
        );
    }

    #[test]
    fn existing_head_stops_recording() {
        let (p, ids) = loop_program();
        let mut r = Recorder::new(&p, ids[1], FormationConfig::default());
        assert_eq!(
            r.observe(&p, ids[2], true),
            Some(FinishReason::ExistingHead)
        );
        assert_eq!(r.path().len(), 1);
    }

    #[test]
    fn max_length_stops_recording() {
        let (p, ids) = loop_program();
        let mut r = Recorder::new(&p, ids[0], FormationConfig { max_blocks: 1 });
        assert_eq!(r.observe(&p, ids[1], false), Some(FinishReason::MaxLength));
    }

    #[test]
    fn halt_terminator_is_a_control_boundary() {
        let (p, ids) = loop_program();
        let mut r = Recorder::new(&p, ids[3], FormationConfig::default());
        assert_eq!(
            r.observe(&p, ids[0], false),
            Some(FinishReason::ControlBoundary)
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_max_blocks_panics() {
        let (p, ids) = loop_program();
        let _ = Recorder::new(&p, ids[0], FormationConfig { max_blocks: 0 });
    }
}
