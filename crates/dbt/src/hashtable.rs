//! The dispatcher's lookup table: original PC → code-cache entry.
//!
//! Figure 1 of the paper routes every dispatched superblock entry through
//! a hash table; Eq. 3 charges its update on every miss and the Table 2
//! model charges its lookup on every unlinked transition. This is that
//! table, built the way DynamoRIO builds it: open addressing with linear
//! probing over a power-of-two array, tombstone-free deletion via
//! backward-shift, and probe-length statistics so the dispatch cost model
//! can be grounded in measured behaviour rather than a constant.

use cce_core::SuperblockId;
use cce_tinyvm::program::Pc;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    Empty,
    Full(Pc, SuperblockId),
}

/// Open-addressing dispatch table. See the module docs.
#[derive(Debug, Clone)]
pub struct DispatchTable {
    slots: Vec<Slot>,
    len: usize,
    /// Total probes over all lookups (hit or miss).
    probes: u64,
    /// Total lookups.
    lookups: u64,
}

impl DispatchTable {
    /// Creates a table with at least `capacity` slots (rounded up to a
    /// power of two, minimum 8).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> DispatchTable {
        let n = capacity.next_power_of_two().max(8);
        DispatchTable {
            slots: vec![Slot::Empty; n],
            len: 0,
            probes: 0,
            lookups: 0,
        }
    }

    /// Number of mappings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mean probes per lookup so far (1.0 is a perfect hash).
    #[must_use]
    pub fn mean_probe_length(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.probes as f64 / self.lookups as f64
        }
    }

    /// Load factor (0..1).
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        self.len as f64 / self.slots.len() as f64
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn index_of(pc: Pc, mask: usize) -> usize {
        // Fibonacci hashing on the PC.
        ((pc.addr().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize) & mask
    }

    /// Looks up the cache entry for `pc`, counting probes.
    pub fn lookup(&mut self, pc: Pc) -> Option<SuperblockId> {
        self.lookups += 1;
        let mask = self.mask();
        let mut i = Self::index_of(pc, mask);
        loop {
            self.probes += 1;
            match self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(p, id) if p == pc => return Some(id),
                Slot::Full(..) => i = (i + 1) & mask,
            }
        }
    }

    /// Inserts or updates the mapping `pc → id`. Grows at 70% load.
    pub fn insert(&mut self, pc: Pc, id: SuperblockId) {
        if (self.len + 1) * 10 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = Self::index_of(pc, mask);
        loop {
            match self.slots[i] {
                Slot::Empty => {
                    self.slots[i] = Slot::Full(pc, id);
                    self.len += 1;
                    return;
                }
                Slot::Full(p, _) if p == pc => {
                    self.slots[i] = Slot::Full(pc, id);
                    return;
                }
                Slot::Full(..) => i = (i + 1) & mask,
            }
        }
    }

    /// Removes the mapping for `pc` (an evicted superblock), keeping the
    /// probe chains intact via backward-shift deletion. Returns the
    /// removed id, if any.
    pub fn remove(&mut self, pc: Pc) -> Option<SuperblockId> {
        let mask = self.mask();
        let mut i = Self::index_of(pc, mask);
        let removed = loop {
            match self.slots[i] {
                Slot::Empty => return None,
                Slot::Full(p, id) if p == pc => break id,
                Slot::Full(..) => i = (i + 1) & mask,
            }
        };
        // Backward-shift: move later chain members up so no probe chain
        // breaks (tombstones would inflate probe lengths forever). An
        // element at `j` with home slot `h` may fill the hole at `i`
        // exactly when its probe path h→j passes through i, i.e. when the
        // cyclic distance h→j is at least the cyclic distance i→j.
        self.slots[i] = Slot::Empty;
        let n = self.slots.len();
        let mut j = (i + 1) & mask;
        while let Slot::Full(p, id) = self.slots[j] {
            let home = Self::index_of(p, mask);
            let dist_home_j = (j + n - home) & mask;
            let dist_hole_j = (j + n - i) & mask;
            if dist_home_j >= dist_hole_j {
                self.slots[i] = Slot::Full(p, id);
                self.slots[j] = Slot::Empty;
                i = j;
            }
            j = (j + 1) & mask;
        }
        self.len -= 1;
        Some(removed)
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![Slot::Empty; doubled]);
        self.len = 0;
        for s in old {
            if let Slot::Full(p, id) = s {
                self.insert(p, id);
            }
        }
    }
}

impl Default for DispatchTable {
    fn default() -> DispatchTable {
        DispatchTable::with_capacity(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc(n: u64) -> Pc {
        Pc(0x40_0000 + n * 13)
    }

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let mut t = DispatchTable::default();
        for i in 0..500 {
            t.insert(pc(i), sb(i));
        }
        assert_eq!(t.len(), 500);
        for i in 0..500 {
            assert_eq!(t.lookup(pc(i)), Some(sb(i)), "i={i}");
        }
        for i in (0..500).step_by(2) {
            assert_eq!(t.remove(pc(i)), Some(sb(i)));
        }
        assert_eq!(t.len(), 250);
        for i in 0..500u64 {
            let want = if i.is_multiple_of(2) {
                None
            } else {
                Some(sb(i))
            };
            assert_eq!(t.lookup(pc(i)), want, "i={i}");
        }
    }

    #[test]
    fn update_replaces_in_place() {
        let mut t = DispatchTable::default();
        t.insert(pc(1), sb(10));
        t.insert(pc(1), sb(20));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(pc(1)), Some(sb(20)));
    }

    #[test]
    fn missing_keys_return_none() {
        let mut t = DispatchTable::default();
        assert!(t.is_empty());
        assert_eq!(t.lookup(pc(9)), None);
        assert_eq!(t.remove(pc(9)), None);
    }

    #[test]
    fn probe_length_stays_short_under_load() {
        let mut t = DispatchTable::with_capacity(8);
        for i in 0..10_000 {
            t.insert(pc(i), sb(i));
        }
        for i in 0..10_000 {
            assert!(t.lookup(pc(i)).is_some());
        }
        assert!(t.load_factor() <= 0.7 + 1e-9);
        assert!(
            t.mean_probe_length() < 2.5,
            "mean probes {}",
            t.mean_probe_length()
        );
    }

    #[test]
    fn heavy_churn_preserves_chains() {
        // Insert/remove interleaved: backward-shift deletion must never
        // orphan a key.
        let mut t = DispatchTable::with_capacity(16);
        for round in 0u64..50 {
            for i in 0..64 {
                t.insert(pc(round * 64 + i), sb(i));
            }
            for i in 0..64 {
                if (i + round) % 3 != 0 {
                    assert!(
                        t.remove(pc(round * 64 + i)).is_some(),
                        "round {round} i {i}"
                    );
                }
            }
        }
        // Everything that was not removed must still be reachable.
        for round in 0u64..50 {
            for i in 0..64 {
                if (i + round).is_multiple_of(3) {
                    assert_eq!(
                        t.lookup(pc(round * 64 + i)),
                        Some(sb(i)),
                        "round {round} i {i}"
                    );
                }
            }
        }
    }
}
