//! # cce-dbt — a from-scratch dynamic binary translator over TinyVM
//!
//! This crate stands in for DynamoRIO in the reproduced study. It executes
//! a [`cce_tinyvm::Program`] under observation and performs the four tasks
//! of a dynamic optimization system (paper §1):
//!
//! 1. **Profiling** ([`profile`]) — counts executions of candidate trace
//!    heads until they cross the hotness threshold (50, as in DynamoRIO).
//! 2. **Superblock formation** ([`formation`]) — NET-style
//!    next-executing-tail selection: record the dynamically executed block
//!    sequence after a head goes hot, stopping at backward branches,
//!    existing superblock heads, returns and indirect jumps.
//! 3. **Translation** ([`translate`]) — computes the translated size of a
//!    superblock (code expansion plus exit stubs), which is what the code
//!    cache actually stores.
//! 4. **Caching and chaining** ([`engine`]) — inserts superblocks into a
//!    [`cce_core::CodeCache`], patches direct superblock→superblock
//!    transitions into links, and counts the dispatch events that the
//!    execution-time models in `cce-sim` consume.
//!
//! The engine emits a [`trace_log::TraceLog`] — the analogue of the
//! DynamoRIO verbose log the paper saved and replayed: one record per
//! superblock (id, size) and one event per superblock entry, annotated
//! with whether the entry came *directly* from another superblock's exit
//! (a chainable transition). `cce-sim` replays these logs against caches
//! of every granularity.
//!
//! # Example
//!
//! ```
//! use cce_dbt::engine::{Engine, EngineConfig};
//! use cce_tinyvm::gen::{generate, GenConfig};
//!
//! let program = generate(&GenConfig::small(11));
//! let mut config = EngineConfig::default();
//! config.hot_threshold = 2; // the demo program is tiny; go hot quickly
//! let mut engine = Engine::new(&program, config)?;
//! let summary = engine.run(5_000_000);
//! assert!(summary.superblocks_formed > 0);
//! # Ok::<(), cce_dbt::DbtError>(())
//! ```

#![deny(unsafe_code)]

pub mod codegen;
pub mod dispatch;
pub mod engine;
pub mod formation;
pub mod hashtable;
pub mod profile;
pub mod stream;
pub mod superblock;
pub mod trace_bin;
pub mod trace_log;
pub mod translate;

pub use engine::{Engine, EngineConfig, RunSummary};
pub use stream::{FrameStream, StreamFrame, StreamWriter};
pub use superblock::Superblock;
pub use trace_bin::{SharedTrace, TraceReader};
pub use trace_log::{SuperblockInfo, TraceEvent, TraceLog};
pub use translate::TranslationConfig;

use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running the translator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbtError {
    /// The underlying code cache rejected its geometry.
    Cache(cce_core::CacheError),
    /// A configuration field was invalid.
    InvalidConfig(&'static str),
    /// A trace-log file could not be parsed.
    MalformedLog(String),
}

impl fmt::Display for DbtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbtError::Cache(e) => write!(f, "code cache error: {e}"),
            DbtError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            DbtError::MalformedLog(what) => write!(f, "malformed trace log: {what}"),
        }
    }
}

impl Error for DbtError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbtError::Cache(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cce_core::CacheError> for DbtError {
    fn from(e: cce_core::CacheError) -> DbtError {
        DbtError::Cache(e)
    }
}
