//! Execution-count profiling of candidate trace heads.
//!
//! Like DynamoRIO, the translator does not profile every block: only
//! *candidate heads* — targets of backward branches and function entries —
//! accumulate counters, and a head whose count reaches the hotness
//! threshold triggers superblock formation. The paper's systems use a
//! threshold of 50 (§4.1), which is this profiler's default.

use cce_tinyvm::program::Pc;
use std::collections::HashMap;

/// Default hotness threshold (superblock formed at the 50th execution),
/// matching DynamoRIO's configuration in the paper.
pub const DEFAULT_HOT_THRESHOLD: u32 = 50;

/// Counts head executions and reports hotness.
#[derive(Debug, Clone)]
pub struct Profiler {
    threshold: u32,
    counts: HashMap<Pc, u32>,
}

impl Profiler {
    /// Creates a profiler with the given hotness threshold.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` (a zero threshold would form superblocks
    /// for never-executed code).
    #[must_use]
    pub fn new(threshold: u32) -> Profiler {
        assert!(threshold > 0, "hot threshold must be nonzero");
        Profiler {
            threshold,
            counts: HashMap::new(),
        }
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Records one execution of the head at `pc`. Returns `true` exactly
    /// once: on the execution at which the head becomes hot.
    pub fn record(&mut self, pc: Pc) -> bool {
        let c = self.counts.entry(pc).or_insert(0);
        *c += 1;
        *c == self.threshold
    }

    /// Current count for `pc`.
    #[must_use]
    pub fn count(&self, pc: Pc) -> u32 {
        self.counts.get(&pc).copied().unwrap_or(0)
    }

    /// Forgets a head (called once it has been promoted to a superblock,
    /// so the table stays small).
    pub fn retire(&mut self, pc: Pc) {
        self.counts.remove(&pc);
    }

    /// Number of heads currently being profiled.
    #[must_use]
    pub fn tracked(&self) -> usize {
        self.counts.len()
    }
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new(DEFAULT_HOT_THRESHOLD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_threshold() {
        let mut p = Profiler::new(3);
        let pc = Pc(0x400000);
        assert!(!p.record(pc));
        assert!(!p.record(pc));
        assert!(p.record(pc), "third execution crosses the threshold");
        assert!(!p.record(pc), "must not fire twice");
        assert_eq!(p.count(pc), 4);
    }

    #[test]
    fn heads_are_independent() {
        let mut p = Profiler::new(2);
        let a = Pc(1);
        let b = Pc(2);
        assert!(!p.record(a));
        assert!(!p.record(b));
        assert!(p.record(a));
        assert!(p.record(b));
        assert_eq!(p.tracked(), 2);
    }

    #[test]
    fn retire_frees_the_entry() {
        let mut p = Profiler::new(2);
        let pc = Pc(9);
        p.record(pc);
        p.retire(pc);
        assert_eq!(p.tracked(), 0);
        assert_eq!(p.count(pc), 0);
        // Counting restarts from scratch if re-profiled.
        assert!(!p.record(pc));
        assert!(p.record(pc));
    }

    #[test]
    fn default_matches_dynamorio() {
        assert_eq!(Profiler::default().threshold(), DEFAULT_HOT_THRESHOLD);
        assert_eq!(DEFAULT_HOT_THRESHOLD, 50);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_threshold_panics() {
        let _ = Profiler::new(0);
    }
}
