//! Trace framing over a live byte stream (DESIGN.md §13).
//!
//! The chunked binary format of [`crate::trace_bin`] was designed for
//! files, but nothing in its layout is file-specific: magic + version,
//! a header frame, CRC-framed event chunks, an explicit terminator.
//! This module reuses exactly that framing over any [`Write`]/[`Read`]
//! byte stream — an in-process pipe, a Unix socket — so a live traffic
//! generator and the offline tooling speak one wire format and a
//! captured stream is a valid trace file byte for byte.
//!
//! Two properties matter for serving that a file loader never needed:
//!
//! * **Per-frame CRC recovery.** Every frame is length-prefixed, so by
//!   the time a CRC mismatch is detected the whole frame has been
//!   consumed and the stream is still frame-aligned. [`FrameStream`]
//!   therefore reports a bad frame as [`StreamFrame::Rejected`] — one
//!   lost chunk — and keeps decoding, instead of killing the connection
//!   the way [`crate::trace_bin::load_binary`] kills a file load.
//! * **Disconnect detection.** A generator that dies mid-chunk truncates
//!   the stream somewhere inside a frame. That is *not* recoverable
//!   (alignment is gone), so it surfaces as a hard `Err` — the server's
//!   signal to shut the connection down cleanly.

use crate::trace_bin::{
    decode_chunk, encode_event, encode_header, read_header, write_frame, MAGIC, VERSION,
};
use crate::trace_log::{SuperblockInfo, TraceEvent, TraceLogError};
use cce_util::crc::crc32;
use std::io::{Read, Write};

/// Upper bound on a single frame accepted from a live stream. A length
/// prefix beyond this cannot come from a sane generator (the default
/// chunk is ~64K events ≈ a few hundred KB encoded), so rather than
/// buffering gigabytes on a corrupt length the stream is declared dead.
pub const MAX_STREAM_FRAME_BYTES: u32 = 1 << 26;

/// Encodes one event-chunk payload (varint count, then each event) —
/// the bytes [`StreamWriter::write_chunk`] frames. Public so fault
/// injectors and tests can build frames by hand (e.g. with a wrong CRC).
#[must_use]
pub fn encode_chunk_payload(events: &[TraceEvent]) -> Vec<u8> {
    let mut payload = Vec::new();
    cce_util::varint::write_u64(&mut payload, events.len() as u64);
    for &ev in events {
        encode_event(&mut payload, ev);
    }
    payload
}

/// Writes one raw frame with an explicit CRC. With `crc32(payload)` this
/// is exactly what [`StreamWriter::write_chunk`] emits; any other value
/// produces a frame the receiver must reject — the corrupt-frame fault
/// injection the serve tests rely on.
///
/// # Errors
///
/// Returns any I/O error from the writer, or
/// [`TraceLogError::Corrupt`] if the payload exceeds `u32::MAX` bytes.
pub fn write_frame_raw<W: Write>(w: &mut W, crc: u32, payload: &[u8]) -> Result<(), TraceLogError> {
    let len = u32::try_from(payload.len()).map_err(|_| TraceLogError::Corrupt("frame too big"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Incrementally writes a binary trace to a byte stream: magic, version
/// and header up front, then event chunks as they are produced, then the
/// terminator. The bytes are identical to
/// [`crate::trace_bin::save_binary_chunked`] over the same events — a
/// capture of the stream replays as an ordinary trace file.
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    writer: W,
    payload: Vec<u8>,
}

impl<W: Write> StreamWriter<W> {
    /// Opens the stream: writes magic, version and the header frame
    /// (name, total event count, superblock registry).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn new(
        mut writer: W,
        name: &str,
        event_count: u64,
        registry: &[SuperblockInfo],
    ) -> Result<StreamWriter<W>, TraceLogError> {
        writer.write_all(&MAGIC)?;
        writer.write_all(&VERSION.to_le_bytes())?;
        let payload = encode_header(name, event_count, registry);
        let mut sw = StreamWriter {
            writer,
            payload: Vec::new(),
        };
        write_frame(&mut sw.writer, &payload)?;
        Ok(sw)
    }

    /// Frames and writes one event chunk.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_chunk(&mut self, events: &[TraceEvent]) -> Result<(), TraceLogError> {
        self.payload.clear();
        cce_util::varint::write_u64(&mut self.payload, events.len() as u64);
        for &ev in events {
            encode_event(&mut self.payload, ev);
        }
        write_frame(&mut self.writer, &self.payload)
    }

    /// Writes a pre-encoded chunk payload with an explicit CRC — the
    /// fault-injection escape hatch ([`write_frame_raw`] on the owned
    /// writer).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn write_raw(&mut self, crc: u32, payload: &[u8]) -> Result<(), TraceLogError> {
        write_frame_raw(&mut self.writer, crc, payload)
    }

    /// Writes the terminator, flushes, and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn finish(mut self) -> Result<W, TraceLogError> {
        self.writer.write_all(&0u32.to_le_bytes())?;
        self.writer.flush()?;
        Ok(self.writer)
    }
}

/// One frame delivered by [`FrameStream::next_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamFrame {
    /// A CRC-clean event chunk, decoded.
    Events(Vec<TraceEvent>),
    /// A frame that failed its CRC or did not decode. The frame was
    /// fully consumed, so the stream is still aligned: keep reading.
    Rejected(&'static str),
    /// The clean terminator — the generator finished and said so.
    End,
}

/// The receive side: reads the header synchronously, then yields frames
/// one at a time, distinguishing recoverable corruption (frame-aligned,
/// keep going) from stream death (truncation / I/O, give up).
#[derive(Debug)]
pub struct FrameStream<R: Read> {
    reader: R,
    header: crate::trace_bin::Header,
    buf: Vec<u8>,
}

impl<R: Read> FrameStream<R> {
    /// Reads magic, version and the header frame from the stream.
    ///
    /// # Errors
    ///
    /// Returns [`TraceLogError::BadMagic`],
    /// [`TraceLogError::UnsupportedVersion`] or
    /// [`TraceLogError::Corrupt`] — a header that does not parse means
    /// there is no session to serve.
    pub fn new(mut reader: R) -> Result<FrameStream<R>, TraceLogError> {
        let header = read_header(&mut reader)?;
        Ok(FrameStream {
            reader,
            header,
            buf: Vec::new(),
        })
    }

    /// Workload name from the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.header.name
    }

    /// Total events the header promises.
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.header.event_count
    }

    /// The superblock registry, available before any chunk.
    #[must_use]
    pub fn registry(&self) -> &[SuperblockInfo] {
        &self.header.superblocks
    }

    /// Reads the next frame.
    ///
    /// # Errors
    ///
    /// `Err` means the stream is dead: truncated inside a frame (the
    /// generator disconnected mid-chunk), an I/O failure, or a length
    /// prefix beyond [`MAX_STREAM_FRAME_BYTES`]. CRC/decode failures on
    /// a complete frame are **not** errors — they come back as
    /// [`StreamFrame::Rejected`] and the stream stays usable.
    pub fn next_frame(&mut self) -> Result<StreamFrame, TraceLogError> {
        let mut word = [0u8; 4];
        self.reader
            .read_exact(&mut word)
            .map_err(|_| TraceLogError::Corrupt("disconnected between frames"))?;
        let len = u32::from_le_bytes(word);
        if len == 0 {
            return Ok(StreamFrame::End);
        }
        if len > MAX_STREAM_FRAME_BYTES {
            return Err(TraceLogError::Corrupt("frame length out of range"));
        }
        self.reader
            .read_exact(&mut word)
            .map_err(|_| TraceLogError::Corrupt("disconnected mid-frame"))?;
        let expect = u32::from_le_bytes(word);
        self.buf.clear();
        let got = (&mut self.reader)
            .take(u64::from(len))
            .read_to_end(&mut self.buf)?;
        if got != len as usize {
            return Err(TraceLogError::Corrupt("disconnected mid-frame"));
        }
        if crc32(&self.buf) != expect {
            return Ok(StreamFrame::Rejected("frame crc mismatch"));
        }
        match decode_chunk(&self.buf) {
            Ok(events) => Ok(StreamFrame::Events(events)),
            Err(_) => Ok(StreamFrame::Rejected("frame did not decode")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_bin::load_binary;
    use crate::trace_log::TraceLog;
    use cce_core::SuperblockId;
    use cce_tinyvm::program::Pc;

    fn sample(events: usize) -> TraceLog {
        let mut log = TraceLog::new("stream-sample");
        for i in 0..8u64 {
            log.record_superblock(SuperblockInfo {
                id: SuperblockId(i),
                head_pc: Pc(0x1000 + i * 64),
                size: 80 + i as u32 * 5,
                guest_blocks: 3,
                exits: 2,
            });
        }
        let mut prev = None;
        for i in 0..events as u64 {
            let id = SuperblockId(i % 8);
            log.record_access(id, prev.filter(|_| i % 2 == 1));
            prev = Some(id);
        }
        log
    }

    fn stream_bytes(log: &TraceLog, chunk: usize) -> Vec<u8> {
        let mut w = StreamWriter::new(
            Vec::new(),
            &log.name,
            log.events.len() as u64,
            &log.superblocks,
        )
        .unwrap();
        for c in log.events.chunks(chunk) {
            w.write_chunk(c).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn stream_writer_matches_the_file_format_exactly() {
        let log = sample(500);
        let streamed = stream_bytes(&log, 64);
        let mut filed = Vec::new();
        crate::trace_bin::save_binary_chunked(&log, &mut filed, 64).unwrap();
        assert_eq!(streamed, filed, "stream and file bytes must be identical");
        assert_eq!(load_binary(streamed.as_slice()).unwrap(), log);
    }

    #[test]
    fn frame_stream_roundtrips() {
        let log = sample(300);
        let bytes = stream_bytes(&log, 50);
        let mut fs = FrameStream::new(bytes.as_slice()).unwrap();
        assert_eq!(fs.name(), "stream-sample");
        assert_eq!(fs.event_count(), 300);
        assert_eq!(fs.registry(), log.superblocks.as_slice());
        let mut events = Vec::new();
        loop {
            match fs.next_frame().unwrap() {
                StreamFrame::Events(evs) => events.extend(evs),
                StreamFrame::Rejected(r) => panic!("unexpected rejection: {r}"),
                StreamFrame::End => break,
            }
        }
        assert_eq!(events, log.events);
    }

    #[test]
    fn corrupt_frame_is_rejected_and_the_stream_recovers() {
        let log = sample(300);
        // Write 6 chunks of 50; hand-corrupt the third (wrong CRC).
        let mut w = StreamWriter::new(
            Vec::new(),
            &log.name,
            log.events.len() as u64,
            &log.superblocks,
        )
        .unwrap();
        for (i, c) in log.events.chunks(50).enumerate() {
            if i == 2 {
                let payload = encode_chunk_payload(c);
                w.write_raw(crc32(&payload) ^ 0xdead_beef, &payload)
                    .unwrap();
            } else {
                w.write_chunk(c).unwrap();
            }
        }
        let bytes = w.finish().unwrap();

        let mut fs = FrameStream::new(bytes.as_slice()).unwrap();
        let mut events = Vec::new();
        let mut rejected = 0;
        loop {
            match fs.next_frame().unwrap() {
                StreamFrame::Events(evs) => events.extend(evs),
                StreamFrame::Rejected(_) => rejected += 1,
                StreamFrame::End => break,
            }
        }
        assert_eq!(rejected, 1, "exactly the corrupted frame is rejected");
        assert_eq!(events.len(), 250, "the other five chunks all decode");
        assert_eq!(events[..100], log.events[..100]);
        assert_eq!(events[100..], log.events[150..]);
    }

    #[test]
    fn flipped_payload_bit_is_rejected_not_fatal() {
        let log = sample(200);
        let mut bytes = stream_bytes(&log, 50);
        // Flip a byte well inside the stream body (past header) but not
        // in a length word: find the second chunk frame and poke its
        // payload. Easiest robust approach: flip a byte near the end of
        // the buffer minus the terminator and the last frame header.
        let at = bytes.len() - 12;
        bytes[at] ^= 0x40;
        let mut fs = FrameStream::new(bytes.as_slice()).unwrap();
        let mut saw_rejected = false;
        loop {
            match fs.next_frame() {
                Ok(StreamFrame::Events(_)) => {}
                Ok(StreamFrame::Rejected(_)) => saw_rejected = true,
                Ok(StreamFrame::End) => break,
                Err(e) => panic!("payload corruption must not kill the stream: {e}"),
            }
        }
        assert!(saw_rejected);
    }

    #[test]
    fn truncation_mid_frame_is_a_disconnect() {
        let log = sample(200);
        let bytes = stream_bytes(&log, 50);
        // Cut the stream inside the last event chunk.
        let cut = bytes.len() - 30;
        let mut fs = FrameStream::new(&bytes[..cut]).unwrap();
        let err;
        loop {
            match fs.next_frame() {
                Ok(StreamFrame::End) => panic!("truncated stream must not end cleanly"),
                Ok(_) => {}
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(TraceLogError::Corrupt(_))));
    }

    #[test]
    fn missing_terminator_is_a_disconnect() {
        let log = sample(64);
        let mut w = StreamWriter::new(
            Vec::new(),
            &log.name,
            log.events.len() as u64,
            &log.superblocks,
        )
        .unwrap();
        w.write_chunk(&log.events).unwrap();
        // Drop the writer without finish(): no terminator on the wire.
        let bytes = {
            let StreamWriter { writer, .. } = w;
            writer
        };
        let mut fs = FrameStream::new(bytes.as_slice()).unwrap();
        assert!(matches!(fs.next_frame(), Ok(StreamFrame::Events(_))));
        assert!(
            fs.next_frame().is_err(),
            "EOF without terminator is a disconnect"
        );
    }

    #[test]
    fn absurd_length_prefix_is_a_disconnect() {
        let log = sample(10);
        let mut bytes = stream_bytes(&log, 100);
        // Overwrite the first chunk frame's length with a huge value.
        // Header frame starts at byte 6; find its end.
        let header_len = u32::from_le_bytes([bytes[6], bytes[7], bytes[8], bytes[9]]) as usize;
        let chunk_at = 6 + 8 + header_len;
        bytes[chunk_at..chunk_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut fs = FrameStream::new(bytes.as_slice()).unwrap();
        assert!(fs.next_frame().is_err());
    }
}
