//! Superblock representation.
//!
//! A superblock is a single-entry, multiple-exit region (Hwu et al.)
//! assembled from the dynamically executed basic-block sequence starting
//! at a hot head. Control enters only at the top; every conditional branch
//! whose other arm leaves the recorded path becomes a *side exit*, and the
//! final block's terminator provides the remaining exits. Each exit is a
//! potential chain point: if its target superblock is cached, the exit
//! stub is patched into a direct link.

use cce_core::SuperblockId;
use cce_tinyvm::program::{BlockId, Pc, Program, Terminator};

/// A formed superblock: guest path plus translated-code geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Superblock {
    /// Cache identity (stable across evictions and regenerations).
    pub id: SuperblockId,
    /// Guest address of the entry block.
    pub head_pc: Pc,
    /// The recorded guest path, in execution order.
    pub blocks: Vec<BlockId>,
    /// Guest bytes covered by the path.
    pub guest_bytes: u32,
    /// Translated size in bytes — what the code cache stores.
    pub translated_bytes: u32,
    /// Number of exits (side exits + final exits).
    pub exits: u32,
}

impl Superblock {
    /// Number of guest basic blocks in the path.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }
}

/// Counts the exits of a recorded path: one per conditional-branch arm or
/// indirect target that leaves the path, plus the final fall-out.
///
/// # Panics
///
/// Panics if `path` is empty or contains ids not in `program`.
#[must_use]
pub fn count_exits(program: &Program, path: &[BlockId]) -> u32 {
    assert!(!path.is_empty(), "a superblock has at least one block");
    let mut exits = 0u32;
    for (i, &bid) in path.iter().enumerate() {
        let next = path.get(i + 1).copied();
        let term = &program.block(bid).terminator;
        match term {
            Terminator::Jump(t) => {
                if next != Some(*t) {
                    exits += 1;
                }
            }
            Terminator::Branch {
                taken, fallthrough, ..
            } => {
                // The arm that stays on the path is not an exit; the other
                // is. If neither arm is the recorded successor (path ended
                // here), both arms are exits.
                let on_path =
                    usize::from(next == Some(*taken)) + usize::from(next == Some(*fallthrough));
                exits += 2 - on_path.min(2) as u32;
            }
            Terminator::Call { .. } | Terminator::Return | Terminator::Halt => {
                // Calls/returns leave the superblock through the dispatcher.
                exits += 1;
            }
            Terminator::IndirectJump { targets, .. } => {
                // An indirect branch is one exit stub (it cannot be
                // statically chained to all its targets), regardless of the
                // target count.
                let _ = targets;
                exits += 1;
            }
        }
    }
    exits
}

/// Sums the guest byte sizes of a path.
///
/// # Panics
///
/// Panics if `path` contains ids not in `program`.
#[must_use]
pub fn guest_bytes(program: &Program, path: &[BlockId]) -> u32 {
    path.iter().map(|&b| program.block(b).byte_len()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cce_tinyvm::builder::ProgramBuilder;
    use cce_tinyvm::isa::{Cond, Instr, Reg};

    /// main: e -> (branch) b1 / b2; b1 -> b3; b3 halt; b2 -> b3.
    fn diamond() -> (Program, Vec<BlockId>) {
        let mut b = ProgramBuilder::new();
        let f = b.begin_function("main");
        let e = b.block(f);
        let b1 = b.block(f);
        let b2 = b.block(f);
        let b3 = b.block(f);
        b.push(
            e,
            Instr::MovImm {
                dst: Reg::R1,
                imm: 1,
            },
        );
        b.branch(e, Cond::Eq, Reg::R1, Reg::ZERO, b2, b1);
        b.push(b1, Instr::Nop);
        b.jump(b1, b3);
        b.push(b2, Instr::Nop);
        b.jump(b2, b3);
        b.halt(b3);
        b.set_entry(f, e);
        (b.finish().unwrap(), vec![e, b1, b3])
    }

    #[test]
    fn exit_counting_on_a_diamond_path() {
        let (p, path) = diamond();
        // e: branch with one arm (b1) on path → 1 side exit (b2).
        // b1: jump to b3 on path → 0 exits.
        // b3: halt → 1 exit.
        assert_eq!(count_exits(&p, &path), 2);
    }

    #[test]
    fn straightline_path_has_single_exit() {
        let (p, path) = diamond();
        // Just the tail block.
        assert_eq!(count_exits(&p, &path[2..]), 1);
    }

    #[test]
    fn path_ending_at_branch_counts_both_arms() {
        let (p, path) = diamond();
        // Path of only the entry block: both branch arms exit.
        assert_eq!(count_exits(&p, &path[..1]), 2);
    }

    #[test]
    fn guest_bytes_sums_block_lengths() {
        let (p, path) = diamond();
        let expect: u32 = path.iter().map(|&b| p.block(b).byte_len()).sum();
        assert_eq!(guest_bytes(&p, &path), expect);
        assert!(expect > 0);
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn empty_path_panics() {
        let (p, _) = diamond();
        let _ = count_exits(&p, &[]);
    }
}
