//! The chunked binary trace format and its streaming reader
//! (DESIGN.md §11).
//!
//! JSON trace logs ([`TraceLog::save`]) are the repeatability format of
//! record, but they force O(trace) peak memory: the whole file becomes a
//! `String`, then a parsed JSON tree, then the event `Vec`, before the
//! first access is simulated. This module adds the scale path the
//! ROADMAP calls for — a compact binary layout that decodes 3–10× faster
//! and a [`TraceReader`] that overlaps disk I/O + decode with simulation
//! at O(chunk) peak memory.
//!
//! # Layout
//!
//! ```text
//! magic  b"CCET"                      4 bytes
//! version u16 LE                      (currently 1)
//! header frame                        len u32 LE · crc32 u32 LE · payload
//!   payload: varint name_len · name bytes
//!            varint event_count
//!            varint superblock_count
//!            per superblock: varint id · head_pc · size · guest_blocks · exits
//! event chunks (≤ chunk_events each)  len u32 LE · crc32 u32 LE · payload
//!   payload: varint chunk_event_count
//!            per event: varint id · tag u8 (0 = dispatcher, 1 = direct)
//!                       [varint from, when tag = 1]
//! terminator                          len u32 LE = 0
//! ```
//!
//! Every frame carries its own CRC-32 (ISO-HDLC, zlib-compatible), so a
//! flipped bit or a truncated tail is a hard [`TraceLogError::Corrupt`]
//! instead of a silently wrong figure. The explicit terminator makes
//! truncation at a frame boundary detectable too. All integers are
//! varints ([`cce_util::varint`]): superblock ids and sizes are small,
//! so real logs shrink ~4× against the JSON form. Storing `event_count`
//! in the header lets streaming replay place its periodic link-graph
//! censuses exactly where in-memory replay does — byte-identical
//! results at any chunk size.

use crate::trace_log::{SuperblockInfo, TraceEvent, TraceLog, TraceLogError};
use cce_core::SuperblockId;
use cce_tinyvm::program::Pc;
use cce_util::crc::crc32;
use cce_util::varint;
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::Arc;

/// First bytes of every binary trace file.
pub const MAGIC: [u8; 4] = *b"CCET";

/// The format version this build writes and reads.
pub const VERSION: u16 = 1;

/// Events per chunk written by [`save_binary`]: big enough to amortize
/// framing and syscalls, small enough that a reader buffering a few
/// chunks stays in the L2-cache ballpark (~64K events ≈ 0.5 MB decoded).
pub const DEFAULT_CHUNK_EVENTS: usize = 64 * 1024;

/// Decoded chunks the reader thread may buffer ahead of the consumer.
pub const DEFAULT_READER_DEPTH: usize = 2;

pub(crate) fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), TraceLogError> {
    let len = u32::try_from(payload.len()).map_err(|_| TraceLogError::Corrupt("frame too big"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

pub(crate) fn encode_event(buf: &mut Vec<u8>, ev: TraceEvent) {
    let TraceEvent::Access { id, direct_from } = ev;
    varint::write_u64(buf, id.0);
    match direct_from {
        None => buf.push(0),
        Some(from) => {
            buf.push(1);
            varint::write_u64(buf, from.0);
        }
    }
}

/// Serializes `log` in the binary format with the default chunking.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_binary<W: Write>(log: &TraceLog, writer: W) -> Result<(), TraceLogError> {
    save_binary_chunked(log, writer, DEFAULT_CHUNK_EVENTS)
}

/// [`save_binary`] with an explicit chunk size (clamped to ≥ 1). Any
/// chunk size produces a valid file that replays identically; the knob
/// exists for tests and for tuning reader memory.
///
/// # Errors
///
/// Returns any I/O error from the writer.
pub fn save_binary_chunked<W: Write>(
    log: &TraceLog,
    mut writer: W,
    chunk_events: usize,
) -> Result<(), TraceLogError> {
    let chunk_events = chunk_events.max(1);
    writer.write_all(&MAGIC)?;
    writer.write_all(&VERSION.to_le_bytes())?;

    let mut payload = encode_header(&log.name, log.events.len() as u64, &log.superblocks);
    write_frame(&mut writer, &payload)?;

    for chunk in log.events.chunks(chunk_events) {
        payload.clear();
        varint::write_u64(&mut payload, chunk.len() as u64);
        for &ev in chunk {
            encode_event(&mut payload, ev);
        }
        write_frame(&mut writer, &payload)?;
    }
    writer.write_all(&0u32.to_le_bytes())?; // terminator
    Ok(())
}

/// Encodes the header-frame payload: name, total event count, registry.
pub(crate) fn encode_header(
    name: &str,
    event_count: u64,
    superblocks: &[SuperblockInfo],
) -> Vec<u8> {
    let mut payload = Vec::new();
    varint::write_u64(&mut payload, name.len() as u64);
    payload.extend_from_slice(name.as_bytes());
    varint::write_u64(&mut payload, event_count);
    varint::write_u64(&mut payload, superblocks.len() as u64);
    for s in superblocks {
        varint::write_u64(&mut payload, s.id.0);
        varint::write_u64(&mut payload, s.head_pc.0);
        varint::write_u64(&mut payload, u64::from(s.size));
        varint::write_u64(&mut payload, u64::from(s.guest_blocks));
        varint::write_u64(&mut payload, u64::from(s.exits));
    }
    payload
}

/// Reads one CRC-checked frame; `Ok(None)` is the terminator.
pub(crate) fn read_frame<R: Read>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    what: &'static str,
) -> Result<Option<()>, TraceLogError> {
    let mut word = [0u8; 4];
    reader
        .read_exact(&mut word)
        .map_err(|_| TraceLogError::Corrupt(what))?;
    let len = u32::from_le_bytes(word) as usize;
    if len == 0 {
        return Ok(None);
    }
    reader
        .read_exact(&mut word)
        .map_err(|_| TraceLogError::Corrupt(what))?;
    let expect = u32::from_le_bytes(word);
    buf.clear();
    // `take` + `read_to_end` so a corrupt length cannot force a huge
    // up-front allocation: memory grows only with bytes actually read.
    let got = reader.take(len as u64).read_to_end(buf)?;
    if got != len {
        return Err(TraceLogError::Corrupt(what));
    }
    if crc32(buf) != expect {
        return Err(TraceLogError::Corrupt("frame crc mismatch"));
    }
    Ok(Some(()))
}

fn corrupt(what: &'static str) -> impl FnOnce() -> TraceLogError {
    move || TraceLogError::Corrupt(what)
}

/// The decoded header frame: the registry and the event count, known
/// before any event chunk is touched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Header {
    pub(crate) name: String,
    pub(crate) event_count: u64,
    pub(crate) superblocks: Vec<SuperblockInfo>,
}

pub(crate) fn read_header<R: Read>(reader: &mut R) -> Result<Header, TraceLogError> {
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|_| TraceLogError::BadMagic)?;
    if magic != MAGIC {
        return Err(TraceLogError::BadMagic);
    }
    let mut ver = [0u8; 2];
    reader
        .read_exact(&mut ver)
        .map_err(|_| TraceLogError::Corrupt("truncated version"))?;
    let version = u16::from_le_bytes(ver);
    if version != VERSION {
        return Err(TraceLogError::UnsupportedVersion(version));
    }

    let mut payload = Vec::new();
    read_frame(reader, &mut payload, "truncated header")?
        .ok_or(TraceLogError::Corrupt("missing header frame"))?;

    let pos = &mut 0usize;
    let name_len = varint::read_u64(&payload, pos).ok_or_else(corrupt("header varint"))?;
    let name_end = pos
        .checked_add(usize::try_from(name_len).map_err(|_| TraceLogError::Corrupt("name length"))?)
        .ok_or(TraceLogError::Corrupt("name length"))?;
    let name_bytes = payload
        .get(*pos..name_end)
        .ok_or(TraceLogError::Corrupt("name length"))?;
    let name = std::str::from_utf8(name_bytes)
        .map_err(|_| TraceLogError::Corrupt("name utf-8"))?
        .to_owned();
    *pos = name_end;

    let event_count = varint::read_u64(&payload, pos).ok_or_else(corrupt("header varint"))?;
    let sb_count = varint::read_u64(&payload, pos).ok_or_else(corrupt("header varint"))?;
    let sb_count =
        usize::try_from(sb_count).map_err(|_| TraceLogError::Corrupt("registry size"))?;
    // Each registry entry is ≥ 5 bytes; reject counts the payload
    // cannot possibly hold before reserving anything.
    if sb_count > payload.len().saturating_sub(*pos) {
        return Err(TraceLogError::Corrupt("registry size"));
    }
    let mut superblocks = Vec::with_capacity(sb_count);
    for _ in 0..sb_count {
        let bad = "registry varint";
        superblocks.push(SuperblockInfo {
            id: SuperblockId(varint::read_u64(&payload, pos).ok_or_else(corrupt(bad))?),
            head_pc: Pc(varint::read_u64(&payload, pos).ok_or_else(corrupt(bad))?),
            size: varint::read_u32(&payload, pos).ok_or_else(corrupt(bad))?,
            guest_blocks: varint::read_u32(&payload, pos).ok_or_else(corrupt(bad))?,
            exits: varint::read_u32(&payload, pos).ok_or_else(corrupt(bad))?,
        });
    }
    if *pos != payload.len() {
        return Err(TraceLogError::Corrupt("header trailing bytes"));
    }
    Ok(Header {
        name,
        event_count,
        superblocks,
    })
}

pub(crate) fn decode_chunk(payload: &[u8]) -> Result<Vec<TraceEvent>, TraceLogError> {
    let pos = &mut 0usize;
    let count = varint::read_u64(payload, pos).ok_or_else(corrupt("event varint"))?;
    // Each event is ≥ 2 bytes; a count beyond that is structurally lying.
    let count = usize::try_from(count).map_err(|_| TraceLogError::Corrupt("chunk event count"))?;
    if count > payload.len() / 2 + 1 {
        return Err(TraceLogError::Corrupt("chunk event count"));
    }
    let mut events = Vec::with_capacity(count);
    for _ in 0..count {
        let bad = "event varint";
        let id = SuperblockId(varint::read_u64(payload, pos).ok_or_else(corrupt(bad))?);
        let tag = *payload.get(*pos).ok_or_else(corrupt(bad))?;
        *pos += 1;
        let direct_from = match tag {
            0 => None,
            1 => Some(SuperblockId(
                varint::read_u64(payload, pos).ok_or_else(corrupt(bad))?,
            )),
            _ => return Err(TraceLogError::Corrupt("event tag")),
        };
        events.push(TraceEvent::Access { id, direct_from });
    }
    if *pos != payload.len() {
        return Err(TraceLogError::Corrupt("chunk trailing bytes"));
    }
    Ok(events)
}

/// Deserializes a complete binary trace written by [`save_binary`]
/// (sequential, single-threaded; use [`TraceReader`] to stream).
///
/// # Errors
///
/// Returns [`TraceLogError::BadMagic`],
/// [`TraceLogError::UnsupportedVersion`], [`TraceLogError::Corrupt`] or
/// an I/O error.
pub fn load_binary<R: Read>(mut reader: R) -> Result<TraceLog, TraceLogError> {
    let header = read_header(&mut reader)?;
    let mut events = Vec::with_capacity(
        usize::try_from(header.event_count)
            .unwrap_or(0)
            .min(1 << 24),
    );
    let mut payload = Vec::new();
    while read_frame(&mut reader, &mut payload, "truncated chunk")?.is_some() {
        events.extend(decode_chunk(&payload)?);
    }
    if events.len() as u64 != header.event_count {
        return Err(TraceLogError::Corrupt("event count mismatch"));
    }
    Ok(TraceLog {
        name: header.name,
        superblocks: header.superblocks,
        events,
    })
}

/// Sniffs whether `first` (≥ 4 bytes of a file) is the binary format.
#[must_use]
pub fn is_binary(first: &[u8]) -> bool {
    first.len() >= MAGIC.len() && first[..MAGIC.len()] == MAGIC
}

/// Loads a trace from `path`, auto-detecting JSON vs binary by magic.
///
/// # Errors
///
/// Propagates the format-specific load error.
pub fn load_path_auto(path: &Path) -> Result<TraceLog, TraceLogError> {
    let bytes = std::fs::read(path)?;
    if is_binary(&bytes) {
        load_binary(bytes.as_slice())
    } else {
        TraceLog::load(bytes.as_slice())
    }
}

/// A streaming binary-trace reader: a dedicated thread reads and
/// decodes frames, handing `Arc<[TraceEvent]>` chunks to the consumer
/// through a bounded channel. Disk I/O + decode therefore overlap with
/// whatever the consumer does (simulation), and peak decoded-event
/// memory is O(depth × chunk), never O(trace).
///
/// The header (registry, name, event count) is read synchronously by
/// [`TraceReader::new`], so sizing decisions (`maxCache`, unit clamps)
/// need no second pass over the file.
#[derive(Debug)]
pub struct TraceReader {
    name: String,
    event_count: u64,
    superblocks: Arc<[SuperblockInfo]>,
    /// `Some` until the channel reports the decoder is done/dead.
    rx: Option<Receiver<Result<Arc<[TraceEvent]>, TraceLogError>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    /// Decoded events currently buffered ahead of the consumer.
    buffered: Arc<AtomicUsize>,
    /// High-water mark of `buffered` — the bounded-memory receipt.
    high_water: Arc<AtomicUsize>,
}

fn decode_loop<R: Read>(
    mut reader: R,
    tx: &SyncSender<Result<Arc<[TraceEvent]>, TraceLogError>>,
    buffered: &AtomicUsize,
    high_water: &AtomicUsize,
) {
    let mut payload = Vec::new();
    loop {
        let frame = match read_frame(&mut reader, &mut payload, "truncated chunk") {
            Ok(Some(())) => decode_chunk(&payload),
            Ok(None) => return, // clean terminator
            Err(e) => Err(e),
        };
        match frame {
            Ok(events) => {
                let n = events.len();
                let chunk: Arc<[TraceEvent]> = events.into();
                let now = buffered.fetch_add(n, Ordering::Relaxed) + n;
                high_water.fetch_max(now, Ordering::Relaxed);
                if tx.send(Ok(chunk)).is_err() {
                    return; // consumer dropped the reader
                }
            }
            Err(e) => {
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

impl TraceReader {
    /// Opens `path` for streaming with the default read-ahead depth.
    ///
    /// # Errors
    ///
    /// Returns any open/header error.
    pub fn open(path: &Path) -> Result<TraceReader, TraceLogError> {
        let file = std::fs::File::open(path)?;
        TraceReader::new(std::io::BufReader::new(file))
    }

    /// Starts streaming from `reader` with the default depth.
    ///
    /// # Errors
    ///
    /// Returns any header error ([`TraceLogError::BadMagic`],
    /// [`TraceLogError::UnsupportedVersion`], [`TraceLogError::Corrupt`],
    /// I/O).
    pub fn new<R: Read + Send + 'static>(reader: R) -> Result<TraceReader, TraceLogError> {
        TraceReader::with_depth(reader, DEFAULT_READER_DEPTH)
    }

    /// Starts streaming with an explicit channel depth: the decoder may
    /// run at most `depth` complete chunks (plus the one it is handing
    /// over) ahead of the consumer.
    ///
    /// # Errors
    ///
    /// Returns any header error; see [`TraceReader::new`].
    pub fn with_depth<R: Read + Send + 'static>(
        mut reader: R,
        depth: usize,
    ) -> Result<TraceReader, TraceLogError> {
        let header = read_header(&mut reader)?;
        let (tx, rx) = std::sync::mpsc::sync_channel(depth.max(1));
        let buffered = Arc::new(AtomicUsize::new(0));
        let high_water = Arc::new(AtomicUsize::new(0));
        let (b, h) = (Arc::clone(&buffered), Arc::clone(&high_water));
        let handle = std::thread::Builder::new()
            .name("cce-trace-decode".to_owned())
            .spawn(move || decode_loop(reader, &tx, &b, &h))
            .map_err(TraceLogError::Io)?;
        Ok(TraceReader {
            name: header.name,
            event_count: header.event_count,
            superblocks: header.superblocks.into(),
            rx: Some(rx),
            handle: Some(handle),
            buffered,
            high_water,
        })
    }

    /// Workload name from the header.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total events the header promises (drives census placement).
    #[must_use]
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// The superblock registry, available before any chunk.
    #[must_use]
    pub fn superblocks(&self) -> &[SuperblockInfo] {
        &self.superblocks
    }

    /// A shared handle to the registry (for [`SharedTrace`]-style reuse).
    #[must_use]
    pub fn superblocks_shared(&self) -> Arc<[SuperblockInfo]> {
        Arc::clone(&self.superblocks)
    }

    /// The next decoded chunk, blocking on the decoder if it is behind;
    /// `None` after the final chunk. The first error is final: the
    /// decoder stops at it.
    pub fn next_chunk(&mut self) -> Option<Result<Arc<[TraceEvent]>, TraceLogError>> {
        let got = self.rx.as_ref()?.recv().ok()?;
        if let Ok(chunk) = &got {
            self.buffered.fetch_sub(chunk.len(), Ordering::Relaxed);
        } else {
            self.rx = None; // decoder stopped; don't wait on it again
        }
        Some(got)
    }

    /// The most decoded-but-unconsumed events that ever existed at once
    /// — the receipt that streaming never materialized the whole trace.
    #[must_use]
    pub fn high_water_events(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }
}

impl Drop for TraceReader {
    fn drop(&mut self) {
        // Disconnect first so a decoder blocked on `send` wakes up and
        // exits; then reap the thread.
        self.rx = None;
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A decoded trace shared across many simulator cells: the registry and
/// the event chunks live behind `Arc`s, so a sweep decodes a multi-GB
/// log exactly once and every `(granularity × pressure × shards)` cell
/// replays the same chunks without copying or re-parsing anything.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedTrace {
    /// Workload name.
    pub name: String,
    /// Superblock registry.
    pub superblocks: Arc<[SuperblockInfo]>,
    /// Total events across `chunks`.
    pub event_count: u64,
    /// The event stream, in order, in decode-sized pieces.
    pub chunks: Vec<Arc<[TraceEvent]>>,
}

impl SharedTrace {
    /// Wraps an in-memory log (one chunk; events are copied once).
    #[must_use]
    pub fn from_log(log: &TraceLog) -> SharedTrace {
        SharedTrace {
            name: log.name.clone(),
            superblocks: log.superblocks.clone().into(),
            event_count: log.events.len() as u64,
            chunks: if log.events.is_empty() {
                Vec::new()
            } else {
                vec![log.events.clone().into()]
            },
        }
    }

    /// Drains a [`TraceReader`], keeping its chunk boundaries.
    ///
    /// # Errors
    ///
    /// Propagates the reader's first decode error.
    pub fn collect(mut reader: TraceReader) -> Result<SharedTrace, TraceLogError> {
        let mut chunks = Vec::new();
        let mut total = 0u64;
        while let Some(chunk) = reader.next_chunk() {
            let chunk = chunk?;
            total += chunk.len() as u64;
            chunks.push(chunk);
        }
        if total != reader.event_count() {
            return Err(TraceLogError::Corrupt("event count mismatch"));
        }
        Ok(SharedTrace {
            name: reader.name().to_owned(),
            superblocks: reader.superblocks_shared(),
            event_count: total,
            chunks,
        })
    }

    /// Opens and fully decodes `path` (binary by magic, else JSON).
    ///
    /// # Errors
    ///
    /// Propagates the format-specific load error.
    pub fn open(path: &Path) -> Result<SharedTrace, TraceLogError> {
        let mut first = [0u8; 4];
        let mut file = std::fs::File::open(path)?;
        let got = file.read(&mut first)?;
        drop(file);
        if is_binary(&first[..got]) {
            SharedTrace::collect(TraceReader::open(path)?)
        } else {
            Ok(SharedTrace::from_log(&load_path_auto(path)?))
        }
    }

    /// Copies the shared chunks back into a plain [`TraceLog`].
    #[must_use]
    pub fn to_log(&self) -> TraceLog {
        TraceLog {
            name: self.name.clone(),
            superblocks: self.superblocks.to_vec(),
            events: self.chunks.iter().flat_map(|c| c.iter().copied()).collect(),
        }
    }
}

impl TraceLog {
    /// Serializes the log in the binary format ([`save_binary`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save_binary<W: Write>(&self, writer: W) -> Result<(), TraceLogError> {
        save_binary(self, writer)
    }

    /// Deserializes a binary log ([`load_binary`]).
    ///
    /// # Errors
    ///
    /// Returns any I/O, magic, version or corruption error.
    pub fn load_binary<R: Read>(reader: R) -> Result<TraceLog, TraceLogError> {
        load_binary(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    fn sample(events: usize) -> TraceLog {
        let mut log = TraceLog::new("bin-sample");
        for i in 0..16u64 {
            log.record_superblock(SuperblockInfo {
                id: sb(i),
                head_pc: Pc(0x4000 + i * 96),
                size: 100 + i as u32 * 7,
                guest_blocks: 3,
                exits: 2,
            });
        }
        let mut prev = None;
        for i in 0..events as u64 {
            let id = sb(i % 16);
            let direct = i % 3 != 0;
            log.record_access(id, prev.filter(|_| direct));
            prev = Some(id);
        }
        log
    }

    fn encode(log: &TraceLog, chunk: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        save_binary_chunked(log, &mut buf, chunk).unwrap();
        buf
    }

    #[test]
    fn roundtrip_at_many_chunk_sizes() {
        let log = sample(1000);
        for chunk in [1usize, 7, 64, 1000, 100_000] {
            let bytes = encode(&log, chunk);
            assert_eq!(load_binary(bytes.as_slice()).unwrap(), log, "chunk={chunk}");
        }
    }

    #[test]
    fn empty_log_roundtrips() {
        let log = TraceLog::new("empty");
        let bytes = encode(&log, 8);
        assert_eq!(load_binary(bytes.as_slice()).unwrap(), log);
    }

    #[test]
    fn binary_is_smaller_than_json() {
        let log = sample(5000);
        let mut json = Vec::new();
        log.save(&mut json).unwrap();
        let bin = encode(&log, DEFAULT_CHUNK_EVENTS);
        assert!(
            bin.len() * 3 < json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn bad_magic_is_detected() {
        assert!(matches!(
            load_binary(b"nope".as_slice()),
            Err(TraceLogError::BadMagic)
        ));
        assert!(matches!(
            load_binary(b"{\"name\":\"x\"}".as_slice()),
            Err(TraceLogError::BadMagic)
        ));
        assert!(!is_binary(b"{\"na"));
        assert!(is_binary(&MAGIC));
    }

    #[test]
    fn wrong_version_is_detected() {
        let mut bytes = encode(&sample(10), 4);
        bytes[4] = 0xee;
        bytes[5] = 0x07;
        assert!(matches!(
            load_binary(bytes.as_slice()),
            Err(TraceLogError::UnsupportedVersion(0x07ee))
        ));
    }

    #[test]
    fn flipped_bits_fail_the_crc() {
        let clean = encode(&sample(200), 64);
        // Corrupt one byte at a time across the whole file; every
        // position must produce an error, never a silently wrong log.
        for at in 6..clean.len() {
            let mut bytes = clean.clone();
            bytes[at] ^= 0x20;
            assert!(
                load_binary(bytes.as_slice()).is_err(),
                "corruption at byte {at} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_detected_everywhere() {
        let clean = encode(&sample(200), 64);
        for len in 0..clean.len() {
            assert!(
                load_binary(&clean[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn streaming_reader_reproduces_the_event_stream() {
        let log = sample(997);
        let bytes = encode(&log, 100);
        let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        assert_eq!(reader.name(), "bin-sample");
        assert_eq!(reader.event_count(), 997);
        assert_eq!(reader.superblocks(), log.superblocks.as_slice());
        let mut events = Vec::new();
        while let Some(chunk) = reader.next_chunk() {
            events.extend_from_slice(&chunk.unwrap());
        }
        assert_eq!(events, log.events);
    }

    #[test]
    fn streaming_reader_surfaces_corruption() {
        let mut bytes = encode(&sample(500), 50);
        let at = bytes.len() - 20;
        bytes[at] ^= 0x01;
        let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
        let mut saw_error = false;
        while let Some(chunk) = reader.next_chunk() {
            if chunk.is_err() {
                saw_error = true;
            }
        }
        assert!(saw_error, "corrupt tail must surface through the channel");
    }

    #[test]
    fn dropping_a_reader_midstream_does_not_hang() {
        let bytes = encode(&sample(10_000), 100);
        let mut reader = TraceReader::with_depth(std::io::Cursor::new(bytes), 1).unwrap();
        let _ = reader.next_chunk();
        drop(reader); // decoder is blocked on send; Drop must unstick it
    }

    #[test]
    fn high_water_mark_stays_bounded() {
        let chunk = 256;
        let depth = 2;
        let log = sample(chunk * 40); // 40 chunks ≫ depth
        let bytes = encode(&log, chunk);
        let mut reader = TraceReader::with_depth(std::io::Cursor::new(bytes), depth).unwrap();
        let mut total = 0usize;
        while let Some(c) = reader.next_chunk() {
            total += c.unwrap().len();
        }
        assert_eq!(total, log.events.len());
        let hw = reader.high_water_events();
        assert!(hw > 0);
        assert!(
            hw <= (depth + 2) * chunk,
            "high water {hw} exceeds the channel bound"
        );
        assert!(
            hw * 10 <= total,
            "high water {hw} is not bounded relative to {total} events"
        );
    }

    #[test]
    fn shared_trace_from_log_and_from_reader_agree() {
        let log = sample(640);
        let via_log = SharedTrace::from_log(&log);
        let bytes = encode(&log, 64);
        let via_reader =
            SharedTrace::collect(TraceReader::new(std::io::Cursor::new(bytes)).unwrap()).unwrap();
        assert_eq!(via_log.to_log(), log);
        assert_eq!(via_reader.to_log(), log);
        assert_eq!(via_reader.chunks.len(), 10, "chunk boundaries preserved");
    }

    #[test]
    fn auto_detection_loads_both_formats() {
        let log = sample(64);
        let dir = std::env::temp_dir().join("cce_trace_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("t.json");
        let bpath = dir.join("t.cbt");
        log.save(std::fs::File::create(&jpath).unwrap()).unwrap();
        log.save_binary(std::fs::File::create(&bpath).unwrap())
            .unwrap();
        assert_eq!(load_path_auto(&jpath).unwrap(), log);
        assert_eq!(load_path_auto(&bpath).unwrap(), log);
        assert_eq!(SharedTrace::open(&bpath).unwrap().to_log(), log);
        assert_eq!(SharedTrace::open(&jpath).unwrap().to_log(), log);
        std::fs::remove_file(jpath).ok();
        std::fs::remove_file(bpath).ok();
    }
}
