//! The code-cache access trace — our analogue of DynamoRIO's verbose log.
//!
//! The paper drove its cache simulator from saved DynamoRIO logs so that
//! experiments were repeatable across policies (§4.1). A [`TraceLog`] is
//! the same idea: the per-superblock registry (id, head PC, translated
//! size) plus the time-ordered sequence of superblock entries. Each entry
//! records whether control arrived *directly* from another superblock's
//! exit — the chainable transitions from which each cache configuration
//! decides, at replay time, which links actually get patched (a link only
//! forms when both endpoints are simultaneously resident, which differs
//! across policies).
//!
//! Logs serialize to JSON for save/replay parity with the paper's
//! methodology.

use cce_core::SuperblockId;
use cce_tinyvm::program::Pc;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};

/// Registry entry for one superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuperblockInfo {
    /// Stable identity.
    pub id: SuperblockId,
    /// Guest address of the head.
    pub head_pc: Pc,
    /// Translated size in bytes (the cache entry size).
    pub size: u32,
    /// Guest basic blocks in the path.
    pub guest_blocks: u32,
    /// Exit stubs (upper bound on chainable out-links).
    pub exits: u32,
}

/// One event in the access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Control entered superblock `id`.
    Access {
        /// The superblock entered.
        id: SuperblockId,
        /// `Some(s)` if the entry came straight off superblock `s`'s exit
        /// (a chainable transition); `None` if control went through the
        /// interpreter/dispatcher for unrelated work first.
        direct_from: Option<SuperblockId>,
    },
}

/// A complete, replayable access trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceLog {
    /// Human-readable workload name.
    pub name: String,
    /// Superblock registry in formation order.
    pub superblocks: Vec<SuperblockInfo>,
    /// Time-ordered access events.
    pub events: Vec<TraceEvent>,
}

/// Aggregate statistics of a trace (inputs to Table 1 and Figures 3, 4
/// and 12).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Number of distinct superblocks (Table 1's middle column).
    pub superblock_count: usize,
    /// Total accesses.
    pub accesses: u64,
    /// Sum of translated sizes — the unbounded cache size `maxCache`.
    pub total_code_bytes: u64,
    /// Median translated size (Figure 4).
    pub median_size: u32,
    /// Mean translated size.
    pub mean_size: f64,
    /// Mean distinct outbound chainable targets per superblock (Figure 12).
    pub mean_out_degree: f64,
    /// Fraction of accesses that were direct (chainable) transitions.
    pub direct_fraction: f64,
}

impl TraceLog {
    /// Creates an empty log with a name.
    #[must_use]
    pub fn new(name: &str) -> TraceLog {
        TraceLog {
            name: name.to_owned(),
            superblocks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Registers a formed superblock.
    pub fn record_superblock(&mut self, info: SuperblockInfo) {
        self.superblocks.push(info);
    }

    /// Appends an access event.
    pub fn record_access(&mut self, id: SuperblockId, direct_from: Option<SuperblockId>) {
        self.events.push(TraceEvent::Access { id, direct_from });
    }

    /// Looks up a superblock's registry entry.
    #[must_use]
    pub fn superblock(&self, id: SuperblockId) -> Option<&SuperblockInfo> {
        // The registry is small relative to the event stream; linear scan
        // is fine for lookups, and replay builds its own map anyway.
        self.superblocks.iter().find(|s| s.id == id)
    }

    /// The unbounded cache size: total translated bytes of all
    /// superblocks (the paper's `maxCache`).
    #[must_use]
    pub fn max_cache_bytes(&self) -> u64 {
        self.superblocks.iter().map(|s| u64::from(s.size)).sum()
    }

    /// Computes the aggregate statistics.
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut sizes: Vec<u32> = self.superblocks.iter().map(|s| s.size).collect();
        sizes.sort_unstable();
        let median_size = if sizes.is_empty() {
            0
        } else {
            sizes[sizes.len() / 2]
        };
        let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        let mean_size = if sizes.is_empty() {
            0.0
        } else {
            total as f64 / sizes.len() as f64
        };

        let mut out_edges: BTreeMap<SuperblockId, BTreeSet<SuperblockId>> = BTreeMap::new();
        let mut direct = 0u64;
        for ev in &self.events {
            let TraceEvent::Access { id, direct_from } = ev;
            if let Some(from) = direct_from {
                direct += 1;
                out_edges.entry(*from).or_default().insert(*id);
            }
        }
        let total_out: usize = out_edges.values().map(BTreeSet::len).sum();
        let mean_out_degree = if self.superblocks.is_empty() {
            0.0
        } else {
            total_out as f64 / self.superblocks.len() as f64
        };
        let direct_fraction = if self.events.is_empty() {
            0.0
        } else {
            direct as f64 / self.events.len() as f64
        };

        TraceSummary {
            superblock_count: self.superblocks.len(),
            accesses: self.events.len() as u64,
            total_code_bytes: total,
            median_size,
            mean_size,
            mean_out_degree,
            direct_fraction,
        }
    }

    /// Serializes the log as JSON to `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O or serialization error.
    pub fn save<W: Write>(&self, writer: W) -> Result<(), serde_json::Error> {
        serde_json::to_writer(writer, self)
    }

    /// Deserializes a log previously written by [`TraceLog::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O or parse error.
    pub fn load<R: Read>(reader: R) -> Result<TraceLog, serde_json::Error> {
        serde_json::from_reader(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    fn sample() -> TraceLog {
        let mut log = TraceLog::new("sample");
        for (i, size) in [(0u64, 100u32), (1, 200), (2, 300)] {
            log.record_superblock(SuperblockInfo {
                id: sb(i),
                head_pc: Pc(0x1000 + i * 64),
                size,
                guest_blocks: 3,
                exits: 2,
            });
        }
        log.record_access(sb(0), None);
        log.record_access(sb(1), Some(sb(0)));
        log.record_access(sb(2), Some(sb(1)));
        log.record_access(sb(0), None);
        log.record_access(sb(1), Some(sb(0)));
        log
    }

    #[test]
    fn summary_statistics() {
        let s = sample().summary();
        assert_eq!(s.superblock_count, 3);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.total_code_bytes, 600);
        assert_eq!(s.median_size, 200);
        assert!((s.mean_size - 200.0).abs() < 1e-9);
        // Distinct out edges: 0→1, 1→2 ⇒ 2 links over 3 superblocks.
        assert!((s.mean_out_degree - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.direct_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn max_cache_is_total_code_bytes() {
        let log = sample();
        assert_eq!(log.max_cache_bytes(), 600);
    }

    #[test]
    fn duplicate_direct_transitions_count_once_in_out_degree() {
        let mut log = sample();
        log.record_access(sb(1), Some(sb(0))); // repeat 0→1
        let s = log.summary();
        assert!((s.mean_out_degree - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn save_load_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        log.save(&mut buf).unwrap();
        let back = TraceLog::load(buf.as_slice()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn empty_log_summary_is_all_zero() {
        let s = TraceLog::new("empty").summary();
        assert_eq!(s.superblock_count, 0);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.median_size, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.direct_fraction, 0.0);
    }

    #[test]
    fn superblock_lookup() {
        let log = sample();
        assert_eq!(log.superblock(sb(1)).unwrap().size, 200);
        assert!(log.superblock(sb(9)).is_none());
    }
}
