//! The code-cache access trace — our analogue of DynamoRIO's verbose log.
//!
//! The paper drove its cache simulator from saved DynamoRIO logs so that
//! experiments were repeatable across policies (§4.1). A [`TraceLog`] is
//! the same idea: the per-superblock registry (id, head PC, translated
//! size) plus the time-ordered sequence of superblock entries. Each entry
//! records whether control arrived *directly* from another superblock's
//! exit — the chainable transitions from which each cache configuration
//! decides, at replay time, which links actually get patched (a link only
//! forms when both endpoints are simultaneously resident, which differs
//! across policies).
//!
//! Logs serialize to JSON (via [`cce_util::Json`]) for save/replay parity
//! with the paper's methodology.

use cce_core::SuperblockId;
use cce_tinyvm::program::Pc;
use cce_util::json::{Json, JsonError};
use std::collections::BTreeSet;
use std::fmt;
use std::io::{Read, Write};

/// Registry entry for one superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperblockInfo {
    /// Stable identity.
    pub id: SuperblockId,
    /// Guest address of the head.
    pub head_pc: Pc,
    /// Translated size in bytes (the cache entry size).
    pub size: u32,
    /// Guest basic blocks in the path.
    pub guest_blocks: u32,
    /// Exit stubs (upper bound on chainable out-links).
    pub exits: u32,
}

/// One event in the access trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Control entered superblock `id`.
    Access {
        /// The superblock entered.
        id: SuperblockId,
        /// `Some(s)` if the entry came straight off superblock `s`'s exit
        /// (a chainable transition); `None` if control went through the
        /// interpreter/dispatcher for unrelated work first.
        direct_from: Option<SuperblockId>,
    },
}

/// A complete, replayable access trace.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLog {
    /// Human-readable workload name.
    pub name: String,
    /// Superblock registry in formation order.
    pub superblocks: Vec<SuperblockInfo>,
    /// Time-ordered access events.
    pub events: Vec<TraceEvent>,
}

/// Aggregate statistics of a trace (inputs to Table 1 and Figures 3, 4
/// and 12).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Number of distinct superblocks (Table 1's middle column).
    pub superblock_count: usize,
    /// Total accesses.
    pub accesses: u64,
    /// Sum of translated sizes — the unbounded cache size `maxCache`.
    pub total_code_bytes: u64,
    /// Median translated size (Figure 4).
    pub median_size: u32,
    /// Mean translated size.
    pub mean_size: f64,
    /// Mean distinct outbound chainable targets per superblock (Figure 12).
    pub mean_out_degree: f64,
    /// Fraction of accesses that were direct (chainable) transitions.
    pub direct_fraction: f64,
}

/// A prebuilt id → registry-position map, replacing per-lookup linear
/// scans of the superblock registry.
///
/// Every in-repo trace producer (the DBT engine, the workload models,
/// the mixer) assigns ids `0..n` in formation order, so the common case
/// is a dense table indexed by `id - min_id`. Registries whose id space
/// is sparse (hand-edited logs, merged id ranges) fall back to a sorted
/// array with binary-search lookups. Both representations are
/// deterministic; on duplicate ids the *first* registry entry wins,
/// matching the historical `iter().find()` semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuperblockIndex {
    repr: IndexRepr,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum IndexRepr {
    /// `slots[id - base]` is the registry position, `usize::MAX` = absent.
    Dense { base: u64, slots: Vec<usize> },
    /// `(id, position)` sorted by id, then position (first wins).
    Sorted(Vec<(u64, usize)>),
}

/// A sparse id space wastes at most this many empty dense slots before
/// the index falls back to binary search.
const DENSE_SLACK: u64 = 1024;

impl SuperblockIndex {
    /// Builds the index with one scan of the registry.
    #[must_use]
    pub fn build(superblocks: &[SuperblockInfo]) -> SuperblockIndex {
        if superblocks.is_empty() {
            return SuperblockIndex {
                repr: IndexRepr::Sorted(Vec::new()),
            };
        }
        let mut min = u64::MAX;
        let mut max = 0u64;
        for s in superblocks {
            min = min.min(s.id.0);
            max = max.max(s.id.0);
        }
        let span = max - min + 1;
        let budget = (superblocks.len() as u64).saturating_mul(2) + DENSE_SLACK;
        let repr = if span <= budget {
            let mut slots = vec![usize::MAX; span as usize];
            for (pos, s) in superblocks.iter().enumerate() {
                let slot = &mut slots[(s.id.0 - min) as usize];
                if *slot == usize::MAX {
                    *slot = pos;
                }
            }
            IndexRepr::Dense { base: min, slots }
        } else {
            let mut pairs: Vec<(u64, usize)> = superblocks
                .iter()
                .enumerate()
                .map(|(pos, s)| (s.id.0, pos))
                .collect();
            pairs.sort_unstable();
            IndexRepr::Sorted(pairs)
        };
        SuperblockIndex { repr }
    }

    /// The registry position of `id`, if registered.
    #[must_use]
    pub fn position(&self, id: SuperblockId) -> Option<usize> {
        match &self.repr {
            IndexRepr::Dense { base, slots } => {
                let slot = *slots.get(usize::try_from(id.0.checked_sub(*base)?).ok()?)?;
                (slot != usize::MAX).then_some(slot)
            }
            IndexRepr::Sorted(pairs) => {
                let at = pairs.partition_point(|&(pid, _)| pid < id.0);
                match pairs.get(at) {
                    Some(&(pid, pos)) if pid == id.0 => Some(pos),
                    _ => None,
                }
            }
        }
    }
}

/// Streaming accumulator for [`TraceSummary`]: feed events in trace
/// order (one pass, any chunking) and [`finish`](TraceSummaryBuilder::finish).
///
/// Out-degree state is one small sorted target list per *registered*
/// superblock — O(distinct edges), which the exit-stub bound keeps tiny —
/// instead of the per-event `BTreeMap`/`BTreeSet` churn the old
/// whole-trace pass paid. Events naming unregistered ids (malformed but
/// historically tolerated by `summary`) spill into a `BTreeSet` so the
/// statistics stay identical to the old implementation.
#[derive(Debug)]
pub struct TraceSummaryBuilder {
    index: SuperblockIndex,
    superblock_count: usize,
    /// Distinct chain targets per registered source, each list sorted.
    out_targets: Vec<Vec<u64>>,
    /// Distinct `(from, to)` pairs with an unregistered source.
    spill: BTreeSet<(u64, u64)>,
    events: u64,
    direct: u64,
}

impl TraceSummaryBuilder {
    /// Starts a summary over `superblocks` (the trace's registry).
    #[must_use]
    pub fn new(superblocks: &[SuperblockInfo]) -> TraceSummaryBuilder {
        TraceSummaryBuilder {
            index: SuperblockIndex::build(superblocks),
            superblock_count: superblocks.len(),
            out_targets: vec![Vec::new(); superblocks.len()],
            spill: BTreeSet::new(),
            events: 0,
            direct: 0,
        }
    }

    /// Folds one access event into the statistics.
    pub fn record(&mut self, ev: TraceEvent) {
        let TraceEvent::Access { id, direct_from } = ev;
        self.events += 1;
        if let Some(from) = direct_from {
            self.direct += 1;
            match self.index.position(from) {
                Some(pos) => {
                    let targets = &mut self.out_targets[pos];
                    if let Err(at) = targets.binary_search(&id.0) {
                        targets.insert(at, id.0);
                    }
                }
                None => {
                    self.spill.insert((from.0, id.0));
                }
            }
        }
    }

    /// Folds a whole chunk of events.
    pub fn record_chunk(&mut self, events: &[TraceEvent]) {
        for &ev in events {
            self.record(ev);
        }
    }

    /// Completes the summary; `superblocks` must be the registry the
    /// builder was created with.
    #[must_use]
    pub fn finish(self, superblocks: &[SuperblockInfo]) -> TraceSummary {
        let mut sizes: Vec<u32> = superblocks.iter().map(|s| s.size).collect();
        sizes.sort_unstable();
        let median_size = if sizes.is_empty() {
            0
        } else {
            sizes[sizes.len() / 2]
        };
        let total: u64 = sizes.iter().map(|&s| u64::from(s)).sum();
        let mean_size = if sizes.is_empty() {
            0.0
        } else {
            total as f64 / sizes.len() as f64
        };
        let total_out: usize =
            self.out_targets.iter().map(Vec::len).sum::<usize>() + self.spill.len();
        let mean_out_degree = if self.superblock_count == 0 {
            0.0
        } else {
            total_out as f64 / self.superblock_count as f64
        };
        let direct_fraction = if self.events == 0 {
            0.0
        } else {
            self.direct as f64 / self.events as f64
        };
        TraceSummary {
            superblock_count: self.superblock_count,
            accesses: self.events,
            total_code_bytes: total,
            median_size,
            mean_size,
            mean_out_degree,
            direct_fraction,
        }
    }
}

/// Failure while saving or loading a [`TraceLog`] — JSON or binary.
#[derive(Debug)]
pub enum TraceLogError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The input was not valid JSON.
    Json(JsonError),
    /// The JSON parsed but did not describe a trace log; names the first
    /// missing or mistyped field.
    Malformed(&'static str),
    /// A binary input did not start with the trace magic.
    BadMagic,
    /// A binary input declared a format version this build cannot read.
    UnsupportedVersion(u16),
    /// A binary input was structurally damaged (truncated frame, CRC
    /// mismatch, malformed varint); names what failed to decode.
    Corrupt(&'static str),
}

impl fmt::Display for TraceLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceLogError::Io(e) => write!(f, "trace log i/o error: {e}"),
            TraceLogError::Json(e) => write!(f, "trace log: {e}"),
            TraceLogError::Malformed(what) => {
                write!(f, "trace log structure error at field '{what}'")
            }
            TraceLogError::BadMagic => {
                write!(f, "not a binary trace log (bad magic)")
            }
            TraceLogError::UnsupportedVersion(v) => {
                write!(f, "binary trace log version {v} is not supported")
            }
            TraceLogError::Corrupt(what) => {
                write!(f, "binary trace log corrupt: {what}")
            }
        }
    }
}

impl std::error::Error for TraceLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceLogError::Io(e) => Some(e),
            TraceLogError::Json(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceLogError {
    fn from(e: std::io::Error) -> TraceLogError {
        TraceLogError::Io(e)
    }
}

impl From<JsonError> for TraceLogError {
    fn from(e: JsonError) -> TraceLogError {
        TraceLogError::Json(e)
    }
}

fn field<'a>(v: &'a Json, key: &'static str) -> Result<&'a Json, TraceLogError> {
    v.get(key).ok_or(TraceLogError::Malformed(key))
}

fn field_u64(v: &Json, key: &'static str) -> Result<u64, TraceLogError> {
    field(v, key)?.as_u64().ok_or(TraceLogError::Malformed(key))
}

fn field_u32(v: &Json, key: &'static str) -> Result<u32, TraceLogError> {
    u32::try_from(field_u64(v, key)?).map_err(|_| TraceLogError::Malformed(key))
}

impl SuperblockInfo {
    fn to_json(self) -> Json {
        Json::obj(vec![
            ("id", Json::from(self.id.0)),
            ("head_pc", Json::from(self.head_pc.0)),
            ("size", Json::from(self.size)),
            ("guest_blocks", Json::from(self.guest_blocks)),
            ("exits", Json::from(self.exits)),
        ])
    }

    fn from_json(v: &Json) -> Result<SuperblockInfo, TraceLogError> {
        Ok(SuperblockInfo {
            id: SuperblockId(field_u64(v, "id")?),
            head_pc: Pc(field_u64(v, "head_pc")?),
            size: field_u32(v, "size")?,
            guest_blocks: field_u32(v, "guest_blocks")?,
            exits: field_u32(v, "exits")?,
        })
    }
}

impl TraceEvent {
    fn to_json(self) -> Json {
        let TraceEvent::Access { id, direct_from } = self;
        Json::obj(vec![
            ("id", Json::from(id.0)),
            ("from", direct_from.map_or(Json::Null, |s| Json::from(s.0))),
        ])
    }

    fn from_json(v: &Json) -> Result<TraceEvent, TraceLogError> {
        let from = field(v, "from")?;
        let direct_from = if from.is_null() {
            None
        } else {
            Some(SuperblockId(
                from.as_u64().ok_or(TraceLogError::Malformed("from"))?,
            ))
        };
        Ok(TraceEvent::Access {
            id: SuperblockId(field_u64(v, "id")?),
            direct_from,
        })
    }
}

impl TraceLog {
    /// Creates an empty log with a name.
    #[must_use]
    pub fn new(name: &str) -> TraceLog {
        TraceLog {
            name: name.to_owned(),
            superblocks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// Registers a formed superblock.
    pub fn record_superblock(&mut self, info: SuperblockInfo) {
        self.superblocks.push(info);
    }

    /// Appends an access event.
    pub fn record_access(&mut self, id: SuperblockId, direct_from: Option<SuperblockId>) {
        self.events.push(TraceEvent::Access { id, direct_from });
    }

    /// Looks up a superblock's registry entry.
    ///
    /// Every in-repo producer assigns ids `0..n` in formation order, so
    /// the registry is usually its own dense index and this is O(1); a
    /// registry that breaks that convention degrades to a scan. Loops
    /// that look up many ids should build a [`SuperblockIndex`] once
    /// (see [`TraceLog::index`]) instead.
    #[must_use]
    pub fn superblock(&self, id: SuperblockId) -> Option<&SuperblockInfo> {
        if let Some(s) = usize::try_from(id.0)
            .ok()
            .and_then(|at| self.superblocks.get(at))
        {
            if s.id == id {
                return Some(s);
            }
        }
        self.superblocks.iter().find(|s| s.id == id)
    }

    /// Builds the id → registry-position index for repeated lookups
    /// (replay, summaries, the DBT engine's size queries).
    #[must_use]
    pub fn index(&self) -> SuperblockIndex {
        SuperblockIndex::build(&self.superblocks)
    }

    /// The unbounded cache size: total translated bytes of all
    /// superblocks (the paper's `maxCache`).
    #[must_use]
    pub fn max_cache_bytes(&self) -> u64 {
        self.superblocks.iter().map(|s| u64::from(s.size)).sum()
    }

    /// Computes the aggregate statistics in one pass over the events
    /// (see [`TraceSummaryBuilder`] for the streaming form).
    #[must_use]
    pub fn summary(&self) -> TraceSummary {
        let mut b = TraceSummaryBuilder::new(&self.superblocks);
        b.record_chunk(&self.events);
        b.finish(&self.superblocks)
    }

    /// The JSON representation written by [`TraceLog::save`].
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::from(self.name.as_str())),
            (
                "superblocks",
                Json::Arr(self.superblocks.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "events",
                Json::Arr(self.events.iter().map(|e| e.to_json()).collect()),
            ),
        ])
    }

    /// Rebuilds a log from the representation produced by
    /// [`TraceLog::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceLogError::Malformed`] naming the first missing or
    /// mistyped field.
    pub fn from_json(v: &Json) -> Result<TraceLog, TraceLogError> {
        let name = field(v, "name")?
            .as_str()
            .ok_or(TraceLogError::Malformed("name"))?
            .to_owned();
        let superblocks = field(v, "superblocks")?
            .as_arr()
            .ok_or(TraceLogError::Malformed("superblocks"))?
            .iter()
            .map(SuperblockInfo::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let events = field(v, "events")?
            .as_arr()
            .ok_or(TraceLogError::Malformed("events"))?
            .iter()
            .map(TraceEvent::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TraceLog {
            name,
            superblocks,
            events,
        })
    }

    /// Serializes the log as JSON to `writer`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the writer.
    pub fn save<W: Write>(&self, mut writer: W) -> Result<(), TraceLogError> {
        writer.write_all(self.to_json().to_string_compact().as_bytes())?;
        Ok(())
    }

    /// Deserializes a log previously written by [`TraceLog::save`].
    ///
    /// # Errors
    ///
    /// Returns any I/O, JSON or structural error.
    pub fn load<R: Read>(mut reader: R) -> Result<TraceLog, TraceLogError> {
        let mut text = String::new();
        reader.read_to_string(&mut text)?;
        TraceLog::from_json(&Json::parse(&text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb(n: u64) -> SuperblockId {
        SuperblockId(n)
    }

    fn sample() -> TraceLog {
        let mut log = TraceLog::new("sample");
        for (i, size) in [(0u64, 100u32), (1, 200), (2, 300)] {
            log.record_superblock(SuperblockInfo {
                id: sb(i),
                head_pc: Pc(0x1000 + i * 64),
                size,
                guest_blocks: 3,
                exits: 2,
            });
        }
        log.record_access(sb(0), None);
        log.record_access(sb(1), Some(sb(0)));
        log.record_access(sb(2), Some(sb(1)));
        log.record_access(sb(0), None);
        log.record_access(sb(1), Some(sb(0)));
        log
    }

    #[test]
    fn summary_statistics() {
        let s = sample().summary();
        assert_eq!(s.superblock_count, 3);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.total_code_bytes, 600);
        assert_eq!(s.median_size, 200);
        assert!((s.mean_size - 200.0).abs() < 1e-9);
        // Distinct out edges: 0→1, 1→2 ⇒ 2 links over 3 superblocks.
        assert!((s.mean_out_degree - 2.0 / 3.0).abs() < 1e-9);
        assert!((s.direct_fraction - 0.6).abs() < 1e-9);
    }

    #[test]
    fn max_cache_is_total_code_bytes() {
        let log = sample();
        assert_eq!(log.max_cache_bytes(), 600);
    }

    #[test]
    fn duplicate_direct_transitions_count_once_in_out_degree() {
        let mut log = sample();
        log.record_access(sb(1), Some(sb(0))); // repeat 0→1
        let s = log.summary();
        assert!((s.mean_out_degree - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn save_load_roundtrip() {
        let log = sample();
        let mut buf = Vec::new();
        log.save(&mut buf).unwrap();
        let back = TraceLog::load(buf.as_slice()).unwrap();
        assert_eq!(log, back);
    }

    #[test]
    fn saved_form_is_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        sample().save(&mut a).unwrap();
        sample().save(&mut b).unwrap();
        assert_eq!(a, b, "replay files must be byte-stable");
    }

    #[test]
    fn load_rejects_malformed_documents() {
        assert!(matches!(
            TraceLog::load("not json".as_bytes()),
            Err(TraceLogError::Json(_))
        ));
        assert!(matches!(
            TraceLog::load("{\"name\":\"x\"}".as_bytes()),
            Err(TraceLogError::Malformed("superblocks"))
        ));
        let missing_field = "{\"name\":\"x\",\"superblocks\":[{\"id\":1}],\"events\":[]}";
        assert!(matches!(
            TraceLog::load(missing_field.as_bytes()),
            Err(TraceLogError::Malformed("head_pc"))
        ));
    }

    #[test]
    fn empty_log_summary_is_all_zero() {
        let s = TraceLog::new("empty").summary();
        assert_eq!(s.superblock_count, 0);
        assert_eq!(s.accesses, 0);
        assert_eq!(s.median_size, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.direct_fraction, 0.0);
    }

    #[test]
    fn superblock_lookup() {
        let log = sample();
        assert_eq!(log.superblock(sb(1)).unwrap().size, 200);
        assert!(log.superblock(sb(9)).is_none());
    }

    fn info(id: u64, size: u32) -> SuperblockInfo {
        SuperblockInfo {
            id: sb(id),
            head_pc: Pc(id * 16),
            size,
            guest_blocks: 1,
            exits: 1,
        }
    }

    #[test]
    fn superblock_lookup_survives_unordered_registries() {
        // Out of formation order and offset from zero: the dense fast
        // path misses and the scan fallback must still answer.
        let mut log = TraceLog::new("odd");
        for id in [5u64, 3, 9] {
            log.record_superblock(info(id, id as u32 * 10));
        }
        assert_eq!(log.superblock(sb(3)).unwrap().size, 30);
        assert_eq!(log.superblock(sb(9)).unwrap().size, 90);
        assert!(log.superblock(sb(0)).is_none());
    }

    #[test]
    fn index_dense_and_sparse_agree() {
        // Dense ids.
        let dense: Vec<_> = (0..50).map(|i| info(i, 10)).collect();
        let idx = SuperblockIndex::build(&dense);
        for (pos, s) in dense.iter().enumerate() {
            assert_eq!(idx.position(s.id), Some(pos));
        }
        assert_eq!(idx.position(sb(50)), None);

        // Sparse ids force the sorted fallback.
        let sparse: Vec<_> = (0..50).map(|i| info(i * 1_000_000, 10)).collect();
        let idx = SuperblockIndex::build(&sparse);
        for (pos, s) in sparse.iter().enumerate() {
            assert_eq!(idx.position(s.id), Some(pos));
        }
        assert_eq!(idx.position(sb(17)), None);
        assert_eq!(idx.position(sb(u64::MAX)), None);
    }

    #[test]
    fn index_first_entry_wins_on_duplicates() {
        let dup = vec![info(4, 1), info(4, 2), info(7, 3)];
        let idx = SuperblockIndex::build(&dup);
        assert_eq!(idx.position(sb(4)), Some(0), "first registration wins");

        let mut sparse = dup.clone();
        sparse.push(info(1 << 40, 4)); // force the sorted fallback
        let idx = SuperblockIndex::build(&sparse);
        assert_eq!(idx.position(sb(4)), Some(0), "first registration wins");
    }

    #[test]
    fn empty_index_answers_nothing() {
        let idx = SuperblockIndex::build(&[]);
        assert_eq!(idx.position(sb(0)), None);
    }

    #[test]
    fn builder_matches_whole_trace_summary_in_chunks() {
        let log = sample();
        for chunk in [1usize, 2, 5] {
            let mut b = TraceSummaryBuilder::new(&log.superblocks);
            for piece in log.events.chunks(chunk) {
                b.record_chunk(piece);
            }
            assert_eq!(b.finish(&log.superblocks), log.summary(), "chunk={chunk}");
        }
    }

    #[test]
    fn summary_tolerates_unregistered_chain_sources() {
        // Historical behaviour: edges from ids missing from the registry
        // still count toward the distinct-edge total.
        let mut log = sample();
        log.record_access(sb(2), Some(sb(77)));
        log.record_access(sb(2), Some(sb(77))); // duplicate edge
        let s = log.summary();
        // Edges: 0→1, 1→2, 77→2 ⇒ 3 over 3 superblocks.
        assert!((s.mean_out_degree - 1.0).abs() < 1e-9);
    }
}
