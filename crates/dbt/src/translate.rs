//! Translation geometry: how large a superblock is once translated.
//!
//! Dynamic translators expand code: loads/stores get address checks,
//! branches become exit stubs, and the superblock gets a small prologue.
//! In DynamoRIO the expansion is roughly 1.3–1.6× for integer code plus a
//! fixed-size stub per exit. The code cache stores *translated* bytes, so
//! this model determines the entry sizes that all cache experiments see.

/// Size model for translated superblocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TranslationConfig {
    /// Code expansion as a rational `numerator / denominator` applied to
    /// the guest byte count (default 7/5 = 1.4×).
    pub expansion_num: u32,
    /// See [`TranslationConfig::expansion_num`].
    pub expansion_den: u32,
    /// Bytes of exit stub emitted per superblock exit (default 16: a
    /// patchable jump plus a dispatcher trampoline).
    pub exit_stub_bytes: u32,
    /// Fixed prologue bytes per superblock (default 8).
    pub prologue_bytes: u32,
}

impl TranslationConfig {
    /// Translated size of a superblock with `guest_bytes` of source code
    /// and `exits` exit stubs.
    ///
    /// # Example
    ///
    /// ```
    /// use cce_dbt::TranslationConfig;
    /// let t = TranslationConfig::default();
    /// // 100 guest bytes, 2 exits: 140 + 32 + 8 = 180 translated bytes.
    /// assert_eq!(t.translated_size(100, 2), 180);
    /// ```
    #[must_use]
    pub fn translated_size(&self, guest_bytes: u32, exits: u32) -> u32 {
        let expanded = (u64::from(guest_bytes) * u64::from(self.expansion_num))
            / u64::from(self.expansion_den);
        u32::try_from(expanded)
            .unwrap_or(u32::MAX)
            .saturating_add(exits.saturating_mul(self.exit_stub_bytes))
            .saturating_add(self.prologue_bytes)
    }
}

impl Default for TranslationConfig {
    fn default() -> TranslationConfig {
        TranslationConfig {
            expansion_num: 7,
            expansion_den: 5,
            exit_stub_bytes: 16,
            prologue_bytes: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_expansion_is_1_4x() {
        let t = TranslationConfig::default();
        assert_eq!(t.translated_size(1000, 0), 1408);
    }

    #[test]
    fn exits_add_stub_bytes() {
        let t = TranslationConfig::default();
        let base = t.translated_size(100, 0);
        assert_eq!(t.translated_size(100, 3), base + 48);
    }

    #[test]
    fn size_is_monotone_in_guest_bytes() {
        let t = TranslationConfig::default();
        let mut prev = 0;
        for g in (0..2000).step_by(97) {
            let s = t.translated_size(g, 1);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn identity_translation_possible() {
        let t = TranslationConfig {
            expansion_num: 1,
            expansion_den: 1,
            exit_stub_bytes: 0,
            prologue_bytes: 0,
        };
        assert_eq!(t.translated_size(345, 7), 345);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let t = TranslationConfig {
            expansion_num: u32::MAX,
            expansion_den: 1,
            exit_stub_bytes: u32::MAX,
            prologue_bytes: u32::MAX,
        };
        let _ = t.translated_size(u32::MAX, u32::MAX);
    }
}
