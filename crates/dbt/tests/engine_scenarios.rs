//! Scenario tests for the translation engine against hand-built and
//! generated guest programs.

use cce_core::Granularity;
use cce_dbt::engine::{Engine, EngineConfig};
use cce_dbt::TraceEvent;
use cce_tinyvm::builder::ProgramBuilder;
use cce_tinyvm::gen::{generate, GenConfig};
use cce_tinyvm::isa::{Cond, Instr, Reg};
use cce_tinyvm::program::Program;

fn cfg(threshold: u32) -> EngineConfig {
    EngineConfig {
        hot_threshold: threshold,
        ..EngineConfig::default()
    }
}

/// Two hot loops calling each other through a shared helper function.
fn two_loop_program(iters: i64) -> Program {
    let mut b = ProgramBuilder::new();
    let main = b.begin_function("main");
    let helper = b.begin_function("helper");

    let h0 = b.block(helper);
    b.push(
        h0,
        Instr::AddImm {
            dst: Reg::R9,
            src: Reg::R9,
            imm: 1,
        },
    );
    b.ret(h0);

    let entry = b.block(main);
    let loop1 = b.block(main);
    let cont1 = b.block(main);
    let mid = b.block(main);
    let loop2 = b.block(main);
    let cont2 = b.block(main);
    let done = b.block(main);

    b.push(
        entry,
        Instr::MovImm {
            dst: Reg::R1,
            imm: iters,
        },
    );
    b.jump(entry, loop1);
    b.push(
        loop1,
        Instr::AddImm {
            dst: Reg::R1,
            src: Reg::R1,
            imm: -1,
        },
    );
    b.call(loop1, helper, cont1);
    b.branch(cont1, Cond::Gt, Reg::R1, Reg::ZERO, loop1, mid);
    b.push(
        mid,
        Instr::MovImm {
            dst: Reg::R2,
            imm: iters,
        },
    );
    b.jump(mid, loop2);
    b.push(
        loop2,
        Instr::AddImm {
            dst: Reg::R2,
            src: Reg::R2,
            imm: -1,
        },
    );
    b.call(loop2, helper, cont2);
    b.branch(cont2, Cond::Gt, Reg::R2, Reg::ZERO, loop2, done);
    b.halt(done);
    b.set_entry(main, entry);
    b.set_entry(helper, h0);
    b.finish().unwrap()
}

#[test]
fn shared_helper_is_formed_once_and_linked_from_both_loops() {
    let p = two_loop_program(300);
    let mut e = Engine::new(&p, cfg(50)).unwrap();
    let s = e.run(u64::MAX);
    assert!(s.superblocks_formed >= 2);
    // Regeneration never happens unbounded; each head formed exactly once.
    assert_eq!(s.regenerations, 0);
    let heads: Vec<_> = e.superblocks().iter().map(|sb| sb.head_pc).collect();
    let mut dedup = heads.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(heads.len(), dedup.len(), "duplicate superblock heads");
    // The helper gets entered from both loops: some superblock has ≥2
    // incoming links or the chain graph saw multiple sources.
    assert!(s.cache_stats.links_created >= 2);
}

#[test]
fn superblock_sizes_follow_the_translation_model() {
    let p = two_loop_program(300);
    let mut e = Engine::new(&p, cfg(50)).unwrap();
    let _ = e.run(u64::MAX);
    let t = e.superblocks();
    for sb in t {
        let expect = EngineConfig::default()
            .translation
            .translated_size(sb.guest_bytes, sb.exits);
        assert_eq!(sb.translated_bytes, expect, "superblock {:?}", sb.id);
        assert!(sb.exits >= 1);
        assert!(sb.guest_bytes > 0);
    }
}

#[test]
fn regenerations_reuse_identity_and_size() {
    let p = generate(&GenConfig {
        seed: 404,
        ..GenConfig::default()
    });
    let mut probe = Engine::new(&p, cfg(10)).unwrap();
    let unbounded = probe.run(100_000_000);
    assert!(unbounded.superblocks_formed > 4);

    let mut squeezed_cfg = cfg(10);
    squeezed_cfg.granularity = Granularity::units(2);
    squeezed_cfg.cache_capacity = Some((unbounded.max_cache_bytes / 4).max(2048));
    let mut e = Engine::new(&p, squeezed_cfg).unwrap();
    let s = e.run(100_000_000);
    // Formation count is identical under pressure — identity is stable.
    assert_eq!(s.superblocks_formed, unbounded.superblocks_formed);
    assert_eq!(s.max_cache_bytes, unbounded.max_cache_bytes);
    if s.regenerations > 0 {
        // Misses correspond to regenerations plus initial formations that
        // found a full granule.
        assert!(s.cache_stats.capacity_misses >= s.regenerations.min(1));
    }
}

#[test]
fn trace_ids_are_dense_and_events_reference_registry() {
    let p = generate(&GenConfig::small(31));
    let mut e = Engine::new(&p, cfg(2)).unwrap();
    let _ = e.run(50_000_000);
    let trace = e.into_trace();
    for (i, sb) in trace.superblocks.iter().enumerate() {
        assert_eq!(sb.id.0, i as u64, "registry ids must be dense");
    }
    let n = trace.superblocks.len() as u64;
    for ev in &trace.events {
        let TraceEvent::Access { id, direct_from } = ev;
        assert!(id.0 < n);
        if let Some(f) = direct_from {
            assert!(f.0 < n);
        }
    }
}

#[test]
fn hotter_threshold_forms_fewer_superblocks() {
    let p = generate(&GenConfig {
        seed: 77,
        ..GenConfig::default()
    });
    let count = |threshold: u32| {
        let mut e = Engine::new(&p, cfg(threshold)).unwrap();
        e.run(100_000_000).superblocks_formed
    };
    let cold = count(2);
    let hot = count(64);
    assert!(
        hot <= cold,
        "raising the threshold must not form more superblocks ({hot} > {cold})"
    );
    assert!(cold > 0);
}

#[test]
fn max_trace_length_caps_superblock_blocks() {
    let p = generate(&GenConfig {
        seed: 5150,
        ..GenConfig::default()
    });
    let mut c = cfg(5);
    c.formation.max_blocks = 4;
    let mut e = Engine::new(&p, c).unwrap();
    let _ = e.run(50_000_000);
    for sb in e.superblocks() {
        assert!(sb.block_count() <= 4, "{:?} exceeded the trace cap", sb.id);
    }
}
