//! Model-based randomized test: the open-addressing dispatch table must
//! behave exactly like a `HashMap` under arbitrary operation sequences.
//!
//! Seeded (deterministic) random exploration replaces the old proptest
//! harness — the build environment is offline, so the workspace's own
//! [`cce_util::StdRng`] drives the sequences instead.

use cce_core::SuperblockId;
use cce_dbt::hashtable::DispatchTable;
use cce_tinyvm::program::Pc;
use cce_util::{Rng, StdRng};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn random_op(rng: &mut StdRng) -> Op {
    // Same 3:2:2 insert/remove/lookup mix as the original strategy.
    match rng.gen_range(0..7u32) {
        0..=2 => Op::Insert(rng.gen_range(0..200u64), rng.gen_range(0..1000u64)),
        3 | 4 => Op::Remove(rng.gen_range(0..200u64)),
        _ => Op::Lookup(rng.gen_range(0..200u64)),
    }
}

#[test]
fn dispatch_table_matches_hashmap_model() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xD157_4B1E ^ case);
        let count = rng.gen_range(1..600usize);
        let mut table = DispatchTable::with_capacity(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for step in 0..count {
            match random_op(&mut rng) {
                Op::Insert(k, v) => {
                    table.insert(Pc(k), SuperblockId(v));
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let got = table.remove(Pc(k));
                    let want = model.remove(&k);
                    assert_eq!(got, want.map(SuperblockId), "case {case} step {step}");
                }
                Op::Lookup(k) => {
                    let got = table.lookup(Pc(k));
                    let want = model.get(&k).copied().map(SuperblockId);
                    assert_eq!(got, want, "case {case} step {step}");
                }
            }
            assert_eq!(table.len(), model.len(), "case {case} step {step}");
            assert!(table.load_factor() <= 0.7 + 1e-9, "case {case} step {step}");
        }
        // Final sweep: every model key reachable, probe lengths sane.
        for (&k, &v) in &model {
            assert_eq!(table.lookup(Pc(k)), Some(SuperblockId(v)), "case {case}");
        }
        if table.len() > 8 {
            assert!(table.mean_probe_length() < 4.0, "case {case}");
        }
    }
}
