//! Model-based property test: the open-addressing dispatch table must
//! behave exactly like a `HashMap` under arbitrary operation sequences.

use cce_core::SuperblockId;
use cce_dbt::hashtable::DispatchTable;
use cce_tinyvm::program::Pc;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..200, 0u64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        2 => (0u64..200).prop_map(Op::Remove),
        2 => (0u64..200).prop_map(Op::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dispatch_table_matches_hashmap_model(
        ops in prop::collection::vec(op_strategy(), 1..600),
    ) {
        let mut table = DispatchTable::with_capacity(8);
        let mut model: HashMap<u64, u64> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    table.insert(Pc(k), SuperblockId(v));
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    let got = table.remove(Pc(k));
                    let want = model.remove(&k);
                    prop_assert_eq!(got, want.map(SuperblockId));
                }
                Op::Lookup(k) => {
                    let got = table.lookup(Pc(k));
                    let want = model.get(&k).copied().map(SuperblockId);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(table.len(), model.len());
            prop_assert!(table.load_factor() <= 0.7 + 1e-9);
        }
        // Final sweep: every model key reachable, probe lengths sane.
        for (&k, &v) in &model {
            prop_assert_eq!(table.lookup(Pc(k)), Some(SuperblockId(v)));
        }
        if table.len() > 8 {
            prop_assert!(table.mean_probe_length() < 4.0);
        }
    }
}
