//! Integration tests for the chunked binary trace format (DESIGN.md
//! §11) on *real* DBT-produced logs — the unit tests in `trace_bin`
//! cover synthetic traces; these run the actual engine and round-trip
//! whatever it emits.

use cce_dbt::engine::{Engine, EngineConfig};
use cce_dbt::trace_bin::{self, TraceReader, VERSION};
use cce_dbt::trace_log::TraceLogError;
use cce_dbt::TraceLog;
use cce_tinyvm::gen::{generate, GenConfig};

/// A real trace out of the DBT: generate a guest program, run it hot,
/// and take the engine's log.
fn real_trace(seed: u64) -> TraceLog {
    let program = generate(&GenConfig::small(seed));
    let config = EngineConfig {
        hot_threshold: 2,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(&program, config).expect("engine config is valid");
    engine.run(2_000_000);
    engine.into_trace()
}

fn to_binary(log: &TraceLog, chunk: usize) -> Vec<u8> {
    let mut buf = Vec::new();
    trace_bin::save_binary_chunked(log, &mut buf, chunk).expect("vec write cannot fail");
    buf
}

#[test]
fn dbt_logs_roundtrip_through_binary() {
    for seed in [3u64, 11, 29] {
        let log = real_trace(seed);
        assert!(!log.events.is_empty(), "seed {seed} produced no events");
        let bytes = to_binary(&log, 4096);
        let back = trace_bin::load_binary(bytes.as_slice()).unwrap();
        assert_eq!(back, log, "seed {seed}");
    }
}

#[test]
fn json_and_binary_encode_the_same_log() {
    let log = real_trace(7);
    let mut json = Vec::new();
    log.save(&mut json).unwrap();
    let via_json = TraceLog::load(json.as_slice()).unwrap();
    let via_bin = trace_bin::load_binary(to_binary(&log, 1000).as_slice()).unwrap();
    assert_eq!(via_json, via_bin);
    // And the binary encoding is materially smaller.
    assert!(
        to_binary(&log, trace_bin::DEFAULT_CHUNK_EVENTS).len() * 2 < json.len(),
        "binary should be at least 2x smaller than JSON on real logs"
    );
}

#[test]
fn streaming_reader_matches_sequential_load_on_real_logs() {
    let log = real_trace(13);
    let bytes = to_binary(&log, 777);
    let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
    assert_eq!(reader.name(), log.name);
    assert_eq!(reader.event_count(), log.events.len() as u64);
    assert_eq!(reader.superblocks(), log.superblocks.as_slice());
    let mut events = Vec::new();
    while let Some(chunk) = reader.next_chunk() {
        events.extend_from_slice(&chunk.unwrap());
    }
    assert_eq!(events, log.events);
}

#[test]
fn real_log_corruption_classes_are_distinguished() {
    let log = real_trace(17);
    let clean = to_binary(&log, 512);

    // Bad magic.
    let mut bad = clean.clone();
    bad[0] = b'X';
    assert!(matches!(
        trace_bin::load_binary(bad.as_slice()),
        Err(TraceLogError::BadMagic)
    ));

    // Unsupported (future) version.
    let mut bad = clean.clone();
    bad[4] = (VERSION + 1) as u8;
    assert!(matches!(
        trace_bin::load_binary(bad.as_slice()),
        Err(TraceLogError::UnsupportedVersion(v)) if v == VERSION + 1
    ));

    // CRC failure in the middle of the event stream.
    let mut bad = clean.clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0x40;
    assert!(trace_bin::load_binary(bad.as_slice()).is_err());

    // Truncation: drop the terminator, then half the file.
    assert!(trace_bin::load_binary(&clean[..clean.len() - 2]).is_err());
    assert!(trace_bin::load_binary(&clean[..clean.len() / 2]).is_err());
}

#[test]
fn streaming_reader_stops_at_first_error_on_real_logs() {
    let log = real_trace(19);
    let mut bytes = to_binary(&log, 256);
    let at = bytes.len() * 3 / 4;
    bytes[at] ^= 0x08;
    let mut reader = TraceReader::new(std::io::Cursor::new(bytes)).unwrap();
    let mut good = 0usize;
    let mut failed = false;
    while let Some(chunk) = reader.next_chunk() {
        match chunk {
            Ok(c) => good += c.len(),
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    assert!(failed, "corruption must surface");
    assert!(
        (good as u64) < reader.event_count(),
        "the stream must end early"
    );
    // After the error the stream is finished.
    assert!(reader.next_chunk().is_none());
}
