//! `bench_concurrent`: throughput-per-thread micro-benchmark of the
//! concurrent serving layer.
//!
//! Replays four tenants through one shared four-shard
//! `ConcurrentSession` at 1, 2 and 4 worker threads and reports
//! events/second per configuration, `std::time::Instant`-timed like the
//! other offline benches (the criterion benches cannot run in this
//! container). The JSON report (`BENCH_concurrent.json` via `--out`)
//! records `available_parallelism` alongside the timings: on a
//! single-CPU host the thread axis measures contention overhead, not
//! speedup, and consumers must interpret the ratios in that light
//! rather than assert a fixed scaling factor.

use crate::Options;
use cce_dbt::SharedTrace;
use cce_sim::pressure::{capacity_for_pressure, TraceSizing};
use cce_sim::report::TextTable;
use cce_sim::simulator::SimConfig;
use cce_sim::{simulate_concurrent, ConcurrentSimConfig};
use cce_util::Json;
use cce_workloads::catalog;
use std::time::Instant;

/// Timing repetitions; the minimum is reported.
const REPS: usize = 3;

/// The thread axis.
const THREADS: [usize; 3] = [1, 2, 4];

/// Tenants per run (one trace each).
const TENANTS: [&str; 4] = ["gzip", "crafty", "gcc", "perlbmk"];

fn min_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        // cce-analyze: allow(nondet-taint): wall-clock timing is the benchmark's measurement, not cache state
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    // `reps >= 1`, so a result is always present.
    let Some(out) = last else { unreachable!() };
    (best, out)
}

/// Runs the benchmark; writes `BENCH_concurrent.json` to `--out` if
/// given and returns a human-readable table either way.
///
/// # Errors
///
/// Returns a message for I/O or simulation failures.
pub fn bench_concurrent(opts: &Options) -> Result<String, String> {
    let traces: Vec<SharedTrace> = TENANTS
        .iter()
        .map(|name| {
            let model = catalog::by_name(name).ok_or_else(|| format!("catalog missing {name}"))?;
            Ok(SharedTrace::from_log(&model.trace(opts.scale, opts.seed)))
        })
        .collect::<Result<_, String>>()?;
    let total_events: u64 = traces.iter().map(|t| t.event_count).sum();
    if total_events == 0 {
        return Err("benchmark traces are empty; raise --scale".to_owned());
    }
    // Per-tenant capacity at pressure 4 of the largest tenant, so every
    // configuration replays the same work.
    let capacity = traces
        .iter()
        .map(|t| capacity_for_pressure(TraceSizing::of_source(t).max_cache_bytes, 4))
        .max()
        .unwrap_or(1);

    // cce-analyze: allow(nondet-taint): reported as machine context alongside throughput, never feeds cache decisions
    let parallelism = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut rows = Vec::with_capacity(THREADS.len());
    let mut baseline = None;
    for threads in THREADS {
        let cfg = ConcurrentSimConfig {
            sim: SimConfig {
                capacity,
                ..SimConfig::default()
            },
            shards: 4,
            threads,
            ..ConcurrentSimConfig::default()
        };
        let (secs, results) = min_secs(REPS, || {
            simulate_concurrent(&traces, &cfg).map_err(|e| e.to_string())
        });
        let results = results?;
        if results.len() != traces.len() {
            return Err("concurrent replay dropped a tenant".to_owned());
        }
        let base = *baseline.get_or_insert(secs);
        rows.push((threads, secs, base / secs.max(1e-12)));
    }

    let mut t = TextTable::new(
        &format!(
            "Concurrent serving throughput — {} tenants, 4 shards, {total_events} events \
             ({parallelism} CPU(s) available)",
            traces.len()
        ),
        ["threads", "wall (ms)", "Mevents/s", "vs 1 thread"],
    );
    for &(threads, secs, speedup) in &rows {
        t.row([
            threads.to_string(),
            format!("{:.2}", secs * 1e3),
            format!("{:.2}", total_events as f64 / secs / 1e6),
            format!("{speedup:.2}x"),
        ]);
    }
    let mut out = t.to_string();
    out.push_str(
        "Per-tenant results are byte-identical across every row (the\n\
         conformance suite holds at any thread count); only wall clock moves.\n",
    );

    if let Some(path) = opts.out.as_deref() {
        let mut fields = vec![
            ("benchmark", Json::from("concurrent")),
            ("tenants", Json::from(traces.len() as u64)),
            ("shards", Json::from(4u64)),
            ("events", Json::from(total_events)),
            ("available_parallelism", Json::from(parallelism as u64)),
        ];
        for &(threads, secs, speedup) in &rows {
            // Field names stay stable for CI: threads_<n>_seconds etc.
            fields.push((
                match threads {
                    1 => "threads_1_seconds",
                    2 => "threads_2_seconds",
                    _ => "threads_4_seconds",
                },
                Json::from(secs),
            ));
            fields.push((
                match threads {
                    1 => "threads_1_speedup",
                    2 => "threads_2_speedup",
                    _ => "threads_4_speedup",
                },
                Json::from(speedup),
            ));
        }
        let report = Json::obj(fields);
        std::fs::write(path, report.to_string_compact())
            .map_err(|e| format!("write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports_every_thread_count() {
        let dir = std::env::temp_dir().join("cce_bench_concurrent_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join("BENCH_concurrent.json")
            .to_string_lossy()
            .into_owned();
        let opts = Options {
            scale: 0.02,
            seed: 2,
            out: Some(path.clone()),
            verbose: false,
            ..Options::default()
        };
        let out = bench_concurrent(&opts).unwrap();
        assert!(out.contains("vs 1 thread"));
        let json = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(json.get("benchmark").unwrap().as_str(), Some("concurrent"));
        assert_eq!(json.get("tenants").unwrap().as_u64(), Some(4));
        assert!(
            json.get("available_parallelism").unwrap().as_u64().unwrap() >= 1,
            "parallelism is recorded for interpreting the ratios"
        );
        for key in [
            "threads_1_seconds",
            "threads_2_seconds",
            "threads_4_seconds",
        ] {
            assert!(json.get(key).unwrap().as_f64().unwrap() > 0.0, "{key}");
        }
        std::fs::remove_file(&path).ok();
    }
}
