//! `bench_grid`: the sweep-engine micro-benchmark.
//!
//! Times the full paper grid — the granularity spectrum × the pressure
//! ladder — on the smoke workload twice: once per cell on the naive
//! oracle, once fused through the single-pass configuration ladder
//! (DESIGN.md §14). Emits `BENCH_grid.json` (via `--out`) with cells
//! per second for both engines, the ladder-vs-naive speedup, and the
//! ladder's cost relative to a *single* naive replay — the ISSUE 10
//! acceptance metric (the whole grid in ≤ 2× one replay). `--smoke`
//! turns the ≥ 5x speedup floor into a hard failure so CI catches
//! regressions back toward per-cell cost.

use crate::bench_io::min_secs;
use crate::miss_figs::spectrum;
use crate::Options;
use cce_sim::report::TextTable;
use cce_sim::simulator::SimConfig;
use cce_sim::{Engine, Replay, SweepPoint};
use cce_util::Json;
use cce_workloads::catalog;

/// Repetitions per engine; the minimum is reported. The naive sweep is
/// the slow side by construction, so it gets fewer.
const NAIVE_REPS: usize = 2;
const LADDER_REPS: usize = 5;

/// Minimum ladder-vs-naive speedup `--smoke` enforces.
const SMOKE_SPEEDUP_FLOOR: f64 = 5.0;

/// Runs the benchmark; writes `BENCH_grid.json` to `--out` if given and
/// returns a human-readable table either way.
///
/// # Errors
///
/// Returns a message for simulation failures, an engine divergence
/// (the two grids must be byte-identical), or a `--smoke` gate miss.
pub fn bench_grid(opts: &Options) -> Result<String, String> {
    let model = catalog::by_name("gzip").ok_or("catalog is missing gzip")?;
    let trace = model.trace(opts.scale, opts.seed);
    if trace.events.is_empty() {
        return Err("benchmark trace is empty; raise --scale".to_owned());
    }
    let traces = vec![trace];
    let granularities = spectrum();
    let pressures = [2u32, 4, 6, 8, 10];
    let cells = granularities.len() * pressures.len();
    let base = SimConfig::default();
    let run = |engine: Engine| -> Result<Vec<SweepPoint>, String> {
        Replay::matrix(&traces)
            .granularities(&granularities)
            .pressures(&pressures)
            .config(&base)
            .engine(engine)
            .run()
            .map_err(|e| e.to_string())
    };

    if opts.verbose {
        eprintln!(
            "  [bench_grid] {cells} cells × {} events",
            traces[0].events.len()
        );
    }
    let (naive_s, naive) = min_secs(NAIVE_REPS, || run(Engine::Naive));
    let naive = naive?;
    let (ladder_s, ladder) = min_secs(LADDER_REPS, || run(Engine::Ladder));
    let ladder = ladder?;
    if naive != ladder {
        return Err("ladder grid diverged from the naive oracle".to_owned());
    }

    let events = traces[0].events.len() as u64;
    let speedup = naive_s / ladder_s.max(1e-12);
    // The acceptance framing: one naive replay costs naive_s / cells;
    // the whole ladder grid should cost at most ~2x that.
    let single_replay_s = naive_s / cells as f64;
    let ladder_vs_single_replay = ladder_s / single_replay_s.max(1e-12);

    let mut t = TextTable::new(
        &format!(
            "Grid sweep: {cells} cells ({} granularities × {} pressures), {events} events",
            granularities.len(),
            pressures.len()
        ),
        ["engine", "grid (ms)", "cells/s", "vs single replay"],
    );
    t.row([
        "naive (per cell)".to_owned(),
        format!("{:.2}", naive_s * 1e3),
        format!("{:.1}", cells as f64 / naive_s.max(1e-12)),
        format!("{:.1}x", cells as f64),
    ]);
    t.row([
        "ladder (one pass)".to_owned(),
        format!("{:.2}", ladder_s * 1e3),
        format!("{:.1}", cells as f64 / ladder_s.max(1e-12)),
        format!("{ladder_vs_single_replay:.1}x"),
    ]);
    let mut out = t.to_string();
    out.push_str(&format!(
        "ladder speedup {speedup:.1}x over the per-cell sweep; grids byte-identical\n"
    ));

    if let Some(path) = opts.out.as_deref() {
        let report = Json::obj(vec![
            ("benchmark", Json::from("grid")),
            ("cells", Json::from(cells as u64)),
            ("events", Json::from(events)),
            ("naive_seconds", Json::from(naive_s)),
            ("ladder_seconds", Json::from(ladder_s)),
            (
                "naive_cells_per_sec",
                Json::from(cells as f64 / naive_s.max(1e-12)),
            ),
            (
                "ladder_cells_per_sec",
                Json::from(cells as f64 / ladder_s.max(1e-12)),
            ),
            ("speedup", Json::from(speedup)),
            (
                "ladder_vs_single_replay",
                Json::from(ladder_vs_single_replay),
            ),
        ]);
        std::fs::write(path, report.to_string_compact())
            .map_err(|e| format!("write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if opts.smoke && speedup < SMOKE_SPEEDUP_FLOOR {
        return Err(format!(
            "--smoke: ladder speedup {speedup:.1}x is below the {SMOKE_SPEEDUP_FLOOR}x gate"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports_both_engines() {
        let dir = std::env::temp_dir().join("cce_bench_grid_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_grid.json").to_string_lossy().into_owned();
        let opts = Options {
            scale: 0.05,
            seed: 2,
            out: Some(path.clone()),
            verbose: false,
            ..Options::default()
        };
        let out = bench_grid(&opts).unwrap();
        assert!(out.contains("ladder (one pass)"));
        let json = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(json.get("benchmark").unwrap().as_str(), Some("grid"));
        assert!(json.get("speedup").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(json.get("cells").unwrap().as_f64().unwrap(), 50.0);
        std::fs::remove_file(&path).ok();
    }
}
