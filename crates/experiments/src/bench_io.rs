//! `bench_trace_io`: the offline trace-I/O micro-benchmark.
//!
//! The container this repo builds in has no crates.io access, so the
//! criterion benches under `crates/bench` cannot run here. This command
//! is the self-contained equivalent: it times JSON decode vs binary
//! decode of the same trace, and in-memory replay vs streaming replay,
//! with `std::time::Instant` — then emits the comparison as
//! `BENCH_trace_io.json` (via `--out`) so CI can assert the binary path
//! keeps its decode advantage.

use crate::Options;
use cce_dbt::{trace_bin, TraceLog, TraceReader};
use cce_sim::pressure::capacity_for_pressure;
use cce_sim::report::TextTable;
use cce_sim::simulator::SimConfig;
use cce_sim::Replay;
use cce_util::Json;
use cce_workloads::catalog;
use std::time::Instant;

/// Timing repetitions; the minimum is reported (standard practice for
/// wall-clock micro-benchmarks: the minimum is the least noisy).
const REPS: usize = 5;

/// Times `reps` runs of `f` and returns the best wall-clock seconds
/// with the last result. Shared with `bench_grid`.
pub(crate) fn min_secs<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps.max(1) {
        // cce-analyze: allow(nondet-taint): wall-clock timing is the benchmark's measurement, not cache state
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(out);
    }
    // `reps >= 1`, so a result is always present.
    let Some(out) = last else { unreachable!() };
    (best, out)
}

/// Runs the benchmark; writes `BENCH_trace_io.json` to `--out` if given
/// and returns a human-readable table either way.
///
/// # Errors
///
/// Returns a message for I/O or simulation failures.
pub fn bench_trace_io(opts: &Options) -> Result<String, String> {
    // A mid-sized deterministic workload: big enough that decode time is
    // dominated by the event stream, small enough for CI.
    let model = catalog::by_name("gzip").ok_or("catalog is missing gzip")?;
    let log = model.trace(opts.scale, opts.seed);
    if log.events.is_empty() {
        return Err("benchmark trace is empty; raise --scale".to_owned());
    }

    let mut json_bytes = Vec::new();
    log.save(&mut json_bytes).map_err(|e| e.to_string())?;
    let mut bin_bytes = Vec::new();
    trace_bin::save_binary(&log, &mut bin_bytes).map_err(|e| e.to_string())?;

    let (json_decode_s, decoded_j) = min_secs(REPS, || {
        TraceLog::load(json_bytes.as_slice()).map_err(|e| e.to_string())
    });
    let decoded_j = decoded_j?;
    let (bin_decode_s, decoded_b) = min_secs(REPS, || {
        trace_bin::load_binary(bin_bytes.as_slice()).map_err(|e| e.to_string())
    });
    let decoded_b = decoded_b?;
    if decoded_j != decoded_b {
        return Err("json and binary decode disagree".to_owned());
    }

    let config = SimConfig {
        capacity: capacity_for_pressure(log.max_cache_bytes(), 4),
        ..SimConfig::default()
    };
    // End-to-end: decode + replay. The in-memory path decodes JSON then
    // simulates; the streaming path overlaps binary decode with replay.
    let (inmem_replay_s, inmem) = min_secs(REPS, || {
        let log = TraceLog::load(json_bytes.as_slice()).map_err(|e| e.to_string())?;
        Replay::new(&log)
            .config(&config)
            .run()
            .map(cce_sim::ReplayReport::into_solo)
            .map_err(|e| e.to_string())
    });
    let inmem = inmem?;
    let (stream_replay_s, streamed) = min_secs(REPS, || {
        let bytes = bin_bytes.clone();
        let mut reader =
            TraceReader::new(std::io::Cursor::new(bytes)).map_err(|e| e.to_string())?;
        Replay::stream(&mut reader)
            .config(&config)
            .run()
            .map(cce_sim::ReplayReport::into_solo)
            .map_err(|e| e.to_string())
    });
    let streamed = streamed?;
    if inmem != streamed {
        return Err("streaming replay result diverged from in-memory replay".to_owned());
    }

    let events = log.events.len() as f64;
    let mevents = |s: f64| events / s / 1e6;
    let decode_speedup = json_decode_s / bin_decode_s.max(1e-12);
    let replay_speedup = inmem_replay_s / stream_replay_s.max(1e-12);

    let mut t = TextTable::new(
        &format!(
            "Trace I/O: {} events; JSON {} KB vs binary {} KB ({:.1}x smaller)",
            log.events.len(),
            json_bytes.len() / 1024,
            bin_bytes.len() / 1024,
            json_bytes.len() as f64 / bin_bytes.len() as f64
        ),
        ["path", "decode (ms)", "Mevents/s", "decode+replay (ms)"],
    );
    t.row([
        "json (in-memory)".to_owned(),
        format!("{:.2}", json_decode_s * 1e3),
        format!("{:.1}", mevents(json_decode_s)),
        format!("{:.2}", inmem_replay_s * 1e3),
    ]);
    t.row([
        "binary (streamed)".to_owned(),
        format!("{:.2}", bin_decode_s * 1e3),
        format!("{:.1}", mevents(bin_decode_s)),
        format!("{:.2}", stream_replay_s * 1e3),
    ]);
    let mut out = t.to_string();
    out.push_str(&format!(
        "decode speedup {decode_speedup:.1}x, end-to-end speedup {replay_speedup:.1}x\n"
    ));

    if let Some(path) = opts.out.as_deref() {
        let report = Json::obj(vec![
            ("benchmark", Json::from("trace_io")),
            ("events", Json::from(log.events.len() as u64)),
            ("json_bytes", Json::from(json_bytes.len() as u64)),
            ("binary_bytes", Json::from(bin_bytes.len() as u64)),
            ("json_decode_seconds", Json::from(json_decode_s)),
            ("binary_decode_seconds", Json::from(bin_decode_s)),
            ("json_replay_seconds", Json::from(inmem_replay_s)),
            ("stream_replay_seconds", Json::from(stream_replay_s)),
            ("decode_speedup", Json::from(decode_speedup)),
            ("end_to_end_speedup", Json::from(replay_speedup)),
        ]);
        std::fs::write(path, report.to_string_compact())
            .map_err(|e| format!("write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports_both_paths() {
        let dir = std::env::temp_dir().join("cce_bench_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir
            .join("BENCH_trace_io.json")
            .to_string_lossy()
            .into_owned();
        let opts = Options {
            scale: 0.05,
            seed: 2,
            out: Some(path.clone()),
            verbose: false,
            ..Options::default()
        };
        let out = bench_trace_io(&opts).unwrap();
        assert!(out.contains("binary (streamed)"));
        let json = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(json.get("decode_speedup").unwrap().as_f64().unwrap() > 0.0);
        assert_eq!(json.get("benchmark").unwrap().as_str(), Some("trace_io"));
        std::fs::remove_file(&path).ok();
    }
}
