//! Chaining experiments: Table 2 and the §5.3 execution-time estimates.

use crate::grid::Grid;
use crate::miss_figs::grid_at;
use crate::Options;
use cce_sim::exectime::{exec_time_reduction_percent, ChainingScenario, DispatchCost};
use cce_sim::report::TextTable;
use cce_workloads::catalog;
use std::fmt::Write as _;

/// Table 2: predicted slowdown from disabling superblock chaining.
pub fn table2(_opts: &Options) -> String {
    let dispatch = DispatchCost::dynamorio();
    let mut t = TextTable::new(
        "Table 2 — Slowdown from disabling superblock chaining",
        [
            "Benchmark",
            "Enabled (s, paper)",
            "Disabled (s, model)",
            "Disabled (s, paper)",
            "Slowdown (model)",
            "Slowdown (paper)",
        ],
    );
    for m in catalog::table2() {
        let scenario = ChainingScenario {
            base_seconds: m.base_seconds,
            instrs_per_entry: m.instrs_per_entry,
        };
        let disabled = scenario.disabled_seconds(&dispatch);
        let paper_slowdown = (m.paper_disabled_seconds - m.base_seconds) / m.base_seconds * 100.0;
        t.row([
            m.name.clone(),
            format!("{:.0}", m.base_seconds),
            format!("{disabled:.0}"),
            format!("{:.0}", m.paper_disabled_seconds),
            format!("{:.0}%", scenario.slowdown_percent(&dispatch)),
            format!("{paper_slowdown:.0}%"),
        ]);
    }
    let mut out = t.to_string();
    let no_prot = DispatchCost::no_protection();
    let gzip = catalog::by_name("gzip").unwrap();
    let s = ChainingScenario {
        base_seconds: gzip.base_seconds,
        instrs_per_entry: gzip.instrs_per_entry,
    };
    let _ = writeln!(
        out,
        "\nDominant cost: the mprotect pair per dispatcher entry ({} of {} instructions). \
         Without protection changes gzip's slowdown drops to {:.0}% — \"reduced, but still \
         significant\" (§5.1).",
        DispatchCost::dynamorio().mprotect_pair as u64,
        DispatchCost::dynamorio().total() as u64,
        s.slowdown_percent(&no_prot)
    );
    out
}

/// §5.3: execution-time reduction from switching FLUSH → 8-unit FIFO at
/// cache pressure 10.
pub fn sec5_3(opts: &Options) -> String {
    let grid = grid_at(opts, &[10]);
    render_sec5_3(&grid)
}

pub(crate) fn render_sec5_3(grid: &Grid) -> String {
    let mut t = TextTable::new(
        "Section 5.3 — Execution-time reduction, FLUSH → 8-Unit FIFO (pressure 10)",
        [
            "Benchmark",
            "FLUSH mgmt (s)",
            "8-Unit mgmt (s)",
            "Reduction",
        ],
    );
    let mut crafty_red = f64::NAN;
    let mut twolf_red = f64::NAN;
    for m in catalog::table2() {
        let Some(flush) = grid.cell(&m.name, "FLUSH", 10) else {
            continue;
        };
        let Some(medium) = grid.cell(&m.name, "8-Unit", 10) else {
            continue;
        };
        // Trace-consistent units: the application work corresponding to
        // the simulated accesses is `accesses × instrs_per_entry` guest
        // instructions; management overhead is in the same currency, so
        // the §5.3 ratio needs no cross-run scaling. The seconds shown
        // are those instruction counts expressed on the benchmark's
        // Table 2 runtime (base_seconds × overhead/app).
        let app_instr = flush.accesses as f64 * m.instrs_per_entry;
        let oh_flush_instr = flush.overhead_with_links();
        let oh_medium_instr = medium.overhead_with_links();
        let red = exec_time_reduction_percent(app_instr, oh_flush_instr, oh_medium_instr);
        let oh_flush_s = m.base_seconds * oh_flush_instr / app_instr;
        let oh_medium_s = m.base_seconds * oh_medium_instr / app_instr;
        if m.name == "crafty" {
            crafty_red = red;
        }
        if m.name == "twolf" {
            twolf_red = red;
        }
        t.row([
            m.name.clone(),
            format!("{oh_flush_s:.0}"),
            format!("{oh_medium_s:.0}"),
            format!("{red:.2}%"),
        ]);
    }
    let mut out = t.to_string();
    let _ = writeln!(
        out,
        "\nPaper anchors at pressure 10: crafty 19.33%, twolf 19.79% \
         (measured here: crafty {crafty_red:.2}%, twolf {twolf_red:.2}%). Direction and \
         double-digit scale depend on how hard the workload stresses cache management; \
         our statistical traces reproduce the direction (medium-grained wins) with \
         smaller magnitudes. Two caveats: our traces compress application execution \
         (~10² reuses per superblock vs ~10⁶ in a real run), so management seconds \
         dwarf the Table 2 base times — only the *relative* comparison is meaningful — \
         and small-footprint benchmarks (gzip, mcf, bzip2) hit the unit-size clamp at \
         pressure 10, where '8-Unit' degenerates toward FLUSH."
    );
    out
}
