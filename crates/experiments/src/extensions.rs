//! Beyond-the-paper experiments (DESIGN.md §7): policy ablations, the
//! §5.4 future-work studies, and seed-stability analysis.

use crate::Options;
use cce_core::{
    AdaptiveUnits, AffinityUnits, CodeCache, FineFifo, Generational, LruCache, PreemptiveFlush,
    UnitFifo,
};
use cce_sim::pressure::capacity_for_pressure;
use cce_sim::report::{pct, TextTable};
use cce_sim::seeds::over_seeds;
use cce_sim::simulator::{SimConfig, SimResult};
use cce_sim::Replay;
use cce_workloads::catalog;
use std::fmt::Write as _;

/// Benchmarks used by the extension studies: small, medium, large.
const ABLATION_BENCHMARKS: [&str; 3] = ["gzip", "crafty", "gcc"];

fn run_policy(trace: &cce_dbt::TraceLog, label: &str, cache: CodeCache) -> SimResult {
    Replay::new(trace)
        .session(cache, label)
        .run()
        .map(cce_sim::ReplayReport::into_solo)
        .expect("generated traces are well-formed")
}

fn policy_lineup(capacity: u64) -> Vec<(&'static str, CodeCache)> {
    vec![
        (
            "FLUSH",
            CodeCache::new(Box::new(
                UnitFifo::flush_policy(capacity).expect("capacity > 0"),
            )),
        ),
        (
            "preemptive",
            CodeCache::new(Box::new(
                PreemptiveFlush::new(capacity).expect("capacity > 0"),
            )),
        ),
        (
            "8-unit",
            CodeCache::new(Box::new(
                UnitFifo::new(capacity, 8).expect("capacity covers 8 units"),
            )),
        ),
        (
            "affinity-8",
            CodeCache::new(Box::new(
                AffinityUnits::new(capacity, 8).expect("capacity covers 8 units"),
            )),
        ),
        (
            "adaptive",
            CodeCache::new(Box::new(
                AdaptiveUnits::new(capacity, 8, 1, 256).expect("valid bounds"),
            )),
        ),
        (
            "generational",
            CodeCache::new(Box::new(Generational::new(capacity).expect("capacity > 0"))),
        ),
        (
            "fine FIFO",
            CodeCache::new(Box::new(FineFifo::new(capacity).expect("capacity > 0"))),
        ),
        (
            "LRU",
            CodeCache::new(Box::new(LruCache::new(capacity).expect("capacity > 0"))),
        ),
    ]
}

/// Policy ablation: every organization in the workspace on the same
/// traces at pressure 6.
pub fn ablation(opts: &Options) -> String {
    let mut out = String::new();
    for name in ABLATION_BENCHMARKS {
        let model = catalog::by_name(name).expect("table 1 benchmark");
        if opts.verbose {
            eprintln!("  [ablation] {name}…");
        }
        let trace = model.trace(opts.scale, opts.seed);
        let capacity = capacity_for_pressure(trace.max_cache_bytes(), 6);
        let mut t = TextTable::new(
            &format!("Ablation — {name} @ pressure 6 ({capacity} B)"),
            [
                "policy",
                "miss rate",
                "evictions",
                "unlink ops",
                "overhead vs FLUSH",
            ],
        );
        let mut flush_overhead = None;
        for (label, cache) in policy_lineup(capacity) {
            let r = run_policy(&trace, label, cache);
            let base = *flush_overhead.get_or_insert(r.total_overhead());
            t.row([
                label.to_owned(),
                pct(r.stats.miss_rate()),
                r.stats.eviction_invocations.to_string(),
                r.stats.unlink_operations.to_string(),
                format!("{:.1}%", r.total_overhead() / base * 100.0),
            ]);
        }
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out.push_str(
        "Reading: the paper's spectrum (FLUSH / 8-unit / fine FIFO) brackets the\n\
         extensions. The preemptive flush tracks FLUSH; affinity placement\n\
         undercuts 8-unit misses (better unit packing) at the price of more\n\
         unlink traffic; LRU buys good miss rates with recency bookkeeping and\n\
         fragmentation stalls; and the generational split pays a steep price at\n\
         this pressure — its static nursery partition wastes scarce capacity,\n\
         confirming that generation sizing only pays off in roomier caches.\n",
    );
    out
}

/// §5.4 future work: link-affinity placement vs plain unit FIFO, and the
/// adaptive granularity controller.
pub fn future_work(opts: &Options) -> String {
    let mut out = String::new();
    let mut t = TextTable::new(
        "Future work §5.4 — link-affinity placement vs plain N-unit FIFO",
        [
            "benchmark",
            "units",
            "pressure",
            "inter-unit links (plain)",
            "inter-unit links (affinity)",
            "unlink ops (plain)",
            "unlink ops (affinity)",
            "miss (plain)",
            "miss (affinity)",
        ],
    );
    for name in ABLATION_BENCHMARKS {
        let model = catalog::by_name(name).expect("table 1 benchmark");
        if opts.verbose {
            eprintln!("  [future_work] {name}…");
        }
        let trace = model.trace(opts.scale, opts.seed);
        let max_block = trace
            .superblocks
            .iter()
            .map(|s| u64::from(s.size))
            .max()
            .unwrap_or(1);
        for units in [8u32, 32] {
            for pressure in [2u32, 10] {
                let capacity = capacity_for_pressure(trace.max_cache_bytes(), pressure);
                // Clamp so every unit can hold the largest superblock
                // (same rule as the pressure sweeps).
                let fit = u32::try_from((capacity / max_block).max(1)).unwrap_or(u32::MAX);
                let eff = units.min(fit);
                let plain = run_policy(
                    &trace,
                    "plain",
                    CodeCache::new(Box::new(UnitFifo::new(capacity, eff).expect("units fit"))),
                );
                let affinity = run_policy(
                    &trace,
                    "affinity",
                    CodeCache::new(Box::new(
                        AffinityUnits::new(capacity, eff).expect("units fit"),
                    )),
                );
                t.row([
                    name.to_owned(),
                    if eff == units {
                        units.to_string()
                    } else {
                        format!("{units}→{eff}")
                    },
                    pressure.to_string(),
                    pct(plain.census_inter_fraction()),
                    pct(affinity.census_inter_fraction()),
                    plain.stats.unlink_operations.to_string(),
                    affinity.stats.unlink_operations.to_string(),
                    pct(plain.stats.miss_rate()),
                    pct(affinity.stats.miss_rate()),
                ]);
            }
        }
    }
    out.push_str(&t.to_string());
    out.push_str(
        "\nMeasured answer to the paper's open question: joint placement consistently\n\
         *improves miss rates* (hinted blocks fill partially-empty units, so effective\n\
         capacity rises), but it does **not** reduce inter-unit link traffic — plain\n\
         N-unit FIFO already co-locates temporally adjacent insertions, and scattering\n\
         insertions toward partners breaks that stream locality as often as it helps.\n\
         Insertion order, not link-aware placement, dominates link locality.\n",
    );
    out
}

/// Seed-stability: the headline FLUSH-vs-FIFO miss-rate gap across seeds.
pub fn stability(opts: &Options) -> String {
    let mut t = TextTable::new(
        "Seed stability — miss-rate gap (FLUSH − fine FIFO) at pressure 2, 6 seeds",
        ["benchmark", "mean gap", "95% CI", "stable sign"],
    );
    for name in ["gzip", "crafty", "gcc", "word"] {
        let model = catalog::by_name(name).expect("table 1 benchmark");
        if opts.verbose {
            eprintln!("  [stability] {name}…");
        }
        // Use a reduced scale so six seeds stay fast even for word.
        let scale = (opts.scale * 0.5).clamp(0.02, 0.3);
        let series = over_seeds(0..6, |seed| {
            let trace = model.trace(scale, seed);
            let cap = capacity_for_pressure(trace.max_cache_bytes(), 2);
            let flush = run_policy(
                &trace,
                "FLUSH",
                CodeCache::new(Box::new(UnitFifo::flush_policy(cap).expect("cap > 0"))),
            );
            let fine = run_policy(
                &trace,
                "FIFO",
                CodeCache::new(Box::new(FineFifo::new(cap).expect("cap > 0"))),
            );
            flush.stats.miss_rate() - fine.stats.miss_rate()
        })
        .expect("six samples");
        t.row([
            name.to_owned(),
            format!("{:+.3}pp", series.mean * 100.0),
            format!(
                "[{:+.3}, {:+.3}]pp",
                series.ci95_low * 100.0,
                series.ci95_high * 100.0
            ),
            if series.ci95_low > 0.0 { "yes" } else { "no" }.to_owned(),
        ]);
    }
    let mut out = t.to_string();
    let _ = writeln!(
        out,
        "\nA strictly positive CI means FLUSH misses more than fine FIFO for every \
         seed — the Figure 6 ordering is not a sampling artifact."
    );
    out
}

/// Multiprogramming study (§2.3's motivation): several applications
/// time-sharing one code cache, across granularities and context-switch
/// rates.
pub fn multiprog(opts: &Options) -> String {
    use cce_core::Granularity;
    use cce_workloads::mix::interleave;

    let apps = ["gzip", "crafty", "gcc"];
    if opts.verbose {
        eprintln!("  [multiprog] mixing {apps:?}…");
    }
    let traces: Vec<cce_dbt::TraceLog> = apps
        .iter()
        .map(|n| {
            catalog::by_name(n)
                .expect("table 1 benchmark")
                .trace(opts.scale, opts.seed)
        })
        .collect();

    let mut t = TextTable::new(
        "Multiprogramming — three apps sharing one cache (pressure 8)",
        [
            "granularity",
            "slice 20 miss",
            "slice 200 miss",
            "slice 2000 miss",
            "evictions @200",
        ],
    );
    let slices = [20usize, 200, 2000];
    for g in [
        Granularity::Flush,
        Granularity::units(2),
        Granularity::units(8),
        Granularity::units(64),
        Granularity::Superblock,
    ] {
        let mut row = vec![g.label()];
        let mut evictions = 0;
        for &slice in &slices {
            let mixed = interleave(&traces, slice);
            let capacity = capacity_for_pressure(mixed.max_cache_bytes(), 8);
            let max_block = mixed
                .superblocks
                .iter()
                .map(|s| u64::from(s.size))
                .max()
                .unwrap_or(1);
            let eff = cce_sim::pressure::effective_granularity(g, capacity, max_block);
            let r = Replay::new(&mixed)
                .granularity(eff)
                .capacity(capacity)
                .run()
                .map(cce_sim::ReplayReport::into_solo)
                .expect("mixed trace is well-formed");
            row.push(pct(r.stats.miss_rate()));
            if slice == 200 {
                evictions = r.stats.eviction_invocations;
            }
        }
        row.push(evictions.to_string());
        t.row(row);
    }
    let mut out = t.to_string();
    out.push_str(
        "\nReading: the granularity ordering of the single-program study carries over\n\
         to the multiprogrammed setting — the regime §2.3 argues makes bounded\n\
         caches (and therefore eviction policy) matter — and shorter time slices\n\
         (faster context switching) push miss rates up, most visibly for the\n\
         coarse policies whose flushes wipe all co-resident applications at once.\n",
    );
    out
}

/// Reuse-distance analysis: the analytic miss floor under Figure 7.
pub fn analysis(opts: &Options) -> String {
    use cce_sim::analysis::reuse_profile;
    use cce_sim::pressure::simulate_at_pressure;

    let mut t = TextTable::new(
        "Reuse-distance analysis — why the miss curves look the way they do",
        [
            "benchmark",
            "median reuse (KB)",
            "p90 reuse (KB)",
            "floor @p2",
            "FIFO @p2",
            "floor @p10",
            "FIFO @p10",
        ],
    );
    for name in ["gzip", "crafty", "gcc", "word"] {
        let model = catalog::by_name(name).expect("table 1 benchmark");
        if opts.verbose {
            eprintln!("  [analysis] {name}…");
        }
        let trace = model.trace(opts.scale, opts.seed);
        let profile = reuse_profile(&trace);
        let max_cache = trace.max_cache_bytes();
        // Same capacity rule as the simulator (incl. the minimum floor).
        let floor = |p: u32| profile.miss_rate_bound(capacity_for_pressure(max_cache, p));
        let fifo = |p: u32| {
            simulate_at_pressure(
                &trace,
                cce_core::Granularity::Superblock,
                p,
                &SimConfig::default(),
            )
            .expect("valid trace")
            .stats
            .miss_rate()
        };
        let kb = |q: f64| {
            profile
                .quantile(q)
                .map_or("-".to_owned(), |d| format!("{:.1}", d as f64 / 1024.0))
        };
        t.row([
            name.to_owned(),
            kb(0.5),
            kb(0.9),
            pct(floor(2)),
            pct(fifo(2)),
            pct(floor(10)),
            pct(fifo(10)),
        ]);
    }
    let mut out = t.to_string();
    out.push_str(
        "\nThe floor is the Mattson bound from the trace's byte reuse distances —\n\
         exact for LRU, and a tight heuristic for FIFO (which can occasionally dip\n\
         under it, since its retention counts insertions, not touches). The small\n\
         floor-to-FIFO gap says fine FIFO is near-optimal for these traces; the\n\
         growth of the floor itself from p2 to p10 is the irreducible part of\n\
         Figure 7.\n",
    );
    out
}
