//! Figure 9: the eviction-overhead regression (and its Eq. 3/Eq. 4
//! companions).

use crate::Options;
use cce_sim::measurement::Campaign;
use cce_sim::overhead::{EVICTION_EQ2, MISS_EQ3, UNLINK_EQ4};
use cce_sim::regression::fit_line;
use cce_sim::report::TextTable;
use std::fmt::Write as _;

/// Figure 9: collect >10 000 instrumented eviction measurements, fit a
/// least-squares trendline, and compare the recovered constants to the
/// paper's Equations 2–4.
pub fn fig9(opts: &Options) -> String {
    let campaign = Campaign::dynamorio_like();
    let n = 10_000;
    let mut t = TextTable::new(
        "Figure 9 — Least-squares cost models recovered from instrumented measurements",
        ["Routine", "Samples", "Fitted model", "Paper model", "R²"],
    );
    let ev = fit_line(&campaign.eviction_samples(n, opts.seed)).expect("enough samples");
    t.row([
        "eviction (Eq. 2)".to_owned(),
        n.to_string(),
        ev.model.to_string(),
        EVICTION_EQ2.to_string(),
        format!("{:.3}", ev.r_squared),
    ]);
    let miss = fit_line(&campaign.miss_samples(n, opts.seed)).expect("enough samples");
    t.row([
        "miss service (Eq. 3)".to_owned(),
        n.to_string(),
        miss.model.to_string(),
        MISS_EQ3.to_string(),
        format!("{:.3}", miss.r_squared),
    ]);
    let unlink = fit_line(&campaign.unlink_samples(n, opts.seed)).expect("enough samples");
    t.row([
        "unlinking (Eq. 4)".to_owned(),
        n.to_string(),
        unlink.model.to_string(),
        UNLINK_EQ4.to_string(),
        format!("{:.3}", unlink.r_squared),
    ]);
    let mut out = t.to_string();
    let example = ev.model.eval(230.0);
    let _ = writeln!(
        out,
        "\nWorked example (paper §4.3): evicting 230 bytes ⇒ {example:.0} instructions \
         (paper: 3 690). The fixed term dominates ⇒ evicting larger regions amortizes better."
    );
    out
}
