//! The shared simulation grid: every `(benchmark × granularity ×
//! pressure)` cell, computed once and consumed by all figure
//! regenerators.

use cce_core::Granularity;
use cce_sim::simulator::SimConfig;
use cce_sim::Replay;
use cce_workloads::BenchmarkModel;

/// One simulated cell.
#[derive(Debug, Clone, PartialEq)]
pub struct GridCell {
    /// Benchmark name.
    pub benchmark: String,
    /// Granularity label (`FLUSH`, `8-Unit`, `FIFO`).
    pub granularity: String,
    /// Cache-pressure factor.
    pub pressure: u32,
    /// Trace accesses.
    pub accesses: u64,
    /// Cache misses.
    pub misses: u64,
    /// Eviction-mechanism invocations.
    pub eviction_invocations: u64,
    /// Σ Eq. 3 (instructions).
    pub miss_overhead: f64,
    /// Σ Eq. 2 (instructions).
    pub eviction_overhead: f64,
    /// Σ Eq. 4 (instructions).
    pub unlink_overhead: f64,
    /// Links created during replay.
    pub links_created: u64,
    /// Links whose endpoints were in different units at creation.
    pub inter_unit_links: u64,
    /// Intra-unit links summed over the simulator's live-graph censuses.
    pub census_intra_links: u64,
    /// Inter-unit links summed over the simulator's live-graph censuses.
    pub census_inter_links: u64,
}

impl GridCell {
    /// Management overhead excluding link maintenance (§4.4, Figs 10–11).
    #[must_use]
    pub fn overhead_without_links(&self) -> f64 {
        self.miss_overhead + self.eviction_overhead
    }

    /// Management overhead including link maintenance (§5.3, Figs 14–15).
    #[must_use]
    pub fn overhead_with_links(&self) -> f64 {
        self.overhead_without_links() + self.unlink_overhead
    }
}

/// The full grid plus the axes it was computed over.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Scale factor the traces were generated at.
    pub scale: f64,
    /// Trace seed.
    pub seed: u64,
    /// Granularity labels in sweep order (coarse → fine).
    pub granularities: Vec<String>,
    /// Pressure factors in sweep order.
    pub pressures: Vec<u32>,
    /// All cells.
    pub cells: Vec<GridCell>,
}

impl Grid {
    /// Cells for one `(granularity, pressure)` line across benchmarks.
    #[must_use]
    pub fn line(&self, granularity: &str, pressure: u32) -> Vec<&GridCell> {
        self.cells
            .iter()
            .filter(|c| c.granularity == granularity && c.pressure == pressure)
            .collect()
    }

    /// Unified miss rate (Eq. 1) for one `(granularity, pressure)` point.
    #[must_use]
    pub fn unified_miss_rate(&self, granularity: &str, pressure: u32) -> f64 {
        cce_sim::metrics::unified_miss_rate(
            self.line(granularity, pressure)
                .iter()
                .map(|c| (c.misses, c.accesses)),
        )
    }

    /// Total eviction invocations for one point.
    #[must_use]
    pub fn total_evictions(&self, granularity: &str, pressure: u32) -> u64 {
        self.line(granularity, pressure)
            .iter()
            .map(|c| c.eviction_invocations)
            .sum()
    }

    /// Total overhead for one point, with or without link maintenance.
    #[must_use]
    pub fn total_overhead(&self, granularity: &str, pressure: u32, with_links: bool) -> f64 {
        self.line(granularity, pressure)
            .iter()
            .map(|c| {
                if with_links {
                    c.overhead_with_links()
                } else {
                    c.overhead_without_links()
                }
            })
            .sum()
    }

    /// Aggregate inter-unit fraction of the *live* link population for
    /// one point (Figure 13's metric, from the periodic censuses).
    #[must_use]
    pub fn inter_unit_fraction(&self, granularity: &str, pressure: u32) -> f64 {
        let cells = self.line(granularity, pressure);
        let inter: u64 = cells.iter().map(|c| c.census_inter_links).sum();
        let total: u64 = cells
            .iter()
            .map(|c| c.census_inter_links + c.census_intra_links)
            .sum();
        if total == 0 {
            0.0
        } else {
            inter as f64 / total as f64
        }
    }

    /// The cell for a specific benchmark/granularity/pressure.
    #[must_use]
    pub fn cell(&self, benchmark: &str, granularity: &str, pressure: u32) -> Option<&GridCell> {
        self.cells.iter().find(|c| {
            c.benchmark == benchmark && c.granularity == granularity && c.pressure == pressure
        })
    }
}

/// Computes the grid for `models` over the granularity spectrum and
/// pressure set at the options' scale/seed, sharding the cells across
/// the resolved worker threads on the resolved engine.
///
/// Traces are generated once per benchmark and replayed for every
/// configuration — the paper's save-and-replay methodology. The cells
/// run on [`cce_sim::ReplayMatrix`], whose pre-indexed result slots make the grid
/// (and therefore every figure rendered from it) byte-identical at any
/// `jobs` count — and, because [`cce_sim::Engine::Ladder`] is conformance-pinned
/// to the per-cell oracle, at either engine.
pub fn compute_grid(
    models: &[BenchmarkModel],
    granularities: &[Granularity],
    pressures: &[u32],
    opts: &crate::Options,
) -> Grid {
    let scale = opts.scale;
    let seed = opts.seed;
    let jobs = cce_sim::resolve_jobs(opts.jobs);
    let engine = opts.engine_choice();
    let verbose = opts.verbose;
    let base = SimConfig::default();
    let traces: Vec<_> = models
        .iter()
        .map(|model| {
            if verbose {
                eprintln!(
                    "  [grid] {} ({} superblocks at scale {scale})",
                    model.name,
                    model.scaled_superblocks(scale)
                );
            }
            model.trace(scale, seed)
        })
        .collect();
    if verbose {
        eprintln!(
            "  [grid] {} cells across {jobs} worker thread(s)",
            traces.len() * granularities.len() * pressures.len()
        );
    }
    let points = Replay::matrix(&traces)
        .granularities(granularities)
        .pressures(pressures)
        .config(&base)
        .jobs(jobs)
        .engine(engine)
        .run()
        .expect("generated traces are well-formed");
    let cells = points
        .into_iter()
        .map(|p| {
            let r = p.result;
            GridCell {
                benchmark: models[p.cell.trace].name.clone(),
                granularity: p.cell.granularity.label(),
                pressure: p.cell.pressure,
                accesses: r.stats.accesses,
                misses: r.stats.misses,
                eviction_invocations: r.stats.eviction_invocations,
                miss_overhead: r.miss_overhead,
                eviction_overhead: r.eviction_overhead,
                unlink_overhead: r.unlink_overhead,
                links_created: r.stats.links_created,
                inter_unit_links: r.stats.inter_unit_links_created,
                census_intra_links: r.census_intra_links,
                census_inter_links: r.census_inter_links,
            }
        })
        .collect();
    Grid {
        scale,
        seed,
        granularities: granularities.iter().map(|g| g.label()).collect(),
        pressures: pressures.to_vec(),
        cells,
    }
}
