//! Regenerators for every table and figure of the CGO 2004 paper.
//!
//! ```text
//! cargo run --release -p cce-experiments -- <command> [--scale F] [--seed N] [--out PATH]
//!
//! commands:
//!   table1 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15
//!   table2 sec5_3
//!   ablation future_work stability shards   (beyond-the-paper studies)
//!   all        run everything and (with --out) write an EXPERIMENTS.md
//! ```
//!
//! `--scale` shrinks every workload proportionally (default 1.0 =
//! Table 1 superblock counts); `--seed` controls trace generation.

#![deny(unsafe_code)]

mod all;
mod bench_concurrent;
mod bench_grid;
mod bench_io;
mod chaining;
mod extensions;
mod fig9;
mod grid;
mod miss_figs;
mod overhead_figs;
mod serve_cmd;
mod shards;
mod stats_figs;
mod tenants;
mod tools;

use std::process::ExitCode;

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Workload scale in (0, 1].
    pub scale: f64,
    /// Trace seed.
    pub seed: u64,
    /// Output file (in addition to stdout), if any.
    pub out: Option<String>,
    /// Benchmark name for the `trace` tool.
    pub bench: Option<String>,
    /// Saved-log path for the `replay`/`convert` tools.
    pub log: Option<String>,
    /// Cache pressure for the `replay` tool.
    pub pressure: Option<u32>,
    /// Trace encoding for the `trace`/`convert` tools (`json`/`binary`).
    pub format: Option<String>,
    /// Simulation worker threads (`--jobs`); `None` defers to the
    /// `CCE_JOBS` environment variable, then to available parallelism.
    pub jobs: Option<usize>,
    /// Tenant count for the `replay` tool's concurrent mode.
    pub tenants: Option<u32>,
    /// Worker threads for the `replay` tool's concurrent mode.
    pub threads: Option<usize>,
    /// Offered request rate for the `serve` benchmark.
    pub rps: Option<f64>,
    /// Target duration in seconds for the `serve` benchmark.
    pub duration: Option<f64>,
    /// Ingress budget in queued events for the `serve` benchmark.
    pub queue: Option<usize>,
    /// Zipf popularity exponent for the `serve` benchmark.
    pub skew: Option<f64>,
    /// Fail the `serve` run unless it applied work and shed nothing.
    /// For `bench_grid`, fail unless the ladder speedup clears its gate.
    pub smoke: bool,
    /// Sweep engine (`--engine naive|ladder`); `None` means the
    /// default, the single-pass ladder.
    pub engine: Option<String>,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Options {
    /// Resolves `--engine`: figures default to the single-pass ladder
    /// (conformance-pinned byte-identical to the oracle); `--engine
    /// naive` falls back to one replay per grid cell.
    #[must_use]
    pub fn engine_choice(&self) -> cce_sim::Engine {
        match self.engine.as_deref() {
            Some("naive") => cce_sim::Engine::Naive,
            _ => cce_sim::Engine::Ladder,
        }
    }
}

impl Default for Options {
    fn default() -> Options {
        Options {
            scale: 1.0,
            seed: 42,
            out: None,
            bench: None,
            log: None,
            pressure: None,
            format: None,
            jobs: None,
            tenants: None,
            threads: None,
            rps: None,
            duration: None,
            queue: None,
            skew: None,
            smoke: false,
            engine: None,
            verbose: true,
        }
    }
}

fn usage() -> &'static str {
    "usage: cce-experiments <command> [--scale F] [--seed N] [--jobs N] \
     [--engine naive|ladder] [--out PATH] [--quiet]\n\
     commands: table1 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 \
     table2 sec5_3 ablation future_work stability multiprog analysis shards tenants all\n     \
     tools: trace --bench <name> --out <path> [--format json|binary] | \
     replay --log <path> [--pressure N] [--tenants N --threads T] | \
     convert --log <in> --out <out> [--format json|binary] | \
     bench_trace_io [--scale F] [--out PATH] | \
     bench_concurrent [--scale F] [--out PATH] | \
     bench_grid [--scale F] [--smoke] [--out BENCH_grid.json] | \
     serve [--bench <name>] [--rps R] [--duration S] [--tenants N] [--threads T] \
     [--queue EVENTS] [--skew Z] [--seed N] [--smoke] [--out BENCH_serve.json]"
}

fn parse_args(args: &[String]) -> Result<(String, Options), String> {
    let mut cmd = None;
    let mut opts = Options::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let v = args.get(i).ok_or("--scale needs a value")?;
                opts.scale = v.parse().map_err(|_| format!("bad scale: {v}"))?;
                if !(opts.scale > 0.0 && opts.scale <= 1.0) {
                    return Err("scale must be in (0, 1]".to_owned());
                }
            }
            "--seed" => {
                i += 1;
                let v = args.get(i).ok_or("--seed needs a value")?;
                opts.seed = v.parse().map_err(|_| format!("bad seed: {v}"))?;
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).ok_or("--out needs a path")?.clone());
            }
            "--bench" => {
                i += 1;
                opts.bench = Some(args.get(i).ok_or("--bench needs a name")?.clone());
            }
            "--log" => {
                i += 1;
                opts.log = Some(args.get(i).ok_or("--log needs a path")?.clone());
            }
            "--pressure" => {
                i += 1;
                let v = args.get(i).ok_or("--pressure needs a value")?;
                opts.pressure = Some(v.parse().map_err(|_| format!("bad pressure: {v}"))?);
            }
            "--format" => {
                i += 1;
                opts.format = Some(args.get(i).ok_or("--format needs a value")?.clone());
            }
            "--jobs" => {
                i += 1;
                let v = args.get(i).ok_or("--jobs needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad jobs: {v}"))?;
                if n == 0 {
                    return Err("jobs must be at least 1".to_owned());
                }
                opts.jobs = Some(n);
            }
            "--tenants" => {
                i += 1;
                let v = args.get(i).ok_or("--tenants needs a value")?;
                let n: u32 = v.parse().map_err(|_| format!("bad tenants: {v}"))?;
                if n == 0 {
                    return Err("tenants must be at least 1".to_owned());
                }
                opts.tenants = Some(n);
            }
            "--threads" => {
                i += 1;
                let v = args.get(i).ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad threads: {v}"))?;
                if n == 0 {
                    return Err("threads must be at least 1".to_owned());
                }
                opts.threads = Some(n);
            }
            "--rps" => {
                i += 1;
                let v = args.get(i).ok_or("--rps needs a value")?;
                let r: f64 = v.parse().map_err(|_| format!("bad rps: {v}"))?;
                if r <= 0.0 {
                    return Err("rps must be positive".to_owned());
                }
                opts.rps = Some(r);
            }
            "--duration" => {
                i += 1;
                let v = args.get(i).ok_or("--duration needs a value")?;
                let d: f64 = v.parse().map_err(|_| format!("bad duration: {v}"))?;
                if d <= 0.0 {
                    return Err("duration must be positive".to_owned());
                }
                opts.duration = Some(d);
            }
            "--queue" => {
                i += 1;
                let v = args.get(i).ok_or("--queue needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad queue: {v}"))?;
                if n == 0 {
                    return Err("queue must be at least 1 event".to_owned());
                }
                opts.queue = Some(n);
            }
            "--skew" => {
                i += 1;
                let v = args.get(i).ok_or("--skew needs a value")?;
                let z: f64 = v.parse().map_err(|_| format!("bad skew: {v}"))?;
                if !(0.0..=8.0).contains(&z) {
                    return Err("skew must be in 0..=8".to_owned());
                }
                opts.skew = Some(z);
            }
            "--smoke" => opts.smoke = true,
            "--engine" => {
                i += 1;
                let v = args.get(i).ok_or("--engine needs a value")?;
                if v != "naive" && v != "ladder" {
                    return Err(format!("bad engine: {v} (expected naive or ladder)"));
                }
                opts.engine = Some(v.clone());
            }
            "--quiet" => opts.verbose = false,
            other if cmd.is_none() && !other.starts_with('-') => cmd = Some(other.to_owned()),
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    let cmd = cmd.ok_or_else(|| usage().to_owned())?;
    Ok((cmd, opts))
}

fn run(cmd: &str, opts: &Options) -> Result<String, String> {
    let output = match cmd {
        "table1" => stats_figs::table1(opts),
        "fig3" => stats_figs::fig3(opts),
        "fig4" => stats_figs::fig4(opts),
        "fig12" => stats_figs::fig12(opts),
        "fig6" => miss_figs::fig6(opts),
        "fig7" => miss_figs::fig7(opts),
        "fig8" => miss_figs::fig8(opts),
        "fig9" => fig9::fig9(opts),
        "fig10" => overhead_figs::fig10(opts),
        "fig11" => overhead_figs::fig11(opts),
        "fig13" => overhead_figs::fig13(opts),
        "fig14" => overhead_figs::fig14(opts),
        "fig15" => overhead_figs::fig15(opts),
        "table2" => chaining::table2(opts),
        "sec5_3" => chaining::sec5_3(opts),
        "ablation" => extensions::ablation(opts),
        "future_work" => extensions::future_work(opts),
        "stability" => extensions::stability(opts),
        "multiprog" => extensions::multiprog(opts),
        "analysis" => extensions::analysis(opts),
        "shards" => shards::shards(opts),
        "tenants" => tenants::tenants(opts),
        "trace" => return tools::trace(opts),
        "replay" => return tools::replay(opts),
        "convert" => return tools::convert(opts),
        "bench_trace_io" => return bench_io::bench_trace_io(opts),
        "bench_concurrent" => return bench_concurrent::bench_concurrent(opts),
        "bench_grid" => return bench_grid::bench_grid(opts),
        "serve" => return serve_cmd::serve(opts),
        "all" => all::all(opts),
        other => return Err(format!("unknown command: {other}\n{}", usage())),
    };
    Ok(output)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, opts) = match parse_args(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&cmd, &opts) {
        Ok(output) => {
            println!("{output}");
            // These tools write their own --out file in a non-text format.
            let skip_generic_write = matches!(
                cmd.as_str(),
                "trace"
                    | "convert"
                    | "bench_trace_io"
                    | "bench_concurrent"
                    | "bench_grid"
                    | "serve"
            );
            if let Some(path) = opts.out.as_ref().filter(|_| !skip_generic_write) {
                if let Err(e) = std::fs::write(path, &output) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_command_and_flags() {
        let (cmd, o) = parse_args(&s(&["fig6", "--scale", "0.5", "--seed", "7"])).unwrap();
        assert_eq!(cmd, "fig6");
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parses_jobs() {
        let (_, o) = parse_args(&s(&["fig6", "--jobs", "4"])).unwrap();
        assert_eq!(o.jobs, Some(4));
        assert!(parse_args(&s(&["fig6", "--jobs", "0"])).is_err());
        assert!(parse_args(&s(&["fig6", "--jobs", "many"])).is_err());
    }

    #[test]
    fn parses_tenants_and_threads() {
        let (_, o) = parse_args(&s(&["replay", "--tenants", "3", "--threads", "2"])).unwrap();
        assert_eq!(o.tenants, Some(3));
        assert_eq!(o.threads, Some(2));
        assert!(parse_args(&s(&["replay", "--tenants", "0"])).is_err());
        assert!(parse_args(&s(&["replay", "--threads", "0"])).is_err());
    }

    #[test]
    fn parses_engine() {
        let (_, o) = parse_args(&s(&["fig6", "--engine", "naive"])).unwrap();
        assert_eq!(o.engine_choice(), cce_sim::Engine::Naive);
        let (_, o) = parse_args(&s(&["fig6", "--engine", "ladder"])).unwrap();
        assert_eq!(o.engine_choice(), cce_sim::Engine::Ladder);
        let (_, o) = parse_args(&s(&["fig6"])).unwrap();
        assert_eq!(o.engine_choice(), cce_sim::Engine::Ladder);
        assert!(parse_args(&s(&["fig6", "--engine", "magic"])).is_err());
    }

    #[test]
    fn rejects_bad_scale() {
        assert!(parse_args(&s(&["fig6", "--scale", "0"])).is_err());
        assert!(parse_args(&s(&["fig6", "--scale", "2"])).is_err());
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse_args(&s(&["fig6", "--what"])).is_err());
    }

    #[test]
    fn missing_command_is_usage_error() {
        assert!(parse_args(&s(&[])).is_err());
    }

    #[test]
    fn small_scale_smoke_every_command() {
        let opts = Options {
            scale: 0.02,
            seed: 1,
            verbose: false,
            ..Options::default()
        };
        for cmd in [
            "table1",
            "fig3",
            "fig4",
            "fig6",
            "fig8",
            "fig9",
            "fig12",
            "fig13",
            "table2",
            "ablation",
            "future_work",
            "stability",
            "multiprog",
            "analysis",
            "shards",
            "tenants",
        ] {
            let out = run(cmd, &opts).unwrap_or_else(|e| panic!("{cmd}: {e}"));
            assert!(!out.is_empty(), "{cmd} produced no output");
        }
    }
}
