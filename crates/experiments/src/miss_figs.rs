//! Miss-rate and eviction-count experiments: Figures 6, 7 and 8.

use crate::grid::{compute_grid, Grid};
use crate::Options;
use cce_core::Granularity;
use cce_sim::report::{pct, TextTable};
use cce_workloads::catalog;
use std::fmt::Write as _;

/// The paper's granularity sweep: FLUSH, 2..=256 units, fine FIFO.
pub fn spectrum() -> Vec<Granularity> {
    Granularity::spectrum(8)
}

pub(crate) fn grid_at(opts: &Options, pressures: &[u32]) -> Grid {
    compute_grid(&catalog::all(), &spectrum(), pressures, opts)
}

/// Figure 6: unified miss rate vs granularity at pressure 2.
pub fn fig6(opts: &Options) -> String {
    let grid = grid_at(opts, &[2]);
    render_fig6(&grid)
}

pub(crate) fn render_fig6(grid: &Grid) -> String {
    let mut t = TextTable::new(
        "Figure 6 — Unified miss rate vs eviction granularity (cache pressure 2)",
        ["Granularity", "Unified miss rate"],
    );
    for g in &grid.granularities {
        t.row([g.clone(), pct(grid.unified_miss_rate(g, 2))]);
    }
    let mut out = t.to_string();
    let first = grid.unified_miss_rate(&grid.granularities[0], 2);
    let last = grid.unified_miss_rate(grid.granularities.last().unwrap(), 2);
    let _ = writeln!(
        out,
        "\nExpected shape: miss rates decline as evictions get finer — FLUSH worst \
         ({}), fine FIFO best ({}). (At the very fine unit counts a small rise from \
         unit padding is visible; the fragmentation-free circular buffer of the \
         per-superblock FIFO recovers it.)",
        pct(first),
        pct(last)
    );
    out
}

/// Figure 7: unified miss rate vs granularity as pressure increases.
pub fn fig7(opts: &Options) -> String {
    let pressures = [2, 4, 6, 8, 10];
    let grid = grid_at(opts, &pressures);
    render_fig7(&grid)
}

pub(crate) fn render_fig7(grid: &Grid) -> String {
    let mut headers = vec!["Granularity".to_owned()];
    headers.extend(grid.pressures.iter().map(|p| format!("pressure {p}")));
    let mut t = TextTable::new(
        "Figure 7 — Unified miss rate as cache pressure increases",
        headers,
    );
    for g in &grid.granularities {
        let mut row = vec![g.clone()];
        row.extend(
            grid.pressures
                .iter()
                .map(|&p| pct(grid.unified_miss_rate(g, p))),
        );
        t.row(row);
    }
    let mut out = t.to_string();
    out.push_str(
        "\nExpected shape: differences widen with pressure; every column declines top to bottom.\n",
    );
    out
}

/// Figure 8: eviction invocations relative to finest-grained FIFO.
pub fn fig8(opts: &Options) -> String {
    let grid = grid_at(opts, &[2]);
    render_fig8(&grid)
}

pub(crate) fn render_fig8(grid: &Grid) -> String {
    let fine_label = grid.granularities.last().unwrap().clone();
    let baseline = grid.total_evictions(&fine_label, 2).max(1);
    let mut t = TextTable::new(
        "Figure 8 — Eviction invocations relative to finest-grained FIFO (pressure 2)",
        ["Granularity", "Invocations", "Relative to FIFO"],
    );
    for g in &grid.granularities {
        let n = grid.total_evictions(g, 2);
        t.row([
            g.clone(),
            n.to_string(),
            format!("{:.1}%", n as f64 / baseline as f64 * 100.0),
        ]);
    }
    let mut out = t.to_string();
    let units64 = grid.total_evictions("64-Unit", 2) as f64 / baseline as f64;
    let _ = writeln!(
        out,
        "\nPaper anchor: 64-unit ≈ 1/3 the invocations of fine-grained FIFO; measured: {:.2}×.",
        units64
    );
    out
}
