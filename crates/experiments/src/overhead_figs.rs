//! Overhead and link experiments: Figures 10, 11, 13, 14 and 15.

use crate::grid::Grid;
use crate::miss_figs::grid_at;
use crate::Options;
use cce_sim::overhead::UNLINK_EQ4;
use cce_sim::report::{pct, TextTable};
use std::fmt::Write as _;

fn render_overhead_vs_granularity(
    grid: &Grid,
    pressure: u32,
    with_links: bool,
    title: &str,
) -> String {
    let flush_label = &grid.granularities[0];
    let baseline = grid.total_overhead(flush_label, pressure, with_links);
    let mut t = TextTable::new(
        title,
        ["Granularity", "Overhead (instr)", "Relative to FLUSH"],
    );
    let mut best = (flush_label.clone(), 1.0f64);
    for g in &grid.granularities {
        let o = grid.total_overhead(g, pressure, with_links);
        let rel = o / baseline;
        if rel < best.1 {
            best = (g.clone(), rel);
        }
        t.row([
            g.clone(),
            format!("{o:.3e}"),
            format!("{:.1}%", rel * 100.0),
        ]);
    }
    let mut out = t.to_string();
    let _ = writeln!(
        out,
        "\nMinimum at {} ({:.1}% of FLUSH). Expected shape: U-curve — coarse policies \
         pay misses, the finest pays eviction invocations{}; the medium grains win.",
        best.0,
        best.1 * 100.0,
        if with_links {
            " and link maintenance"
        } else {
            ""
        }
    );
    out
}

fn render_overhead_vs_pressure(grid: &Grid, with_links: bool, title: &str) -> String {
    let flush_label = grid.granularities[0].clone();
    let mut headers = vec!["Granularity".to_owned()];
    headers.extend(grid.pressures.iter().map(|p| format!("pressure {p}")));
    let mut t = TextTable::new(title, headers);
    for g in &grid.granularities {
        let mut row = vec![g.clone()];
        for &p in &grid.pressures {
            let base = grid.total_overhead(&flush_label, p, with_links);
            let o = grid.total_overhead(g, p, with_links);
            row.push(format!("{:.1}%", o / base * 100.0));
        }
        t.row(row);
    }
    let mut out = t.to_string();
    // The fine-vs-FLUSH reversal the paper highlights.
    let fine = grid.granularities.last().unwrap();
    let lo_p = grid.pressures[0];
    let hi_p = *grid.pressures.last().unwrap();
    let fine_lo = grid.total_overhead(fine, lo_p, with_links)
        / grid.total_overhead(&flush_label, lo_p, with_links);
    let fine_hi = grid.total_overhead(fine, hi_p, with_links)
        / grid.total_overhead(&flush_label, hi_p, with_links);
    let _ = writeln!(
        out,
        "\nFine FIFO vs FLUSH: {:.1}% at pressure {lo_p} → {:.1}% at pressure {hi_p}. \
         Expected: the ratio rises with pressure (the paper's reversal).",
        fine_lo * 100.0,
        fine_hi * 100.0
    );
    out
}

/// Figure 10: relative overhead (miss + eviction) at maxCache/10.
pub fn fig10(opts: &Options) -> String {
    let grid = grid_at(opts, &[10]);
    render_fig10(&grid)
}

pub(crate) fn render_fig10(grid: &Grid) -> String {
    render_overhead_vs_granularity(
        grid,
        10,
        false,
        "Figure 10 — Relative overhead (miss + eviction penalties), cache = maxCache/10",
    )
}

/// Figure 11: relative overhead vs pressure, without link maintenance.
pub fn fig11(opts: &Options) -> String {
    let grid = grid_at(opts, &[2, 4, 6, 8, 10]);
    render_fig11(&grid)
}

pub(crate) fn render_fig11(grid: &Grid) -> String {
    render_overhead_vs_pressure(
        grid,
        false,
        "Figure 11 — Relative overhead (no link maintenance) vs cache pressure",
    )
}

/// Figure 13: percentage of links that cross cache-unit boundaries.
pub fn fig13(opts: &Options) -> String {
    let grid = grid_at(opts, &[2]);
    render_fig13(&grid)
}

pub(crate) fn render_fig13(grid: &Grid) -> String {
    let mut t = TextTable::new(
        "Figure 13 — Inter-unit superblock links (pressure 2)",
        ["Granularity", "Inter-unit fraction"],
    );
    for g in &grid.granularities {
        t.row([g.clone(), pct(grid.inter_unit_fraction(g, 2))]);
    }
    let mut out = t.to_string();
    let two = grid.inter_unit_fraction("2-Unit", 2);
    let fine = grid.inter_unit_fraction(grid.granularities.last().unwrap(), 2);
    let _ = writeln!(
        out,
        "\nPaper anchors: FLUSH 0%; 2 units ≈ 24.3% (measured {}); fine FIFO large but < 100% \
         because self-links stay intra-unit (measured {}). Shape reproduced (0% rising \
         steadily, near-total at per-superblock units); our synthetic CFGs are more \
         loop-local than real Windows binaries, so the absolute mid-range fractions sit \
         below the paper's.",
        pct(two),
        pct(fine)
    );
    out
}

/// Figure 14: relative overhead including link maintenance, maxCache/10.
pub fn fig14(opts: &Options) -> String {
    let grid = grid_at(opts, &[10]);
    render_fig14(&grid)
}

pub(crate) fn render_fig14(grid: &Grid) -> String {
    render_overhead_vs_granularity(
        grid,
        10,
        true,
        &format!(
            "Figure 14 — Relative overhead incl. link maintenance ({}), cache = maxCache/10",
            UNLINK_EQ4.eq_label(4)
        ),
    )
}

/// Figure 15: relative overhead including link maintenance vs pressure.
pub fn fig15(opts: &Options) -> String {
    let grid = grid_at(opts, &[2, 4, 6, 8, 10]);
    render_fig15(&grid)
}

pub(crate) fn render_fig15(grid: &Grid) -> String {
    render_overhead_vs_pressure(
        grid,
        true,
        &format!(
            "Figure 15 — Relative overhead incl. link maintenance ({}) vs cache pressure",
            UNLINK_EQ4.eq_label(4)
        ),
    )
}
