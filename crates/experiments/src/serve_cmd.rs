//! The `serve` subcommand: the traffic-driven serving benchmark.
//!
//! Builds an open-loop traffic plan from a catalog workload's superblock
//! registry ([`cce_sim::serve::ServePlan::build`]), streams it through
//! the framed byte transport into the concurrent-session server loop
//! ([`cce_sim::run_serve`]), and reports sustained throughput, service
//! latency percentiles, queue high-water and per-tenant cache outcomes.
//! With `--out`, the same numbers land in a `BENCH_serve.json` for CI
//! trend lines; with `--smoke`, the run fails unless it applied work and
//! shed nothing (the ci.sh gate).

use crate::Options;
use cce_sim::serve::ServePlan;
use cce_sim::{run_serve, ServeConfig, ServeReport};
use cce_util::Json;
use cce_workloads::catalog;

/// Builds the [`ServeConfig`] for the CLI options (defaults documented
/// in `usage()`).
fn serve_config(opts: &Options) -> ServeConfig {
    let mut cfg = ServeConfig {
        seed: opts.seed,
        ..ServeConfig::default()
    };
    if let Some(t) = opts.tenants {
        cfg.tenants = t as usize;
    }
    if let Some(t) = opts.threads {
        cfg.threads = t;
    }
    if let Some(r) = opts.rps {
        cfg.rps = r;
    }
    if let Some(d) = opts.duration {
        cfg.duration_secs = d;
    }
    if let Some(q) = opts.queue {
        cfg.queue_events = q;
    }
    if let Some(s) = opts.skew {
        cfg.skew = s;
    }
    cfg
}

fn json_report(report: &ServeReport) -> Json {
    let per_tenant: Vec<Json> = report
        .per_tenant
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("tenant", Json::from(t.tenant)),
                ("applied_events", Json::from(t.applied_events)),
                ("accesses", Json::from(t.stats.accesses)),
                ("misses", Json::from(t.stats.misses)),
                ("miss_rate", Json::from(t.stats.miss_rate())),
                (
                    "eviction_invocations",
                    Json::from(t.stats.eviction_invocations),
                ),
                ("blocks_evicted", Json::from(t.stats.blocks_evicted)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("benchmark", Json::from("serve")),
        ("name", Json::from(report.name.clone())),
        ("tenants", Json::from(report.tenants)),
        ("threads", Json::from(report.threads)),
        ("offered_requests", Json::from(report.offered_requests)),
        ("offered_events", Json::from(report.offered_events)),
        ("sent_requests", Json::from(report.sent_requests)),
        ("delivered_events", Json::from(report.delivered_events)),
        ("applied_events", Json::from(report.applied_events)),
        ("dropped_requests", Json::from(report.dropped_requests)),
        ("dropped_events", Json::from(report.dropped_events)),
        ("rejected_frames", Json::from(report.rejected_frames)),
        ("disconnected", Json::from(report.disconnected)),
        ("wall_secs", Json::from(report.wall_secs)),
        (
            "throughput_events_per_sec",
            Json::from(report.throughput_events_per_sec),
        ),
        ("queue_high_water", Json::from(report.queue_high_water)),
        ("latency_samples", Json::from(report.latency.samples)),
        ("p50_nanos", Json::from(report.latency.p50_nanos)),
        ("p95_nanos", Json::from(report.latency.p95_nanos)),
        ("p99_nanos", Json::from(report.latency.p99_nanos)),
        ("max_nanos", Json::from(report.latency.max_nanos)),
        ("per_tenant", Json::Arr(per_tenant)),
    ])
}

fn render(report: &ServeReport) -> String {
    use cce_sim::report::TextTable;
    let ms = |n: u64| format!("{:.3}", n as f64 / 1e6);
    let mut out = format!(
        "Serve: {} — {} tenants on {} thread(s), {:.1} s wall\n\
         offered {} requests ({} events); delivered {}, applied {}, \
         dropped {} ({} requests), rejected {} frame(s){}\n\
         throughput {:.0} events/s, queue high-water {} events\n\
         latency (ms): p50 {}  p95 {}  p99 {}  max {}  ({} samples)\n\n",
        report.name,
        report.tenants,
        report.threads,
        report.wall_secs,
        report.offered_requests,
        report.offered_events,
        report.delivered_events,
        report.applied_events,
        report.dropped_events,
        report.dropped_requests,
        report.rejected_frames,
        if report.disconnected {
            ", DISCONNECTED"
        } else {
            ""
        },
        report.throughput_events_per_sec,
        report.queue_high_water,
        ms(report.latency.p50_nanos),
        ms(report.latency.p95_nanos),
        ms(report.latency.p99_nanos),
        ms(report.latency.max_nanos),
        report.latency.samples,
    );
    let mut t = TextTable::new(
        "per-tenant outcomes",
        ["tenant", "applied", "accesses", "miss rate", "evictions"],
    );
    for tn in &report.per_tenant {
        t.row([
            tn.tenant.to_string(),
            tn.applied_events.to_string(),
            tn.stats.accesses.to_string(),
            format!("{:.2}%", tn.stats.miss_rate() * 100.0),
            tn.stats.eviction_invocations.to_string(),
        ]);
    }
    out.push_str(&t.to_string());
    out
}

/// `serve --rps R --duration S --tenants N --threads T [--bench NAME]
/// [--queue E] [--skew Z] [--seed N] [--smoke] [--out BENCH_serve.json]`
pub fn serve(opts: &Options) -> Result<String, String> {
    let bench = opts.bench.as_deref().unwrap_or("gzip");
    let trace = catalog::by_name(bench)
        .ok_or_else(|| format!("unknown benchmark: {bench}"))?
        .trace(opts.scale, opts.seed);
    let cfg = serve_config(opts);
    let plan = ServePlan::build(&trace.superblocks, &trace.name, &cfg)
        .map_err(|e| format!("plan: {e}"))?;
    if opts.verbose {
        eprintln!(
            "serving {} requests ({} events) to {} tenant(s)...",
            plan.requests.len(),
            plan.event_count,
            cfg.tenants
        );
    }
    let report = run_serve(&plan, &cfg).map_err(|e| format!("serve: {e}"))?;

    let mut out = render(&report);
    if let Some(path) = opts.out.as_deref() {
        std::fs::write(path, json_report(&report).to_string_compact())
            .map_err(|e| format!("write {path}: {e}"))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    if opts.smoke {
        // The CI gate: an unloaded short run must apply real work and
        // shed nothing, or the serving path has regressed.
        if report.applied_events == 0 {
            return Err(format!("smoke: no events were applied\n{out}"));
        }
        if report.dropped_events > 0 || report.dropped_requests > 0 {
            return Err(format!(
                "smoke: shed {} events ({} requests) under nominal load\n{out}",
                report.dropped_events, report.dropped_requests
            ));
        }
        if report.disconnected || report.rejected_frames > 0 {
            return Err(format!(
                "smoke: stream faults without fault injection\n{out}"
            ));
        }
        out.push_str("smoke: ok (zero drops, nonzero throughput)\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> Options {
        Options {
            scale: 0.05,
            seed: 11,
            bench: Some("gzip".to_owned()),
            tenants: Some(3),
            threads: Some(2),
            rps: Some(200_000.0),
            duration: Some(0.005),
            verbose: false,
            ..Options::default()
        }
    }

    #[test]
    fn serve_command_renders_and_writes_json() {
        let dir = std::env::temp_dir().join("cce_serve_cmd_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_serve.json").to_string_lossy().into_owned();
        let opts = Options {
            out: Some(path.clone()),
            smoke: true,
            ..quick_opts()
        };
        let out = serve(&opts).unwrap();
        assert!(out.contains("per-tenant outcomes"), "{out}");
        assert!(out.contains("smoke: ok"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(&json).unwrap();
        let Json::Obj(pairs) = parsed else {
            panic!("BENCH_serve.json is not an object");
        };
        let field = |k: &str| pairs.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(field("benchmark"), Some(Json::from("serve")));
        assert!(matches!(field("applied_events"), Some(Json::Int(n)) if n > 0));
        assert_eq!(field("dropped_events"), Some(Json::from(0u64)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let opts = Options {
            bench: Some("nope".to_owned()),
            ..quick_opts()
        };
        assert!(serve(&opts).is_err());
    }
}
