//! Sharded serving study: 1/2/4/8 shards at fixed total capacity
//! across the seven cache organizations.
//!
//! The ROADMAP's multi-tenant step splits one code cache into N
//! independently-evicting shards (`cce_core::shard`). This experiment
//! measures what that costs at a **fixed byte budget**: each shard
//! count splits the same total capacity, so every difference is pure
//! partitioning effect — imbalance between hash slices, and formerly
//! patchable intra-cache links turning into always-indirect cross-shard
//! links charged through Eq. 4 on target eviction.

use crate::Options;
use cce_core::shard::shard_capacities;
use cce_core::{
    AdaptiveUnits, AffinityUnits, CacheOrg, CodeCache, FineFifo, Generational, LruCache,
    PreemptiveFlush, ShardedCache, UnitFifo,
};
use cce_sim::metrics::unified_miss_rate;
use cce_sim::pressure::capacity_for_pressure;
use cce_sim::report::{pct, TextTable};
use cce_sim::simulator::{SimConfig, SimResult};
use cce_sim::Replay;
use cce_workloads::catalog;

/// Same benchmark trio as the policy ablation: small, medium, large.
const BENCHMARKS: [&str; 3] = ["gzip", "crafty", "gcc"];

/// The shard axis of the tentpole figure.
const SHARD_COUNTS: [u32; 4] = [1, 2, 4, 8];

/// The seven organizations of the workspace, by stable label.
const ORGS: [&str; 7] = [
    "unit FIFO (8)",
    "fine FIFO",
    "LRU",
    "preemptive",
    "adaptive",
    "affinity-8",
    "generational",
];

/// Builds one organization at one shard's capacity. Unit counts clamp
/// so every unit can hold the largest superblock — the same rule the
/// pressure sweeps apply to a bare cache.
pub(crate) fn build_org(kind: &str, capacity: u64, max_block: u64) -> Box<dyn CacheOrg> {
    let fit = u32::try_from((capacity / max_block.max(1)).max(1)).unwrap_or(u32::MAX);
    let units = 8.min(fit);
    match kind {
        "unit FIFO (8)" => Box::new(UnitFifo::new(capacity, units).expect("units fit")),
        "fine FIFO" => Box::new(FineFifo::new(capacity).expect("capacity > 0")),
        "LRU" => Box::new(LruCache::new(capacity).expect("capacity > 0")),
        "preemptive" => Box::new(PreemptiveFlush::new(capacity).expect("capacity > 0")),
        "adaptive" => Box::new(AdaptiveUnits::new(capacity, units, 1, 256).expect("valid bounds")),
        "affinity-8" => Box::new(AffinityUnits::new(capacity, units).expect("units fit")),
        "generational" => Box::new(Generational::new(capacity).expect("capacity > 0")),
        other => unreachable!("unknown org {other}"),
    }
}

/// A `ShardedCache` of `n` shards of one organization, splitting
/// `total` bytes evenly (first `total % n` shards get the extra byte).
fn sharded_org(kind: &str, total: u64, n: u32, max_block: u64) -> ShardedCache {
    let shards = shard_capacities(total, n)
        .into_iter()
        .map(|c| CodeCache::new(build_org(kind, c, max_block)))
        .collect();
    ShardedCache::new(shards).expect("shard count is positive")
}

/// One `(org, shard count)` cell aggregated over the benchmark trio.
struct ShardCell {
    misses_accesses: Vec<(u64, u64)>,
    evictions: u64,
    unlink_ops: u64,
    census_intra: u64,
    census_inter: u64,
    overhead: f64,
}

fn run_cell(
    traces: &[(cce_dbt::TraceLog, u64, u64)],
    kind: &str,
    n: u32,
    config: &SimConfig,
) -> ShardCell {
    let mut cell = ShardCell {
        misses_accesses: Vec::with_capacity(traces.len()),
        evictions: 0,
        unlink_ops: 0,
        census_intra: 0,
        census_inter: 0,
        overhead: 0.0,
    };
    for (trace, capacity, max_block) in traces {
        let session = sharded_org(kind, *capacity, n, *max_block);
        let r: SimResult = Replay::new(trace)
            .config(config)
            .session(session, format!("{kind} x{n}"))
            .run()
            .map(cce_sim::ReplayReport::into_solo)
            .expect("generated traces are well-formed");
        cell.misses_accesses
            .push((r.stats.misses, r.stats.accesses));
        cell.evictions += r.stats.eviction_invocations;
        cell.unlink_ops += r.stats.unlink_operations;
        cell.census_intra += r.census_intra_links;
        cell.census_inter += r.census_inter_links;
        cell.overhead += r.total_overhead();
    }
    cell
}

/// The `shards` command: every org at 1/2/4/8 shards, pressure 6,
/// fixed total capacity per benchmark.
pub fn shards(opts: &Options) -> String {
    let config = SimConfig {
        charge_unlinks: true,
        ..SimConfig::default()
    };
    let traces: Vec<(cce_dbt::TraceLog, u64, u64)> = BENCHMARKS
        .iter()
        .map(|name| {
            let model = catalog::by_name(name).expect("table 1 benchmark");
            if opts.verbose {
                eprintln!("  [shards] {name}…");
            }
            let trace = model.trace(opts.scale, opts.seed);
            let capacity = capacity_for_pressure(trace.max_cache_bytes(), 6);
            let max_block = trace
                .superblocks
                .iter()
                .map(|s| u64::from(s.size))
                .max()
                .unwrap_or(1);
            (trace, capacity, max_block)
        })
        .collect();

    let mut t = TextTable::new(
        "Sharding — 1/2/4/8 shards at fixed total capacity (pressure 6, Eq. 4 charged)",
        [
            "org",
            "shards",
            "miss rate",
            "evictions",
            "unlink ops",
            "inter-link share",
            "overhead vs 1 shard",
        ],
    );
    for kind in ORGS {
        let mut base_overhead = None;
        for n in SHARD_COUNTS {
            let cell = run_cell(&traces, kind, n, &config);
            let base = *base_overhead.get_or_insert(cell.overhead);
            let live = cell.census_intra + cell.census_inter;
            t.row([
                kind.to_owned(),
                n.to_string(),
                pct(unified_miss_rate(cell.misses_accesses.iter().copied())),
                cell.evictions.to_string(),
                cell.unlink_ops.to_string(),
                if live == 0 {
                    "-".to_owned()
                } else {
                    pct(cell.census_inter as f64 / live as f64)
                },
                format!("{:.1}%", cell.overhead / base * 100.0),
            ]);
        }
    }
    let mut out = t.to_string();
    out.push_str(
        "\nReading: splitting a fixed byte budget over more shards leaves the\n\
         total capacity unchanged but narrows each eviction domain, so miss\n\
         rates drift up with shard count — hash imbalance wastes bytes in one\n\
         slice while another thrashes. The inter-link share climbs with N\n\
         (cross-shard links are always-indirect and join the inter-unit\n\
         census), and fine-grained orgs additionally pay Eq. 4 unlink charges\n\
         for cross-shard fan-in when a link target is evicted. One shard is\n\
         the degenerate case: byte-identical to the bare cache by the N=1\n\
         conformance suite.\n",
    );
    out
}
