//! Trace-statistics experiments: Table 1, Figure 3, Figure 4, Figure 12.

use crate::Options;
use cce_sim::report::{f2, TextTable};
use cce_workloads::distributions::{size_histogram, SIZE_BUCKET_LABELS};
use cce_workloads::{catalog, BenchmarkModel, Suite};
use std::fmt::Write as _;

fn traces(opts: &Options) -> Vec<(BenchmarkModel, cce_dbt::TraceLog)> {
    catalog::all()
        .into_iter()
        .map(|m| {
            if opts.verbose {
                eprintln!("  [trace] {}", m.name);
            }
            let t = m.trace(opts.scale, opts.seed);
            (m, t)
        })
        .collect()
}

/// Table 1: benchmarks and their hot-superblock counts.
pub fn table1(opts: &Options) -> String {
    let mut t = TextTable::new(
        "Table 1 — Benchmarks and hot superblocks to manage",
        [
            "Name",
            "Suite",
            "Superblocks (paper)",
            "Superblocks (trace)",
            "maxCache (KB)",
            "Description",
        ],
    );
    for (m, trace) in traces(opts) {
        t.row([
            m.name.clone(),
            m.suite.to_string(),
            m.superblocks.to_string(),
            trace.superblocks.len().to_string(),
            format!("{:.0}", trace.max_cache_bytes() as f64 / 1024.0),
            m.description.clone(),
        ]);
    }
    let mut out = t.to_string();
    let _ = writeln!(
        out,
        "\nPaper anchors: gzip maxCache ≈ 171 KB (301 superblocks); word ≈ 34.2 MB (18 043)."
    );
    out
}

/// Figure 3: superblock size distribution, bucketed, per suite.
pub fn fig3(opts: &Options) -> String {
    let mut out = String::new();
    for suite in [Suite::SpecInt2000, Suite::Windows] {
        let mut t = TextTable::new(
            &format!("Figure 3 — Superblock size distribution ({suite})"),
            {
                let mut h = vec!["Benchmark".to_owned()];
                h.extend(SIZE_BUCKET_LABELS.iter().map(|s| (*s).to_owned()));
                h
            },
        );
        let mut suite_sizes: Vec<u32> = Vec::new();
        for (m, trace) in traces(opts).into_iter().filter(|(m, _)| m.suite == suite) {
            let sizes: Vec<u32> = trace.superblocks.iter().map(|s| s.size).collect();
            suite_sizes.extend(&sizes);
            let h = size_histogram(&sizes);
            let total: u64 = h.iter().sum();
            let mut row = vec![m.name.clone()];
            row.extend(
                h.iter()
                    .map(|&c| format!("{:.1}%", c as f64 / total as f64 * 100.0)),
            );
            t.row(row);
        }
        let h = size_histogram(&suite_sizes);
        let total: u64 = h.iter().sum();
        let mut row = vec!["ALL".to_owned()];
        row.extend(
            h.iter()
                .map(|&c| format!("{:.1}%", c as f64 / total as f64 * 100.0)),
        );
        t.row(row);
        out.push_str(&t.to_string());
        out.push('\n');
    }
    out.push_str(
        "Expected shape: a long right tail — most superblocks 64–511 bytes, a small\n\
         population above 1 KB (the paper's Figure 3 shows the same skew).\n",
    );
    out
}

/// Figure 4: median superblock size per benchmark.
pub fn fig4(opts: &Options) -> String {
    let mut t = TextTable::new(
        "Figure 4 — Median superblock size (bytes)",
        [
            "Benchmark",
            "Suite",
            "Median (paper calib.)",
            "Median (trace)",
            "Mean (trace)",
        ],
    );
    for (m, trace) in traces(opts) {
        let s = trace.summary();
        t.row([
            m.name.clone(),
            m.suite.to_string(),
            m.median_size.to_string(),
            s.median_size.to_string(),
            f2(s.mean_size),
        ]);
    }
    let mut out = t.to_string();
    out.push_str("\nPaper range: medians 190–300 bytes, varying noticeably per benchmark.\n");
    out
}

/// Figure 12: average outbound links per superblock.
pub fn fig12(opts: &Options) -> String {
    let mut t = TextTable::new(
        "Figure 12 — Mean outbound links per superblock",
        ["Benchmark", "Mean out-degree", "Direct-transition fraction"],
    );
    let mut weighted = 0.0;
    let mut n = 0usize;
    for (m, trace) in traces(opts) {
        let s = trace.summary();
        weighted += s.mean_out_degree * trace.superblocks.len() as f64;
        n += trace.superblocks.len();
        t.row([m.name.clone(), f2(s.mean_out_degree), f2(s.direct_fraction)]);
    }
    let avg = weighted / n as f64;
    let mut out = t.to_string();
    let _ = writeln!(
        out,
        "\nSuite-weighted mean out-degree: {avg:.2} (paper: ≈1.7). Back-pointer table at 16 B/link ⇒ ≈{:.1}% of code-cache bytes.",
        avg * 16.0 / 230.0 * 100.0
    );
    out
}
