//! Multi-tenant serving study: static capacity partition vs the
//! Memshare-style arbiter, per organization.
//!
//! Three guests of very different working-set sizes (gzip, crafty, gcc)
//! share one four-shard concurrent cache. The **static** rows give each
//! tenant an even third of the total byte budget for the whole run; the
//! **arbiter** rows start from the same even split and let the capacity
//! arbiter re-partition it at every review from decayed capacity-miss
//! windows (DESIGN.md §12). Everything else — traces, organizations,
//! cost models — is identical, so any hit-rate difference is pure
//! capacity steering. Runs use one worker thread, which makes the
//! arbiter path reproducible.

use crate::shards::build_org;
use crate::Options;
use cce_core::shard::shard_capacities;
use cce_core::{ArbiterConfig, ConcurrentSession, TenantConfig};
use cce_dbt::SharedTrace;
use cce_sim::metrics::unified_miss_rate;
use cce_sim::pressure::{capacity_for_pressure, TraceSizing};
use cce_sim::report::{pct, TextTable};
use cce_sim::simulator::{SimConfig, SimResult};
use cce_sim::{simulate_concurrent_with, ConcurrentSimConfig};
use cce_workloads::catalog;

/// Small, medium and large working sets — the imbalance the arbiter
/// exists to exploit.
const BENCHMARKS: [&str; 3] = ["gzip", "crafty", "gcc"];

/// Shards of the shared cache.
const SHARDS: u32 = 4;

/// The same organization axis as the sharding study.
const ORGS: [&str; 7] = [
    "unit FIFO (8)",
    "fine FIFO",
    "LRU",
    "preemptive",
    "adaptive",
    "affinity-8",
    "generational",
];

/// One tenant's inputs: trace plus the block-size bound its
/// organizations clamp their unit counts to.
struct Tenant {
    trace: SharedTrace,
    max_block: u64,
}

/// Builds the session (even budgets, optional arbiter), replays every
/// tenant's trace through it single-threaded, and returns the per-tenant
/// results plus (review count, total bytes moved).
fn run_mode(
    kind: &'static str,
    tenants: &[Tenant],
    budgets: &[u64],
    arbiter: Option<ArbiterConfig>,
    config: &SimConfig,
) -> (Vec<SimResult>, (usize, u64)) {
    let max_block = tenants.iter().map(|t| t.max_block).max().unwrap_or(1);
    let configs = budgets
        .iter()
        .map(|&b| TenantConfig::new(b, Box::new(move |c| Ok(build_org(kind, c, max_block)))))
        .collect();
    let session =
        ConcurrentSession::new(configs, SHARDS, arbiter).expect("tenant geometry is valid");
    let cfg = ConcurrentSimConfig {
        sim: *config,
        shards: SHARDS,
        threads: 1,
        ..ConcurrentSimConfig::default()
    };
    let traces: Vec<SharedTrace> = tenants.iter().map(|t| t.trace.clone()).collect();
    let results = simulate_concurrent_with(&session, &traces, &cfg)
        .expect("generated traces are well-formed");
    let decisions = session.decisions();
    let moved = decisions.iter().map(|d| d.bytes_moved).sum();
    (results, (decisions.len(), moved))
}

/// The `tenants` command: static even split vs arbiter for every
/// organization, three tenants on a four-shard concurrent cache.
pub fn tenants(opts: &Options) -> String {
    let config = SimConfig {
        charge_unlinks: true,
        ..SimConfig::default()
    };
    let tenants: Vec<Tenant> = BENCHMARKS
        .iter()
        .map(|name| {
            let model = catalog::by_name(name).expect("table 1 benchmark");
            if opts.verbose {
                eprintln!("  [tenants] {name}…");
            }
            let log = model.trace(opts.scale, opts.seed);
            let trace = SharedTrace::from_log(&log);
            let max_block = TraceSizing::of_source(&trace).max_block_bytes;
            Tenant { trace, max_block }
        })
        .collect();
    // One shared byte budget sized to the combined working sets at
    // pressure 6, split evenly — gzip's third is generous, gcc's is
    // starvation, which is exactly the imbalance the arbiter can fix.
    let total: u64 = tenants
        .iter()
        .map(|t| capacity_for_pressure(TraceSizing::of_source(&t.trace).max_cache_bytes, 6))
        .sum();
    let budgets = shard_capacities(total, BENCHMARKS.len() as u32);
    let arbiter = ArbiterConfig {
        review_period: 1024,
        ..ArbiterConfig::default()
    };

    let mut t = TextTable::new(
        &format!(
            "Multi-tenant serving — static even split vs arbiter \
             ({} tenants, {SHARDS} shards, {total} B total)",
            BENCHMARKS.len()
        ),
        [
            "org",
            "mode",
            "gzip miss",
            "crafty miss",
            "gcc miss",
            "unified miss",
            "reviews",
            "bytes moved",
        ],
    );
    for kind in ORGS {
        for (mode, arb) in [("static", None), ("arbiter", Some(arbiter))] {
            let (results, (reviews, moved)) = run_mode(kind, &tenants, &budgets, arb, &config);
            let pairs: Vec<(u64, u64)> = results
                .iter()
                .map(|r| (r.stats.misses, r.stats.accesses))
                .collect();
            t.row([
                kind.to_owned(),
                mode.to_owned(),
                pct(results[0].stats.miss_rate()),
                pct(results[1].stats.miss_rate()),
                pct(results[2].stats.miss_rate()),
                pct(unified_miss_rate(pairs.iter().copied())),
                reviews.to_string(),
                moved.to_string(),
            ]);
        }
    }
    let mut out = t.to_string();
    out.push_str(
        "\nReading: the static rows replay each guest inside a fixed third of\n\
         the byte budget; they are byte-identical to that guest running alone\n\
         on a sharded cache of the same size (the concurrent conformance\n\
         suite). The arbiter rows start from the same split and move capacity\n\
         from the tenant with the lowest hit-rate-per-byte to the one with the\n\
         highest at every review, so the large-footprint guest (gcc) claws\n\
         bytes back from the small one (gzip) and the unified miss rate drops\n\
         whenever the working sets are genuinely imbalanced. `bytes moved`\n\
         totals the granted transfers; budgets always sum to the shared total\n\
         and never fall below the per-tenant floor.\n",
    );
    out
}
