//! Utility commands: dump benchmark traces to disk (JSON or binary),
//! convert saved logs between the two formats, and replay saved logs —
//! the paper's save-and-reuse workflow as a command-line tool.

use crate::Options;
use cce_core::Granularity;
use cce_dbt::trace_bin;
use cce_dbt::{SharedTrace, TraceLog};
use cce_sim::pressure::{capacity_for_pressure, effective_granularity, TraceSizing};
use cce_sim::report::{pct, TextTable};
use cce_sim::simulator::SimConfig;
use cce_sim::Replay;
use cce_sim::{simulate_concurrent, ConcurrentSimConfig};
use cce_workloads::catalog;
use std::fmt::Write as _;
use std::path::Path;

/// The `--format` flag resolved: how a tool should write a trace log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// Human-readable JSON ([`TraceLog::save`]).
    Json,
    /// Chunked binary (`trace_bin`, DESIGN.md §11).
    Binary,
}

impl TraceFormat {
    /// Parses `--format` (defaulting to JSON when absent).
    pub fn from_flag(flag: Option<&str>) -> Result<TraceFormat, String> {
        match flag {
            None | Some("json") => Ok(TraceFormat::Json),
            Some("binary") | Some("bin") => Ok(TraceFormat::Binary),
            Some(other) => Err(format!("unknown --format {other} (json|binary)")),
        }
    }
}

fn write_log(log: &TraceLog, out: &str, format: TraceFormat) -> Result<(), String> {
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    let w = std::io::BufWriter::new(file);
    match format {
        TraceFormat::Json => log.save(w),
        TraceFormat::Binary => log.save_binary(w),
    }
    .map_err(|e| format!("write {out}: {e}"))
}

/// `trace`: generate a benchmark's access trace and write it to disk.
///
/// Requires `--bench <name>` and `--out <path>`; `--format json|binary`
/// picks the encoding (default JSON).
pub fn trace(opts: &Options) -> Result<String, String> {
    let bench = opts
        .bench
        .as_deref()
        .ok_or("trace requires --bench <table-1 name>")?;
    let out = opts
        .out
        .as_deref()
        .ok_or("trace requires --out <path> for the log")?;
    let format = TraceFormat::from_flag(opts.format.as_deref())?;
    let model = catalog::by_name(bench).ok_or_else(|| format!("unknown benchmark {bench}"))?;
    let log = model.trace(opts.scale, opts.seed);
    write_log(&log, out, format)?;
    let s = log.summary();
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "wrote {out}: {} superblocks, {} accesses, maxCache {} KB \
         (median size {} B, mean out-degree {:.2})",
        s.superblock_count,
        s.accesses,
        s.total_code_bytes / 1024,
        s.median_size,
        s.mean_out_degree
    );
    Ok(msg)
}

/// `convert`: re-encode a saved trace log. The input format is
/// auto-detected by magic; the output format is `--format` if given,
/// otherwise the opposite of the input (JSON ↔ binary).
///
/// Requires `--log <in>` and `--out <out>`.
pub fn convert(opts: &Options) -> Result<String, String> {
    let path = opts
        .log
        .as_deref()
        .ok_or("convert requires --log <path to a saved trace>")?;
    let out = opts.out.as_deref().ok_or("convert requires --out <path>")?;
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let (log, from) = if trace_bin::is_binary(&bytes) {
        let log =
            trace_bin::load_binary(bytes.as_slice()).map_err(|e| format!("parse {path}: {e}"))?;
        (log, TraceFormat::Binary)
    } else {
        let log = TraceLog::load(bytes.as_slice()).map_err(|e| format!("parse {path}: {e}"))?;
        (log, TraceFormat::Json)
    };
    let to = match opts.format.as_deref() {
        Some(f) => TraceFormat::from_flag(Some(f))?,
        None => match from {
            TraceFormat::Json => TraceFormat::Binary,
            TraceFormat::Binary => TraceFormat::Json,
        },
    };
    write_log(&log, out, to)?;
    Ok(format!(
        "converted {path} ({from:?}) -> {out} ({to:?}): {} superblocks, {} events\n",
        log.superblocks.len(),
        log.events.len()
    ))
}

/// `replay`: load a saved trace (JSON or binary, auto-detected — binary
/// logs are streamed in through the decode thread) and simulate it at
/// one or all granularities.
///
/// Requires `--log <path>`; `--pressure <n>` defaults to 2. With
/// `--tenants N` the trace is replayed as N identical guests sharing one
/// four-shard concurrent cache on `--threads T` workers (default 1) —
/// every tenant's row-feeding result is byte-identical to the solo
/// replay, which this tool re-checks on every run.
pub fn replay(opts: &Options) -> Result<String, String> {
    let path = opts
        .log
        .as_deref()
        .ok_or("replay requires --log <path to a saved trace>")?;
    // Decode once (streamed for binary), replay the shared chunks at
    // every granularity — the sweep pattern in miniature.
    let trace = SharedTrace::open(Path::new(path)).map_err(|e| format!("load {path}: {e}"))?;
    let pressure = opts.pressure.unwrap_or(2);
    let sizing = TraceSizing::of_source(&trace);
    let capacity = capacity_for_pressure(sizing.max_cache_bytes, pressure);
    let tenants = opts.tenants.unwrap_or(1);
    let threads = opts.threads.unwrap_or(1);
    if opts.threads.is_some() && opts.tenants.is_none() {
        return Err("--threads requires --tenants".to_owned());
    }

    let title = if tenants > 1 {
        format!(
            "Replay of {} ({} accesses) at pressure {pressure} ({capacity} B) — \
             {tenants} tenants, {threads} thread(s), 4 shards",
            trace.name, trace.event_count
        )
    } else {
        format!(
            "Replay of {} ({} accesses) at pressure {pressure} ({capacity} B)",
            trace.name, trace.event_count
        )
    };
    let mut t = TextTable::new(
        &title,
        [
            "granularity",
            "miss rate",
            "evictions",
            "unlink ops",
            "overhead (instr)",
        ],
    );
    for g in Granularity::spectrum(8) {
        let eff = effective_granularity(g, capacity, sizing.max_block_bytes);
        let config = SimConfig {
            granularity: eff,
            capacity,
            ..SimConfig::default()
        };
        let r = if tenants > 1 {
            // N identical guests, one shared concurrent cache; per-tenant
            // determinism means every tenant must agree with tenant 0.
            let traces = vec![trace.clone(); tenants as usize];
            let cfg = ConcurrentSimConfig {
                sim: config,
                threads,
                ..ConcurrentSimConfig::default()
            };
            let mut results =
                simulate_concurrent(&traces, &cfg).map_err(|e| format!("simulate: {e}"))?;
            if results.iter().any(|r| *r != results[0]) {
                return Err("tenants replaying the same trace diverged".to_owned());
            }
            // The rows report one guest; swap_remove avoids a clone.
            results.swap_remove(0)
        } else {
            Replay::new(&trace)
                .config(&config)
                .run()
                .map(cce_sim::ReplayReport::into_solo)
                .map_err(|e| format!("simulate: {e}"))?
        };
        t.row([
            g.label(),
            pct(r.stats.miss_rate()),
            r.stats.eviction_invocations.to_string(),
            r.stats.unlink_operations.to_string(),
            format!("{:.3e}", r.total_overhead()),
        ]);
    }
    let mut out = t.to_string();
    if tenants > 1 {
        out.push_str(
            "Per-tenant rows are identical across all tenants (checked every\n\
             run); the table shows tenant 0.\n",
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_then_replay_roundtrip() {
        let dir = std::env::temp_dir().join("cce_tools_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mcf.json").to_string_lossy().into_owned();
        let opts = Options {
            scale: 0.1,
            seed: 5,
            out: Some(path.clone()),
            bench: Some("mcf".to_owned()),
            verbose: false,
            ..Options::default()
        };
        let msg = trace(&opts).unwrap();
        assert!(msg.contains("superblocks"));

        let replay_opts = Options {
            log: Some(path.clone()),
            pressure: Some(4),
            out: None,
            bench: None,
            ..Options::default()
        };
        let table = replay(&replay_opts).unwrap();
        assert!(table.contains("FLUSH"));
        assert!(table.contains("FIFO"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_trace_convert_and_replay_agree_with_json() {
        let dir = std::env::temp_dir().join("cce_tools_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let jpath = dir.join("gzip.json").to_string_lossy().into_owned();
        let bpath = dir.join("gzip.cbt").to_string_lossy().into_owned();
        let back = dir.join("gzip_back.json").to_string_lossy().into_owned();

        // Write the same workload in both encodings.
        let base = Options {
            scale: 0.05,
            seed: 3,
            bench: Some("gzip".to_owned()),
            verbose: false,
            ..Options::default()
        };
        trace(&Options {
            out: Some(jpath.clone()),
            ..base.clone()
        })
        .unwrap();
        trace(&Options {
            out: Some(bpath.clone()),
            format: Some("binary".to_owned()),
            ..base.clone()
        })
        .unwrap();

        // convert binary -> JSON roundtrips to the original JSON log.
        let msg = convert(&Options {
            log: Some(bpath.clone()),
            out: Some(back.clone()),
            ..Options::default()
        })
        .unwrap();
        assert!(msg.contains("Binary) -> "));
        let a = TraceLog::load(std::fs::File::open(&jpath).unwrap()).unwrap();
        let b = TraceLog::load(std::fs::File::open(&back).unwrap()).unwrap();
        assert_eq!(a, b);

        // Replaying the streamed binary matches replaying the JSON.
        let replay_of = |p: &str| {
            replay(&Options {
                log: Some(p.to_owned()),
                pressure: Some(3),
                ..Options::default()
            })
            .unwrap()
        };
        assert_eq!(replay_of(&jpath), replay_of(&bpath));

        for p in [&jpath, &bpath, &back] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn concurrent_replay_is_thread_count_invariant() {
        let dir = std::env::temp_dir().join("cce_tools_tenant_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("vortex.json").to_string_lossy().into_owned();
        trace(&Options {
            scale: 0.05,
            seed: 9,
            bench: Some("vortex".to_owned()),
            out: Some(path.clone()),
            verbose: false,
            ..Options::default()
        })
        .unwrap();

        let body_of = |tenants: Option<u32>, threads: Option<usize>| {
            let out = replay(&Options {
                log: Some(path.clone()),
                pressure: Some(4),
                tenants,
                threads,
                ..Options::default()
            })
            .unwrap();
            // Strip the title and footer; the numeric rows must agree.
            out.lines()
                .filter(|l| l.contains('%'))
                .map(str::to_owned)
                .collect::<Vec<_>>()
        };
        // Solo replay exercises the unsharded path; the tenant rows run
        // over a 4-shard concurrent cache, so they are compared across
        // thread counts (the determinism claim), not against solo.
        assert!(!body_of(None, None).is_empty());
        let single = body_of(Some(3), Some(1));
        assert!(!single.is_empty());
        assert_eq!(single, body_of(Some(3), Some(2)));

        let err = replay(&Options {
            log: Some(path.clone()),
            threads: Some(2),
            ..Options::default()
        })
        .unwrap_err();
        assert!(err.contains("--tenants"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_format_flag_is_an_error() {
        let opts = Options {
            bench: Some("mcf".to_owned()),
            out: Some("/tmp/x.json".to_owned()),
            format: Some("xml".to_owned()),
            ..Options::default()
        };
        assert!(trace(&opts).unwrap_err().contains("unknown --format"));
        assert!(convert(&Options::default()).unwrap_err().contains("--log"));
    }

    #[test]
    fn missing_arguments_are_reported() {
        let opts = Options::default();
        assert!(trace(&opts).unwrap_err().contains("--bench"));
        assert!(replay(&opts).unwrap_err().contains("--log"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let opts = Options {
            bench: Some("nope".to_owned()),
            out: Some("/tmp/x.json".to_owned()),
            ..Options::default()
        };
        assert!(trace(&opts).unwrap_err().contains("unknown benchmark"));
    }
}
