//! Utility commands: dump benchmark traces to disk and replay saved logs
//! — the paper's save-and-reuse workflow as a command-line tool.

use crate::Options;
use cce_core::Granularity;
use cce_sim::pressure::{capacity_for_pressure, effective_granularity};
use cce_sim::report::{pct, TextTable};
use cce_sim::simulator::{simulate, SimConfig};
use cce_workloads::catalog;
use std::fmt::Write as _;

/// `trace`: generate a benchmark's access trace and write it as JSON.
///
/// Requires `--bench <name>` and `--out <path>`.
pub fn trace(opts: &Options) -> Result<String, String> {
    let bench = opts
        .bench
        .as_deref()
        .ok_or("trace requires --bench <table-1 name>")?;
    let out = opts
        .out
        .as_deref()
        .ok_or("trace requires --out <path> for the JSON log")?;
    let model = catalog::by_name(bench).ok_or_else(|| format!("unknown benchmark {bench}"))?;
    let log = model.trace(opts.scale, opts.seed);
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    log.save(std::io::BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    let s = log.summary();
    let mut msg = String::new();
    let _ = writeln!(
        msg,
        "wrote {out}: {} superblocks, {} accesses, maxCache {} KB \
         (median size {} B, mean out-degree {:.2})",
        s.superblock_count,
        s.accesses,
        s.total_code_bytes / 1024,
        s.median_size,
        s.mean_out_degree
    );
    Ok(msg)
}

/// `replay`: load a saved JSON trace and simulate it at one or all
/// granularities.
///
/// Requires `--log <path>`; `--pressure <n>` defaults to 2.
pub fn replay(opts: &Options) -> Result<String, String> {
    let path = opts
        .log
        .as_deref()
        .ok_or("replay requires --log <path to a saved trace>")?;
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let log = cce_dbt::TraceLog::load(std::io::BufReader::new(file))
        .map_err(|e| format!("parse {path}: {e}"))?;
    let pressure = opts.pressure.unwrap_or(2);
    let capacity = capacity_for_pressure(log.max_cache_bytes(), pressure);
    let max_block = log
        .superblocks
        .iter()
        .map(|s| u64::from(s.size))
        .max()
        .unwrap_or(1);

    let mut t = TextTable::new(
        &format!(
            "Replay of {} ({} accesses) at pressure {pressure} ({capacity} B)",
            log.name,
            log.events.len()
        ),
        [
            "granularity",
            "miss rate",
            "evictions",
            "unlink ops",
            "overhead (instr)",
        ],
    );
    for g in Granularity::spectrum(8) {
        let eff = effective_granularity(g, capacity, max_block);
        let r = simulate(
            &log,
            &SimConfig {
                granularity: eff,
                capacity,
                ..SimConfig::default()
            },
        )
        .map_err(|e| format!("simulate: {e}"))?;
        t.row([
            g.label(),
            pct(r.stats.miss_rate()),
            r.stats.eviction_invocations.to_string(),
            r.stats.unlink_operations.to_string(),
            format!("{:.3e}", r.total_overhead()),
        ]);
    }
    Ok(t.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_then_replay_roundtrip() {
        let dir = std::env::temp_dir().join("cce_tools_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mcf.json").to_string_lossy().into_owned();
        let opts = Options {
            scale: 0.1,
            seed: 5,
            out: Some(path.clone()),
            bench: Some("mcf".to_owned()),
            log: None,
            pressure: None,
            jobs: None,
            verbose: false,
        };
        let msg = trace(&opts).unwrap();
        assert!(msg.contains("superblocks"));

        let replay_opts = Options {
            log: Some(path.clone()),
            pressure: Some(4),
            out: None,
            bench: None,
            ..Options::default()
        };
        let table = replay(&replay_opts).unwrap();
        assert!(table.contains("FLUSH"));
        assert!(table.contains("FIFO"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_arguments_are_reported() {
        let opts = Options::default();
        assert!(trace(&opts).unwrap_err().contains("--bench"));
        assert!(replay(&opts).unwrap_err().contains("--log"));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        let opts = Options {
            bench: Some("nope".to_owned()),
            out: Some("/tmp/x.json".to_owned()),
            ..Options::default()
        };
        assert!(trace(&opts).unwrap_err().contains("unknown benchmark"));
    }
}
